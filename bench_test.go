// Benchmarks regenerating every experiment table and figure defined in
// EXPERIMENTS.md (the paper itself reports no numbers; see DESIGN.md §2).
//
//	E1 "Table 1"  — pairing-substrate primitive costs
//	E2 "Table 2"  — scheme operation latencies
//	E3 "Table 3"  — key/ciphertext sizes (reported as metrics)
//	E4 "Table 4"  — ours vs the four related-work schemes
//	E5 "Figure 1" — delegation setup cost vs number of categories
//	E6 "Figure 2" — blast radius of proxy compromise
//	E7 "Figure 3" — end-to-end disclosure vs payload size
//
// Run: go test -bench . -benchmem
package typepre_test

import (
	"fmt"
	"testing"

	"typepre"
	"typepre/internal/baselines/afgh"
	"typepre/internal/baselines/bbs"
	"typepre/internal/baselines/dodisivan"
	"typepre/internal/baselines/ga"
	"typepre/internal/bn254"
	"typepre/internal/core"
	"typepre/internal/hybrid"
	"typepre/internal/ibe"
	"typepre/internal/phr"
)

// benchEnv is the shared two-domain fixture.
type benchEnv struct {
	kgc1, kgc2 *ibe.KGC
	alice      *core.Delegator
	bobKey     *ibe.PrivateKey
	msg        *bn254.GT
	ct         *core.Ciphertext
	rk         *core.ReKey
	rct        *core.ReCiphertext
}

var sharedEnv *benchEnv

func env(b *testing.B) *benchEnv {
	b.Helper()
	if sharedEnv != nil {
		return sharedEnv
	}
	kgc1, err := ibe.Setup("bench-kgc1", nil)
	if err != nil {
		b.Fatal(err)
	}
	kgc2, err := ibe.Setup("bench-kgc2", nil)
	if err != nil {
		b.Fatal(err)
	}
	alice := core.NewDelegator(kgc1.Extract("alice@bench"))
	bobKey := kgc2.Extract("bob@bench")
	msg, _, err := bn254.RandomGT(nil)
	if err != nil {
		b.Fatal(err)
	}
	ct, err := alice.Encrypt(msg, "bench-type", nil)
	if err != nil {
		b.Fatal(err)
	}
	rk, err := alice.Delegate(kgc2.Params(), "bob@bench", "bench-type", nil)
	if err != nil {
		b.Fatal(err)
	}
	rct, err := core.ReEncrypt(ct, rk)
	if err != nil {
		b.Fatal(err)
	}
	sharedEnv = &benchEnv{kgc1: kgc1, kgc2: kgc2, alice: alice, bobKey: bobKey, msg: msg, ct: ct, rk: rk, rct: rct}
	return sharedEnv
}

// ---------------------------------------------------------------------------
// E1 "Table 1": pairing-substrate primitives
// ---------------------------------------------------------------------------

func BenchmarkE1_Pairing(b *testing.B) {
	p := bn254.G1Generator()
	q := bn254.G2Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bn254.Pair(p, q)
	}
}

func BenchmarkE1_G1ScalarMult(b *testing.B) {
	k, _ := bn254.RandomScalar(nil)
	var out bn254.G1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.ScalarBaseMult(k)
	}
}

func BenchmarkE1_G2ScalarMult(b *testing.B) {
	k, _ := bn254.RandomScalar(nil)
	var out bn254.G2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.ScalarBaseMult(k)
	}
}

func BenchmarkE1_GTExp(b *testing.B) {
	k, _ := bn254.RandomScalar(nil)
	base := bn254.GTBase()
	var out bn254.GT
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Exp(base, k)
	}
}

func BenchmarkE1_HashToG1(b *testing.B) {
	msgs := make([][]byte, 16)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("identity-%d@bench", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bn254.HashToG1(bn254.DomainG1, msgs[i%len(msgs)])
	}
}

func BenchmarkE1_HashToZr(b *testing.B) {
	msg := []byte("type:illness-history")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bn254.HashToZr(bn254.DomainZr, msg)
	}
}

// E1 ablation: the two final-exponentiation hard-part implementations.
func BenchmarkE1_FinalExpChain(b *testing.B) {
	benchFinalExp(b, true)
}

func BenchmarkE1_FinalExpDirect(b *testing.B) {
	benchFinalExp(b, false)
}

func benchFinalExp(b *testing.B, chain bool) {
	// Exercised through the public Pair path: the ablation toggle lives in
	// internal/bn254's test surface, so here we time full pairings whose
	// cost is dominated by the respective hard part via PairHard helpers.
	p := bn254.G1Generator()
	q := bn254.G2Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if chain {
			bn254.Pair(p, q) // production path (addition chain)
		} else {
			bn254.PairDirectHardPart(p, q) // reference path
		}
	}
}

// E1 precompute ablation: prepared vs naive pairing, and the one-time
// preparation cost itself.
func BenchmarkE1_PairingPrepared(b *testing.B) {
	p := bn254.G1Generator()
	prep := bn254.G2GeneratorPrepared()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bn254.PairPrepared(p, prep)
	}
}

func BenchmarkE1_PrepareG2(b *testing.B) {
	q := bn254.G2Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bn254.PrepareG2(q)
	}
}

func BenchmarkE1_PairProduct2(b *testing.B) {
	ps := []*bn254.G1{bn254.G1Generator(), bn254.G1Generator()}
	qs := []*bn254.G2{bn254.G2Generator(), bn254.G2Generator()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bn254.PairProduct(ps, qs)
	}
}

// ---------------------------------------------------------------------------
// E2 "Table 2": scheme operation latencies
// ---------------------------------------------------------------------------

func BenchmarkE2_Setup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ibe.Setup("kgc", nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2_Extract(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.kgc1.Extract("user@bench")
	}
}

func BenchmarkE2_NewDelegator(b *testing.B) {
	e := env(b)
	key := e.kgc1.Extract("user@bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.NewDelegator(key)
	}
}

func BenchmarkE2_Encrypt1(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.alice.Encrypt(e.msg, "bench-type", nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2_Decrypt1(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.alice.Decrypt(e.ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2_Pextract(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.alice.Delegate(e.kgc2.Params(), "bob@bench", "bench-type", nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2_Preenc(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ReEncrypt(e.ct, e.rk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2_ReDecrypt(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DecryptReEncrypted(e.bobKey, e.rct); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E2 precompute ablations: the repeated-use paths the precompute subsystem
// targets, against their naive counterparts.
// ---------------------------------------------------------------------------

// BenchmarkE2_Encrypt2_KnownIdentity measures the hot PHR pattern: IBE
// encryption to an identity whose mask ê(H1(id), pk) is already cached on
// the KGC parameters (the cache is warmed by the first iteration and by
// env()'s setup traffic).
func BenchmarkE2_Encrypt2_KnownIdentity(b *testing.B) {
	e := env(b)
	params := e.kgc2.Params()
	params.EncryptionMask("bob@bench") // warm explicitly
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ibe.Encrypt(params, "bob@bench", e.msg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2_Encrypt2_NaiveMask is the same operation through bare
// parameters with no precomputation state: every iteration pays the full
// pairing, as every call site did before the precompute subsystem.
func BenchmarkE2_Encrypt2_NaiveMask(b *testing.B) {
	e := env(b)
	bare := &ibe.Params{Name: "naive", PK: e.kgc2.Params().PK}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ibe.Encrypt(bare, "bob@bench", e.msg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2_Preenc_Prepared measures the proxy's repeat transformation of
// one sealed record through a prepared rekey: after the first request the
// pairing adjustment is cached and the transform is pairing-free.
func BenchmarkE2_Preenc_Prepared(b *testing.B) {
	e := env(b)
	prk := core.PrepareReKey(e.rk)
	if _, err := prk.ReEncrypt(e.ct); err != nil { // warm the adjustment
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prk.ReEncrypt(e.ct); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E3 "Table 3": sizes, reported as benchmark metrics (bytes are exact and
// deterministic; the bench exists so one command regenerates every table)
// ---------------------------------------------------------------------------

func BenchmarkE3_Sizes(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		_ = e.ct.Marshal()
	}
	b.ReportMetric(float64(len(e.ct.Marshal())), "ct_bytes")
	b.ReportMetric(float64(len(e.rct.Marshal())), "rct_bytes")
	b.ReportMetric(float64(len(e.rk.Marshal())), "rekey_bytes")
	b.ReportMetric(float64(len(e.bobKey.Marshal())), "sk_bytes")
	b.ReportMetric(float64(len(e.kgc1.Params().Marshal())), "params_bytes")
}

// ---------------------------------------------------------------------------
// E4 "Table 4": scheme comparison on the full delegate-transform-read cycle
// ---------------------------------------------------------------------------

func BenchmarkE4_Ours_FullCycle(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct, err := e.alice.Encrypt(e.msg, "t", nil)
		if err != nil {
			b.Fatal(err)
		}
		rk, err := e.alice.Delegate(e.kgc2.Params(), "bob@bench", "t", nil)
		if err != nil {
			b.Fatal(err)
		}
		rct, err := core.ReEncrypt(ct, rk)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.DecryptReEncrypted(e.bobKey, rct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4_GA_FullCycle(b *testing.B) {
	e := env(b)
	aliceKey := e.kgc1.Extract("alice@bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct, err := ga.Encrypt(e.kgc1.Params(), "alice@bench", e.msg, nil)
		if err != nil {
			b.Fatal(err)
		}
		rk, err := ga.RKGen(aliceKey, e.kgc2.Params(), "bob@bench", nil)
		if err != nil {
			b.Fatal(err)
		}
		rct, err := ga.ReEncrypt(rk, ct)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ga.DecryptReEncrypted(e.bobKey, rct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4_AFGH_FullCycle(b *testing.B) {
	alice, err := afgh.KeyGen(nil)
	if err != nil {
		b.Fatal(err)
	}
	bob, err := afgh.KeyGen(nil)
	if err != nil {
		b.Fatal(err)
	}
	msg, _, _ := bn254.RandomGT(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct, err := afgh.EncryptSecondLevel(alice, msg, nil)
		if err != nil {
			b.Fatal(err)
		}
		rk, err := afgh.ReKey(alice.SK, bob.PK2)
		if err != nil {
			b.Fatal(err)
		}
		rct, err := afgh.ReEncrypt(rk, ct)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := afgh.DecryptFirstLevel(bob.SK, rct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4_BBS_FullCycle(b *testing.B) {
	alice, _ := bbs.KeyGen(nil)
	bob, _ := bbs.KeyGen(nil)
	k, _ := bn254.RandomScalar(nil)
	var msg bn254.G1
	msg.ScalarBaseMult(k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct, err := bbs.Encrypt(alice.PK, &msg, nil)
		if err != nil {
			b.Fatal(err)
		}
		rk, err := bbs.ReKey(alice, bob)
		if err != nil {
			b.Fatal(err)
		}
		rct, err := bbs.ReEncrypt(rk, ct)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bbs.Decrypt(bob.SK, rct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4_DodisIvan_FullCycle(b *testing.B) {
	e := env(b)
	aliceKey := e.kgc1.Extract("alice@bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct, err := ibe.Encrypt(e.kgc1.Params(), "alice@bench", e.msg, nil)
		if err != nil {
			b.Fatal(err)
		}
		shares, err := dodisivan.Split(aliceKey, nil)
		if err != nil {
			b.Fatal(err)
		}
		partial, err := dodisivan.ProxyTransform(shares.ProxyShare, ct)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dodisivan.Finish(shares.DelegateeShare, partial); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E5 "Figure 1": delegation setup cost vs number of categories. Ours needs
// ONE key pair + T rekeys; AFGH needs T key pairs + T rekeys to isolate
// categories (one keypair per category).
// ---------------------------------------------------------------------------

func benchE5Ours(b *testing.B, categories int) {
	e := env(b)
	b.ReportMetric(1, "delegator_keypairs")
	b.ReportMetric(float64(categories), "rekeys")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < categories; t++ {
			typ := core.Type(fmt.Sprintf("cat-%d", t))
			if _, err := e.alice.Delegate(e.kgc2.Params(), "bob@bench", typ, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchE5AFGH(b *testing.B, categories int) {
	bob, err := afgh.KeyGen(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(categories), "delegator_keypairs")
	b.ReportMetric(float64(categories), "rekeys")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < categories; t++ {
			// Per-category isolation in AFGH demands a fresh key pair per
			// category, then a rekey from it.
			kp, err := afgh.KeyGen(nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := afgh.ReKey(kp.SK, bob.PK2); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkE5_Ours_T1(b *testing.B)  { benchE5Ours(b, 1) }
func BenchmarkE5_Ours_T4(b *testing.B)  { benchE5Ours(b, 4) }
func BenchmarkE5_Ours_T16(b *testing.B) { benchE5Ours(b, 16) }
func BenchmarkE5_Ours_T64(b *testing.B) { benchE5Ours(b, 64) }

func BenchmarkE5_AFGH_T1(b *testing.B)  { benchE5AFGH(b, 1) }
func BenchmarkE5_AFGH_T4(b *testing.B)  { benchE5AFGH(b, 4) }
func BenchmarkE5_AFGH_T16(b *testing.B) { benchE5AFGH(b, 16) }
func BenchmarkE5_AFGH_T64(b *testing.B) { benchE5AFGH(b, 64) }

// ---------------------------------------------------------------------------
// E6 "Figure 2": blast radius of proxy compromise (structural simulation
// over a synthetic corpus; cryptographic ground truth is pinned by
// internal/phr tests).
// ---------------------------------------------------------------------------

var e6Workload *phr.Workload

func e6Env(b *testing.B) *phr.Workload {
	b.Helper()
	if e6Workload != nil {
		return e6Workload
	}
	cfg := phr.DefaultWorkload()
	cfg.Patients = 6
	cfg.RecordsPerPatient = 6
	cfg.GrantsPerPatient = 3
	w, err := phr.GenerateWorkload(cfg)
	if err != nil {
		b.Fatal(err)
	}
	e6Workload = w
	return w
}

func BenchmarkE6_BlastRadius_TypePRE(b *testing.B) {
	w := e6Env(b)
	proxy, err := w.Service.ProxyFor(phr.CategoryEmergency)
	if err != nil {
		b.Fatal(err)
	}
	var frac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := phr.SimulateTypePREBreach(w.Service.Store, []*phr.Proxy{proxy})
		frac = rep.Fraction()
	}
	b.ReportMetric(frac, "exposed_fraction")
}

func BenchmarkE6_BlastRadius_Traditional(b *testing.B) {
	w := e6Env(b)
	proxy, err := w.Service.ProxyFor(phr.CategoryEmergency)
	if err != nil {
		b.Fatal(err)
	}
	var frac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := phr.SimulateTraditionalPREBreach(w.Service.Store, []*phr.Proxy{proxy})
		frac = rep.Fraction()
	}
	b.ReportMetric(frac, "exposed_fraction")
}

// ---------------------------------------------------------------------------
// E7 "Figure 3": end-to-end disclosure latency vs payload size. The proxy
// transformation cost must be flat in the payload size (KEM/DEM).
// ---------------------------------------------------------------------------

func benchE7(b *testing.B, payload int) {
	e := env(b)
	body := make([]byte, payload)
	for i := range body {
		body[i] = byte(i)
	}
	ct, err := hybrid.Encrypt(e.alice, body, "bench-type", nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(payload))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rct, err := hybrid.ReEncrypt(ct, e.rk)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := hybrid.DecryptReEncrypted(e.bobKey, rct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7_Disclose_256B(b *testing.B)  { benchE7(b, 256) }
func BenchmarkE7_Disclose_4KiB(b *testing.B)  { benchE7(b, 4<<10) }
func BenchmarkE7_Disclose_64KiB(b *testing.B) { benchE7(b, 64<<10) }
func BenchmarkE7_Disclose_1MiB(b *testing.B)  { benchE7(b, 1<<20) }

// BenchmarkE7_ProxyOnly isolates the proxy's own work (no delegatee
// decryption) to show it is payload-independent.
func BenchmarkE7_ProxyOnly_1MiB(b *testing.B) {
	e := env(b)
	body := make([]byte, 1<<20)
	ct, err := hybrid.Encrypt(e.alice, body, "bench-type", nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hybrid.ReEncrypt(ct, e.rk); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E9: bulk-disclosure pipeline — the serial per-record loop vs the
// GOMAXPROCS-bounded worker pool over workload-generated patients. The
// parallel path must preserve insertion order and produce byte-identical
// plaintexts (pinned by internal/phr tests); here we measure throughput.
// ---------------------------------------------------------------------------

var bulkFixtures = map[int]*phr.BulkFixture{}

func bulkEnv(b *testing.B, records int) *phr.BulkFixture {
	b.Helper()
	f := bulkFixtures[records]
	if f == nil {
		var err error
		f, err = phr.NewBulkFixture(records)
		if err != nil {
			b.Fatal(err)
		}
		bulkFixtures[records] = f
	}
	return f
}

func benchDiscloseCategory(b *testing.B, records int, parallel bool) {
	f := bulkEnv(b, records)
	disclose := f.Proxy.DiscloseCategory
	if parallel {
		disclose = f.Proxy.DiscloseCategoryParallel
	}
	// Warm the per-record pairing cache so both modes measure the
	// steady-state serving path (write once, disclose many).
	if _, err := f.Proxy.DiscloseCategoryParallel(f.Service.Store, f.PatientID, phr.CategoryEmergency, f.RequesterID); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rcts, err := disclose(f.Service.Store, f.PatientID, phr.CategoryEmergency, f.RequesterID)
		if err != nil {
			b.Fatal(err)
		}
		if len(rcts) != records {
			b.Fatalf("disclosed %d records, want %d", len(rcts), records)
		}
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkDiscloseCategory(b *testing.B) {
	for _, mode := range []string{"serial", "parallel"} {
		parallel := mode == "parallel"
		for _, n := range []int{1, 8, 64, 512} {
			n := n
			b.Run(fmt.Sprintf("%s/records-%d", mode, n), func(b *testing.B) {
				benchDiscloseCategory(b, n, parallel)
			})
		}
	}
}

// Facade sanity: the public API costs what the internal API costs
// (typepre.Delegator is a type alias of the internal delegator).
func BenchmarkFacade_EncryptBytes_1KiB(b *testing.B) {
	e := env(b)
	body := make([]byte, 1<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := typepre.EncryptBytes(e.alice, body, "t", nil); err != nil {
			b.Fatal(err)
		}
	}
}
