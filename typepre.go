package typepre

import (
	"io"
	"math/big"

	"typepre/internal/bn254"
	"typepre/internal/core"
	"typepre/internal/hybrid"
	"typepre/internal/ibe"
)

// Re-exported types. Aliases keep the public surface identical to the
// implementing packages while hiding the substrate layout.
type (
	// KGC is a Key Generation Center (one per trust domain).
	KGC = ibe.KGC
	// Params are a KGC's public parameters.
	Params = ibe.Params
	// PrivateKey is an extracted identity key.
	PrivateKey = ibe.PrivateKey
	// Delegator encrypts, categorizes and delegates messages.
	Delegator = core.Delegator
	// Type is a message category.
	Type = core.Type
	// Ciphertext is a typed first-level GT-message ciphertext.
	Ciphertext = core.Ciphertext
	// ReKey is a per-type proxy re-encryption key.
	ReKey = core.ReKey
	// ReCiphertext is a re-encrypted GT-message ciphertext.
	ReCiphertext = core.ReCiphertext
	// TypeKey is the §4.3 jointly recoverable per-type weak key.
	TypeKey = core.TypeKey
	// GT is an element of the pairing target group (the native message
	// space of the scheme).
	GT = bn254.GT
	// HybridCiphertext is a byte-payload (KEM/DEM) ciphertext.
	HybridCiphertext = hybrid.Ciphertext
	// HybridReCiphertext is a re-encrypted byte-payload ciphertext.
	HybridReCiphertext = hybrid.ReCiphertext
)

// Re-exported errors.
var (
	// ErrTypeMismatch: the proxy key does not match the ciphertext type.
	ErrTypeMismatch = core.ErrTypeMismatch
	// ErrDecrypt: malformed decryption inputs.
	ErrDecrypt = core.ErrDecrypt
)

// Setup creates a new Key Generation Center. rng may be nil to use
// crypto/rand.
func Setup(name string, rng io.Reader) (*KGC, error) { return ibe.Setup(name, rng) }

// NewDelegator wraps an extracted private key for use as a delegator.
func NewDelegator(key *PrivateKey) *Delegator { return core.NewDelegator(key) }

// ReEncrypt is the proxy transformation on GT-message ciphertexts (the
// paper's Preenc).
func ReEncrypt(ct *Ciphertext, rk *ReKey) (*ReCiphertext, error) {
	return core.ReEncrypt(ct, rk)
}

// DecryptReEncrypted opens a re-encrypted GT-message ciphertext with the
// delegatee's private key.
func DecryptReEncrypted(sk *PrivateKey, rct *ReCiphertext) (*GT, error) {
	return core.DecryptReEncrypted(sk, rct)
}

// RecoverTypeKey simulates the §4.3 proxy–delegatee collusion, returning
// the per-type weak key.
func RecoverTypeKey(rk *ReKey, delegateeKey *PrivateKey) (*TypeKey, error) {
	return core.RecoverTypeKey(rk, delegateeKey)
}

// DecryptWithTypeKey opens a first-level ciphertext using a recovered type
// key (meaningful only for the key's own type).
func DecryptWithTypeKey(tk *TypeKey, ct *Ciphertext) (*GT, error) {
	return core.DecryptWithTypeKey(tk, ct)
}

// EncryptBytes seals an arbitrary byte payload under the delegator's
// identity and the given type (KEM/DEM composition).
func EncryptBytes(d *Delegator, msg []byte, t Type, rng io.Reader) (*HybridCiphertext, error) {
	return hybrid.Encrypt(d, msg, t, rng)
}

// DecryptBytes opens a byte-payload ciphertext with the delegator's key.
func DecryptBytes(d *Delegator, ct *HybridCiphertext) ([]byte, error) {
	return hybrid.Decrypt(d, ct)
}

// ReEncryptBytes transforms a byte-payload ciphertext at the proxy; the
// cost is independent of the payload size.
func ReEncryptBytes(ct *HybridCiphertext, rk *ReKey) (*HybridReCiphertext, error) {
	return hybrid.ReEncrypt(ct, rk)
}

// DecryptBytesReEncrypted opens a re-encrypted byte-payload ciphertext with
// the delegatee's private key.
func DecryptBytesReEncrypted(sk *PrivateKey, rct *HybridReCiphertext) ([]byte, error) {
	return hybrid.DecryptReEncrypted(sk, rct)
}

// RandomMessage returns a uniformly random GT element (the scheme's native
// message space) for tests, examples and benchmarks.
func RandomMessage(rng io.Reader) (*GT, error) {
	m, _, err := bn254.RandomGT(rng)
	return m, err
}

// GroupOrder returns the prime order r of the bilinear groups.
func GroupOrder() *big.Int { return new(big.Int).Set(bn254.Order) }

// Serialization round-trips (re-exported).

// UnmarshalCiphertext decodes a Ciphertext.
func UnmarshalCiphertext(data []byte) (*Ciphertext, error) { return core.UnmarshalCiphertext(data) }

// UnmarshalReKey decodes a ReKey.
func UnmarshalReKey(data []byte) (*ReKey, error) { return core.UnmarshalReKey(data) }

// UnmarshalReCiphertext decodes a ReCiphertext.
func UnmarshalReCiphertext(data []byte) (*ReCiphertext, error) {
	return core.UnmarshalReCiphertext(data)
}

// UnmarshalParams decodes KGC public parameters.
func UnmarshalParams(data []byte) (*Params, error) { return ibe.UnmarshalParams(data) }

// UnmarshalPrivateKey decodes a private key and binds it to params.
func UnmarshalPrivateKey(data []byte, params *Params) (*PrivateKey, error) {
	return ibe.UnmarshalPrivateKey(data, params)
}
