module typepre

go 1.24
