package typepre_test

import (
	"bytes"
	"errors"
	"testing"

	"typepre"
)

// TestPublicAPIEndToEnd exercises the whole public surface the way the
// README quick start does: two domains, delegation, proxy transformation,
// delegatee decryption, serialization.
func TestPublicAPIEndToEnd(t *testing.T) {
	kgc1, err := typepre.Setup("hospital-kgc", nil)
	if err != nil {
		t.Fatal(err)
	}
	kgc2, err := typepre.Setup("clinic-kgc", nil)
	if err != nil {
		t.Fatal(err)
	}
	alice := typepre.NewDelegator(kgc1.Extract("alice@hospital.example"))
	bobKey := kgc2.Extract("bob@clinic.example")

	// GT-message path.
	m, err := typepre.RandomMessage(nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := alice.Encrypt(m, "emergency", nil)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := alice.Delegate(kgc2.Params(), "bob@clinic.example", "emergency", nil)
	if err != nil {
		t.Fatal(err)
	}
	rct, err := typepre.ReEncrypt(ct, rk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := typepre.DecryptReEncrypted(bobKey, rct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("GT-message flow failed")
	}

	// Byte-payload path.
	body := []byte("blood type O−; allergies: penicillin")
	hct, err := typepre.EncryptBytes(alice, body, "emergency", nil)
	if err != nil {
		t.Fatal(err)
	}
	own, err := typepre.DecryptBytes(alice, hct)
	if err != nil || !bytes.Equal(own, body) {
		t.Fatalf("owner byte decryption failed: %v", err)
	}
	hrct, err := typepre.ReEncryptBytes(hct, rk)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := typepre.DecryptBytesReEncrypted(bobKey, hrct)
	if err != nil || !bytes.Equal(gotBytes, body) {
		t.Fatalf("delegatee byte decryption failed: %v", err)
	}

	// Type mismatch surfaces the sentinel error through the facade.
	ct2, _ := alice.Encrypt(m, "food-statistics", nil)
	if _, err := typepre.ReEncrypt(ct2, rk); !errors.Is(err, typepre.ErrTypeMismatch) {
		t.Fatalf("want ErrTypeMismatch, got %v", err)
	}

	// Serialization through the facade.
	ct3, err := typepre.UnmarshalCiphertext(ct.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	rk2, err := typepre.UnmarshalReKey(rk.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	rct2, err := typepre.ReEncrypt(ct3, rk2)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := typepre.DecryptReEncrypted(bobKey, rct2)
	if err != nil || !got2.Equal(m) {
		t.Fatalf("round-tripped artifacts failed: %v", err)
	}
	if _, err := typepre.UnmarshalReCiphertext(rct.Marshal()); err != nil {
		t.Fatal(err)
	}
	params2, err := typepre.UnmarshalParams(kgc2.Params().Marshal())
	if err != nil || params2.Name != "clinic-kgc" {
		t.Fatalf("params round trip failed: %v", err)
	}
	if _, err := typepre.UnmarshalPrivateKey(bobKey.Marshal(), params2); err != nil {
		t.Fatal(err)
	}

	// Collusion surface.
	tk, err := typepre.RecoverTypeKey(rk, bobKey)
	if err != nil {
		t.Fatal(err)
	}
	if dm, _ := typepre.DecryptWithTypeKey(tk, ct); !dm.Equal(m) {
		t.Fatal("type key failed on its own type")
	}

	if typepre.GroupOrder().Sign() <= 0 {
		t.Fatal("bad group order")
	}
}
