// Command multidomain demonstrates the paper's cross-domain setting: the
// delegator is registered at KGC1 and the delegatee at an unrelated KGC2
// (they share only the curve parameters), and every artifact crosses the
// "wire" in serialized form — exactly what a real deployment between two
// organizations would ship.
package main

import (
	"fmt"
	"log"

	"typepre"
)

// wire simulates an untrusted channel carrying only byte slices.
type wire map[string][]byte

func main() {
	w := wire{}

	// --- Domain 1: the hospital -------------------------------------
	kgc1, err := typepre.Setup("hospital-kgc", nil)
	if err != nil {
		log.Fatal(err)
	}
	alice := typepre.NewDelegator(kgc1.Extract("alice@hospital.example"))

	// --- Domain 2: the insurance company, a different KGC -----------
	kgc2, err := typepre.Setup("insurer-kgc", nil)
	if err != nil {
		log.Fatal(err)
	}
	auditorKey := kgc2.Extract("auditor@insurer.example")
	// The insurer publishes its parameters; the hospital imports them.
	w["insurer-params"] = kgc2.Params().Marshal()

	// --- Hospital side: encrypt and delegate ------------------------
	insurerParams, err := typepre.UnmarshalParams(w["insurer-params"])
	if err != nil {
		log.Fatal(err)
	}
	m, err := typepre.RandomMessage(nil)
	if err != nil {
		log.Fatal(err)
	}
	ct, err := alice.Encrypt(m, "billing", nil)
	if err != nil {
		log.Fatal(err)
	}
	rk, err := alice.Delegate(insurerParams, "auditor@insurer.example", "billing", nil)
	if err != nil {
		log.Fatal(err)
	}
	w["ciphertext"] = ct.Marshal()
	w["rekey"] = rk.Marshal()
	fmt.Printf("hospital shipped ciphertext (%d B) and rekey (%d B)\n",
		len(w["ciphertext"]), len(w["rekey"]))

	// --- Proxy (anywhere): transform serialized artifacts -----------
	proxyCT, err := typepre.UnmarshalCiphertext(w["ciphertext"])
	if err != nil {
		log.Fatal(err)
	}
	proxyRK, err := typepre.UnmarshalReKey(w["rekey"])
	if err != nil {
		log.Fatal(err)
	}
	rct, err := typepre.ReEncrypt(proxyCT, proxyRK)
	if err != nil {
		log.Fatal(err)
	}
	w["reciphertext"] = rct.Marshal()
	fmt.Printf("proxy transformed for %s (reciphertext: %d B)\n",
		proxyRK.DelegateeID, len(w["reciphertext"]))

	// --- Insurer side: decrypt with its own domain key ---------------
	auditorRCT, err := typepre.UnmarshalReCiphertext(w["reciphertext"])
	if err != nil {
		log.Fatal(err)
	}
	got, err := typepre.DecryptReEncrypted(auditorKey, auditorRCT)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auditor decrypted successfully: %v\n", got.Equal(m))

	// Tampered wire data is rejected at decode time, not at decrypt time.
	bad := append([]byte(nil), w["ciphertext"]...)
	bad[0] ^= 0xff
	if _, err := typepre.UnmarshalCiphertext(bad); err != nil {
		fmt.Printf("tampered ciphertext rejected: %v\n", err)
	}
}
