// Command quickstart is the smallest end-to-end use of the typepre public
// API: one delegator, one delegatee, one type, one proxy hop.
package main

import (
	"fmt"
	"log"

	"typepre"
)

func main() {
	// Two trust domains: Alice's hospital and Bob's clinic each run a KGC.
	kgc1, err := typepre.Setup("hospital-kgc", nil)
	if err != nil {
		log.Fatal(err)
	}
	kgc2, err := typepre.Setup("clinic-kgc", nil)
	if err != nil {
		log.Fatal(err)
	}

	// Alice gets ONE key pair for everything she will ever delegate.
	alice := typepre.NewDelegator(kgc1.Extract("alice@hospital.example"))
	bobKey := kgc2.Extract("bob@clinic.example")

	// Alice seals a record under the "emergency" type.
	msg := []byte("blood type O−; allergic to penicillin")
	ct, err := typepre.EncryptBytes(alice, msg, "emergency", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sealed %d-byte record under type %q\n", len(msg), ct.KEM.Type)

	// Alice can always read her own data.
	own, err := typepre.DecryptBytes(alice, ct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("owner reads back: %q\n", own)

	// Alice hands the proxy a re-encryption key scoped to ONE type.
	rk, err := alice.Delegate(kgc2.Params(), "bob@clinic.example", "emergency", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delegated type %q to %s (rekey: %d bytes)\n",
		rk.Type, rk.DelegateeID, len(rk.Marshal()))

	// The proxy transforms the ciphertext without seeing the plaintext.
	rct, err := typepre.ReEncryptBytes(ct, rk)
	if err != nil {
		log.Fatal(err)
	}

	// Bob decrypts with only his own clinic-issued key.
	got, err := typepre.DecryptBytesReEncrypted(bobKey, rct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delegatee reads: %q\n", got)

	// A key for one type cannot touch another type.
	other, err := typepre.EncryptBytes(alice, []byte("lunch: soup"), "food-statistics", nil)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := typepre.ReEncryptBytes(other, rk); err != nil {
		fmt.Printf("cross-type re-encryption correctly refused: %v\n", err)
	}
}
