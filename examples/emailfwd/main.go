// Command emailfwd applies the scheme to the e-mail forwarding use case the
// paper cites from the PRE literature (§1): while Alice is on vacation, her
// mail server re-encrypts incoming mail to her assistant — but because
// messages are typed, only the "work" folder is forwardable. Personal mail
// stays sealed even though it sits on the same server behind the same key.
package main

import (
	"fmt"
	"log"

	"typepre"
)

type email struct {
	subject string
	folder  typepre.Type
	sealed  *typepre.HybridCiphertext
}

func main() {
	corpKGC, err := typepre.Setup("corp-kgc", nil)
	if err != nil {
		log.Fatal(err)
	}
	alice := typepre.NewDelegator(corpKGC.Extract("alice@corp.example"))
	assistantKey := corpKGC.Extract("assistant@corp.example")

	// Alice's mailbox: a mix of work and personal mail, all sealed under
	// her single key pair.
	inbox := []struct {
		subject, body string
		folder        typepre.Type
	}{
		{"Q2 budget review", "the numbers we discussed...", "work"},
		{"standup notes", "yesterday: shipped v1.2...", "work"},
		{"dinner saturday?", "the usual place at 8?", "personal"},
		{"lab results", "cholesterol slightly elevated", "medical"},
	}
	var mailbox []email
	for _, m := range inbox {
		sealed, err := typepre.EncryptBytes(alice, []byte(m.body), m.folder, nil)
		if err != nil {
			log.Fatal(err)
		}
		mailbox = append(mailbox, email{subject: m.subject, folder: m.folder, sealed: sealed})
	}
	fmt.Printf("mailbox: %d sealed messages\n", len(mailbox))

	// Vacation: the mail server gets a rekey for the "work" folder only.
	// Note both parties are in the SAME domain here — the scheme supports
	// that too (KGC1 = KGC2).
	rkWork, err := alice.Delegate(corpKGC.Params(), "assistant@corp.example", "work", nil)
	if err != nil {
		log.Fatal(err)
	}

	// The server (proxy) walks the mailbox and forwards what it can.
	forwarded, refused := 0, 0
	for _, m := range mailbox {
		rct, err := typepre.ReEncryptBytes(m.sealed, rkWork)
		if err != nil {
			refused++
			fmt.Printf("  [%s] %q NOT forwarded (%v)\n", m.folder, m.subject, err)
			continue
		}
		body, err := typepre.DecryptBytesReEncrypted(assistantKey, rct)
		if err != nil {
			log.Fatal(err)
		}
		forwarded++
		fmt.Printf("  [%s] %q forwarded; assistant reads %d bytes\n", m.folder, m.subject, len(body))
	}
	fmt.Printf("forwarded %d, refused %d — the server never saw a plaintext\n", forwarded, refused)

	// After vacation Alice simply stops the server from using the rekey;
	// nothing about her own key pair changes, and the personal and medical
	// folders were never convertible in the first place.
}
