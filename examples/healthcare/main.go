// Command healthcare replays the paper's Section 5 scenario end to end:
// Alice categorizes her Personal Health Record into three privacy levels
// (t1 illness history, t2 food statistics, t3 emergency data), stores
// everything encrypted, installs per-category re-encryption keys at
// per-category proxies, and later — traveling in the US — stands up a
// local emergency proxy so an ER doctor can read exactly her emergency
// records and nothing else. Finally it demonstrates the blast radius of a
// proxy compromise, the property that motivates the whole construction.
package main

import (
	"fmt"
	"log"

	"typepre/internal/phr"

	"typepre"
)

func main() {
	kgc1, err := typepre.Setup("nl-health-kgc", nil)
	if err != nil {
		log.Fatal(err)
	}
	kgc2, err := typepre.Setup("clinician-kgc", nil)
	if err != nil {
		log.Fatal(err)
	}

	svc := phr.NewService(phr.StandardCategories())
	alice := phr.NewPatient(kgc1, "alice@phr.example")

	// 1. Alice categorizes and stores her PHR (paper §5 step 1).
	records := []struct {
		cat  phr.Category
		body string
	}{
		{phr.CategoryIllnessHistory, "2006: appendectomy; 2008: bronchitis"},
		{phr.CategoryIllnessHistory, "family history: type-2 diabetes (father)"},
		{phr.CategoryFoodStatistics, "week 23: 2100 kcal/day average"},
		{phr.CategoryEmergency, "blood type O−; allergies: penicillin"},
		{phr.CategoryEmergency, "emergency contact: +31-6-0000-0000"},
	}
	for _, r := range records {
		if _, err := alice.AddRecord(svc.Store, r.cat, []byte(r.body), nil); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("Alice stored %d encrypted records across %d categories\n",
		svc.Store.Count(), len(svc.Store.Categories(alice.ID())))

	// 2. Her GP gets the illness history; her dietician the food stats
	//    (paper §5 step 2: one proxy and one rekey per category).
	gpKey := kgc2.Extract("gp@practice.example")
	dieticianKey := kgc2.Extract("dietician@wellness.example")
	if err := svc.Grant(alice, kgc2.Params(), "gp@practice.example", phr.CategoryIllnessHistory); err != nil {
		log.Fatal(err)
	}
	if err := svc.Grant(alice, kgc2.Params(), "dietician@wellness.example", phr.CategoryFoodStatistics); err != nil {
		log.Fatal(err)
	}

	bodies, err := svc.ReadCategory(alice.ID(), phr.CategoryIllnessHistory, gpKey)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GP reads %d illness-history records; first: %q\n", len(bodies), bodies[0])

	// The dietician cannot touch illness history.
	if _, err := svc.ReadCategory(alice.ID(), phr.CategoryIllnessHistory, dieticianKey); err != nil {
		fmt.Printf("dietician blocked from illness history: %v\n", err)
	}

	// 3. Alice travels to the US and deploys a local emergency proxy.
	usProxy := phr.NewProxy("proxy-us-east")
	svc.DeployProxy(phr.CategoryEmergency, usProxy)
	erKey := kgc2.Extract("er-doc@us-hospital.example")
	if err := svc.Grant(alice, kgc2.Params(), "er-doc@us-hospital.example", phr.CategoryEmergency); err != nil {
		log.Fatal(err)
	}
	emergencies, err := svc.ReadCategory(alice.ID(), phr.CategoryEmergency, erKey)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("US ER doctor reads %d emergency records on demand\n", len(emergencies))

	// 4. Blast radius: even if the US proxy is corrupted and colludes with
	//    the ER doctor, only emergency records are exposed.
	typeRep := phr.SimulateTypePREBreach(svc.Store, []*phr.Proxy{usProxy})
	tradRep := phr.SimulateTraditionalPREBreach(svc.Store, []*phr.Proxy{usProxy})
	fmt.Printf("US proxy corrupted: type-PRE exposes %d/%d records (%.0f%%), "+
		"traditional PRE would expose %d/%d (%.0f%%)\n",
		typeRep.ExposedRecords, typeRep.TotalRecords, 100*typeRep.Fraction(),
		tradRep.ExposedRecords, tradRep.TotalRecords, 100*tradRep.Fraction())

	// 5. Every disclosure above left an audit trail.
	for cat, proxy := range svc.Proxies() {
		if proxy.Audit().Len() > 0 {
			fmt.Printf("audit[%s @ %s]: %d entries, %d denials\n",
				cat, proxy.Name(), proxy.Audit().Len(), len(proxy.Audit().Denials()))
		}
	}
}
