package typepre_test

import (
	"fmt"
	"log"

	"typepre"
)

// Example walks the full delegation lifecycle: two KGC domains, typed
// encryption, a per-type proxy key, the proxy transformation, and the
// delegatee's decryption with only their own key.
func Example() {
	kgc1, err := typepre.Setup("hospital-kgc", nil)
	if err != nil {
		log.Fatal(err)
	}
	kgc2, err := typepre.Setup("clinic-kgc", nil)
	if err != nil {
		log.Fatal(err)
	}

	alice := typepre.NewDelegator(kgc1.Extract("alice@hospital.example"))
	bobKey := kgc2.Extract("bob@clinic.example")

	msg := []byte("blood type O−")
	ct, err := typepre.EncryptBytes(alice, msg, "emergency", nil)
	if err != nil {
		log.Fatal(err)
	}
	rk, err := alice.Delegate(kgc2.Params(), "bob@clinic.example", "emergency", nil)
	if err != nil {
		log.Fatal(err)
	}
	rct, err := typepre.ReEncryptBytes(ct, rk)
	if err != nil {
		log.Fatal(err)
	}
	got, err := typepre.DecryptBytesReEncrypted(bobKey, rct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(got))
	// Output: blood type O−
}

// ExampleReEncrypt shows that a proxy key is scoped to its type: the same
// key cannot transform ciphertexts of another category.
func ExampleReEncrypt() {
	kgc, err := typepre.Setup("kgc", nil)
	if err != nil {
		log.Fatal(err)
	}
	alice := typepre.NewDelegator(kgc.Extract("alice@example.com"))

	m, err := typepre.RandomMessage(nil)
	if err != nil {
		log.Fatal(err)
	}
	ctWork, _ := alice.Encrypt(m, "work", nil)
	ctPersonal, _ := alice.Encrypt(m, "personal", nil)
	rkWork, _ := alice.Delegate(kgc.Params(), "assistant@example.com", "work", nil)

	_, errWork := typepre.ReEncrypt(ctWork, rkWork)
	_, errPersonal := typepre.ReEncrypt(ctPersonal, rkWork)
	fmt.Println(errWork == nil, errPersonal == nil)
	// Output: true false
}

// ExampleRecoverTypeKey demonstrates the §4.3 collusion bound: the proxy
// and the delegatee together recover exactly the per-type key — it opens
// the delegated type and nothing else.
func ExampleRecoverTypeKey() {
	kgc1, _ := typepre.Setup("kgc1", nil)
	kgc2, _ := typepre.Setup("kgc2", nil)
	alice := typepre.NewDelegator(kgc1.Extract("alice@example.com"))
	bobKey := kgc2.Extract("bob@example.com")

	rk, _ := alice.Delegate(kgc2.Params(), "bob@example.com", "emergency", nil)
	tk, _ := typepre.RecoverTypeKey(rk, bobKey)

	m, _ := typepre.RandomMessage(nil)
	ctEmergency, _ := alice.Encrypt(m, "emergency", nil)
	ctIllness, _ := alice.Encrypt(m, "illness-history", nil)

	got1, _ := typepre.DecryptWithTypeKey(tk, ctEmergency)
	got2, _ := typepre.DecryptWithTypeKey(tk, ctIllness)
	fmt.Println(got1.Equal(m), got2.Equal(m))
	// Output: true false
}
