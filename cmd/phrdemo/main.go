// Command phrdemo runs the Section 5 PHR disclosure scenario at workload
// scale: a synthetic patient population, per-category proxies, grants, a
// request mix, and a final compromise drill — printing service statistics
// a deployment operator would care about.
//
// With -drills it instead runs the lifecycle drill suite (revocation, key
// rotation, break-glass, federation churn; see docs/scenarios.md) and
// exits non-zero if any invariant is violated.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"typepre/internal/phr"
	"typepre/internal/phr/scenario"
)

var (
	patients = flag.Int("patients", 5, "number of patients")
	records  = flag.Int("records", 6, "records per patient")
	grants   = flag.Int("grants", 3, "grants per patient")
	body     = flag.Int("body", 512, "record body size in bytes")
	drills   = flag.Bool("drills", false, "run the lifecycle drill suite instead of the workload demo")
	seed     = flag.Int64("seed", 1, "workload seed for the drill suite")
)

// runDrills executes every shipped lifecycle drill and reports per-step
// results; any violated invariant fails the run loudly.
func runDrills() {
	start := time.Now()
	reports, err := scenario.RunAll(*seed)
	for _, r := range reports {
		fmt.Print(r)
	}
	if err != nil {
		log.Fatal(err)
	}
	failed := 0
	for _, r := range reports {
		if !r.Passed() {
			failed++
		}
	}
	fmt.Printf("drill suite: %d/%d passed (seed %d, %.1fs)\n",
		len(reports)-failed, len(reports), *seed, time.Since(start).Seconds())
	if failed > 0 {
		os.Exit(1)
	}
}

func main() {
	flag.Parse()

	if *drills {
		runDrills()
		return
	}

	cfg := phr.DefaultWorkload()
	cfg.Patients = *patients
	cfg.RecordsPerPatient = *records
	cfg.GrantsPerPatient = *grants
	cfg.BodySize = *body
	cfg.Categories = phr.StandardCategories()
	cfg.Requesters = 4

	start := time.Now()
	w, err := phr.GenerateWorkload(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: %d patients, %d records, %d grants, %d category proxies (%.1fs setup)\n",
		len(w.Patients), w.Service.Store.Count(), len(w.Grants),
		len(w.Service.Proxies()), time.Since(start).Seconds())

	// Serve every grant once: each granted requester bulk-reads their
	// category.
	served, bytesOut := 0, 0
	reqStart := time.Now()
	for _, g := range w.Grants {
		bodies, err := w.Service.ReadCategory(g.PatientID, g.Category, w.Requesters[g.RequesterID])
		if err != nil {
			log.Fatalf("grant %+v unreadable: %v", g, err)
		}
		for _, b := range bodies {
			served++
			bytesOut += len(b)
		}
	}
	elapsed := time.Since(reqStart)
	fmt.Printf("served %d record disclosures (%d KiB) in %.2fs — %.1f disclosures/s\n",
		served, bytesOut>>10, elapsed.Seconds(), float64(served)/elapsed.Seconds())

	// Audit totals across proxies.
	totalAudit, denials := 0, 0
	for _, p := range w.Service.Proxies() {
		totalAudit += p.Audit().Len()
		denials += len(p.Audit().Denials())
	}
	fmt.Printf("audit: %d entries, %d denials\n", totalAudit, denials)

	// Compromise drill: lose the emergency proxy.
	proxy, err := w.Service.ProxyFor(phr.CategoryEmergency)
	if err != nil {
		log.Fatal(err)
	}
	typeRep := phr.SimulateTypePREBreach(w.Service.Store, []*phr.Proxy{proxy})
	tradRep := phr.SimulateTraditionalPREBreach(w.Service.Store, []*phr.Proxy{proxy})
	fmt.Printf("compromise drill (emergency proxy): type-PRE exposes %.1f%%, traditional would expose %.1f%%\n",
		100*typeRep.Fraction(), 100*tradRep.Fraction())
	expOK, isoOK := phr.VerifyTypePREBreach(w, []*phr.Proxy{proxy})
	fmt.Printf("cryptographic verification of the drill: exposed-decryptable=%v isolated-unopenable=%v\n",
		expOK, isoOK)
}
