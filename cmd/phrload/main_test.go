package main

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"typepre/internal/phr"
)

// smokeConfig is a bounded selftest: small corpus, short measured window,
// enough concurrency to exercise the worker paths.
func smokeConfig() loadConfig {
	cfg := defaultConfig()
	cfg.Selftest = true
	cfg.Duration = 1500 * time.Millisecond
	cfg.Concurrency = 4
	cfg.Patients = 2
	cfg.Records = 4
	cfg.Requesters = 2
	cfg.Grants = 2
	return cfg
}

// TestSelftestSmoke is the satellite acceptance check: phrload -selftest
// completes in bounded time, records non-zero RPS on the core endpoints,
// and emits JSON that its own -check gate accepts.
func TestSelftestSmoke(t *testing.T) {
	bf, err := runBench(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(bf.Runs) != 1 {
		t.Fatalf("selftest produced %d runs, want 1", len(bf.Runs))
	}
	run := bf.Runs[0]
	if run.TotalOps == 0 {
		t.Fatal("selftest recorded zero operations")
	}
	for _, name := range []string{phr.EndpointPut, phr.EndpointDisclose, phr.EndpointStream} {
		ep := run.endpoint(name)
		if ep == nil {
			t.Fatalf("no stats for endpoint %q", name)
		}
		if ep.Ops == 0 || ep.RPS <= 0 {
			t.Fatalf("endpoint %q: ops=%d rps=%f, want non-zero", name, ep.Ops, ep.RPS)
		}
		if ep.Errors != 0 {
			t.Errorf("endpoint %q: %d errors (first: %s)", name, ep.Errors, run.FirstErrors[name])
		}
	}
	if run.Server == nil {
		t.Fatal("selftest run carried no server-side metrics")
	}
	if run.Server.InFlightHigh < 1 {
		t.Errorf("server in-flight high-water = %d, want >= 1", run.Server.InFlightHigh)
	}

	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := checkBench(data); err != nil {
		t.Fatalf("selftest output fails its own check: %v", err)
	}
}

func TestCheckRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"not json", "{", "malformed JSON"},
		{"wrong schema", `{"schema":"phrload/0","runs":[{"label":"x"}]}`, "schema"},
		{"no runs", `{"schema":"phrload/1","runs":[]}`, "no runs"},
		{"missing endpoint", `{"schema":"phrload/1","runs":[{"label":"x","endpoints":[
			{"endpoint":"put","ops":1,"rps":1},
			{"endpoint":"disclose","ops":1,"rps":1}]}]}`, `no "disclose-category-stream"`},
		{"zero throughput", `{"schema":"phrload/1","runs":[{"label":"x","endpoints":[
			{"endpoint":"put","ops":0,"rps":0},
			{"endpoint":"disclose","ops":1,"rps":1},
			{"endpoint":"disclose-category-stream","ops":1,"rps":1}]}]}`, "no throughput"},
		{"non-monotone quantiles", `{"schema":"phrload/1","runs":[{"label":"x","endpoints":[
			{"endpoint":"put","ops":1,"rps":1,"p50_us":9,"p95_us":5,"p99_us":5,"max_us":5},
			{"endpoint":"disclose","ops":1,"rps":1},
			{"endpoint":"disclose-category-stream","ops":1,"rps":1}]}]}`, "non-monotone"},
		{"dangling hotpath", `{"schema":"phrload/1","runs":[{"label":"x","endpoints":[
			{"endpoint":"put","ops":1,"rps":1},
			{"endpoint":"disclose","ops":1,"rps":1},
			{"endpoint":"disclose-category-stream","ops":1,"rps":1}]}],
			"hotpath":{"before_label":"legacy","after_label":"x","before_us":1,"after_us":1}}`, "do not resolve"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkBench([]byte(tc.body))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("checkBench = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseMix(t *testing.T) {
	m, err := parseMix("put=2, disclose=6,audit=0,stream=1")
	if err != nil {
		t.Fatal(err)
	}
	if m.total != 9 || len(m.ops) != 3 {
		t.Fatalf("mix = %+v, want total 9 over 3 ops (zero weights dropped)", m)
	}
	for _, bad := range []string{"", "put", "put=-1", "teleport=3", "put=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}
