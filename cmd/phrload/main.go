// Command phrload is the service-level load harness for the PHR disclosure
// service: it drives a phrserver (live over -addr, or an in-process
// httptest instance with -selftest) with a mixed operation profile drawn
// from a phr.GenerateWorkload corpus, and reports sustained RPS and
// latency quantiles per endpoint from internal/loadstat.
//
// The harness writes BENCH_phrload.json (schema "phrload/1"): git
// revision, the full load configuration, and per-endpoint metrics for each
// run, so successive PRs can compare service-level numbers file-to-file.
// With -compare it performs an A/B measurement in one invocation — the
// same corpus and mix against the pre-optimization server configuration
// (phr.ServerConfig{LegacyAuditJSON, NoFramePool}) and then the current
// one — and records the hot-path before/after in the JSON.
//
// See docs/loadtest.md for flags, the JSON schema, and the repeatable
// command that produced the committed BENCH_phrload.json.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"typepre/internal/core"
	"typepre/internal/hybrid"
	"typepre/internal/loadstat"
	"typepre/internal/phr"
	"typepre/internal/phr/diskstore"
)

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

// loadConfig gathers every knob; the smoke test builds one directly.
type loadConfig struct {
	Addr     string // base URL of a running phrserver; empty with Selftest
	Selftest bool   // run against an in-process httptest server
	Compare  bool   // A/B: legacy server config, then optimized (implies selftest)

	// Store selects the backend of in-process servers: "mem", "disk" (a
	// throwaway diskstore directory, fsync=interval), or "both" (one run
	// per backend; -selftest only). Remote servers pick their own store.
	Store string

	// Spotcheck verifies a restarted -addr server instead of load-testing
	// it: the deterministic corpus is regenerated, grants are re-installed,
	// and every disclosable record is disclosed and decrypted against the
	// known plaintext. MinRecords additionally gates on the server's
	// store_records metric.
	Spotcheck  bool
	MinRecords int

	Duration    time.Duration
	Concurrency int

	Patients   int
	Records    int // records per patient
	Requesters int
	Grants     int // grants per patient
	Body       int // record body bytes
	Seed       int64

	Mix string // e.g. "put=2,disclose=6,stream=3,grant=1,revoke=1,audit=2"

	Out string
	Rev string
}

func defaultConfig() loadConfig {
	return loadConfig{
		Duration:    10 * time.Second,
		Concurrency: 8,
		Patients:    6,
		Records:     8,
		Requesters:  4,
		Grants:      3,
		Body:        256,
		Seed:        1,
		Mix:         "put=2,disclose=6,stream=3,grant=1,revoke=1,audit=2",
		Store:       "mem",
		Out:         "BENCH_phrload.json",
	}
}

// Operation names accepted in -mix, mapped to the endpoint labels the
// server itself uses, so client-side and server-side metrics line up.
var opEndpoints = map[string]string{
	"put":      phr.EndpointPut,
	"disclose": phr.EndpointDisclose,
	"stream":   phr.EndpointStream,
	"grant":    phr.EndpointGrant,
	"revoke":   phr.EndpointRevoke,
	"audit":    phr.EndpointAudit,
}

// opMix is a weighted operation profile: ops[i] is chosen with
// probability weights[i]/total.
type opMix struct {
	ops     []string
	weights []int
	total   int
}

func parseMix(s string) (*opMix, error) {
	m := &opMix{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("phrload: -mix entry %q is not name=weight", part)
		}
		if _, known := opEndpoints[name]; !known {
			return nil, fmt.Errorf("phrload: unknown op %q in -mix (have put, disclose, stream, grant, revoke, audit)", name)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("phrload: bad weight in -mix entry %q", part)
		}
		if w == 0 {
			continue
		}
		m.ops = append(m.ops, name)
		m.weights = append(m.weights, w)
		m.total += w
	}
	if m.total == 0 {
		return nil, fmt.Errorf("phrload: -mix %q selects no operations", s)
	}
	return m, nil
}

func (m *opMix) pick(rng *rand.Rand) string {
	n := rng.Intn(m.total)
	for i, w := range m.weights {
		if n < w {
			return m.ops[i]
		}
		n -= w
	}
	return m.ops[len(m.ops)-1]
}

// ---------------------------------------------------------------------------
// BENCH_phrload.json schema ("phrload/1")
// ---------------------------------------------------------------------------

const benchSchema = "phrload/1"

type benchFile struct {
	Schema    string      `json:"schema"`
	Rev       string      `json:"rev"`
	Generated string      `json:"generated"`
	Config    benchConfig `json:"config"`
	Runs      []runResult `json:"runs"`
	Hotpath   *hotpath    `json:"hotpath,omitempty"`
}

type benchConfig struct {
	Mode              string  `json:"mode"` // "selftest", "compare", or "remote"
	DurationS         float64 `json:"duration_s"`
	Concurrency       int     `json:"concurrency"`
	Patients          int     `json:"patients"`
	RecordsPerPatient int     `json:"records_per_patient"`
	Requesters        int     `json:"requesters"`
	GrantsPerPatient  int     `json:"grants_per_patient"`
	BodyBytes         int     `json:"body_bytes"`
	Seed              int64   `json:"seed"`
	Mix               string  `json:"mix"`
	Store             string  `json:"store,omitempty"`
}

type runResult struct {
	Label       string                   `json:"label"`
	ElapsedS    float64                  `json:"elapsed_s"`
	TotalOps    uint64                   `json:"total_ops"`
	Endpoints   []loadstat.EndpointStats `json:"endpoints"`
	Server      *phr.ServerMetrics       `json:"server,omitempty"`
	FirstErrors map[string]string        `json:"first_errors,omitempty"`
}

func (r *runResult) endpoint(name string) *loadstat.EndpointStats {
	for i := range r.Endpoints {
		if r.Endpoints[i].Endpoint == name {
			return &r.Endpoints[i]
		}
	}
	return nil
}

// hotpath records one before/after measurement of a server-side
// optimization, reproduced by -compare.
type hotpath struct {
	Name         string  `json:"name"`
	Detail       string  `json:"detail"`
	Metric       string  `json:"metric"`
	BeforeLabel  string  `json:"before_label"`
	AfterLabel   string  `json:"after_label"`
	BeforeUs     float64 `json:"before_us"`
	AfterUs      float64 `json:"after_us"`
	ImprovementX float64 `json:"improvement_x"`
}

// checkBench validates a BENCH_phrload.json byte-for-byte as CI's -check
// gate does: schema tag, at least one run, the core endpoints exercised
// with non-zero throughput, monotone quantiles, and a resolvable hotpath
// entry when present.
func checkBench(data []byte) error {
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return fmt.Errorf("phrload: malformed JSON: %w", err)
	}
	if bf.Schema != benchSchema {
		return fmt.Errorf("phrload: schema %q, want %q", bf.Schema, benchSchema)
	}
	if len(bf.Runs) == 0 {
		return fmt.Errorf("phrload: no runs recorded")
	}
	required := []string{phr.EndpointPut, phr.EndpointDisclose, phr.EndpointStream}
	for _, run := range bf.Runs {
		for _, name := range required {
			ep := run.endpoint(name)
			if ep == nil {
				return fmt.Errorf("phrload: run %q has no %q endpoint", run.Label, name)
			}
			if ep.Ops == 0 || ep.RPS <= 0 {
				return fmt.Errorf("phrload: run %q endpoint %q recorded no throughput", run.Label, name)
			}
		}
		for _, ep := range run.Endpoints {
			if ep.P50Us > ep.P95Us || ep.P95Us > ep.P99Us || ep.P99Us > ep.MaxUs {
				return fmt.Errorf("phrload: run %q endpoint %q has non-monotone quantiles", run.Label, ep.Endpoint)
			}
		}
	}
	if hp := bf.Hotpath; hp != nil {
		var before, after *runResult
		for i := range bf.Runs {
			switch bf.Runs[i].Label {
			case hp.BeforeLabel:
				before = &bf.Runs[i]
			case hp.AfterLabel:
				after = &bf.Runs[i]
			}
		}
		if before == nil || after == nil {
			return fmt.Errorf("phrload: hotpath labels %q/%q do not resolve to runs", hp.BeforeLabel, hp.AfterLabel)
		}
		if hp.BeforeUs <= 0 || hp.AfterUs <= 0 {
			return fmt.Errorf("phrload: hotpath entry has non-positive latencies")
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Load generation
// ---------------------------------------------------------------------------

// pass is one measured load run against one server instance.
type pass struct {
	cfg    loadConfig
	mix    *opMix
	label  string
	client *phr.Client

	w *phr.Workload
	// disclosable (record, requester) pairs: records whose (patient,
	// category) carries an installed grant toward the requester.
	pairs []disclosePair
	// streamable (patient, category, requester) triples — the workload's
	// grants verbatim.
	streams []phr.Grant
	// churn rekeys, one per worker, toward requesters no disclose pair
	// uses, so install/revoke traffic never 403s the read ops.
	churn []*churnGrant

	collector *loadstat.Collector
	nonce     string

	errMu  sync.Mutex
	errors map[string]string
}

type disclosePair struct{ recordID, requester string }

type churnGrant struct {
	patient   string
	category  phr.Category
	requester string
	rekey     *core.ReKey
	installed bool
}

func newPass(cfg loadConfig, mix *opMix, label, base string, w *phr.Workload) (*pass, error) {
	p := &pass{
		cfg:   cfg,
		mix:   mix,
		label: label,
		client: &phr.Client{Base: base, HTTP: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        2 * cfg.Concurrency,
			MaxIdleConnsPerHost: 2 * cfg.Concurrency,
		}}},
		w:         w,
		streams:   w.Grants,
		collector: loadstat.NewCollector(),
		nonce:     fmt.Sprintf("%x", time.Now().UnixNano()),
		errors:    map[string]string{},
	}

	granted := map[phr.Grant]bool{}
	byPC := map[string][]string{}
	for _, g := range w.Grants {
		granted[g] = true
		k := g.PatientID + "\x00" + string(g.Category)
		byPC[k] = append(byPC[k], g.RequesterID)
	}
	for _, rec := range w.Records {
		for _, req := range byPC[rec.PatientID+"\x00"+string(rec.Category)] {
			p.pairs = append(p.pairs, disclosePair{rec.ID, req})
		}
	}
	if len(p.pairs) == 0 || len(p.streams) == 0 {
		return nil, fmt.Errorf("phrload: workload produced no disclosable records; raise -grants or -records")
	}

	for i := 0; i < cfg.Concurrency; i++ {
		pat := w.Patients[i%len(w.Patients)]
		c := w.Config.Categories[i%len(w.Config.Categories)]
		req := fmt.Sprintf("churn-%03d@clinic.example", i)
		rk, err := pat.Delegator().Delegate(w.KGC2.Params(), req,
			core.VersionedType(core.Type(c), pat.Epoch(c)), nil)
		if err != nil {
			return nil, fmt.Errorf("phrload: minting churn rekey: %w", err)
		}
		p.churn = append(p.churn, &churnGrant{
			patient: pat.ID(), category: c, requester: req, rekey: rk,
		})
	}
	return p, nil
}

// upload pushes the generated corpus into a remote server through the
// public API: every sealed record, and a freshly minted rekey per grant
// (the workload installed its grants into the local in-process proxies,
// which a remote server never sees).
func (p *pass) upload() error {
	for _, rec := range p.w.Records {
		if err := p.client.PutRecord(rec); err != nil {
			return fmt.Errorf("phrload: uploading %s: %w", rec.ID, err)
		}
	}
	patients := map[string]*phr.Patient{}
	for _, pat := range p.w.Patients {
		patients[pat.ID()] = pat
	}
	for _, g := range p.w.Grants {
		pat := patients[g.PatientID]
		rk, err := pat.Delegator().Delegate(p.w.KGC2.Params(), g.RequesterID,
			core.VersionedType(core.Type(g.Category), pat.Epoch(g.Category)), nil)
		if err != nil {
			return err
		}
		if err := p.client.InstallGrant(rk); err != nil {
			return fmt.Errorf("phrload: installing grant %v: %w", g, err)
		}
	}
	return nil
}

func (p *pass) noteError(endpoint string, err error) {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	if _, seen := p.errors[endpoint]; !seen {
		p.errors[endpoint] = err.Error()
	}
}

// worker runs the op loop until the deadline. Worker index selects the
// churn grant; the per-worker rng keeps op choice contention-free.
func (p *pass) worker(wi int, deadline time.Time) {
	rng := rand.New(rand.NewSource(p.cfg.Seed*1009 + int64(wi)))
	cg := p.churn[wi]
	var seq int
	for time.Now().Before(deadline) {
		op := p.mix.pick(rng)
		// A revoke with nothing installed would be a guaranteed 404;
		// reclassify it as the install that must precede it. Equal mix
		// weights make the pair alternate naturally.
		if op == "revoke" && !cg.installed {
			op = "grant"
		}
		endpoint := opEndpoints[op]
		begin := time.Now()
		err := p.doOp(op, wi, &seq, rng, cg)
		p.collector.Endpoint(endpoint).Record(time.Since(begin), err != nil)
		if err != nil {
			p.noteError(endpoint, err)
		}
	}
}

func (p *pass) doOp(op string, wi int, seq *int, rng *rand.Rand, cg *churnGrant) error {
	switch op {
	case "put":
		// Reuse one pre-sealed container under fresh IDs: puts measure the
		// server's ingest path, not client-side pairing cost, and the
		// disclose/stream working set stays stationary.
		template := p.w.Records[wi%len(p.w.Records)]
		*seq++
		return p.client.PutRecord(&phr.EncryptedRecord{
			ID:        fmt.Sprintf("load/%s/w%02d-%06d", p.nonce, wi, *seq),
			PatientID: "loadgen@phr.example",
			Category:  template.Category,
			Sealed:    template.Sealed,
		})
	case "disclose":
		pair := p.pairs[rng.Intn(len(p.pairs))]
		_, err := p.client.Disclose(pair.recordID, pair.requester)
		return err
	case "stream":
		g := p.streams[rng.Intn(len(p.streams))]
		return p.client.DiscloseCategoryStream(g.PatientID, g.Category, g.RequesterID,
			func(*hybrid.ReCiphertext) error { return nil })
	case "grant":
		if err := p.client.InstallGrant(cg.rekey); err != nil {
			return err
		}
		cg.installed = true
		return nil
	case "revoke":
		if err := p.client.RevokeGrant(cg.patient, cg.category, cg.requester); err != nil {
			return err
		}
		cg.installed = false
		return nil
	case "audit":
		// Raw GET with a discarded body: the op measures the server's
		// encode path, not client-side json.Unmarshal of an ever-growing
		// log.
		c := p.w.Config.Categories[rng.Intn(len(p.w.Config.Categories))]
		resp, err := p.client.HTTP.Get(p.client.Base + "/v1/audit?category=" + url.QueryEscape(string(c)))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("audit: %s", resp.Status)
		}
		return nil
	default:
		return fmt.Errorf("phrload: unknown op %q", op)
	}
}

func (p *pass) run() (*runResult, error) {
	start := time.Now()
	deadline := start.Add(p.cfg.Duration)
	var wg sync.WaitGroup
	for wi := 0; wi < p.cfg.Concurrency; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			p.worker(wi, deadline)
		}(wi)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &runResult{
		Label:     p.label,
		ElapsedS:  elapsed.Seconds(),
		TotalOps:  p.collector.TotalOps(),
		Endpoints: p.collector.Snapshot(elapsed),
	}
	if sm, err := p.client.Metrics(); err == nil {
		res.Server = sm
	}
	p.errMu.Lock()
	if len(p.errors) > 0 {
		res.FirstErrors = p.errors
	}
	p.errMu.Unlock()
	return res, nil
}

// ---------------------------------------------------------------------------
// Orchestration
// ---------------------------------------------------------------------------

func workloadConfig(cfg loadConfig) phr.WorkloadConfig {
	wc := phr.DefaultWorkload()
	wc.Seed = cfg.Seed
	wc.Patients = cfg.Patients
	wc.Requesters = cfg.Requesters
	wc.RecordsPerPatient = cfg.Records
	wc.GrantsPerPatient = cfg.Grants
	wc.BodySize = cfg.Body
	// Deterministic corpus: the same seed regenerates byte-identical
	// records and grants, so legacy and optimized passes (and future PRs)
	// measure the same bytes.
	wc.InsecureDeterministic = true
	return wc
}

// openLoadBackend builds the storage layer for an in-process pass. Disk
// passes get a throwaway directory and interval fsync: the run measures
// the log's steady-state write/read path, not per-request fsync latency
// (which -fsync=always on a real server adds; see docs/storage.md).
func openLoadBackend(store string) (phr.Backend, func(), error) {
	switch store {
	case "", "mem":
		return phr.NewStore(), func() {}, nil
	case "disk":
		dir, err := os.MkdirTemp("", "phrload-disk-*")
		if err != nil {
			return nil, nil, err
		}
		s, err := diskstore.Open(dir, diskstore.Options{Fsync: diskstore.FsyncInterval})
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		return s, func() { s.Close(); os.RemoveAll(dir) }, nil
	default:
		return nil, nil, fmt.Errorf("phrload: unknown -store %q (want mem, disk, or both)", store)
	}
}

// runPass materializes a fresh corpus, stands up (or attaches to) a
// server, and drives one measured run against it.
func runPass(cfg loadConfig, mix *opMix, label, store string, serverCfg phr.ServerConfig) (*runResult, error) {
	wc := workloadConfig(cfg)
	var base string
	if cfg.Addr == "" {
		backend, cleanup, err := openLoadBackend(store)
		if err != nil {
			return nil, err
		}
		defer cleanup()
		wc.Backend = backend
	}
	w, err := phr.GenerateWorkload(wc)
	if err != nil {
		return nil, err
	}
	if cfg.Addr != "" {
		base = strings.TrimRight(cfg.Addr, "/")
	} else {
		ts := httptest.NewServer(phr.NewServerWith(w.Service, serverCfg))
		defer ts.Close()
		base = ts.URL
	}
	p, err := newPass(cfg, mix, label, base, w)
	if err != nil {
		return nil, err
	}
	if cfg.Addr != "" {
		if err := p.upload(); err != nil {
			return nil, err
		}
	}
	return p.run()
}

// runBench executes the configured measurement and assembles the BENCH
// file.
func runBench(cfg loadConfig) (*benchFile, error) {
	mix, err := parseMix(cfg.Mix)
	if err != nil {
		return nil, err
	}
	mode := "selftest"
	switch {
	case cfg.Compare:
		mode = "compare"
	case cfg.Addr != "":
		mode = "remote"
	case !cfg.Selftest:
		return nil, fmt.Errorf("phrload: need -addr, -selftest, or -compare")
	}
	if cfg.Store == "both" && mode != "selftest" {
		return nil, fmt.Errorf("phrload: -store=both needs -selftest (got mode %s)", mode)
	}
	if cfg.Addr != "" && cfg.Store != "mem" {
		return nil, fmt.Errorf("phrload: -store selects in-process backends; a remote server chooses its own")
	}

	bf := &benchFile{
		Schema:    benchSchema,
		Rev:       resolveRev(cfg.Rev),
		Generated: time.Now().UTC().Format(time.RFC3339),
		Config: benchConfig{
			Mode:              mode,
			DurationS:         cfg.Duration.Seconds(),
			Concurrency:       cfg.Concurrency,
			Patients:          cfg.Patients,
			RecordsPerPatient: cfg.Records,
			Requesters:        cfg.Requesters,
			GrantsPerPatient:  cfg.Grants,
			BodyBytes:         cfg.Body,
			Seed:              cfg.Seed,
			Mix:               cfg.Mix,
			Store:             cfg.Store,
		},
	}

	if cfg.Compare {
		legacy, err := runPass(cfg, mix, "legacy", cfg.Store, phr.ServerConfig{LegacyAuditJSON: true, NoFramePool: true})
		if err != nil {
			return nil, err
		}
		optimized, err := runPass(cfg, mix, "optimized", cfg.Store, phr.ServerConfig{})
		if err != nil {
			return nil, err
		}
		bf.Runs = []runResult{*legacy, *optimized}
		if b, a := legacy.endpoint(phr.EndpointAudit), optimized.endpoint(phr.EndpointAudit); b != nil && a != nil && a.MeanUs > 0 {
			bf.Hotpath = &hotpath{
				Name: "audit-encode-cache",
				Detail: "GET /v1/audit re-marshaled the entire unbounded log per request; " +
					"the audit log now keeps an incremental JSON encode cache (append-only " +
					"entries only ever extend it) served zero-copy, and disclosure frames " +
					"are marshaled into pooled buffers written in one call.",
				Metric:       "audit mean_us",
				BeforeLabel:  "legacy",
				AfterLabel:   "optimized",
				BeforeUs:     b.MeanUs,
				AfterUs:      a.MeanUs,
				ImprovementX: b.MeanUs / a.MeanUs,
			}
		}
	} else if cfg.Store == "both" {
		// The memory-vs-disk dimension: same deterministic corpus and mix
		// against each backend, labeled by store.
		for _, store := range []string{"mem", "disk"} {
			run, err := runPass(cfg, mix, "selftest-"+store, store, phr.ServerConfig{})
			if err != nil {
				return nil, err
			}
			bf.Runs = append(bf.Runs, *run)
		}
	} else {
		run, err := runPass(cfg, mix, mode, cfg.Store, phr.ServerConfig{})
		if err != nil {
			return nil, err
		}
		bf.Runs = []runResult{*run}
	}
	return bf, nil
}

// runSpotcheck verifies a restarted server end to end: the deterministic
// corpus is regenerated from the same flags, the server must still hold at
// least -min-records records (crash-recovery gate), and every disclosable
// record must disclose and decrypt to the exact plaintext generated before
// the restart. Grants are re-installed first — they are proxy-local state
// and are expected to be lost on restart, unlike records.
func runSpotcheck(cfg loadConfig) error {
	if cfg.Addr == "" {
		return fmt.Errorf("phrload: -spotcheck needs -addr")
	}
	w, err := phr.GenerateWorkload(workloadConfig(cfg))
	if err != nil {
		return err
	}
	client := &phr.Client{Base: strings.TrimRight(cfg.Addr, "/"), HTTP: http.DefaultClient}

	sm, err := client.Metrics()
	if err != nil {
		return fmt.Errorf("phrload: reading server metrics: %w", err)
	}
	if sm.StoreRecords < cfg.MinRecords {
		return fmt.Errorf("phrload: server holds %d records, want >= %d — acknowledged writes were lost",
			sm.StoreRecords, cfg.MinRecords)
	}

	patients := map[string]*phr.Patient{}
	for _, pat := range w.Patients {
		patients[pat.ID()] = pat
	}
	for _, g := range w.Grants {
		pat := patients[g.PatientID]
		rk, err := pat.Delegator().Delegate(w.KGC2.Params(), g.RequesterID,
			core.VersionedType(core.Type(g.Category), pat.Epoch(g.Category)), nil)
		if err != nil {
			return err
		}
		if err := client.InstallGrant(rk); err != nil {
			return fmt.Errorf("phrload: re-installing grant %v: %w", g, err)
		}
	}

	byPC := map[string][]string{}
	for _, g := range w.Grants {
		k := g.PatientID + "\x00" + string(g.Category)
		byPC[k] = append(byPC[k], g.RequesterID)
	}
	checked := 0
	for _, rec := range w.Records {
		for _, req := range byPC[rec.PatientID+"\x00"+string(rec.Category)] {
			rct, err := client.Disclose(rec.ID, req)
			if err != nil {
				return fmt.Errorf("phrload: disclosing %s to %s after restart: %w", rec.ID, req, err)
			}
			body, err := hybrid.DecryptReEncrypted(w.Requesters[req], rct)
			if err != nil {
				return fmt.Errorf("phrload: decrypting %s after restart: %w", rec.ID, err)
			}
			if !bytes.Equal(body, w.Bodies[rec.ID]) {
				return fmt.Errorf("phrload: record %s decrypted to different plaintext after restart", rec.ID)
			}
			checked++
		}
	}
	if checked == 0 {
		return fmt.Errorf("phrload: spotcheck disclosed nothing; raise -grants or -records")
	}
	fmt.Printf("spotcheck ok: %d records on server (>= %d required), %d disclosures decrypted byte-identical\n",
		sm.StoreRecords, cfg.MinRecords, checked)
	return nil
}

// resolveRev picks the recorded git revision: the -rev flag (CI passes the
// commit SHA), the binary's embedded VCS stamp, or "unknown".
func resolveRev(flagRev string) string {
	if flagRev != "" {
		return flagRev
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}

func summarize(w io.Writer, bf *benchFile) {
	for _, run := range bf.Runs {
		fmt.Fprintf(w, "\n== %s (%.1fs, %d ops) ==\n", run.Label, run.ElapsedS, run.TotalOps)
		fmt.Fprintln(w, loadstat.CSVHeader)
		eps := append([]loadstat.EndpointStats(nil), run.Endpoints...)
		sort.Slice(eps, func(i, j int) bool { return eps[i].Ops > eps[j].Ops })
		for _, ep := range eps {
			fmt.Fprintln(w, ep.CSVRow())
		}
		for ep, msg := range run.FirstErrors {
			fmt.Fprintf(w, "first error on %s: %s\n", ep, msg)
		}
	}
	if hp := bf.Hotpath; hp != nil {
		fmt.Fprintf(w, "\nhotpath %s: %s %.0fus -> %.0fus (%.1fx)\n",
			hp.Name, hp.Metric, hp.BeforeUs, hp.AfterUs, hp.ImprovementX)
	}
}

func main() {
	cfg := defaultConfig()
	flag.StringVar(&cfg.Addr, "addr", "", "base URL of a running phrserver (e.g. http://127.0.0.1:8080)")
	flag.BoolVar(&cfg.Selftest, "selftest", false, "drive an in-process httptest server instead of -addr")
	flag.BoolVar(&cfg.Compare, "compare", false, "A/B in-process: legacy server config, then optimized; records the hotpath delta")
	flag.DurationVar(&cfg.Duration, "duration", cfg.Duration, "measured duration per run")
	flag.IntVar(&cfg.Concurrency, "concurrency", cfg.Concurrency, "concurrent workers")
	flag.IntVar(&cfg.Patients, "patients", cfg.Patients, "workload: patients")
	flag.IntVar(&cfg.Records, "records", cfg.Records, "workload: records per patient")
	flag.IntVar(&cfg.Requesters, "requesters", cfg.Requesters, "workload: requesters")
	flag.IntVar(&cfg.Grants, "grants", cfg.Grants, "workload: grants per patient")
	flag.IntVar(&cfg.Body, "body", cfg.Body, "workload: record body bytes")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "workload seed (deterministic corpus)")
	flag.StringVar(&cfg.Mix, "mix", cfg.Mix, "op profile as name=weight pairs")
	flag.StringVar(&cfg.Store, "store", cfg.Store, "in-process backend: mem, disk, or both (selftest only)")
	flag.BoolVar(&cfg.Spotcheck, "spotcheck", false, "verify a restarted -addr server against the regenerated corpus instead of load-testing")
	flag.IntVar(&cfg.MinRecords, "min-records", 0, "with -spotcheck: fail unless the server holds at least this many records")
	flag.StringVar(&cfg.Out, "out", cfg.Out, "output JSON path")
	flag.StringVar(&cfg.Rev, "rev", "", "git revision to record (default: build info / GITHUB_SHA)")
	check := flag.String("check", "", "validate an existing BENCH_phrload.json and exit")
	flag.Parse()

	if cfg.Spotcheck {
		if err := runSpotcheck(cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *check != "" {
		data, err := os.ReadFile(*check)
		if err == nil {
			err = checkBench(data)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok\n", *check)
		return
	}

	bf, err := runBench(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(cfg.Out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	summarize(os.Stdout, bf)
	fmt.Printf("\nwrote %s (rev %s)\n", cfg.Out, bf.Rev)
}
