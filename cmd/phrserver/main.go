// Command phrserver runs the PHR disclosure service over HTTP: the
// semi-trusted store plus one re-encryption proxy per category, exposed on
// the API documented in docs/httpapi.md (implemented in
// internal/phr/httpapi.go). Patients upload sealed records and install
// grants; clinicians fetch re-encrypted records they decrypt locally. The
// server never holds a decryption key.
//
// Storage is pluggable: -store=mem (default) keeps records in memory,
// -store=disk persists them to an append-only segment log under -dir that
// survives restarts and crashes (see docs/storage.md). With -fsync=always
// every acknowledged write is on stable storage before the HTTP response;
// -fsync=interval trades a bounded window of recent writes for throughput.
// Grants are proxy-local state in either mode and must be re-installed
// after a restart.
//
// The server instruments every handler (per-endpoint latency/error
// counters and an in-flight gauge, served on GET /v1/metrics) so numbers
// reported by the cmd/phrload harness can be attributed server-side, and
// optionally binds net/http/pprof on a separate address for profiling
// under load.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers profiling handlers on DefaultServeMux
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"typepre/internal/phr"
	"typepre/internal/phr/diskstore"
)

var (
	addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
	categories = flag.String("categories", "", "comma-separated category list (default: standard PHR categories)")
	pprofAddr  = flag.String("pprof", "", "bind net/http/pprof on this address (e.g. 127.0.0.1:6060); empty disables")

	storeKind = flag.String("store", "mem", "storage backend: mem (volatile) or disk (crash-safe segment log)")
	storeDir  = flag.String("dir", "", "data directory for -store=disk")
	fsyncMode = flag.String("fsync", "always", "disk durability: always (sync before every ack) or interval (background sync)")
	fsyncInt  = flag.Duration("fsync-interval", 100*time.Millisecond, "sync period for -fsync=interval")
)

func main() {
	flag.Parse()

	var cats []phr.Category
	if *categories == "" {
		cats = phr.StandardCategories()
	} else {
		for _, c := range strings.Split(*categories, ",") {
			if c = strings.TrimSpace(c); c != "" {
				cats = append(cats, phr.Category(c))
			}
		}
	}
	if len(cats) == 0 {
		log.Fatal("phrserver: no categories configured")
	}

	backend, err := openBackend()
	if err != nil {
		log.Fatalf("phrserver: %v", err)
	}

	if *pprofAddr != "" {
		go func() {
			// pprof handlers live on DefaultServeMux; the API server below
			// uses its own mux, so profiling stays off the service address.
			log.Printf("pprof: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	svc := phr.NewServiceWith(cats, backend)
	fmt.Printf("phrserver: %d category proxies:\n", len(cats))
	for _, c := range cats {
		p, _ := svc.ProxyFor(c)
		fmt.Printf("  %-20s served by %s\n", c, p.Name())
	}

	srv := &http.Server{Addr: *addr, Handler: phr.NewServer(svc)}

	// Graceful shutdown: stop accepting requests, drain in-flight ones,
	// then Close the backend so interval-mode disk stores flush their tail.
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		log.Printf("phrserver: %v, shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("phrserver: shutdown: %v", err)
		}
		if err := backend.Close(); err != nil {
			log.Printf("phrserver: closing store: %v", err)
		}
	}()

	fmt.Printf("listening on http://%s (metrics on /v1/metrics)\n", *addr)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}

func openBackend() (phr.Backend, error) {
	switch *storeKind {
	case "mem":
		return phr.NewStore(), nil
	case "disk":
		if *storeDir == "" {
			return nil, fmt.Errorf("-store=disk requires -dir")
		}
		mode, err := diskstore.ParseFsyncMode(*fsyncMode)
		if err != nil {
			return nil, err
		}
		s, err := diskstore.Open(*storeDir, diskstore.Options{Fsync: mode, FsyncInterval: *fsyncInt})
		if err != nil {
			return nil, err
		}
		rec := s.Recovery()
		fmt.Printf("disk store %s: %d records in %d segments (%d log entries", *storeDir, rec.Records, rec.Segments, rec.Entries)
		if rec.TruncatedBytes > 0 {
			fmt.Printf(", %d torn tail bytes truncated", rec.TruncatedBytes)
		}
		fmt.Printf("), fsync=%s\n", *fsyncMode)
		return s, nil
	default:
		return nil, fmt.Errorf("unknown -store %q (want mem or disk)", *storeKind)
	}
}
