// Command phrserver runs the PHR disclosure service over HTTP: the
// semi-trusted store plus one re-encryption proxy per category, exposed on
// the API documented in docs/httpapi.md (implemented in
// internal/phr/httpapi.go). Patients upload sealed records and install
// grants; clinicians fetch re-encrypted records they decrypt locally. The
// server never holds a decryption key.
//
// The server instruments every handler (per-endpoint latency/error
// counters and an in-flight gauge, served on GET /v1/metrics) so numbers
// reported by the cmd/phrload harness can be attributed server-side, and
// optionally binds net/http/pprof on a separate address for profiling
// under load.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers profiling handlers on DefaultServeMux
	"strings"

	"typepre/internal/phr"
)

var (
	addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
	categories = flag.String("categories", "", "comma-separated category list (default: standard PHR categories)")
	pprofAddr  = flag.String("pprof", "", "bind net/http/pprof on this address (e.g. 127.0.0.1:6060); empty disables")
)

func main() {
	flag.Parse()

	var cats []phr.Category
	if *categories == "" {
		cats = phr.StandardCategories()
	} else {
		for _, c := range strings.Split(*categories, ",") {
			if c = strings.TrimSpace(c); c != "" {
				cats = append(cats, phr.Category(c))
			}
		}
	}
	if len(cats) == 0 {
		log.Fatal("phrserver: no categories configured")
	}

	if *pprofAddr != "" {
		go func() {
			// pprof handlers live on DefaultServeMux; the API server below
			// uses its own mux, so profiling stays off the service address.
			log.Printf("pprof: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	svc := phr.NewService(cats)
	fmt.Printf("phrserver: %d category proxies:\n", len(cats))
	for _, c := range cats {
		p, _ := svc.ProxyFor(c)
		fmt.Printf("  %-20s served by %s\n", c, p.Name())
	}
	fmt.Printf("listening on http://%s (metrics on /v1/metrics)\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, phr.NewServer(svc)))
}
