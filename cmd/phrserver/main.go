// Command phrserver runs the PHR disclosure service over HTTP: the
// semi-trusted store plus one re-encryption proxy per category, exposed on
// the API documented in docs/httpapi.md (implemented in
// internal/phr/httpapi.go). Patients upload sealed records and install
// grants; clinicians fetch re-encrypted records they decrypt locally. The
// server never holds a decryption key.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	"typepre/internal/phr"
)

var (
	addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
	categories = flag.String("categories", "", "comma-separated category list (default: standard PHR categories)")
)

func main() {
	flag.Parse()

	var cats []phr.Category
	if *categories == "" {
		cats = phr.StandardCategories()
	} else {
		for _, c := range strings.Split(*categories, ",") {
			if c = strings.TrimSpace(c); c != "" {
				cats = append(cats, phr.Category(c))
			}
		}
	}
	if len(cats) == 0 {
		log.Fatal("phrserver: no categories configured")
	}

	svc := phr.NewService(cats)
	fmt.Printf("phrserver: %d category proxies:\n", len(cats))
	for _, c := range cats {
		p, _ := svc.ProxyFor(c)
		fmt.Printf("  %-20s served by %s\n", c, p.Name())
	}
	fmt.Printf("listening on http://%s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, phr.NewServer(svc)))
}
