// Command typepre is a file-based CLI for the type-and-identity PRE
// scheme, covering the full lifecycle an integrator needs:
//
//	typepre setup   -name kgc1 -out kgc1.params -master kgc1.master
//	typepre extract -master kgc1.master -id alice@x -out alice.key
//	typepre encrypt -params kgc1.params -key alice.key -type emergency \
//	                -in record.txt -out record.ct
//	typepre decrypt -params kgc1.params -key alice.key -in record.ct
//	typepre rekey   -params kgc1.params -key alice.key \
//	                -to-params kgc2.params -to bob@y -type emergency -out e.rk
//	typepre reencrypt -in record.ct -rekey e.rk -out record.rct
//	typepre redecrypt -params kgc2.params -key bob.key -in record.rct
//
// Key and parameter files are raw binary; treat master and private key
// files like any other secret material.
package main

import (
	"fmt"
	"os"

	"typepre/internal/core"
	"typepre/internal/hybrid"
	"typepre/internal/ibe"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "setup":
		err = cmdSetup(args)
	case "extract":
		err = cmdExtract(args)
	case "encrypt":
		err = cmdEncrypt(args)
	case "decrypt":
		err = cmdDecrypt(args)
	case "rekey":
		err = cmdRekey(args)
	case "reencrypt":
		err = cmdReencrypt(args)
	case "redecrypt":
		err = cmdRedecrypt(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "typepre: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "typepre %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: typepre <command> [flags]

commands:
  setup      create a KGC (public params + master key files)
  extract    derive an identity private key from a master key
  encrypt    seal a file under (identity, type)
  decrypt    open a sealed file with the owner key
  rekey      create a per-type re-encryption key toward a delegatee
  reencrypt  transform a sealed file with a rekey (proxy role)
  redecrypt  open a re-encrypted file with the delegatee key`)
}

// flagMap parses -k v pairs.
func flagMap(args []string, required ...string) (map[string]string, error) {
	m := map[string]string{}
	for i := 0; i < len(args); i += 2 {
		if i+1 >= len(args) || len(args[i]) < 2 || args[i][0] != '-' {
			return nil, fmt.Errorf("malformed flags near %q", args[i])
		}
		m[args[i][1:]] = args[i+1]
	}
	for _, r := range required {
		if m[r] == "" {
			return nil, fmt.Errorf("missing required flag -%s", r)
		}
	}
	return m, nil
}

func cmdSetup(args []string) error {
	f, err := flagMap(args, "name", "out", "master")
	if err != nil {
		return err
	}
	kgc, err := ibe.Setup(f["name"], nil)
	if err != nil {
		return err
	}
	if err := os.WriteFile(f["out"], kgc.Params().Marshal(), 0o644); err != nil {
		return err
	}
	// The master key is serialized as the name + the exponent; re-creating
	// the KGC from it is supported via ibe.Restore.
	if err := os.WriteFile(f["master"], kgc.MarshalMaster(), 0o600); err != nil {
		return err
	}
	fmt.Printf("wrote %s (public) and %s (secret)\n", f["out"], f["master"])
	return nil
}

func cmdExtract(args []string) error {
	f, err := flagMap(args, "master", "id", "out")
	if err != nil {
		return err
	}
	masterData, err := os.ReadFile(f["master"])
	if err != nil {
		return err
	}
	kgc, err := ibe.RestoreKGC(masterData)
	if err != nil {
		return err
	}
	key := kgc.Extract(f["id"])
	if err := os.WriteFile(f["out"], key.Marshal(), 0o600); err != nil {
		return err
	}
	fmt.Printf("extracted key for %s → %s\n", f["id"], f["out"])
	return nil
}

func loadDelegator(paramsPath, keyPath string) (*core.Delegator, error) {
	paramsData, err := os.ReadFile(paramsPath)
	if err != nil {
		return nil, err
	}
	params, err := ibe.UnmarshalParams(paramsData)
	if err != nil {
		return nil, err
	}
	keyData, err := os.ReadFile(keyPath)
	if err != nil {
		return nil, err
	}
	key, err := ibe.UnmarshalPrivateKey(keyData, params)
	if err != nil {
		return nil, err
	}
	return core.NewDelegator(key), nil
}

func cmdEncrypt(args []string) error {
	f, err := flagMap(args, "params", "key", "type", "in", "out")
	if err != nil {
		return err
	}
	d, err := loadDelegator(f["params"], f["key"])
	if err != nil {
		return err
	}
	msg, err := os.ReadFile(f["in"])
	if err != nil {
		return err
	}
	ct, err := hybrid.Encrypt(d, msg, core.Type(f["type"]), nil)
	if err != nil {
		return err
	}
	if err := os.WriteFile(f["out"], ct.Marshal(), 0o644); err != nil {
		return err
	}
	fmt.Printf("sealed %d bytes under type %q → %s\n", len(msg), f["type"], f["out"])
	return nil
}

func cmdDecrypt(args []string) error {
	f, err := flagMap(args, "params", "key", "in")
	if err != nil {
		return err
	}
	d, err := loadDelegator(f["params"], f["key"])
	if err != nil {
		return err
	}
	data, err := os.ReadFile(f["in"])
	if err != nil {
		return err
	}
	ct, err := hybrid.UnmarshalCiphertext(data)
	if err != nil {
		return err
	}
	msg, err := hybrid.Decrypt(d, ct)
	if err != nil {
		return err
	}
	if out := f["out"]; out != "" {
		return os.WriteFile(out, msg, 0o644)
	}
	_, err = os.Stdout.Write(msg)
	return err
}

func cmdRekey(args []string) error {
	f, err := flagMap(args, "params", "key", "to-params", "to", "type", "out")
	if err != nil {
		return err
	}
	d, err := loadDelegator(f["params"], f["key"])
	if err != nil {
		return err
	}
	toParamsData, err := os.ReadFile(f["to-params"])
	if err != nil {
		return err
	}
	toParams, err := ibe.UnmarshalParams(toParamsData)
	if err != nil {
		return err
	}
	rk, err := d.Delegate(toParams, f["to"], core.Type(f["type"]), nil)
	if err != nil {
		return err
	}
	if err := os.WriteFile(f["out"], rk.Marshal(), 0o600); err != nil {
		return err
	}
	fmt.Printf("rekey %s:%s → %s written to %s\n", d.ID(), f["type"], f["to"], f["out"])
	return nil
}

func cmdReencrypt(args []string) error {
	f, err := flagMap(args, "in", "rekey", "out")
	if err != nil {
		return err
	}
	data, err := os.ReadFile(f["in"])
	if err != nil {
		return err
	}
	ct, err := hybrid.UnmarshalCiphertext(data)
	if err != nil {
		return err
	}
	rkData, err := os.ReadFile(f["rekey"])
	if err != nil {
		return err
	}
	rk, err := core.UnmarshalReKey(rkData)
	if err != nil {
		return err
	}
	rct, err := hybrid.ReEncrypt(ct, rk)
	if err != nil {
		return err
	}
	if err := os.WriteFile(f["out"], rct.Marshal(), 0o644); err != nil {
		return err
	}
	fmt.Printf("re-encrypted for %s → %s\n", rk.DelegateeID, f["out"])
	return nil
}

func cmdRedecrypt(args []string) error {
	f, err := flagMap(args, "params", "key", "in")
	if err != nil {
		return err
	}
	paramsData, err := os.ReadFile(f["params"])
	if err != nil {
		return err
	}
	params, err := ibe.UnmarshalParams(paramsData)
	if err != nil {
		return err
	}
	keyData, err := os.ReadFile(f["key"])
	if err != nil {
		return err
	}
	key, err := ibe.UnmarshalPrivateKey(keyData, params)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(f["in"])
	if err != nil {
		return err
	}
	rct, err := hybrid.UnmarshalReCiphertext(data)
	if err != nil {
		return err
	}
	msg, err := hybrid.DecryptReEncrypted(key, rct)
	if err != nil {
		return err
	}
	if out := f["out"]; out != "" {
		return os.WriteFile(out, msg, 0o644)
	}
	_, err = os.Stdout.Write(msg)
	return err
}
