// Command phrlint is the repo's domain-specific static-analysis suite: a
// multichecker over the five passes in internal/analysis/passes that
// machine-check the crypto and service invariants the compiler cannot see
// (docs/lint.md). It loads, parses and type-checks the named packages
// plus their intra-module dependencies from source — no network, no
// third-party modules — runs every pass, and exits non-zero on any
// diagnostic.
//
// Usage:
//
//	phrlint [-list] [packages]
//
// Packages default to ./... . Diagnostics print as file:line:col: message
// (pass), one per line, ready for editors and CI annotations. Findings
// are suppressed only by a `//phrlint:ignore pass: reason` directive on
// the flagged line or the line above; a directive without a pass list and
// reason is itself a diagnostic.
package main

import (
	"flag"
	"fmt"
	"os"

	"typepre/internal/analysis"
	"typepre/internal/analysis/passes"
)

func main() {
	list := flag.Bool("list", false, "list the registered passes and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: phrlint [-list] [packages]\n\nPasses:\n")
		for _, a := range passes.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-15s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := passes.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	targets, all, err := analysis.LoadPackages(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phrlint:", err)
		os.Exit(2)
	}

	ann, malformed := analysis.HarvestAnnotations(all)
	var diags []analysis.Diagnostic
	diags = append(diags, malformed...)
	for _, pkg := range targets {
		d, err := analysis.RunPackage(pkg, ann, suite)
		if err != nil {
			fmt.Fprintln(os.Stderr, "phrlint:", err)
			os.Exit(2)
		}
		diags = append(diags, d...)
	}

	for _, d := range diags {
		fmt.Printf("%s\n", d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "phrlint: %d finding(s) across %d package(s)\n", len(diags), len(targets))
		os.Exit(1)
	}
}
