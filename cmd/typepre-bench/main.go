// Command typepre-bench regenerates every experiment table and figure
// series defined in EXPERIMENTS.md (E1–E9). The paper itself reports no
// quantitative evaluation; these are the canonical artifacts for its
// claims, and `go test -bench .` reproduces the same measurements through
// the testing.B harness.
//
// Usage:
//
//	typepre-bench               # run everything
//	typepre-bench -e e5         # one experiment
//	typepre-bench -iters 50     # more timing iterations
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"typepre/internal/baselines/afgh"
	"typepre/internal/baselines/bbs"
	"typepre/internal/baselines/dodisivan"
	"typepre/internal/baselines/ga"
	"typepre/internal/bn254"
	"typepre/internal/bn254/fp"
	"typepre/internal/core"
	"typepre/internal/hybrid"
	"typepre/internal/ibe"
	"typepre/internal/phr"
)

var (
	experiment = flag.String("e", "all", "experiment to run: e1..e9, pairing-stack, or all")
	iters      = flag.Int("iters", 20, "timing iterations per data point")
)

func main() {
	flag.Parse()
	run := map[string]func(){
		"e1": e1, "e2": e2, "e3": e3, "e4": e4,
		"e5": e5, "e6": e6, "e7": e7, "e8": e8, "e9": e9,
		"pairing-stack": pairingStack,
	}
	if *experiment == "all" {
		keys := make([]string, 0, len(run))
		for k := range run {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			run[k]()
		}
		return
	}
	f, ok := run[strings.ToLower(*experiment)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want e1..e9, pairing-stack, or all)\n", *experiment)
		os.Exit(2)
	}
	f()
}

// timeOpN reports the median wall time of one call of f, where each timed
// sample runs f reps times; used for sub-microsecond field operations that
// a single time.Now pair cannot resolve.
func timeOpN(reps int, f func()) time.Duration {
	d := timeOp(func() {
		for i := 0; i < reps; i++ {
			f()
		}
	})
	return d / time.Duration(reps)
}

// pairingStack reports microbenchmarks down the whole pairing arithmetic
// stack — the Montgomery-limb Fp core, the group operations built on it,
// and the pairing variants. CI uploads this next to the committed
// BENCH_bn254.json trajectory; `go test -bench . ./internal/bn254/...`
// reproduces the same measurements through the testing harness.
func pairingStack() {
	header("pairing-stack — Fp limb core through full pairing")
	var a, b, out fp.Element
	a.SetUint64(0xdeadbeefcafef00d)
	a.Inverse(&a)
	b.Square(&a)
	rowNs("Fp mul (Montgomery CIOS)", timeOpN(1024, func() { out.Mul(&a, &b) }))
	rowNs("Fp square", timeOpN(1024, func() { out.Square(&a) }))
	rowNs("Fp add", timeOpN(1024, func() { out.Add(&a, &b) }))
	row("Fp inverse (Fermat, CT)", timeOp(func() { out.Inverse(&a) }))
	row("Fp sqrt", timeOp(func() { out.Sqrt(&b) }))

	p := bn254.G1Generator()
	q := bn254.G2Generator()
	k, err := bn254.RandomScalar(nil)
	check(err)
	var g1 bn254.G1
	row("G1 scalar mult (fixed base)", timeOp(func() { g1.ScalarBaseMult(k) }))
	var g2 bn254.G2
	row("G2 scalar mult (fixed base)", timeOp(func() { g2.ScalarBaseMult(k) }))
	var gt bn254.GT
	base := bn254.GTBase()
	row("GT exponentiation", timeOp(func() { gt.Exp(base, k) }))
	row("GT fixed-base exp", timeOp(func() { bn254.GTExpBase(k) }))
	row("pairing (optimal ate)", timeOp(func() { bn254.Pair(p, q) }))
	prep := bn254.G2GeneratorPrepared()
	row("pairing (prepared G2)", timeOp(func() { bn254.PairPrepared(p, prep) }))
	row("G2 preparation (one-time)", timeOp(func() { bn254.PrepareG2(q) }))
}

// timeOp reports the median wall time of n runs of f.
func timeOp(f func()) time.Duration {
	n := *iters
	samples := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		f()
		samples = append(samples, time.Since(start))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2]
}

func header(title string) {
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

func row(name string, d time.Duration) {
	fmt.Printf("  %-28s %12s\n", name, d.Round(time.Microsecond))
}

// rowNs prints with nanosecond precision, for operations far below the
// microsecond rounding of row.
func rowNs(name string, d time.Duration) {
	fmt.Printf("  %-28s %12s\n", name, d.Round(time.Nanosecond))
}

// fixture shared by the scheme-level experiments.
type fixture struct {
	kgc1, kgc2 *ibe.KGC
	alice      *core.Delegator
	aliceKey   *ibe.PrivateKey
	bobKey     *ibe.PrivateKey
	msg        *bn254.GT
	ct         *core.Ciphertext
	rk         *core.ReKey
	rct        *core.ReCiphertext
}

var fx *fixture

func getFixture() *fixture {
	if fx != nil {
		return fx
	}
	kgc1, err := ibe.Setup("bench-kgc1", nil)
	check(err)
	kgc2, err := ibe.Setup("bench-kgc2", nil)
	check(err)
	aliceKey := kgc1.Extract("alice@bench")
	alice := core.NewDelegator(aliceKey)
	bobKey := kgc2.Extract("bob@bench")
	msg, _, err := bn254.RandomGT(nil)
	check(err)
	ct, err := alice.Encrypt(msg, "t", nil)
	check(err)
	rk, err := alice.Delegate(kgc2.Params(), "bob@bench", "t", nil)
	check(err)
	rct, err := core.ReEncrypt(ct, rk)
	check(err)
	fx = &fixture{kgc1: kgc1, kgc2: kgc2, alice: alice, aliceKey: aliceKey,
		bobKey: bobKey, msg: msg, ct: ct, rk: rk, rct: rct}
	return fx
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func e1() {
	header("E1 (Table 1) — pairing-substrate primitive costs, BN254/montgomery-limbs")
	p := bn254.G1Generator()
	q := bn254.G2Generator()
	k, _ := bn254.RandomScalar(nil)
	base := bn254.GTBase()

	row("pairing (optimal ate)", timeOp(func() { bn254.Pair(p, q) }))
	row("pairing (direct final exp)", timeOp(func() { bn254.PairDirectHardPart(p, q) }))
	prep := bn254.G2GeneratorPrepared()
	row("pairing (prepared G2)", timeOp(func() { bn254.PairPrepared(p, prep) }))
	row("G2 preparation (one-time)", timeOp(func() { bn254.PrepareG2(q) }))
	row("2-pairing product", timeOp(func() {
		bn254.PairProduct([]*bn254.G1{p, p}, []*bn254.G2{q, q})
	}))
	var g1 bn254.G1
	row("G1 scalar mult", timeOp(func() { g1.ScalarBaseMult(k) }))
	var g2 bn254.G2
	row("G2 scalar mult", timeOp(func() { g2.ScalarBaseMult(k) }))
	var gt bn254.GT
	row("GT exponentiation", timeOp(func() { gt.Exp(base, k) }))
	row("GT fixed-base exp", timeOp(func() { bn254.GTExpBase(k) }))
	i := 0
	row("hash-to-G1 (try&increment)", timeOp(func() {
		i++
		bn254.HashToG1(bn254.DomainG1, []byte(fmt.Sprintf("id-%d", i)))
	}))
	row("hash-to-Zr", timeOp(func() { bn254.HashToZr(bn254.DomainZr, []byte("type")) }))
}

func e2() {
	header("E2 (Table 2) — scheme operation latencies")
	f := getFixture()
	row("Setup (KGC keygen)", timeOp(func() {
		_, err := ibe.Setup("kgc", nil)
		check(err)
	}))
	row("Extract", timeOp(func() { f.kgc1.Extract("u@bench") }))
	key := f.kgc1.Extract("u@bench")
	row("NewDelegator (1 pairing)", timeOp(func() { core.NewDelegator(key) }))
	row("Encrypt1", timeOp(func() {
		_, err := f.alice.Encrypt(f.msg, "t", nil)
		check(err)
	}))
	row("Decrypt1", timeOp(func() {
		_, err := f.alice.Decrypt(f.ct)
		check(err)
	}))
	row("Pextract (rekey gen)", timeOp(func() {
		_, err := f.alice.Delegate(f.kgc2.Params(), "bob@bench", "t", nil)
		check(err)
	}))
	row("Preenc (proxy transform)", timeOp(func() {
		_, err := core.ReEncrypt(f.ct, f.rk)
		check(err)
	}))
	row("Re-decrypt (delegatee)", timeOp(func() {
		_, err := core.DecryptReEncrypted(f.bobKey, f.rct)
		check(err)
	}))

	// Precompute ablations: the repeated-use paths against their naive
	// counterparts (see internal/bn254/precompute.go).
	params := f.kgc2.Params()
	params.EncryptionMask("bob@bench")
	row("Encrypt2 (cached mask)", timeOp(func() {
		_, err := ibe.Encrypt(params, "bob@bench", f.msg, nil)
		check(err)
	}))
	bare := &ibe.Params{Name: "naive", PK: params.PK}
	row("Encrypt2 (naive mask)", timeOp(func() {
		_, err := ibe.Encrypt(bare, "bob@bench", f.msg, nil)
		check(err)
	}))
	prk := core.PrepareReKey(f.rk)
	_, err := prk.ReEncrypt(f.ct)
	check(err)
	row("Preenc (prepared, repeat)", timeOp(func() {
		_, err := prk.ReEncrypt(f.ct)
		check(err)
	}))
}

func e3() {
	header("E3 (Table 3) — marshaled sizes (bytes, exact)")
	f := getFixture()
	fmt.Printf("  %-28s %8d\n", "KGC params", len(f.kgc1.Params().Marshal()))
	fmt.Printf("  %-28s %8d\n", "private key", len(f.bobKey.Marshal()))
	fmt.Printf("  %-28s %8d\n", "ciphertext (GT message)", len(f.ct.Marshal()))
	fmt.Printf("  %-28s %8d\n", "re-encryption key", len(f.rk.Marshal()))
	fmt.Printf("  %-28s %8d\n", "re-encrypted ciphertext", len(f.rct.Marshal()))
	fmt.Printf("  %-28s %8d  (compressed points)\n", "ciphertext, compact", len(f.ct.MarshalCompact()))
	fmt.Printf("  %-28s %8d  (compressed points)\n", "re-encryption key, compact", len(f.rk.MarshalCompact()))
	hct, err := hybrid.Encrypt(f.alice, make([]byte, 1024), "t", nil)
	check(err)
	fmt.Printf("  %-28s %8d  (1024-byte payload)\n", "hybrid ciphertext", len(hct.Marshal()))
}

func e4() {
	header("E4 (Table 4) — related-work comparison, full delegate→transform→read cycle")
	fmt.Printf("  %-12s %-6s %-8s %-10s %-10s %12s\n",
		"scheme", "dir", "interact", "collusion", "granular", "median")
	f := getFixture()

	ours := timeOp(func() {
		ct, err := f.alice.Encrypt(f.msg, "t", nil)
		check(err)
		rk, err := f.alice.Delegate(f.kgc2.Params(), "bob@bench", "t", nil)
		check(err)
		rct, err := core.ReEncrypt(ct, rk)
		check(err)
		_, err = core.DecryptReEncrypted(f.bobKey, rct)
		check(err)
	})
	fmt.Printf("  %-12s %-6s %-8s %-10s %-10s %12s\n", "ours", "uni", "no", "safe", "per-type", ours.Round(time.Microsecond))

	gaT := timeOp(func() {
		ct, err := ga.Encrypt(f.kgc1.Params(), "alice@bench", f.msg, nil)
		check(err)
		rk, err := ga.RKGen(f.aliceKey, f.kgc2.Params(), "bob@bench", nil)
		check(err)
		rct, err := ga.ReEncrypt(rk, ct)
		check(err)
		_, err = ga.DecryptReEncrypted(f.bobKey, rct)
		check(err)
	})
	fmt.Printf("  %-12s %-6s %-8s %-10s %-10s %12s\n", "GA-IBP1", "uni", "no", "sk-leak*", "all", gaT.Round(time.Microsecond))

	aliceA, err := afgh.KeyGen(nil)
	check(err)
	bobA, err := afgh.KeyGen(nil)
	check(err)
	afghT := timeOp(func() {
		ct, err := afgh.EncryptSecondLevel(aliceA, f.msg, nil)
		check(err)
		rk, err := afgh.ReKey(aliceA.SK, bobA.PK2)
		check(err)
		rct, err := afgh.ReEncrypt(rk, ct)
		check(err)
		_, err = afgh.DecryptFirstLevel(bobA.SK, rct)
		check(err)
	})
	fmt.Printf("  %-12s %-6s %-8s %-10s %-10s %12s\n", "AFGH", "uni", "no", "weak-key", "all", afghT.Round(time.Microsecond))

	aliceB, _ := bbs.KeyGen(nil)
	bobB, _ := bbs.KeyGen(nil)
	kk, _ := bn254.RandomScalar(nil)
	var mG1 bn254.G1
	mG1.ScalarBaseMult(kk)
	bbsT := timeOp(func() {
		ct, err := bbs.Encrypt(aliceB.PK, &mG1, nil)
		check(err)
		rk, err := bbs.ReKey(aliceB, bobB)
		check(err)
		rct, err := bbs.ReEncrypt(rk, ct)
		check(err)
		_, err = bbs.Decrypt(bobB.SK, rct)
		check(err)
	})
	fmt.Printf("  %-12s %-6s %-8s %-10s %-10s %12s\n", "BBS", "bi", "yes", "unsafe", "all", bbsT.Round(time.Microsecond))

	diT := timeOp(func() {
		ct, err := ibe.Encrypt(f.kgc1.Params(), "alice@bench", f.msg, nil)
		check(err)
		shares, err := dodisivan.Split(f.aliceKey, nil)
		check(err)
		partial, err := dodisivan.ProxyTransform(shares.ProxyShare, ct)
		check(err)
		_, err = dodisivan.Finish(shares.DelegateeShare, partial)
		check(err)
	})
	fmt.Printf("  %-12s %-6s %-8s %-10s %-10s %12s\n", "Dodis-Ivan", "uni", "yes", "unsafe", "all", diT.Round(time.Microsecond))
	fmt.Println("  * GA-IBP1 collusion yields the full identity key (all messages);")
	fmt.Println("    ours yields only the per-type key (Theorem 1).")
}

func e5() {
	header("E5 (Figure 1) — delegation setup vs number of categories (1 delegatee)")
	fmt.Printf("  %-6s | %-22s | %-22s\n", "T", "ours (1 keypair)", "AFGH (T keypairs)")
	f := getFixture()
	for _, T := range []int{1, 2, 4, 8, 16, 32, 64} {
		oursT := timeOp(func() {
			for t := 0; t < T; t++ {
				_, err := f.alice.Delegate(f.kgc2.Params(), "bob@bench", core.Type(fmt.Sprintf("c%d", t)), nil)
				check(err)
			}
		})
		bobA, err := afgh.KeyGen(nil)
		check(err)
		afghT := timeOp(func() {
			for t := 0; t < T; t++ {
				kp, err := afgh.KeyGen(nil)
				check(err)
				_, err = afgh.ReKey(kp.SK, bobA.PK2)
				check(err)
			}
		})
		fmt.Printf("  %-6d | %22s | %22s\n", T,
			oursT.Round(time.Microsecond), afghT.Round(time.Microsecond))
	}
	fmt.Println("  key-pair count: ours is always 1; AFGH grows linearly in T.")
}

func e6() {
	header("E6 (Figure 2) — records exposed by corrupting k of 6 category proxies")
	cfg := phr.DefaultWorkload()
	cfg.Patients = 8
	cfg.RecordsPerPatient = 8
	cfg.Categories = phr.StandardCategories()
	cfg.GrantsPerPatient = 4
	w, err := phr.GenerateWorkload(cfg)
	check(err)

	cats := phr.StandardCategories()
	fmt.Printf("  %-10s | %-18s | %-18s\n", "corrupted", "type-PRE exposed", "traditional exposed")
	var corrupted []*phr.Proxy
	for k := 0; k <= len(cats); k++ {
		typeRep := phr.SimulateTypePREBreach(w.Service.Store, corrupted)
		tradRep := phr.SimulateTraditionalPREBreach(w.Service.Store, corrupted)
		fmt.Printf("  %-10d | %6d/%d (%5.1f%%) | %6d/%d (%5.1f%%)\n", k,
			typeRep.ExposedRecords, typeRep.TotalRecords, 100*typeRep.Fraction(),
			tradRep.ExposedRecords, tradRep.TotalRecords, 100*tradRep.Fraction())
		if k < len(cats) {
			p, err := w.Service.ProxyFor(cats[k])
			check(err)
			corrupted = append(corrupted, p)
		}
	}
	expOK, isoOK := phr.VerifyTypePREBreach(w, corrupted)
	fmt.Printf("  cryptographic verification: exposed-decryptable=%v, isolated-unopenable=%v\n", expOK, isoOK)
}

func e7() {
	header("E7 (Figure 3) — end-to-end disclosure latency vs payload size")
	f := getFixture()
	fmt.Printf("  %-10s | %-14s | %-14s | %-14s\n", "payload", "proxy", "delegatee", "end-to-end")
	for _, size := range []int{256, 4 << 10, 64 << 10, 1 << 20} {
		body := make([]byte, size)
		ct, err := hybrid.Encrypt(f.alice, body, "t", nil)
		check(err)
		var rct *hybrid.ReCiphertext
		proxyT := timeOp(func() {
			rct, err = hybrid.ReEncrypt(ct, f.rk)
			check(err)
		})
		deleT := timeOp(func() {
			_, err := hybrid.DecryptReEncrypted(f.bobKey, rct)
			check(err)
		})
		fmt.Printf("  %-10s | %14s | %14s | %14s\n", sizeName(size),
			proxyT.Round(time.Microsecond), deleT.Round(time.Microsecond),
			(proxyT + deleT).Round(time.Microsecond))
	}
	fmt.Println("  proxy cost is payload-independent (KEM-only transformation).")
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func e9() {
	header(fmt.Sprintf("E9 — bulk-disclosure pipeline: serial vs parallel (workers = GOMAXPROCS = %d)",
		runtime.GOMAXPROCS(0)))
	fmt.Printf("  %-8s | %-14s | %-14s | %8s\n", "records", "serial", "parallel", "speedup")
	for _, n := range []int{1, 8, 64, 512} {
		f, err := phr.NewBulkFixture(n)
		check(err)
		// Warm the per-record pairing cache: both modes then measure the
		// steady-state serving path.
		_, err = f.Proxy.DiscloseCategoryParallel(f.Service.Store, f.PatientID, phr.CategoryEmergency, f.RequesterID)
		check(err)
		serial := timeOp(func() {
			_, err := f.Proxy.DiscloseCategory(f.Service.Store, f.PatientID, phr.CategoryEmergency, f.RequesterID)
			check(err)
		})
		par := timeOp(func() {
			_, err := f.Proxy.DiscloseCategoryParallel(f.Service.Store, f.PatientID, phr.CategoryEmergency, f.RequesterID)
			check(err)
		})
		fmt.Printf("  %-8d | %14s | %14s | %7.2fx\n", n,
			serial.Round(time.Microsecond), par.Round(time.Microsecond),
			float64(serial)/float64(par))
	}
	fmt.Println("  ordered output; plaintext equivalence is pinned by internal/phr tests.")
}

func e8() {
	header("E8 (Ablation) — collusion recovery across schemes")
	f := getFixture()

	// Ours: proxy + delegatee recover the type key, nothing more.
	tk, err := core.RecoverTypeKey(f.rk, f.bobKey)
	check(err)
	m1, err := core.DecryptWithTypeKey(tk, f.ct)
	check(err)
	otherCT, err := f.alice.Encrypt(f.msg, "other-type", nil)
	check(err)
	m2, err := core.DecryptWithTypeKey(tk, otherCT)
	check(err)
	masterLeaked := tk.K.Equal(f.aliceKey.SK)
	fmt.Printf("  ours:        type-key opens own type: %v; opens other type: %v; equals master key: %v\n",
		m1.Equal(f.msg), m2.Equal(f.msg), masterLeaked)

	// Dodis–Ivan: collusion recovers the master key.
	shares, err := dodisivan.Split(f.aliceKey, nil)
	check(err)
	recovered := dodisivan.Collude(shares)
	fmt.Printf("  dodis-ivan:  collusion recovers master key: %v\n", recovered.Equal(f.aliceKey.SK))

	// BBS: collusion recovers the scalar secret.
	aliceB, _ := bbs.KeyGen(nil)
	bobB, _ := bbs.KeyGen(nil)
	rkB, err := bbs.ReKey(aliceB, bobB)
	check(err)
	aRec, err := bbs.CollusionAttack(rkB, bobB.SK)
	check(err)
	fmt.Printf("  bbs:         collusion recovers master key: %v\n", aRec.Cmp(aliceB.SK) == 0)

	// AFGH: collusion recovers the weak key only.
	aliceA, _ := afgh.KeyGen(nil)
	bobA, _ := afgh.KeyGen(nil)
	rkA, err := afgh.ReKey(aliceA.SK, bobA.PK2)
	check(err)
	weak, err := afgh.CollusionRecoverWeakKey(rkA, bobA.SK)
	check(err)
	ct2, err := afgh.EncryptSecondLevel(aliceA, f.msg, nil)
	check(err)
	mW, err := afgh.DecryptSecondLevelWithWeakKey(weak, ct2)
	check(err)
	fmt.Printf("  afgh:        weak key opens 2nd-level: %v (1st-level stays safe)\n", mW.Equal(f.msg))
}
