package hybrid

import (
	"bytes"
	"testing"

	"typepre/internal/core"
	"typepre/internal/ibe"
)

// Fuzz targets for the hybrid container decoders — the format every sealed
// record and every bulk-disclosure frame crosses the wire in. The invariant
// under fuzzing: decoding never panics, and any accepted input re-marshals
// to itself (canonicality), so a hostile frame cannot smuggle two distinct
// wire forms of one ciphertext past the store or the HTTP layer.

func fuzzSeeds(f *testing.F) (ct, rct []byte) {
	f.Helper()
	kgc1, err := ibe.Setup("hybrid-fuzz-kgc1", nil)
	if err != nil {
		f.Fatal(err)
	}
	kgc2, err := ibe.Setup("hybrid-fuzz-kgc2", nil)
	if err != nil {
		f.Fatal(err)
	}
	alice := core.NewDelegator(kgc1.Extract("alice@hybrid-fuzz"))
	sealed, err := Encrypt(alice, []byte("fuzz corpus record body"), "fuzz-type", nil)
	if err != nil {
		f.Fatal(err)
	}
	rk, err := alice.Delegate(kgc2.Params(), "bob@hybrid-fuzz", "fuzz-type", nil)
	if err != nil {
		f.Fatal(err)
	}
	re, err := ReEncrypt(sealed, rk)
	if err != nil {
		f.Fatal(err)
	}
	return sealed.Marshal(), re.Marshal()
}

func FuzzCiphertextRoundTrip(f *testing.F) {
	ct, _ := fuzzSeeds(f)
	f.Add(ct)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xff}, 900))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalCiphertext(data)
		if err != nil {
			return
		}
		if !bytes.Equal(c.Marshal(), data) {
			t.Fatal("accepted non-canonical hybrid ciphertext encoding")
		}
	})
}

func FuzzReCiphertextRoundTrip(f *testing.F) {
	ct, rct := fuzzSeeds(f)
	f.Add(rct)
	f.Add(ct) // a first-level container is not a valid re-encrypted one
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(bytes.Repeat([]byte{1}, 1500))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalReCiphertext(data)
		if err != nil {
			return
		}
		if !bytes.Equal(c.Marshal(), data) {
			t.Fatal("accepted non-canonical hybrid reciphertext encoding")
		}
	})
}
