// Package hybrid provides byte-payload encryption on top of the core
// type-and-identity PRE scheme via the standard KEM/DEM composition: a
// fresh random GT element is encrypted with the PRE scheme (the KEM), a
// SHA-256 KDF derives an AES-256-GCM key from it, and the payload is
// sealed with that key (the DEM).
//
// Re-encryption touches only the KEM part, so the proxy's work is
// independent of the payload size — the property experiment E7 measures.
package hybrid

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"io"

	"typepre/internal/bn254"
	"typepre/internal/core"
	"typepre/internal/ibe"
)

// Errors returned by this package.
var (
	ErrDecrypt = errors.New("hybrid: decryption failed (wrong key, wrong type, or tampered payload)")
)

const (
	keySize   = 32 // AES-256
	nonceSize = 12 // GCM standard nonce
)

// demKey is the AES-256-GCM key derived from the KEM secret. It gets a
// named type so key material stays recognizable as it flows: the
// secretprint lint tracks it into any fmt/log sink.
//
// phrlint:secret — symmetric key over the record payload.
type demKey []byte

// deriveKey runs the SHA-256 KDF from the KEM's GT secret to the DEM key.
func deriveKey(k *bn254.GT) demKey {
	return demKey(bn254.KDF(bn254.DomainKDF, k, keySize))
}

// Ciphertext is a hybrid ciphertext: a PRE-encrypted KEM plus a sealed
// payload. Both parts carry the message type.
type Ciphertext struct {
	KEM     *core.Ciphertext
	Nonce   []byte
	Payload []byte // AES-GCM sealed
}

// ReCiphertext is the re-encrypted form: the KEM has been transformed by
// the proxy; the payload is untouched.
type ReCiphertext struct {
	KEM     *core.ReCiphertext
	Nonce   []byte
	Payload []byte
}

// aad builds the GCM associated data: the type label plus the KEM
// randomizer C1, which is the one KEM component preserved verbatim by
// re-encryption. Binding it detects both relabeled ciphertexts and
// mix-and-match splicing of payloads onto foreign KEMs.
func aad(t core.Type, c1 interface{ Marshal() []byte }) []byte {
	out := append([]byte(t), 0x00)
	return append(out, c1.Marshal()...)
}

// sealPayload encrypts msg under a key derived from k, authenticating the
// type label and the KEM randomizer as associated data so a relabeled or
// spliced ciphertext fails loudly. rng may be nil for crypto/rand; the
// nonce is drawn from it so a caller supplying a deterministic source (the
// workload generator's reproducible-corpus mode) gets byte-identical
// ciphertexts.
func sealPayload(k *bn254.GT, ad, msg []byte, rng io.Reader) (nonce, sealed []byte, err error) {
	key := deriveKey(k)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, nil, fmt.Errorf("hybrid: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, nil, fmt.Errorf("hybrid: %w", err)
	}
	if rng == nil {
		rng = rand.Reader
	}
	nonce = make([]byte, nonceSize)
	if _, err := io.ReadFull(rng, nonce); err != nil {
		return nil, nil, fmt.Errorf("hybrid: %w", err)
	}
	sealed = aead.Seal(nil, nonce, msg, ad)
	return nonce, sealed, nil
}

// openPayload reverses sealPayload. A wrong KEM key or a modified payload
// returns ErrDecrypt.
func openPayload(k *bn254.GT, ad, nonce, sealed []byte) ([]byte, error) {
	key := deriveKey(k)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("hybrid: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("hybrid: %w", err)
	}
	if len(nonce) != nonceSize {
		return nil, ErrDecrypt
	}
	msg, err := aead.Open(nil, nonce, sealed, ad)
	if err != nil {
		return nil, ErrDecrypt
	}
	return msg, nil
}

// Encrypt seals msg with a fresh KEM under the delegator's identity and
// the given type.
func Encrypt(d *core.Delegator, msg []byte, t core.Type, rng io.Reader) (*Ciphertext, error) {
	k, _, err := bn254.RandomGT(rng)
	if err != nil {
		return nil, fmt.Errorf("hybrid: %w", err)
	}
	kem, err := d.Encrypt(k, t, rng)
	if err != nil {
		return nil, err
	}
	nonce, sealed, err := sealPayload(k, aad(t, kem.C1), msg, rng)
	if err != nil {
		return nil, err
	}
	return &Ciphertext{KEM: kem, Nonce: nonce, Payload: sealed}, nil
}

// Decrypt opens a hybrid ciphertext with the delegator's own key.
func Decrypt(d *core.Delegator, ct *Ciphertext) ([]byte, error) {
	if ct == nil || ct.KEM == nil {
		return nil, ErrDecrypt
	}
	k, err := d.Decrypt(ct.KEM)
	if err != nil {
		return nil, err
	}
	return openPayload(k, aad(ct.KEM.Type, ct.KEM.C1), ct.Nonce, ct.Payload)
}

// reEncryptKEM transforms the KEM through the given function and copies
// the sealed payload verbatim.
func reEncryptKEM(ct *Ciphertext, transform func(*core.Ciphertext) (*core.ReCiphertext, error)) (*ReCiphertext, error) {
	if ct == nil || ct.KEM == nil {
		return nil, ErrDecrypt
	}
	kem, err := transform(ct.KEM)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, len(ct.Nonce))
	copy(nonce, ct.Nonce)
	payload := make([]byte, len(ct.Payload))
	copy(payload, ct.Payload)
	return &ReCiphertext{KEM: kem, Nonce: nonce, Payload: payload}, nil
}

// ReEncrypt transforms the KEM with the proxy key; the sealed payload is
// copied verbatim. Cost is independent of len(Payload).
func ReEncrypt(ct *Ciphertext, rk *core.ReKey) (*ReCiphertext, error) {
	return reEncryptKEM(ct, func(kem *core.Ciphertext) (*core.ReCiphertext, error) {
		return core.ReEncrypt(kem, rk)
	})
}

// ReEncryptPrepared is ReEncrypt against a prepared proxy key: repeat
// transformations of the same sealed record reuse the cached pairing
// adjustment (see core.PreparedReKey). Outputs are identical to ReEncrypt's.
func ReEncryptPrepared(ct *Ciphertext, prk *core.PreparedReKey) (*ReCiphertext, error) {
	return reEncryptKEM(ct, prk.ReEncrypt)
}

// Reseal decrypts a hybrid ciphertext with the owner's key and re-encrypts
// the payload under a new type — the owner-side primitive behind category
// key rotation (see core.VersionedType). The result carries a fresh KEM
// key and nonce; nothing of the old sealing survives, so proxy keys
// extracted for the old type cannot transform the resealed ciphertext.
func Reseal(d *core.Delegator, ct *Ciphertext, newType core.Type, rng io.Reader) (*Ciphertext, error) {
	body, err := Decrypt(d, ct)
	if err != nil {
		return nil, err
	}
	return Encrypt(d, body, newType, rng)
}

// OpenWithKEMKey unseals a hybrid ciphertext given an explicitly recovered
// KEM key. Exposed for the compromise experiments (E6/E8), which model an
// attacker who obtained the KEM key through collusion rather than through
// a legitimate decryption path.
func OpenWithKEMKey(k *bn254.GT, ct *Ciphertext) ([]byte, error) {
	if k == nil || ct == nil || ct.KEM == nil {
		return nil, ErrDecrypt
	}
	return openPayload(k, aad(ct.KEM.Type, ct.KEM.C1), ct.Nonce, ct.Payload)
}

// DecryptReEncrypted opens a re-encrypted hybrid ciphertext with the
// delegatee's KGC2 private key.
func DecryptReEncrypted(sk *ibe.PrivateKey, rct *ReCiphertext) ([]byte, error) {
	if rct == nil || rct.KEM == nil {
		return nil, ErrDecrypt
	}
	k, err := core.DecryptReEncrypted(sk, rct.KEM)
	if err != nil {
		return nil, err
	}
	return openPayload(k, aad(rct.KEM.Type, rct.KEM.C1), rct.Nonce, rct.Payload)
}
