package hybrid

import (
	"bytes"
	"testing"

	"typepre/internal/core"
	"typepre/internal/ibe"
)

type fixture struct {
	kgc1, kgc2 *ibe.KGC
	alice      *core.Delegator
	bobKey     *ibe.PrivateKey
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	kgc1, err := ibe.Setup("kgc1", nil)
	if err != nil {
		t.Fatal(err)
	}
	kgc2, err := ibe.Setup("kgc2", nil)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		kgc1:   kgc1,
		kgc2:   kgc2,
		alice:  core.NewDelegator(kgc1.Extract("alice@hospital.example")),
		bobKey: kgc2.Extract("bob@clinic.example"),
	}
}

func TestOwnerRoundTrip(t *testing.T) {
	f := newFixture(t)
	msg := []byte("diagnosis: seasonal allergy; prescription: loratadine 10mg")
	ct, err := Encrypt(f.alice, msg, "illness-history", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(f.alice, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("owner round trip failed")
	}
}

func TestDelegationRoundTrip(t *testing.T) {
	f := newFixture(t)
	msg := []byte("emergency contact: +31-6-0000-0000; blood type O−")
	ct, err := Encrypt(f.alice, msg, "emergency", nil)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := f.alice.Delegate(f.kgc2.Params(), "bob@clinic.example", "emergency", nil)
	if err != nil {
		t.Fatal(err)
	}
	rct, err := ReEncrypt(ct, rk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecryptReEncrypted(f.bobKey, rct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("delegation round trip failed")
	}
}

func TestTypeMismatchRejected(t *testing.T) {
	f := newFixture(t)
	ct, err := Encrypt(f.alice, []byte("msg"), "illness-history", nil)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := f.alice.Delegate(f.kgc2.Params(), "bob@clinic.example", "food-statistics", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReEncrypt(ct, rk); err == nil {
		t.Fatal("cross-type re-encryption accepted")
	}
}

func TestTamperedPayloadDetected(t *testing.T) {
	f := newFixture(t)
	ct, err := Encrypt(f.alice, []byte("original"), "t", nil)
	if err != nil {
		t.Fatal(err)
	}
	ct.Payload[0] ^= 0xff
	if _, err := Decrypt(f.alice, ct); err == nil {
		t.Fatal("tampered payload accepted")
	}
}

func TestRelabeledTypeDetected(t *testing.T) {
	// Changing the type label breaks both the KEM exponent and the GCM
	// associated data; decryption must fail, not return garbage.
	f := newFixture(t)
	ct, err := Encrypt(f.alice, []byte("original"), "t1", nil)
	if err != nil {
		t.Fatal(err)
	}
	ct.KEM.Type = "t2"
	if _, err := Decrypt(f.alice, ct); err == nil {
		t.Fatal("relabeled ciphertext accepted")
	}
}

func TestWrongDelegateeRejected(t *testing.T) {
	f := newFixture(t)
	eveKey := f.kgc2.Extract("eve@other.example")
	ct, _ := Encrypt(f.alice, []byte("secret"), "emergency", nil)
	rk, _ := f.alice.Delegate(f.kgc2.Params(), "bob@clinic.example", "emergency", nil)
	rct, _ := ReEncrypt(ct, rk)
	if _, err := DecryptReEncrypted(eveKey, rct); err == nil {
		t.Fatal("wrong delegatee decrypted the payload")
	}
}

func TestEmptyAndLargePayloads(t *testing.T) {
	f := newFixture(t)
	for _, size := range []int{0, 1, 255, 4096, 1 << 16} {
		msg := bytes.Repeat([]byte{0xab}, size)
		ct, err := Encrypt(f.alice, msg, "t", nil)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		got, err := Decrypt(f.alice, ct)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
	}
}

func TestReEncryptCopiesPayload(t *testing.T) {
	// Mutating the original after re-encryption must not affect the copy.
	f := newFixture(t)
	ct, _ := Encrypt(f.alice, []byte("payload"), "t", nil)
	rk, _ := f.alice.Delegate(f.kgc2.Params(), "bob@clinic.example", "t", nil)
	rct, err := ReEncrypt(ct, rk)
	if err != nil {
		t.Fatal(err)
	}
	ct.Payload[0] ^= 0xff
	if _, err := DecryptReEncrypted(f.bobKey, rct); err != nil {
		t.Fatal("re-encrypted copy affected by mutation of the original")
	}
}

func TestNilInputs(t *testing.T) {
	f := newFixture(t)
	if _, err := Decrypt(f.alice, nil); err == nil {
		t.Fatal("nil ciphertext accepted")
	}
	if _, err := ReEncrypt(nil, nil); err == nil {
		t.Fatal("nil inputs accepted")
	}
	if _, err := DecryptReEncrypted(f.bobKey, nil); err == nil {
		t.Fatal("nil reciphertext accepted")
	}
}

func TestHybridMarshalRoundTrip(t *testing.T) {
	f := newFixture(t)
	msg := []byte("serialized payload")
	ct, err := Encrypt(f.alice, msg, "t", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCiphertext(ct.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decrypt(f.alice, got)
	if err != nil || !bytes.Equal(dec, msg) {
		t.Fatalf("round-tripped hybrid ciphertext broken: %v", err)
	}

	rk, _ := f.alice.Delegate(f.kgc2.Params(), "bob@clinic.example", "t", nil)
	rct, err := ReEncrypt(got, rk)
	if err != nil {
		t.Fatal(err)
	}
	rgot, err := UnmarshalReCiphertext(rct.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	dec2, err := DecryptReEncrypted(f.bobKey, rgot)
	if err != nil || !bytes.Equal(dec2, msg) {
		t.Fatalf("round-tripped re-ciphertext broken: %v", err)
	}
}

func TestHybridUnmarshalRejectsCorrupted(t *testing.T) {
	f := newFixture(t)
	ct, _ := Encrypt(f.alice, []byte("x"), "t", nil)
	data := ct.Marshal()
	if _, err := UnmarshalCiphertext(data[:3]); err == nil {
		t.Fatal("accepted truncated header")
	}
	if _, err := UnmarshalCiphertext(data[:len(data)-1]); err == nil {
		t.Fatal("accepted truncated body")
	}
	trailing := append(append([]byte(nil), data...), 0xAA)
	if _, err := UnmarshalCiphertext(trailing); err == nil {
		t.Fatal("accepted trailing bytes")
	}
	bad := append([]byte(nil), data...)
	bad[5] ^= 0xff // inside the KEM G2 point
	if _, err := UnmarshalCiphertext(bad); err == nil {
		t.Fatal("accepted corrupted KEM")
	}
	if _, err := UnmarshalReCiphertext(data); err == nil {
		t.Fatal("decoded a first-level container as re-encrypted")
	}
}

func TestSplicedKEMDetected(t *testing.T) {
	// Splicing the payload of one ciphertext onto the KEM of another (same
	// type, same owner) must fail: the AAD binds the KEM randomizer C1.
	f := newFixture(t)
	ct1, _ := Encrypt(f.alice, []byte("payload one"), "t", nil)
	ct2, _ := Encrypt(f.alice, []byte("payload two"), "t", nil)
	spliced := &Ciphertext{KEM: ct1.KEM, Nonce: ct2.Nonce, Payload: ct2.Payload}
	if _, err := Decrypt(f.alice, spliced); err == nil {
		t.Fatal("spliced ciphertext accepted")
	}
}

func TestOpenWithKEMKey(t *testing.T) {
	f := newFixture(t)
	msg := []byte("kem key path")
	ct, _ := Encrypt(f.alice, msg, "t", nil)
	k, err := f.alice.Decrypt(ct.KEM)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OpenWithKEMKey(k, ct)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("OpenWithKEMKey failed: %v", err)
	}
	if _, err := OpenWithKEMKey(nil, ct); err == nil {
		t.Fatal("nil key accepted")
	}
}
