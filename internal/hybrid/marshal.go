package hybrid

import (
	"encoding/binary"
	"errors"
	"fmt"

	"typepre/internal/core"
)

// ErrEncoding is returned when a serialized value cannot be decoded.
var ErrEncoding = errors.New("hybrid: invalid encoding")

// Framing: KEM ‖ nonce ‖ payload, each with a 4-byte big-endian length
// prefix. The same container layout serves both ciphertext directions.

func appendChunk(out, chunk []byte) []byte {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(chunk)))
	out = append(out, lenBuf[:]...)
	return append(out, chunk...)
}

func readChunk(data []byte) ([]byte, []byte, error) {
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("%w: truncated chunk header", ErrEncoding)
	}
	n := binary.BigEndian.Uint32(data[:4])
	if uint32(len(data)-4) < n {
		return nil, nil, fmt.Errorf("%w: truncated chunk body", ErrEncoding)
	}
	return data[4 : 4+n], data[4+n:], nil
}

// Marshal encodes the hybrid ciphertext.
func (c *Ciphertext) Marshal() []byte {
	kem := c.KEM.Marshal()
	out := make([]byte, 0, 12+len(kem)+len(c.Nonce)+len(c.Payload))
	out = appendChunk(out, kem)
	out = appendChunk(out, c.Nonce)
	out = appendChunk(out, c.Payload)
	return out
}

// UnmarshalCiphertext decodes a hybrid ciphertext produced by Marshal.
func UnmarshalCiphertext(data []byte) (*Ciphertext, error) {
	kem, data, err := readChunk(data)
	if err != nil {
		return nil, err
	}
	nonce, data, err := readChunk(data)
	if err != nil {
		return nil, err
	}
	payload, rest, err := readChunk(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrEncoding)
	}
	kemCT, err := core.UnmarshalCiphertext(kem)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEncoding, err)
	}
	return &Ciphertext{KEM: kemCT, Nonce: cloneBytes(nonce), Payload: cloneBytes(payload)}, nil
}

// Marshal encodes the re-encrypted hybrid ciphertext.
func (c *ReCiphertext) Marshal() []byte {
	kem := c.KEM.Marshal()
	out := make([]byte, 0, 12+len(kem)+len(c.Nonce)+len(c.Payload))
	out = appendChunk(out, kem)
	out = appendChunk(out, c.Nonce)
	out = appendChunk(out, c.Payload)
	return out
}

// AppendTo appends the Marshal encoding to out and returns the extended
// slice, letting hot serving paths (the HTTP frame writer's buffer pool)
// reuse one backing array across containers instead of allocating per
// response.
func (c *ReCiphertext) AppendTo(out []byte) []byte {
	out = appendChunk(out, c.KEM.Marshal())
	out = appendChunk(out, c.Nonce)
	return appendChunk(out, c.Payload)
}

// UnmarshalReCiphertext decodes a re-encrypted hybrid ciphertext.
func UnmarshalReCiphertext(data []byte) (*ReCiphertext, error) {
	kem, data, err := readChunk(data)
	if err != nil {
		return nil, err
	}
	nonce, data, err := readChunk(data)
	if err != nil {
		return nil, err
	}
	payload, rest, err := readChunk(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrEncoding)
	}
	kemCT, err := core.UnmarshalReCiphertext(kem)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEncoding, err)
	}
	return &ReCiphertext{KEM: kemCT, Nonce: cloneBytes(nonce), Payload: cloneBytes(payload)}, nil
}

func cloneBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
