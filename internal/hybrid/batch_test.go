package hybrid

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"typepre/internal/core"
)

// batchFixture seals n distinct payloads under one (identity, type) pair
// and prepares the matching proxy key.
func batchFixture(t *testing.T, n int) (*fixture, []*Ciphertext, [][]byte, *core.PreparedReKey) {
	t.Helper()
	f := newFixture(t)
	cts := make([]*Ciphertext, n)
	bodies := make([][]byte, n)
	for i := range cts {
		bodies[i] = []byte(fmt.Sprintf("record %03d body", i))
		ct, err := Encrypt(f.alice, bodies[i], "emergency", nil)
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = ct
	}
	rk, err := f.alice.Delegate(f.kgc2.Params(), "bob@clinic.example", "emergency", nil)
	if err != nil {
		t.Fatal(err)
	}
	return f, cts, bodies, core.PrepareReKey(rk)
}

// TestReEncryptBatchMatchesSerial pins the parallel path to the serial one:
// same order, byte-identical plaintexts after delegatee decryption.
func TestReEncryptBatchMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 3, 17} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			f, cts, bodies, prk := batchFixture(t, n)
			for _, workers := range []int{0, 1, 4, 64} {
				rcts, err := ReEncryptBatch(cts, prk, workers)
				if err != nil {
					t.Fatal(err)
				}
				if len(rcts) != n {
					t.Fatalf("workers=%d: got %d results, want %d", workers, len(rcts), n)
				}
				for i, rct := range rcts {
					got, err := DecryptReEncrypted(f.bobKey, rct)
					if err != nil {
						t.Fatalf("workers=%d item %d: %v", workers, i, err)
					}
					if !bytes.Equal(got, bodies[i]) {
						t.Fatalf("workers=%d item %d: plaintext mismatch (order broken?)", workers, i)
					}
				}
			}
		})
	}
}

// TestReEncryptStreamOrderAndBoundedWindow checks ordered emission and that
// a slow consumer throttles dispatch instead of letting results pile up.
func TestReEncryptStreamOrderAndBoundedWindow(t *testing.T) {
	f, cts, bodies, prk := batchFixture(t, 12)
	workers := 3
	seen := 0
	err := ReEncryptStream(cts, prk, workers, func(rct *ReCiphertext) error {
		got, err := DecryptReEncrypted(f.bobKey, rct)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, bodies[seen]) {
			return fmt.Errorf("item %d out of order", seen)
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(cts) {
		t.Fatalf("yielded %d items, want %d", seen, len(cts))
	}
}

// TestReEncryptStreamPropagatesErrors covers both failure sources: a bad
// input ciphertext and a yield that rejects mid-stream.
func TestReEncryptStreamPropagatesErrors(t *testing.T) {
	_, cts, _, prk := batchFixture(t, 9)
	cts[4] = &Ciphertext{} // nil KEM → ErrDecrypt from ReEncryptPrepared
	err := ReEncryptStream(cts, prk, 4, func(*ReCiphertext) error { return nil })
	if err == nil {
		t.Fatal("bad ciphertext did not fail the stream")
	}

	_, cts, _, prk = batchFixture(t, 9)
	sentinel := errors.New("consumer says stop")
	yields := 0
	err = ReEncryptStream(cts, prk, 4, func(*ReCiphertext) error {
		yields++
		if yields == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want the yield error", err)
	}
	if yields != 3 {
		t.Fatalf("yield ran %d times after erroring at 3", yields)
	}
}

// TestReEncryptBatchConcurrentCallers exercises one shared PreparedReKey
// from many batches at once (the race-detector target for the pool and the
// adjustment cache).
func TestReEncryptBatchConcurrentCallers(t *testing.T) {
	f, cts, bodies, prk := batchFixture(t, 8)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rcts, err := ReEncryptBatch(cts, prk, 4)
			if err != nil {
				errs <- err
				return
			}
			for i, rct := range rcts {
				got, err := DecryptReEncrypted(f.bobKey, rct)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, bodies[i]) {
					errs <- fmt.Errorf("concurrent caller: item %d mismatch", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
