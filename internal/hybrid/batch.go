package hybrid

import (
	"runtime"
	"sync"

	"typepre/internal/core"
)

// Batch re-encryption: the bulk-disclosure hot path. A proxy serving
// "disclose my whole emergency file" transforms many independent sealed
// records with one prepared proxy key; the transformations share nothing
// but the (concurrency-safe) adjustment cache, so they parallelize
// perfectly. ReEncryptStream fans the work across a bounded worker pool
// and hands results back in input order as they complete, so a caller can
// stream them to the network without buffering the whole batch.

// DefaultBatchWorkers is the worker-pool size used when a caller passes
// workers <= 0: one worker per schedulable CPU.
func DefaultBatchWorkers() int { return runtime.GOMAXPROCS(0) }

// ReEncryptStream transforms every ciphertext with the prepared proxy key
// across a pool of `workers` goroutines (DefaultBatchWorkers when <= 0)
// and calls yield exactly once per completed input, in input order, as
// results become available. Dispatch is throttled to the emit frontier:
// at most ~2×workers items are in flight or waiting un-emitted, so memory
// stays O(workers) regardless of len(cts).
//
// The first re-encryption or yield error stops the pool and is returned;
// yield is never called again after it returns an error. yield runs on
// the calling goroutine.
func ReEncryptStream(cts []*Ciphertext, prk *core.PreparedReKey, workers int, yield func(*ReCiphertext) error) error {
	if workers <= 0 {
		workers = DefaultBatchWorkers()
	}
	if workers > len(cts) {
		workers = len(cts)
	}
	if workers <= 1 {
		for _, ct := range cts {
			rct, err := ReEncryptPrepared(ct, prk)
			if err != nil {
				return err
			}
			if err := yield(rct); err != nil {
				return err
			}
		}
		return nil
	}

	type result struct {
		rct *ReCiphertext
		err error
	}
	type job struct {
		ct  *Ciphertext
		out chan result
	}

	jobs := make(chan job)
	// pending carries each item's result slot in dispatch (= input) order.
	// Its capacity is the emit window: once `workers` results wait
	// un-emitted the dispatcher stalls, bounding buffered output.
	pending := make(chan chan result, workers)
	done := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case j, ok := <-jobs:
					if !ok {
						return
					}
					rct, err := ReEncryptPrepared(j.ct, prk)
					j.out <- result{rct, err} // cap 1: never blocks
				case <-done:
					return
				}
			}
		}()
	}
	go func() { // dispatcher
		defer close(jobs)
		for _, ct := range cts {
			out := make(chan result, 1)
			select {
			case pending <- out:
			case <-done:
				return
			}
			select {
			case jobs <- job{ct, out}:
			case <-done:
				return
			}
		}
	}()
	defer func() {
		close(done)
		wg.Wait()
	}()

	for range cts {
		r := <-<-pending
		if r.err != nil {
			return r.err
		}
		if err := yield(r.rct); err != nil {
			return err
		}
	}
	return nil
}

// ReEncryptBatch is ReEncryptStream collected into a slice: every
// ciphertext transformed with the prepared proxy key, in input order.
// Outputs are element-wise identical to serial ReEncryptPrepared calls.
func ReEncryptBatch(cts []*Ciphertext, prk *core.PreparedReKey, workers int) ([]*ReCiphertext, error) {
	out := make([]*ReCiphertext, 0, len(cts))
	err := ReEncryptStream(cts, prk, workers, func(rct *ReCiphertext) error {
		out = append(out, rct)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
