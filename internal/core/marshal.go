package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"typepre/internal/bn254"
	"typepre/internal/ibe"
)

// ErrEncoding is returned when a serialized value cannot be decoded.
var ErrEncoding = errors.New("core: invalid encoding")

func appendString(out []byte, s string) []byte {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(s)))
	out = append(out, lenBuf[:]...)
	return append(out, s...)
}

func readString(data []byte) (string, []byte, error) {
	if len(data) < 4 {
		return "", nil, fmt.Errorf("%w: truncated string", ErrEncoding)
	}
	n := binary.BigEndian.Uint32(data[:4])
	if uint32(len(data)-4) < n {
		return "", nil, fmt.Errorf("%w: truncated string body", ErrEncoding)
	}
	return string(data[4 : 4+n]), data[4+n:], nil
}

// Marshal encodes the ciphertext as C1‖C2‖len(Type)‖Type.
func (c *Ciphertext) Marshal() []byte {
	out := make([]byte, 0, bn254.G2Size+bn254.GTSize+4+len(c.Type))
	out = append(out, c.C1.Marshal()...)
	out = append(out, c.C2.Marshal()...)
	out = appendString(out, string(c.Type))
	return out
}

// UnmarshalCiphertext decodes a Ciphertext produced by Marshal.
func UnmarshalCiphertext(data []byte) (*Ciphertext, error) {
	if len(data) < bn254.G2Size+bn254.GTSize+4 {
		return nil, fmt.Errorf("%w: ciphertext too short", ErrEncoding)
	}
	var c1 bn254.G2
	if err := c1.Unmarshal(data[:bn254.G2Size]); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEncoding, err)
	}
	data = data[bn254.G2Size:]
	var c2 bn254.GT
	if err := c2.Unmarshal(data[:bn254.GTSize]); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEncoding, err)
	}
	data = data[bn254.GTSize:]
	t, rest, err := readString(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrEncoding)
	}
	return &Ciphertext{C1: &c1, C2: &c2, Type: Type(t)}, nil
}

// Marshal encodes the proxy key as
// len(Type)‖Type‖len(DelegatorID)‖DelegatorID‖len(DelegateeID)‖DelegateeID‖RK‖EncX.
func (rk *ReKey) Marshal() []byte {
	encX := rk.EncX.Marshal()
	out := make([]byte, 0, 12+len(rk.Type)+len(rk.DelegatorID)+len(rk.DelegateeID)+bn254.G1Size+len(encX))
	out = appendString(out, string(rk.Type))
	out = appendString(out, rk.DelegatorID)
	out = appendString(out, rk.DelegateeID)
	out = append(out, rk.RK.Marshal()...)
	out = append(out, encX...)
	return out
}

// UnmarshalReKey decodes a ReKey produced by Marshal.
func UnmarshalReKey(data []byte) (*ReKey, error) {
	t, data, err := readString(data)
	if err != nil {
		return nil, err
	}
	delegator, data, err := readString(data)
	if err != nil {
		return nil, err
	}
	delegatee, data, err := readString(data)
	if err != nil {
		return nil, err
	}
	if len(data) != bn254.G1Size+ibe.CiphertextSize {
		return nil, fmt.Errorf("%w: rekey body length %d", ErrEncoding, len(data))
	}
	var rk bn254.G1
	if err := rk.Unmarshal(data[:bn254.G1Size]); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEncoding, err)
	}
	encX, err := ibe.UnmarshalCiphertext(data[bn254.G1Size:])
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEncoding, err)
	}
	return &ReKey{
		Type:        Type(t),
		DelegatorID: delegator,
		DelegateeID: delegatee,
		RK:          &rk,
		EncX:        encX,
	}, nil
}

// Marshal encodes the re-encrypted ciphertext.
func (rc *ReCiphertext) Marshal() []byte {
	encX := rc.EncX.Marshal()
	out := make([]byte, 0, bn254.G2Size+bn254.GTSize+12+len(rc.Type)+len(rc.DelegatorID)+len(rc.DelegateeID)+len(encX))
	out = append(out, rc.C1.Marshal()...)
	out = append(out, rc.C2.Marshal()...)
	out = appendString(out, string(rc.Type))
	out = appendString(out, rc.DelegatorID)
	out = appendString(out, rc.DelegateeID)
	out = append(out, encX...)
	return out
}

// UnmarshalReCiphertext decodes a ReCiphertext produced by Marshal.
func UnmarshalReCiphertext(data []byte) (*ReCiphertext, error) {
	if len(data) < bn254.G2Size+bn254.GTSize {
		return nil, fmt.Errorf("%w: reciphertext too short", ErrEncoding)
	}
	var c1 bn254.G2
	if err := c1.Unmarshal(data[:bn254.G2Size]); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEncoding, err)
	}
	data = data[bn254.G2Size:]
	var c2 bn254.GT
	if err := c2.Unmarshal(data[:bn254.GTSize]); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEncoding, err)
	}
	data = data[bn254.GTSize:]
	t, data, err := readString(data)
	if err != nil {
		return nil, err
	}
	delegator, data, err := readString(data)
	if err != nil {
		return nil, err
	}
	delegatee, data, err := readString(data)
	if err != nil {
		return nil, err
	}
	encX, err := ibe.UnmarshalCiphertext(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEncoding, err)
	}
	return &ReCiphertext{
		C1:          &c1,
		C2:          &c2,
		Type:        Type(t),
		DelegatorID: delegator,
		DelegateeID: delegatee,
		EncX:        encX,
	}, nil
}
