// Package core implements the paper's primary contribution: the
// type-and-identity-based proxy re-encryption scheme of Section 4.1,
// built on the modified Boneh–Franklin IBE of package ibe.
//
// Roles and algorithms (notation as in the paper):
//
//	Encrypt1(m, t, id):   c = (g₂^r,  m · ê(pk_id, pk₁)^(r·H2(sk_id‖t)),  t)
//	Decrypt1(c, sk_id):   m = c2 / ê(sk_id, c1)^H2(sk_id‖c3)
//	Pextract(id_i→id_j, t): rk = (t,  sk_id^(−H2(sk_id‖t)) · H1(X),  Encrypt2(X, id_j))
//	Preenc(c, rk):        c' = (c1,  c2 · ê(rk, c1),  Encrypt2(X, id_j))
//	delegatee decrypt:    m = c'2 / ê(H1(X), c'1),  X = Decrypt2(c'3, sk_idj)
//
// Only the delegator can produce type-t ciphertexts under his identity,
// because the type exponent H2(sk_id‖t) involves his private key. A proxy
// key transforms exactly the ciphertexts whose type it was extracted for;
// this is the fine-grained delegation property the paper is about.
//
// The delegator and delegatee may belong to different KGCs (KGC1 and KGC2)
// that share only the group parameters, matching the paper's setting.
package core

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"typepre/internal/bn254"
	"typepre/internal/ibe"
)

// Errors returned by this package.
var (
	// ErrTypeMismatch is returned by ReEncrypt when the proxy key was
	// extracted for a different message type than the ciphertext carries.
	ErrTypeMismatch = errors.New("core: proxy key type does not match ciphertext type")
	// ErrDecrypt is returned when decryption inputs are malformed.
	ErrDecrypt = errors.New("core: decryption failed")
)

// Type is a message category chosen by the delegator (the paper's t ∈
// {0,1}*). Examples in the PHR application: "illness-history",
// "food-statistics", "emergency".
type Type string

// Delegator wraps the private key of the party who encrypts, categorizes
// and delegates messages. It caches ê(sk_id, g₂) = ê(pk_id, pk₁), which
// makes Encrypt pairing-free.
//
// phrlint:secret — wraps the identity private key.
type Delegator struct {
	key *ibe.PrivateKey
	// base is ê(pk_id, pk₁), the pairing value every ciphertext masks
	// the message with (before the type exponent).
	base *bn254.GT
}

// NewDelegator builds a Delegator from an extracted KGC1 private key.
func NewDelegator(key *ibe.PrivateKey) *Delegator {
	// ê(pk_id, pk₁) = ê(H1(id)^α, g₂) = ê(sk_id, g₂), computed against the
	// prepared form of the fixed generator.
	base := bn254.PairPrepared(key.SK, bn254.G2GeneratorPrepared())
	return &Delegator{key: key, base: base}
}

// ID returns the delegator's identity string.
func (d *Delegator) ID() string { return d.key.ID }

// Key exposes the underlying IBE private key (used by the security games
// and by callers that persist keys).
func (d *Delegator) Key() *ibe.PrivateKey { return d.key }

// typeExponent computes H2(sk_id‖t) ∈ Z*_r, the per-type exponent that
// binds a ciphertext (and a proxy key) to one message category.
func (d *Delegator) typeExponent(t Type) *big.Int {
	return TypeExponent(d.key, t)
}

// TypeExponent computes H2(sk‖t) for an explicit private key. Exposed for
// the security-game challengers, which manage keys directly.
func TypeExponent(key *ibe.PrivateKey, t Type) *big.Int {
	msg := append(key.SK.Marshal(), []byte(t)...)
	return bn254.HashToZr(bn254.DomainZr, msg)
}

// Ciphertext is a typed first-level ciphertext c = (c1, c2, c3): only the
// delegator (or a delegatee via a type-t proxy key) can open it.
type Ciphertext struct {
	C1   *bn254.G2
	C2   *bn254.GT
	Type Type // the paper's c3
}

// Encrypt encrypts a GT message under the delegator's identity with the
// given type (the paper's Encrypt1). rng may be nil for crypto/rand.
func (d *Delegator) Encrypt(m *bn254.GT, t Type, rng io.Reader) (*Ciphertext, error) {
	r, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("core: encrypt: %w", err)
	}
	return d.encryptWithR(m, t, r), nil
}

// encryptWithR is the deterministic core of Encrypt (used by the games).
func (d *Delegator) encryptWithR(m *bn254.GT, t Type, r *big.Int) *Ciphertext {
	var c1 bn254.G2
	c1.ScalarBaseMult(r)

	exp := new(big.Int).Mul(r, d.typeExponent(t))
	var c2 bn254.GT
	c2.Exp(d.base, exp)
	c2.Mul(m, &c2)

	return &Ciphertext{C1: &c1, C2: &c2, Type: t}
}

// Decrypt opens a first-level ciphertext with the delegator's own key
// (the paper's Decrypt1).
func (d *Delegator) Decrypt(ct *Ciphertext) (*bn254.GT, error) {
	if ct == nil || ct.C1 == nil || ct.C2 == nil {
		return nil, ErrDecrypt
	}
	den := bn254.Pair(d.key.SK, ct.C1)
	var denH bn254.GT
	denH.Exp(den, d.typeExponent(ct.Type))
	var m bn254.GT
	m.Div(ct.C2, &denH)
	return &m, nil
}

// ReKey is a proxy re-encryption key rk_{id_i→id_j} for one message type
// (the paper's Pextract output). It lets a proxy transform type-t
// ciphertexts of the delegator into ciphertexts the delegatee can open; it
// reveals nothing that opens other types (Theorem 1).
type ReKey struct {
	Type        Type
	DelegatorID string
	DelegateeID string
	// RK = sk_id^(−H2(sk_id‖t)) · H1(X) ∈ G1.
	RK *bn254.G1
	// EncX = Encrypt2(X, id_j): the random GT element X encrypted to the
	// delegatee under KGC2.
	EncX *ibe.Ciphertext
}

// Delegate produces a proxy key that delegates the decryption right for
// messages of type t to delegateeID, who is registered at the KGC described
// by delegateeParams (the paper's Pextract). It is non-interactive: only
// the delegator's key is involved.
func (d *Delegator) Delegate(delegateeParams *ibe.Params, delegateeID string, t Type, rng io.Reader) (*ReKey, error) {
	x, _, err := bn254.RandomGT(rng)
	if err != nil {
		return nil, fmt.Errorf("core: delegate: %w", err)
	}
	encX, err := ibe.Encrypt(delegateeParams, delegateeID, x, rng)
	if err != nil {
		return nil, fmt.Errorf("core: delegate: %w", err)
	}

	// RK = sk^(−h) · H1(X) where h = H2(sk‖t).
	h := d.typeExponent(t)
	negH := new(big.Int).Neg(h)
	var rk bn254.G1
	rk.ScalarMult(d.key.SK, negH)
	rk.Add(&rk, HashGTToG1(x))

	return &ReKey{
		Type:        t,
		DelegatorID: d.key.ID,
		DelegateeID: delegateeID,
		RK:          &rk,
		EncX:        encX,
	}, nil
}

// HashGTToG1 is the H1: GT → G1 oracle applied to the delegation secret X.
func HashGTToG1(x *bn254.GT) *bn254.G1 {
	return bn254.HashToG1(bn254.DomainG1+"/gt", x.Marshal())
}

// ReCiphertext is a re-encrypted (second-level) ciphertext
// c' = (c1, c2·ê(rk, c1), Encrypt2(X, id_j)) that the delegatee opens with
// only his own KGC2 private key.
type ReCiphertext struct {
	C1          *bn254.G2
	C2          *bn254.GT
	Type        Type
	DelegatorID string
	DelegateeID string
	EncX        *ibe.Ciphertext
}

// validateReEncrypt checks the inputs shared by the plain and prepared
// transformation paths.
func validateReEncrypt(ct *Ciphertext, rk *ReKey) error {
	if ct == nil || rk == nil || ct.C1 == nil || ct.C2 == nil || rk.RK == nil {
		return ErrDecrypt
	}
	if ct.Type != rk.Type {
		return fmt.Errorf("%w: ciphertext %q, proxy key %q", ErrTypeMismatch, ct.Type, rk.Type)
	}
	return nil
}

// reEncryptWithAdjustment assembles the transformed ciphertext from the
// adjustment adj = ê(rk, c1), however the caller obtained it.
func reEncryptWithAdjustment(ct *Ciphertext, rk *ReKey, adj *bn254.GT) *ReCiphertext {
	var c2 bn254.GT
	c2.Mul(ct.C2, adj) // = m · ê(g₂^r, H1(X))

	var c1 bn254.G2
	c1.Set(ct.C1)
	return &ReCiphertext{
		C1:          &c1,
		C2:          &c2,
		Type:        ct.Type,
		DelegatorID: rk.DelegatorID,
		DelegateeID: rk.DelegateeID,
		EncX:        rk.EncX,
	}
}

// ReEncrypt is the proxy's transformation (the paper's Preenc). It fails
// with ErrTypeMismatch when the proxy key was extracted for a different
// type: the proxy cannot widen its own delegation.
func ReEncrypt(ct *Ciphertext, rk *ReKey) (*ReCiphertext, error) {
	if err := validateReEncrypt(ct, rk); err != nil {
		return nil, err
	}
	adj := bn254.Pair(rk.RK, ct.C1) // ê(sk^(−h)·H1(X), g₂^r)
	return reEncryptWithAdjustment(ct, rk, adj), nil
}

// DecryptReEncrypted opens a re-encrypted ciphertext with the delegatee's
// KGC2 private key: X = Decrypt2(EncX), m = c2 / ê(H1(X), c1).
func DecryptReEncrypted(sk *ibe.PrivateKey, rct *ReCiphertext) (*bn254.GT, error) {
	if rct == nil || rct.C1 == nil || rct.C2 == nil || rct.EncX == nil {
		return nil, ErrDecrypt
	}
	x, err := ibe.Decrypt(sk, rct.EncX)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	den := bn254.Pair(HashGTToG1(x), rct.C1)
	var m bn254.GT
	m.Div(rct.C2, den)
	return &m, nil
}

// TypeKey is the "weak" secret sk_id^H2(sk_id‖t) that a colluding proxy and
// delegatee can jointly reconstruct for a delegated type t (§4.3,
// collusion-safety discussion). It opens every type-t ciphertext of the
// delegator — which the delegatee was entitled to read anyway — and nothing
// else. The master key sk_id remains hidden.
//
// phrlint:secret — opens every type-t ciphertext of the delegator.
type TypeKey struct {
	Type Type
	K    *bn254.G1 // sk_id^H2(sk_id‖t)
}

// RecoverTypeKey simulates the proxy–delegatee collusion of §4.3: given the
// proxy key and the delegatee's private key, reconstruct the type key
// (RK / H1(X))^(−1) = sk^h.
func RecoverTypeKey(rk *ReKey, delegateeKey *ibe.PrivateKey) (*TypeKey, error) {
	x, err := ibe.Decrypt(delegateeKey, rk.EncX)
	if err != nil {
		return nil, fmt.Errorf("core: recover type key: %w", err)
	}
	var k bn254.G1
	k.Neg(HashGTToG1(x)) // −H1(X)
	k.Add(rk.RK, &k)     // sk^(−h)
	k.Neg(&k)            // sk^h
	return &TypeKey{Type: rk.Type, K: &k}, nil
}

// DecryptWithTypeKey opens a first-level type-t ciphertext using only the
// recovered type key: m = c2 / ê(sk^h, c1). It returns garbage (a wrong
// group element) when applied to ciphertexts of a different type — exactly
// the isolation property Theorem 1 guarantees.
func DecryptWithTypeKey(tk *TypeKey, ct *Ciphertext) (*bn254.GT, error) {
	if tk == nil || tk.K == nil || ct == nil || ct.C1 == nil || ct.C2 == nil {
		return nil, ErrDecrypt
	}
	den := bn254.Pair(tk.K, ct.C1)
	var m bn254.GT
	m.Div(ct.C2, den)
	return &m, nil
}
