package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"typepre/internal/bn254"
	"typepre/internal/ibe"
)

// TestPreparedReKeyMatchesReEncrypt pins the prepared transformation to the
// plain one: identical outputs on first use and on cache hits.
func TestPreparedReKeyMatchesReEncrypt(t *testing.T) {
	kgc1, err := ibe.Setup("prk-kgc1", nil)
	if err != nil {
		t.Fatal(err)
	}
	kgc2, err := ibe.Setup("prk-kgc2", nil)
	if err != nil {
		t.Fatal(err)
	}
	alice := NewDelegator(kgc1.Extract("alice@prk"))
	bobKey := kgc2.Extract("bob@prk")

	m, _, err := bn254.RandomGT(nil)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := alice.Delegate(kgc2.Params(), "bob@prk", "t", nil)
	if err != nil {
		t.Fatal(err)
	}
	prk := PrepareReKey(rk)
	if prk.ReKey() != rk {
		t.Fatal("PreparedReKey does not expose the wrapped rekey")
	}

	for i := 0; i < 3; i++ {
		ct, err := alice.Encrypt(m, "t", nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ReEncrypt(ct, rk)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 2; rep++ { // second pass exercises the cache hit
			got, err := prk.ReEncrypt(ct)
			if err != nil {
				t.Fatal(err)
			}
			if !got.C1.Equal(want.C1) || !got.C2.Equal(want.C2) || got.Type != want.Type {
				t.Fatalf("ct %d rep %d: prepared re-encryption differs from plain", i, rep)
			}
			dec, err := DecryptReEncrypted(bobKey, got)
			if err != nil {
				t.Fatal(err)
			}
			if !dec.Equal(m) {
				t.Fatalf("ct %d rep %d: delegatee decryption failed", i, rep)
			}
		}
	}
}

// TestPreparedReKeyConcurrentReEncrypt hammers one prepared key from many
// goroutines over a mix of cold and warm ciphertexts — the access pattern
// of the batch-disclosure worker pool — and pins every output to the plain
// transformation. Run under -race in CI.
func TestPreparedReKeyConcurrentReEncrypt(t *testing.T) {
	kgc1, err := ibe.Setup("prk-cc-kgc1", nil)
	if err != nil {
		t.Fatal(err)
	}
	kgc2, err := ibe.Setup("prk-cc-kgc2", nil)
	if err != nil {
		t.Fatal(err)
	}
	alice := NewDelegator(kgc1.Extract("alice@cc"))
	m, _, err := bn254.RandomGT(nil)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := alice.Delegate(kgc2.Params(), "bob@cc", "t", nil)
	if err != nil {
		t.Fatal(err)
	}
	prk := PrepareReKey(rk)

	const nCT = 6
	cts := make([]*Ciphertext, nCT)
	want := make([]*ReCiphertext, nCT)
	for i := range cts {
		ct, err := alice.Encrypt(m, "t", nil)
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = ct
		if want[i], err = ReEncrypt(ct, rk); err != nil {
			t.Fatal(err)
		}
	}
	prk.ReEncrypt(cts[0]) // warm one entry so hits and misses interleave

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				j := (g + i) % nCT
				got, err := prk.ReEncrypt(cts[j])
				if err != nil {
					errs <- err
					return
				}
				if !got.C1.Equal(want[j].C1) || !got.C2.Equal(want[j].C2) || got.Type != want[j].Type {
					errs <- fmt.Errorf("goroutine %d: ct %d diverged from plain ReEncrypt", g, j)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPreparedReKeyTypeMismatch keeps the type-enforcement behavior of the
// plain path.
func TestPreparedReKeyTypeMismatch(t *testing.T) {
	kgc1, err := ibe.Setup("prk-mm-kgc1", nil)
	if err != nil {
		t.Fatal(err)
	}
	kgc2, err := ibe.Setup("prk-mm-kgc2", nil)
	if err != nil {
		t.Fatal(err)
	}
	alice := NewDelegator(kgc1.Extract("alice@mm"))
	m, _, err := bn254.RandomGT(nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := alice.Encrypt(m, "type-a", nil)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := alice.Delegate(kgc2.Params(), "bob@mm", "type-b", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PrepareReKey(rk).ReEncrypt(ct); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("got %v, want ErrTypeMismatch", err)
	}
	if _, err := PrepareReKey(rk).ReEncrypt(nil); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("got %v, want ErrDecrypt", err)
	}
}
