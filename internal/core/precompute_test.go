package core

import (
	"errors"
	"testing"

	"typepre/internal/bn254"
	"typepre/internal/ibe"
)

// TestPreparedReKeyMatchesReEncrypt pins the prepared transformation to the
// plain one: identical outputs on first use and on cache hits.
func TestPreparedReKeyMatchesReEncrypt(t *testing.T) {
	kgc1, err := ibe.Setup("prk-kgc1", nil)
	if err != nil {
		t.Fatal(err)
	}
	kgc2, err := ibe.Setup("prk-kgc2", nil)
	if err != nil {
		t.Fatal(err)
	}
	alice := NewDelegator(kgc1.Extract("alice@prk"))
	bobKey := kgc2.Extract("bob@prk")

	m, _, err := bn254.RandomGT(nil)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := alice.Delegate(kgc2.Params(), "bob@prk", "t", nil)
	if err != nil {
		t.Fatal(err)
	}
	prk := PrepareReKey(rk)
	if prk.ReKey() != rk {
		t.Fatal("PreparedReKey does not expose the wrapped rekey")
	}

	for i := 0; i < 3; i++ {
		ct, err := alice.Encrypt(m, "t", nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ReEncrypt(ct, rk)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 2; rep++ { // second pass exercises the cache hit
			got, err := prk.ReEncrypt(ct)
			if err != nil {
				t.Fatal(err)
			}
			if !got.C1.Equal(want.C1) || !got.C2.Equal(want.C2) || got.Type != want.Type {
				t.Fatalf("ct %d rep %d: prepared re-encryption differs from plain", i, rep)
			}
			dec, err := DecryptReEncrypted(bobKey, got)
			if err != nil {
				t.Fatal(err)
			}
			if !dec.Equal(m) {
				t.Fatalf("ct %d rep %d: delegatee decryption failed", i, rep)
			}
		}
	}
}

// TestPreparedReKeyTypeMismatch keeps the type-enforcement behavior of the
// plain path.
func TestPreparedReKeyTypeMismatch(t *testing.T) {
	kgc1, err := ibe.Setup("prk-mm-kgc1", nil)
	if err != nil {
		t.Fatal(err)
	}
	kgc2, err := ibe.Setup("prk-mm-kgc2", nil)
	if err != nil {
		t.Fatal(err)
	}
	alice := NewDelegator(kgc1.Extract("alice@mm"))
	m, _, err := bn254.RandomGT(nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := alice.Encrypt(m, "type-a", nil)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := alice.Delegate(kgc2.Params(), "bob@mm", "type-b", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PrepareReKey(rk).ReEncrypt(ct); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("got %v, want ErrTypeMismatch", err)
	}
	if _, err := PrepareReKey(rk).ReEncrypt(nil); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("got %v, want ErrDecrypt", err)
	}
}
