package core

import (
	"errors"
	"testing"

	"typepre/internal/ibe"
)

func TestVersionedTypeRoundTrip(t *testing.T) {
	cases := []struct {
		base  Type
		epoch int
		want  Type
	}{
		{"emergency", 0, "emergency"},
		{"emergency", 1, "emergency#e1"},
		{"emergency", 12, "emergency#e12"},
		{"lab-results", 3, "lab-results#e3"},
	}
	for _, c := range cases {
		got := VersionedType(c.base, c.epoch)
		if got != c.want {
			t.Fatalf("VersionedType(%q, %d) = %q, want %q", c.base, c.epoch, got, c.want)
		}
		base, epoch := SplitType(got)
		if base != c.base || epoch != c.epoch {
			t.Fatalf("SplitType(%q) = (%q, %d), want (%q, %d)", got, base, epoch, c.base, c.epoch)
		}
	}
}

func TestSplitTypeRejectsNonCanonicalSuffixes(t *testing.T) {
	// Suffixes that are not a canonical epoch must be treated as part of
	// the base type, not silently aliased onto an epoch.
	for _, s := range []Type{"t#e", "t#e0", "t#e01", "t#e1x", "t#exyz", "plain"} {
		base, epoch := SplitType(s)
		if base != s || epoch != 0 {
			t.Fatalf("SplitType(%q) = (%q, %d), want (%q, 0)", s, base, epoch, s)
		}
	}
}

func TestRotateMovesCiphertextBetweenEpochs(t *testing.T) {
	kgc1, err := ibe.Setup("rot-kgc1", nil)
	if err != nil {
		t.Fatal(err)
	}
	kgc2, err := ibe.Setup("rot-kgc2", nil)
	if err != nil {
		t.Fatal(err)
	}
	alice := NewDelegator(kgc1.Extract("alice@rotate"))
	bobKey := kgc2.Extract("bob@rotate")

	m, err := randomGTForFuzz()
	if err != nil {
		t.Fatal(err)
	}
	oldType := VersionedType("medication", 0)
	newType := VersionedType("medication", 1)
	ct, err := alice.Encrypt(m, oldType, nil)
	if err != nil {
		t.Fatal(err)
	}
	oldRK, err := alice.Delegate(kgc2.Params(), bobKey.ID, oldType, nil)
	if err != nil {
		t.Fatal(err)
	}

	rotated, err := alice.Rotate(ct, newType, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rotated.Type != newType {
		t.Fatalf("rotated type = %q, want %q", rotated.Type, newType)
	}
	// The owner still opens the rotated ciphertext.
	got, err := alice.Decrypt(rotated)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("owner cannot open rotated ciphertext")
	}
	// The pre-rotation proxy key no longer transforms it.
	if _, err := ReEncrypt(rotated, oldRK); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("stale rekey on rotated ciphertext: want ErrTypeMismatch, got %v", err)
	}
	// A fresh epoch-1 delegation restores disclosure.
	newRK, err := alice.Delegate(kgc2.Params(), bobKey.ID, newType, nil)
	if err != nil {
		t.Fatal(err)
	}
	rct, err := ReEncrypt(rotated, newRK)
	if err != nil {
		t.Fatal(err)
	}
	opened, err := DecryptReEncrypted(bobKey, rct)
	if err != nil {
		t.Fatal(err)
	}
	if !opened.Equal(m) {
		t.Fatal("fresh rekey does not open rotated ciphertext")
	}
}
