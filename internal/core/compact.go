package core

import (
	"fmt"

	"typepre/internal/bn254"
	"typepre/internal/ibe"
)

// Compact encodings: identical structure to Marshal but with compressed
// elliptic-curve points (G2: 128→65 bytes, G1: 64→33 bytes). GT elements
// do not compress. Decoding costs one field square root per point; the
// in-package benchmarks quantify the CPU/bandwidth trade-off that backs
// the E3 table's compact rows.

// MarshalCompact encodes the ciphertext with a compressed C1.
func (c *Ciphertext) MarshalCompact() []byte {
	out := make([]byte, 0, bn254.G2CompressedSize+bn254.GTSize+4+len(c.Type))
	out = append(out, c.C1.MarshalCompressed()...)
	out = append(out, c.C2.Marshal()...)
	out = appendString(out, string(c.Type))
	return out
}

// UnmarshalCompactCiphertext decodes MarshalCompact output.
func UnmarshalCompactCiphertext(data []byte) (*Ciphertext, error) {
	if len(data) < bn254.G2CompressedSize+bn254.GTSize+4 {
		return nil, fmt.Errorf("%w: compact ciphertext too short", ErrEncoding)
	}
	var c1 bn254.G2
	if err := c1.UnmarshalCompressed(data[:bn254.G2CompressedSize]); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEncoding, err)
	}
	data = data[bn254.G2CompressedSize:]
	var c2 bn254.GT
	if err := c2.Unmarshal(data[:bn254.GTSize]); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEncoding, err)
	}
	data = data[bn254.GTSize:]
	t, rest, err := readString(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrEncoding)
	}
	return &Ciphertext{C1: &c1, C2: &c2, Type: Type(t)}, nil
}

// ibeCiphertextCompact encodes an embedded IBE ciphertext compactly.
func ibeCiphertextCompact(c *ibe.Ciphertext) []byte {
	out := make([]byte, 0, bn254.G2CompressedSize+bn254.GTSize)
	out = append(out, c.C1.MarshalCompressed()...)
	return append(out, c.C2.Marshal()...)
}

func ibeCiphertextFromCompact(data []byte) (*ibe.Ciphertext, error) {
	if len(data) != bn254.G2CompressedSize+bn254.GTSize {
		return nil, fmt.Errorf("%w: compact IBE ciphertext length %d", ErrEncoding, len(data))
	}
	var c1 bn254.G2
	if err := c1.UnmarshalCompressed(data[:bn254.G2CompressedSize]); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEncoding, err)
	}
	var c2 bn254.GT
	if err := c2.Unmarshal(data[bn254.G2CompressedSize:]); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEncoding, err)
	}
	return &ibe.Ciphertext{C1: &c1, C2: &c2}, nil
}

// MarshalCompact encodes the rekey with compressed points throughout.
func (rk *ReKey) MarshalCompact() []byte {
	encX := ibeCiphertextCompact(rk.EncX)
	out := make([]byte, 0, 12+len(rk.Type)+len(rk.DelegatorID)+len(rk.DelegateeID)+bn254.G1CompressedSize+len(encX))
	out = appendString(out, string(rk.Type))
	out = appendString(out, rk.DelegatorID)
	out = appendString(out, rk.DelegateeID)
	out = append(out, rk.RK.MarshalCompressed()...)
	return append(out, encX...)
}

// UnmarshalCompactReKey decodes MarshalCompact output.
func UnmarshalCompactReKey(data []byte) (*ReKey, error) {
	t, data, err := readString(data)
	if err != nil {
		return nil, err
	}
	delegator, data, err := readString(data)
	if err != nil {
		return nil, err
	}
	delegatee, data, err := readString(data)
	if err != nil {
		return nil, err
	}
	if len(data) != bn254.G1CompressedSize+bn254.G2CompressedSize+bn254.GTSize {
		return nil, fmt.Errorf("%w: compact rekey body length %d", ErrEncoding, len(data))
	}
	var rk bn254.G1
	if err := rk.UnmarshalCompressed(data[:bn254.G1CompressedSize]); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEncoding, err)
	}
	encX, err := ibeCiphertextFromCompact(data[bn254.G1CompressedSize:])
	if err != nil {
		return nil, err
	}
	return &ReKey{
		Type:        Type(t),
		DelegatorID: delegator,
		DelegateeID: delegatee,
		RK:          &rk,
		EncX:        encX,
	}, nil
}
