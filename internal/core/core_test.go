package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/big"
	"testing"
	"testing/quick"

	"typepre/internal/bn254"
	"typepre/internal/ibe"
)

// fixture builds the paper's two-domain setting: the delegator Alice at
// KGC1, the delegatee Bob at KGC2.
type fixture struct {
	kgc1, kgc2 *ibe.KGC
	alice      *Delegator
	bobKey     *ibe.PrivateKey
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	kgc1, err := ibe.Setup("kgc1", nil)
	if err != nil {
		t.Fatal(err)
	}
	kgc2, err := ibe.Setup("kgc2", nil)
	if err != nil {
		t.Fatal(err)
	}
	aliceKey := kgc1.Extract("alice@hospital.example")
	bobKey := kgc2.Extract("bob@clinic.example")
	return &fixture{
		kgc1:   kgc1,
		kgc2:   kgc2,
		alice:  NewDelegator(aliceKey),
		bobKey: bobKey,
	}
}

func randomMessage(t *testing.T) *bn254.GT {
	t.Helper()
	m, _, err := bn254.RandomGT(nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	f := newFixture(t)
	m := randomMessage(t)
	ct, err := f.alice.Encrypt(m, "illness-history", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.alice.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("Decrypt1(Encrypt1(m)) != m")
	}
}

func TestDecryptWrongTypeFails(t *testing.T) {
	f := newFixture(t)
	m := randomMessage(t)
	ct, err := f.alice.Encrypt(m, "illness-history", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the type label: the per-type exponent no longer matches.
	ct.Type = "food-statistics"
	got, err := f.alice.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if got.Equal(m) {
		t.Fatal("decryption with a forged type label recovered the message")
	}
}

func TestDelegationRoundTrip(t *testing.T) {
	f := newFixture(t)
	m := randomMessage(t)

	ct, err := f.alice.Encrypt(m, "emergency", nil)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := f.alice.Delegate(f.kgc2.Params(), "bob@clinic.example", "emergency", nil)
	if err != nil {
		t.Fatal(err)
	}
	rct, err := ReEncrypt(ct, rk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecryptReEncrypted(f.bobKey, rct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("delegatee failed to recover the message through the proxy")
	}
}

func TestReEncryptTypeMismatchRejected(t *testing.T) {
	f := newFixture(t)
	m := randomMessage(t)

	ct, err := f.alice.Encrypt(m, "illness-history", nil)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := f.alice.Delegate(f.kgc2.Params(), "bob@clinic.example", "food-statistics", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReEncrypt(ct, rk); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("want ErrTypeMismatch, got %v", err)
	}
}

func TestForcedCrossTypeReEncryptionYieldsGarbage(t *testing.T) {
	// Even a malicious proxy that ignores the type check cannot convert a
	// type-t' ciphertext with a type-t key: the algebra doesn't cancel.
	f := newFixture(t)
	m := randomMessage(t)

	ct, err := f.alice.Encrypt(m, "illness-history", nil)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := f.alice.Delegate(f.kgc2.Params(), "bob@clinic.example", "food-statistics", nil)
	if err != nil {
		t.Fatal(err)
	}
	forged := *ct
	forged.Type = "food-statistics" // proxy relabels to bypass the check
	rct, err := ReEncrypt(&forged, rk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecryptReEncrypted(f.bobKey, rct)
	if err != nil {
		t.Fatal(err)
	}
	if got.Equal(m) {
		t.Fatal("cross-type re-encryption recovered the plaintext")
	}
}

func TestWrongDelegateeCannotDecrypt(t *testing.T) {
	f := newFixture(t)
	m := randomMessage(t)
	eveKey := f.kgc2.Extract("eve@other.example")

	ct, err := f.alice.Encrypt(m, "emergency", nil)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := f.alice.Delegate(f.kgc2.Params(), "bob@clinic.example", "emergency", nil)
	if err != nil {
		t.Fatal(err)
	}
	rct, err := ReEncrypt(ct, rk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecryptReEncrypted(eveKey, rct)
	if err != nil {
		t.Fatal(err)
	}
	if got.Equal(m) {
		t.Fatal("non-delegatee recovered the message")
	}
}

func TestProxyAloneLearnsNothingUseful(t *testing.T) {
	// The proxy holds the rekey but not the delegatee key; applying the
	// transformation does not let it open the result.
	f := newFixture(t)
	m := randomMessage(t)

	ct, err := f.alice.Encrypt(m, "emergency", nil)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := f.alice.Delegate(f.kgc2.Params(), "bob@clinic.example", "emergency", nil)
	if err != nil {
		t.Fatal(err)
	}
	rct, err := ReEncrypt(ct, rk)
	if err != nil {
		t.Fatal(err)
	}
	// The re-encrypted c2 is m·ê(g^r, H1(X)); without X (inside EncX,
	// addressed to Bob) the proxy cannot strip the mask. Sanity: c2 != m.
	if rct.C2.Equal(m) {
		t.Fatal("re-encrypted ciphertext exposes the plaintext")
	}
	if bytes.Equal(rct.C2.Marshal(), ct.C2.Marshal()) {
		t.Fatal("re-encryption did not transform the ciphertext")
	}
}

func TestMultipleTypesIndependentDelegation(t *testing.T) {
	// Alice delegates t1 to Bob and t2 to Carol; each can read exactly
	// their own type. One key pair for Alice throughout.
	f := newFixture(t)
	carolKey := f.kgc2.Extract("carol@lab.example")

	m1, m2 := randomMessage(t), randomMessage(t)
	ct1, err := f.alice.Encrypt(m1, "illness-history", nil)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := f.alice.Encrypt(m2, "food-statistics", nil)
	if err != nil {
		t.Fatal(err)
	}

	rkBob, err := f.alice.Delegate(f.kgc2.Params(), "bob@clinic.example", "illness-history", nil)
	if err != nil {
		t.Fatal(err)
	}
	rkCarol, err := f.alice.Delegate(f.kgc2.Params(), "carol@lab.example", "food-statistics", nil)
	if err != nil {
		t.Fatal(err)
	}

	rct1, err := ReEncrypt(ct1, rkBob)
	if err != nil {
		t.Fatal(err)
	}
	rct2, err := ReEncrypt(ct2, rkCarol)
	if err != nil {
		t.Fatal(err)
	}

	if got, _ := DecryptReEncrypted(f.bobKey, rct1); !got.Equal(m1) {
		t.Fatal("Bob cannot read his delegated type")
	}
	if got, _ := DecryptReEncrypted(carolKey, rct2); !got.Equal(m2) {
		t.Fatal("Carol cannot read her delegated type")
	}
	// Cross readings must fail.
	if got, _ := DecryptReEncrypted(carolKey, rct1); got.Equal(m1) {
		t.Fatal("Carol read Bob's type")
	}
	if got, _ := DecryptReEncrypted(f.bobKey, rct2); got.Equal(m2) {
		t.Fatal("Bob read Carol's type")
	}
}

func TestSameKGCDelegationWorks(t *testing.T) {
	// The delegatee may be registered at the delegator's own KGC.
	f := newFixture(t)
	bobAtKGC1 := f.kgc1.Extract("bob@clinic.example")
	m := randomMessage(t)

	ct, err := f.alice.Encrypt(m, "emergency", nil)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := f.alice.Delegate(f.kgc1.Params(), "bob@clinic.example", "emergency", nil)
	if err != nil {
		t.Fatal(err)
	}
	rct, err := ReEncrypt(ct, rk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecryptReEncrypted(bobAtKGC1, rct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("same-KGC delegation failed")
	}
}

func TestCollusionRecoversOnlyTypeKey(t *testing.T) {
	// §4.3: proxy + delegatee can jointly compute sk^H2(sk‖t) for the
	// delegated type. That key opens type-t ciphertexts (which the
	// delegatee could read anyway) but no other type, and it is not the
	// master private key.
	f := newFixture(t)
	m1, m2 := randomMessage(t), randomMessage(t)

	rk, err := f.alice.Delegate(f.kgc2.Params(), "bob@clinic.example", "illness-history", nil)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := RecoverTypeKey(rk, f.bobKey)
	if err != nil {
		t.Fatal(err)
	}

	// Sanity: the recovered key equals sk^h computed honestly.
	h := TypeExponent(f.alice.Key(), "illness-history")
	var want bn254.G1
	want.ScalarMult(f.alice.Key().SK, h)
	if !tk.K.Equal(&want) {
		t.Fatal("recovered type key is not sk^H2(sk‖t)")
	}

	// It opens type-t ciphertexts...
	ct1, err := f.alice.Encrypt(m1, "illness-history", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := DecryptWithTypeKey(tk, ct1); !got.Equal(m1) {
		t.Fatal("type key failed on its own type")
	}

	// ...but not other types...
	ct2, err := f.alice.Encrypt(m2, "food-statistics", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := DecryptWithTypeKey(tk, ct2); got.Equal(m2) {
		t.Fatal("type key opened a different type: collusion safety broken")
	}

	// ...and it is not the master key.
	if tk.K.Equal(f.alice.Key().SK) {
		t.Fatal("collusion recovered the master private key")
	}
}

func TestReKeyOfOneDelegateeUselessToAnother(t *testing.T) {
	// A rekey addressed to Bob gives Carol (another KGC2 user) nothing:
	// she cannot decrypt EncX, so RecoverTypeKey yields a wrong key.
	f := newFixture(t)
	carolKey := f.kgc2.Extract("carol@lab.example")
	rk, err := f.alice.Delegate(f.kgc2.Params(), "bob@clinic.example", "illness-history", nil)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := RecoverTypeKey(rk, carolKey)
	if err != nil {
		t.Fatal(err)
	}
	h := TypeExponent(f.alice.Key(), "illness-history")
	var real bn254.G1
	real.ScalarMult(f.alice.Key().SK, h)
	if tk.K.Equal(&real) {
		t.Fatal("wrong delegatee recovered the real type key")
	}
}

func TestEncryptDeterministicWithFixedRandomness(t *testing.T) {
	f := newFixture(t)
	m := randomMessage(t)
	r := big.NewInt(123456789)
	ct1 := f.alice.encryptWithR(m, "t", r)
	ct2 := f.alice.encryptWithR(m, "t", r)
	if !bytes.Equal(ct1.Marshal(), ct2.Marshal()) {
		t.Fatal("deterministic encryption mismatch")
	}
}

func TestCiphertextMarshalRoundTrip(t *testing.T) {
	f := newFixture(t)
	m := randomMessage(t)
	ct, err := f.alice.Encrypt(m, "illness-history", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCiphertext(ct.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Marshal(), ct.Marshal()) || got.Type != ct.Type {
		t.Fatal("ciphertext round trip mismatch")
	}
	// Decrypts identically after the round trip.
	m2, err := f.alice.Decrypt(got)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Equal(m) {
		t.Fatal("round-tripped ciphertext decrypts wrong")
	}
}

func TestReKeyMarshalRoundTrip(t *testing.T) {
	f := newFixture(t)
	rk, err := f.alice.Delegate(f.kgc2.Params(), "bob@clinic.example", "emergency", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalReKey(rk.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Marshal(), rk.Marshal()) {
		t.Fatal("rekey round trip mismatch")
	}
	if got.Type != "emergency" || got.DelegatorID != "alice@hospital.example" || got.DelegateeID != "bob@clinic.example" {
		t.Fatal("rekey metadata lost")
	}
	// Still functions after the round trip.
	m := randomMessage(t)
	ct, _ := f.alice.Encrypt(m, "emergency", nil)
	rct, err := ReEncrypt(ct, got)
	if err != nil {
		t.Fatal(err)
	}
	if dm, _ := DecryptReEncrypted(f.bobKey, rct); !dm.Equal(m) {
		t.Fatal("round-tripped rekey does not re-encrypt correctly")
	}
}

func TestReCiphertextMarshalRoundTrip(t *testing.T) {
	f := newFixture(t)
	m := randomMessage(t)
	ct, _ := f.alice.Encrypt(m, "emergency", nil)
	rk, _ := f.alice.Delegate(f.kgc2.Params(), "bob@clinic.example", "emergency", nil)
	rct, err := ReEncrypt(ct, rk)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalReCiphertext(rct.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Marshal(), rct.Marshal()) {
		t.Fatal("reciphertext round trip mismatch")
	}
	if dm, _ := DecryptReEncrypted(f.bobKey, got); !dm.Equal(m) {
		t.Fatal("round-tripped reciphertext decrypts wrong")
	}
}

func TestUnmarshalRejectsCorrupted(t *testing.T) {
	f := newFixture(t)
	m := randomMessage(t)
	ct, _ := f.alice.Encrypt(m, "t", nil)
	data := ct.Marshal()

	if _, err := UnmarshalCiphertext(data[:10]); err == nil {
		t.Fatal("accepted truncated ciphertext")
	}
	corrupt := append([]byte(nil), data...)
	corrupt[0] ^= 0xff // break the G2 point
	if _, err := UnmarshalCiphertext(corrupt); err == nil {
		t.Fatal("accepted corrupted G2 component")
	}
	trailing := append(append([]byte(nil), data...), 0x00)
	if _, err := UnmarshalCiphertext(trailing); err == nil {
		t.Fatal("accepted trailing bytes")
	}

	rk, _ := f.alice.Delegate(f.kgc2.Params(), "bob", "t", nil)
	rkData := rk.Marshal()
	if _, err := UnmarshalReKey(rkData[:5]); err == nil {
		t.Fatal("accepted truncated rekey")
	}
}

func TestNilInputs(t *testing.T) {
	f := newFixture(t)
	if _, err := f.alice.Decrypt(nil); err == nil {
		t.Fatal("Decrypt(nil) succeeded")
	}
	if _, err := ReEncrypt(nil, nil); err == nil {
		t.Fatal("ReEncrypt(nil,nil) succeeded")
	}
	if _, err := DecryptReEncrypted(f.bobKey, nil); err == nil {
		t.Fatal("DecryptReEncrypted(nil) succeeded")
	}
	if _, err := DecryptWithTypeKey(nil, nil); err == nil {
		t.Fatal("DecryptWithTypeKey(nil) succeeded")
	}
}

func TestTypeExponentDistinct(t *testing.T) {
	f := newFixture(t)
	h1 := TypeExponent(f.alice.Key(), "a")
	h2 := TypeExponent(f.alice.Key(), "b")
	if h1.Cmp(h2) == 0 {
		t.Fatal("distinct types produced equal exponents")
	}
	// Different delegators get different exponents for the same type.
	other := NewDelegator(f.kgc1.Extract("dave@hospital.example"))
	h3 := TypeExponent(other.Key(), "a")
	if h1.Cmp(h3) == 0 {
		t.Fatal("distinct keys produced equal type exponents")
	}
}

func TestDelegateMany(t *testing.T) {
	f := newFixture(t)
	carolKey := f.kgc2.Extract("carol@lab.example")
	reqs := []DelegationRequest{
		{DelegateeParams: f.kgc2.Params(), DelegateeID: "bob@clinic.example", Type: "t1"},
		{DelegateeParams: f.kgc2.Params(), DelegateeID: "carol@lab.example", Type: "t2"},
	}
	rks, err := f.alice.DelegateMany(reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rks) != 2 {
		t.Fatalf("got %d rekeys", len(rks))
	}
	m := randomMessage(t)
	ct1, _ := f.alice.Encrypt(m, "t1", nil)
	ct2, _ := f.alice.Encrypt(m, "t2", nil)
	rct1, err := ReEncrypt(ct1, rks[0])
	if err != nil {
		t.Fatal(err)
	}
	rct2, err := ReEncrypt(ct2, rks[1])
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := DecryptReEncrypted(f.bobKey, rct1); !got.Equal(m) {
		t.Fatal("batch rekey 0 broken")
	}
	if got, _ := DecryptReEncrypted(carolKey, rct2); !got.Equal(m) {
		t.Fatal("batch rekey 1 broken")
	}
	// Independent delegation secrets per rekey.
	if rks[0].RK.Equal(rks[1].RK) {
		t.Fatal("batch rekeys share material")
	}
}

func TestDelegateAllTypes(t *testing.T) {
	f := newFixture(t)
	types := []Type{"illness-history", "food-statistics", "emergency"}
	rks, err := f.alice.DelegateAllTypes(f.kgc2.Params(), "bob@clinic.example", types, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rks) != len(types) {
		t.Fatalf("got %d rekeys, want %d", len(rks), len(types))
	}
	for i, typ := range types {
		if rks[i].Type != typ || rks[i].DelegateeID != "bob@clinic.example" {
			t.Fatalf("rekey %d metadata wrong: %+v", i, rks[i])
		}
		m := randomMessage(t)
		ct, _ := f.alice.Encrypt(m, typ, nil)
		rct, err := ReEncrypt(ct, rks[i])
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := DecryptReEncrypted(f.bobKey, rct); !got.Equal(m) {
			t.Fatalf("type %q not delegated correctly", typ)
		}
	}
}

func TestEncryptDecryptQuickProperty(t *testing.T) {
	// Property: for random exponents k and random type strings, the round
	// trip Encrypt1→Decrypt1 is the identity on messages gt^k.
	f := newFixture(t)
	quickFn := func(k int64, typRaw uint32) bool {
		if k < 0 {
			k = -k
		}
		m := bn254.GTExpBase(big.NewInt(k + 1))
		typ := Type(fmt.Sprintf("type-%d", typRaw%7))
		ct, err := f.alice.Encrypt(m, typ, nil)
		if err != nil {
			return false
		}
		got, err := f.alice.Decrypt(ct)
		if err != nil {
			return false
		}
		return got.Equal(m)
	}
	cfg := &quick.Config{MaxCount: 6}
	if err := quick.Check(quickFn, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalQuickProperty(t *testing.T) {
	// Property: Marshal∘Unmarshal is the identity on ciphertexts for
	// arbitrary type labels (including empty and unicode).
	f := newFixture(t)
	for _, typ := range []Type{"", "t", "漢字-类型", "with spaces and \x00 bytes"} {
		m := randomMessage(t)
		ct, err := f.alice.Encrypt(m, typ, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalCiphertext(ct.Marshal())
		if err != nil {
			t.Fatalf("type %q: %v", typ, err)
		}
		if got.Type != typ {
			t.Fatalf("type %q mangled to %q", typ, got.Type)
		}
		if dm, _ := f.alice.Decrypt(got); !dm.Equal(m) {
			t.Fatalf("type %q: decrypt after round trip failed", typ)
		}
	}
}

func TestReEncryptionNotTransitive(t *testing.T) {
	// A re-encrypted ciphertext has a different shape (it carries EncX) and
	// cannot be fed back into ReEncrypt: the scheme is single-hop, matching
	// the paper (multi-hop would let proxies extend delegations on their
	// own). The type system enforces this; verify the algebra also fails if
	// someone manually rebuilds a first-level ciphertext from a re-encrypted
	// one and applies a second rekey.
	f := newFixture(t)
	carolKey := f.kgc2.Extract("carol@lab.example")
	m := randomMessage(t)

	ct, _ := f.alice.Encrypt(m, "t", nil)
	rkBob, _ := f.alice.Delegate(f.kgc2.Params(), "bob@clinic.example", "t", nil)
	rct, _ := ReEncrypt(ct, rkBob)

	// "Second hop": treat (C1, C2) of the re-encrypted ciphertext as if it
	// were a fresh first-level ciphertext and apply a rekey toward Carol.
	fake := &Ciphertext{C1: rct.C1, C2: rct.C2, Type: "t"}
	rkCarol, _ := f.alice.Delegate(f.kgc2.Params(), "carol@lab.example", "t", nil)
	rct2, err := ReEncrypt(fake, rkCarol)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := DecryptReEncrypted(carolKey, rct2); got.Equal(m) {
		t.Fatal("two-hop re-encryption recovered the plaintext: scheme unexpectedly transitive")
	}
}

func TestDelegatorConcurrentUse(t *testing.T) {
	// The delegator caches a pairing at construction and is read-only
	// afterwards; concurrent encrypt/decrypt/delegate must be safe.
	f := newFixture(t)
	m := randomMessage(t)
	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			typ := Type(fmt.Sprintf("t%d", w%3))
			ct, err := f.alice.Encrypt(m, typ, nil)
			if err != nil {
				errs <- err
				return
			}
			got, err := f.alice.Decrypt(ct)
			if err != nil {
				errs <- err
				return
			}
			if !got.Equal(m) {
				errs <- errors.New("concurrent round trip mismatch")
				return
			}
			if _, err := f.alice.Delegate(f.kgc2.Params(), "bob@clinic.example", typ, nil); err != nil {
				errs <- err
				return
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestCiphertextIndependence(t *testing.T) {
	// Two encryptions of the same message under the same type share no
	// component (fresh randomizer each time).
	f := newFixture(t)
	m := randomMessage(t)
	ct1, _ := f.alice.Encrypt(m, "t", nil)
	ct2, _ := f.alice.Encrypt(m, "t", nil)
	if ct1.C1.Equal(ct2.C1) || ct1.C2.Equal(ct2.C2) {
		t.Fatal("ciphertexts share components across encryptions")
	}
}

func TestCompactCiphertextRoundTrip(t *testing.T) {
	f := newFixture(t)
	m := randomMessage(t)
	ct, _ := f.alice.Encrypt(m, "emergency", nil)

	compact := ct.MarshalCompact()
	full := ct.Marshal()
	if len(compact) >= len(full) {
		t.Fatalf("compact (%d) not smaller than full (%d)", len(compact), len(full))
	}
	got, err := UnmarshalCompactCiphertext(compact)
	if err != nil {
		t.Fatal(err)
	}
	if dm, _ := f.alice.Decrypt(got); !dm.Equal(m) {
		t.Fatal("compact round trip broke decryption")
	}
	if _, err := UnmarshalCompactCiphertext(compact[:10]); err == nil {
		t.Fatal("accepted truncated compact ciphertext")
	}
	corrupt := append([]byte(nil), compact...)
	corrupt[1] ^= 0xff
	if _, err := UnmarshalCompactCiphertext(corrupt); err == nil {
		t.Fatal("accepted corrupted compact point")
	}
}

func TestCompactReKeyRoundTrip(t *testing.T) {
	f := newFixture(t)
	rk, _ := f.alice.Delegate(f.kgc2.Params(), "bob@clinic.example", "emergency", nil)

	compact := rk.MarshalCompact()
	full := rk.Marshal()
	if len(compact) >= len(full) {
		t.Fatalf("compact rekey (%d) not smaller than full (%d)", len(compact), len(full))
	}
	got, err := UnmarshalCompactReKey(compact)
	if err != nil {
		t.Fatal(err)
	}
	// Functional after round trip.
	m := randomMessage(t)
	ct, _ := f.alice.Encrypt(m, "emergency", nil)
	rct, err := ReEncrypt(ct, got)
	if err != nil {
		t.Fatal(err)
	}
	if dm, _ := DecryptReEncrypted(f.bobKey, rct); !dm.Equal(m) {
		t.Fatal("compact rekey does not re-encrypt correctly")
	}
	if _, err := UnmarshalCompactReKey(compact[:8]); err == nil {
		t.Fatal("accepted truncated compact rekey")
	}
}
