package core

import (
	"bytes"
	"testing"

	"typepre/internal/bn254"
	"typepre/internal/ibe"
)

// Fuzz targets for every decode surface of the core scheme. In regular
// test runs Go executes the seed corpus only; `go test -fuzz` explores
// further. The invariant under fuzzing: decoding never panics, and any
// accepted input re-marshals to itself (canonicality).

func seedFixtures(f *testing.F) (*Delegator, [][]byte) {
	f.Helper()
	kgc1, err := setupFuzzKGC("fuzz-kgc1")
	if err != nil {
		f.Fatal(err)
	}
	kgc2, err := setupFuzzKGC("fuzz-kgc2")
	if err != nil {
		f.Fatal(err)
	}
	alice := NewDelegator(kgc1.Extract("alice@fuzz"))
	m, err := randomGTForFuzz()
	if err != nil {
		f.Fatal(err)
	}
	ct, err := alice.Encrypt(m, "fuzz-type", nil)
	if err != nil {
		f.Fatal(err)
	}
	rk, err := alice.Delegate(kgc2.Params(), "bob@fuzz", "fuzz-type", nil)
	if err != nil {
		f.Fatal(err)
	}
	rct, err := ReEncrypt(ct, rk)
	if err != nil {
		f.Fatal(err)
	}
	return alice, [][]byte{ct.Marshal(), rk.Marshal(), rct.Marshal()}
}

func FuzzUnmarshalCiphertext(f *testing.F) {
	_, seeds := seedFixtures(f)
	f.Add(seeds[0])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 700))
	f.Fuzz(func(t *testing.T, data []byte) {
		ct, err := UnmarshalCiphertext(data)
		if err != nil {
			return
		}
		if !bytes.Equal(ct.Marshal(), data) {
			t.Fatal("accepted non-canonical ciphertext encoding")
		}
	})
}

func FuzzUnmarshalReKey(f *testing.F) {
	_, seeds := seedFixtures(f)
	f.Add(seeds[1])
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rk, err := UnmarshalReKey(data)
		if err != nil {
			return
		}
		if !bytes.Equal(rk.Marshal(), data) {
			t.Fatal("accepted non-canonical rekey encoding")
		}
	})
}

func FuzzUnmarshalReCiphertext(f *testing.F) {
	_, seeds := seedFixtures(f)
	f.Add(seeds[2])
	f.Add(bytes.Repeat([]byte{1}, 1200))
	f.Fuzz(func(t *testing.T, data []byte) {
		rct, err := UnmarshalReCiphertext(data)
		if err != nil {
			return
		}
		if !bytes.Equal(rct.Marshal(), data) {
			t.Fatal("accepted non-canonical reciphertext encoding")
		}
	})
}

// Helpers shared by the fuzz targets (kept free of *testing.T so they can
// run inside testing.F setup).

func setupFuzzKGC(name string) (*ibe.KGC, error) { return ibe.Setup(name, nil) }

func randomGTForFuzz() (*bn254.GT, error) {
	m, _, err := bn254.RandomGT(nil)
	return m, err
}
