package core

import (
	"sync"

	"typepre/internal/bn254"
)

// adjCacheLimit bounds the per-ciphertext adjustment cache of one prepared
// proxy key. On overflow the cache is dropped wholesale; entries are cheap
// to recompute (one pairing) and real workloads concentrate on a small hot
// set of records.
const adjCacheLimit = 1024

// PreparedReKey wraps a proxy re-encryption key for a long-lived proxy
// deployment. The transformation ReEncrypt applies is deterministic per
// (ciphertext, rekey): its only expensive part is ê(rk, c1), which depends
// on nothing but the rekey and the ciphertext randomizer c1. A proxy that
// serves the same sealed record repeatedly — the normal PHR pattern, where
// records are written once and disclosed many times — can therefore cache
// the adjustment per c1 and make repeat transformations pairing-free.
//
// PreparedReKey is safe for concurrent use.
type PreparedReKey struct {
	rk *ReKey

	mu  sync.RWMutex
	adj map[string]*bn254.GT // phrlint:guardedby mu — ê(rk, c1) keyed by marshaled c1
}

// PrepareReKey wraps a proxy key for reuse across requests.
func PrepareReKey(rk *ReKey) *PreparedReKey {
	return &PreparedReKey{rk: rk, adj: make(map[string]*bn254.GT)}
}

// ReKey returns the underlying proxy key.
func (p *PreparedReKey) ReKey() *ReKey { return p.rk }

// adjustment returns ê(rk, c1), cached per ciphertext randomizer. The hot
// (cache-hit) path takes only a read lock so a batch worker pool serving
// warm records does not serialize on the cache.
func (p *PreparedReKey) adjustment(c1 *bn254.G2) *bn254.GT {
	key := string(c1.Marshal())
	p.mu.RLock()
	a, ok := p.adj[key]
	p.mu.RUnlock()
	if ok {
		return a
	}

	// Pair outside the lock; a duplicated first computation is harmless
	// and identical.
	a = bn254.Pair(p.rk.RK, c1)

	p.mu.Lock()
	if len(p.adj) >= adjCacheLimit {
		p.adj = make(map[string]*bn254.GT)
	}
	p.adj[key] = a
	p.mu.Unlock()
	return a
}

// ReEncrypt performs the same transformation as the package-level ReEncrypt
// (the paper's Preenc) with the cached adjustment: the first call for a
// given ciphertext pays one pairing, repeats are pairing-free. Outputs are
// identical to ReEncrypt's.
func (p *PreparedReKey) ReEncrypt(ct *Ciphertext) (*ReCiphertext, error) {
	if p == nil {
		return nil, ErrDecrypt
	}
	if err := validateReEncrypt(ct, p.rk); err != nil {
		return nil, err
	}
	return reEncryptWithAdjustment(ct, p.rk, p.adjustment(ct.C1)), nil
}
