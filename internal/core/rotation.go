package core

import (
	"fmt"
	"io"
	"strings"
)

// Type rotation. The per-type exponent H2(sk‖t) is a deterministic function
// of the delegator's (fixed) private key and the type string, so a category
// cannot be re-keyed by changing sk without losing the paper's headline
// one-key-pair property. Instead, rotation moves the category to a fresh
// *type epoch*: the logical category "emergency" at epoch 3 is the wire
// type "emergency#e3". Every epoch has an independent type exponent, so
// ciphertexts sealed under the new epoch are untouchable by proxy keys
// extracted for any earlier epoch (ReEncrypt fails with ErrTypeMismatch) —
// rotation structurally revokes all outstanding delegations for the
// category until the delegator issues fresh ones.

// epochSep separates a base type from its rotation epoch in the wire form.
const epochSep = "#e"

// VersionedType returns the wire type of a base type at the given rotation
// epoch. Epoch 0 is the base type itself, keeping never-rotated categories
// byte-identical to their pre-rotation encoding.
func VersionedType(base Type, epoch int) Type {
	if epoch <= 0 {
		return base
	}
	return Type(fmt.Sprintf("%s%s%d", base, epochSep, epoch))
}

// SplitType parses a wire type into its base type and rotation epoch. A
// type without a canonical "#e<digits>" suffix is epoch 0.
func SplitType(t Type) (Type, int) {
	s := string(t)
	i := strings.LastIndex(s, epochSep)
	if i < 0 {
		return t, 0
	}
	digits := s[i+len(epochSep):]
	if len(digits) == 0 || digits[0] == '0' {
		return t, 0
	}
	epoch := 0
	for _, d := range digits {
		if d < '0' || d > '9' {
			return t, 0
		}
		epoch = epoch*10 + int(d-'0')
	}
	return Type(s[:i]), epoch
}

// BaseType strips any rotation-epoch suffix from a wire type.
func BaseType(t Type) Type {
	base, _ := SplitType(t)
	return base
}

// Rotate re-encrypts one of the delegator's own first-level ciphertexts
// under a new type — the delegator-side primitive behind category key
// rotation. Only the owner can do this: the transformation goes through a
// full decrypt, so a proxy key never suffices to move a ciphertext between
// types (that would defeat the fine-grained delegation the scheme is for).
func (d *Delegator) Rotate(ct *Ciphertext, newType Type, rng io.Reader) (*Ciphertext, error) {
	m, err := d.Decrypt(ct)
	if err != nil {
		return nil, fmt.Errorf("core: rotate: %w", err)
	}
	return d.Encrypt(m, newType, rng)
}
