package core

import (
	"fmt"
	"io"

	"typepre/internal/ibe"
)

// DelegationRequest names one (delegatee, type) pair for batch delegation.
type DelegationRequest struct {
	DelegateeParams *ibe.Params
	DelegateeID     string
	Type            Type
}

// DelegateMany produces one proxy key per request. Each key carries an
// independent delegation secret X, so compromising one reveals nothing
// about the others. On any failure the whole batch is abandoned.
func (d *Delegator) DelegateMany(reqs []DelegationRequest, rng io.Reader) ([]*ReKey, error) {
	out := make([]*ReKey, 0, len(reqs))
	for i, r := range reqs {
		rk, err := d.Delegate(r.DelegateeParams, r.DelegateeID, r.Type, rng)
		if err != nil {
			return nil, fmt.Errorf("core: batch delegation %d (%s, %q): %w", i, r.DelegateeID, r.Type, err)
		}
		out = append(out, rk)
	}
	return out, nil
}

// DelegateAllTypes delegates every listed type to a single delegatee —
// the "trusted family doctor" pattern: full read access, still through
// per-type keys so individual categories remain revocable.
func (d *Delegator) DelegateAllTypes(params *ibe.Params, delegateeID string, types []Type, rng io.Reader) ([]*ReKey, error) {
	reqs := make([]DelegationRequest, 0, len(types))
	for _, t := range types {
		reqs = append(reqs, DelegationRequest{DelegateeParams: params, DelegateeID: delegateeID, Type: t})
	}
	return d.DelegateMany(reqs, rng)
}
