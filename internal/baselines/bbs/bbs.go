// Package bbs implements the Blaze–Bleumer–Strauss atomic proxy
// re-encryption scheme (EUROCRYPT '98), the ElGamal-based construction the
// paper cites as the origin of proxy re-encryption. It is instantiated in
// the G1 group of the bn254 curve.
//
//	KeyGen:   a ∈ Z*_r, pk = g^a
//	Encrypt:  c = (m·g^r, pk^r) = (m·g^r, g^(ar))
//	Decrypt:  m = c1 / c2^(1/a)
//	ReKey:    rk_{a→b} = b/a mod r
//	ReEnc:    (c1, c2^(rk)) = (m·g^r, g^(br))
//
// The scheme is BI-DIRECTIONAL (rk_{b→a} = rk_{a→b}⁻¹), INTERACTIVE (the
// rekey needs both secret keys), and a single rekey converts every
// ciphertext of the delegator — the all-or-nothing trust problem the paper
// solves with types. It is also not collusion-safe: the proxy and the
// delegatee can jointly compute a = b / rk.
package bbs

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"typepre/internal/bn254"
)

// ErrDecrypt is returned on malformed decryption inputs.
var ErrDecrypt = errors.New("bbs: decryption failed")

// KeyPair is an ElGamal key pair in G1.
type KeyPair struct {
	SK *big.Int  // a
	PK *bn254.G1 // g^a
}

// KeyGen creates a fresh key pair. rng may be nil for crypto/rand.
func KeyGen(rng io.Reader) (*KeyPair, error) {
	a, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("bbs: keygen: %w", err)
	}
	var pk bn254.G1
	pk.ScalarBaseMult(a)
	return &KeyPair{SK: a, PK: &pk}, nil
}

// Ciphertext is an ElGamal ciphertext with a G1 message.
type Ciphertext struct {
	C1 *bn254.G1 // m·g^r
	C2 *bn254.G1 // g^(ar)
}

// Encrypt encrypts a G1 message under pk.
func Encrypt(pk *bn254.G1, m *bn254.G1, rng io.Reader) (*Ciphertext, error) {
	r, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("bbs: encrypt: %w", err)
	}
	var c1, c2 bn254.G1
	c1.ScalarBaseMult(r)
	c1.Add(&c1, m)
	c2.ScalarMult(pk, r)
	return &Ciphertext{C1: &c1, C2: &c2}, nil
}

// Decrypt recovers the message with the secret key.
func Decrypt(sk *big.Int, ct *Ciphertext) (*bn254.G1, error) {
	if sk == nil || ct == nil || ct.C1 == nil || ct.C2 == nil {
		return nil, ErrDecrypt
	}
	aInv := new(big.Int).ModInverse(sk, bn254.Order)
	if aInv == nil {
		return nil, ErrDecrypt
	}
	var gr, m bn254.G1
	gr.ScalarMult(ct.C2, aInv) // g^r
	gr.Neg(&gr)
	m.Add(ct.C1, &gr)
	return &m, nil
}

// ReKey computes the bidirectional proxy key b/a. It requires BOTH secret
// keys — the interactivity drawback the paper's scheme avoids.
func ReKey(delegator, delegatee *KeyPair) (*big.Int, error) {
	if delegator == nil || delegatee == nil {
		return nil, errors.New("bbs: nil key pair")
	}
	aInv := new(big.Int).ModInverse(delegator.SK, bn254.Order)
	if aInv == nil {
		return nil, errors.New("bbs: non-invertible secret key")
	}
	rk := new(big.Int).Mul(delegatee.SK, aInv)
	return rk.Mod(rk, bn254.Order), nil
}

// ReEncrypt transforms a delegator ciphertext into a delegatee ciphertext.
// Note the proxy can apply this to EVERY ciphertext of the delegator.
func ReEncrypt(rk *big.Int, ct *Ciphertext) (*Ciphertext, error) {
	if rk == nil || ct == nil || ct.C1 == nil || ct.C2 == nil {
		return nil, ErrDecrypt
	}
	var c1, c2 bn254.G1
	c1.Set(ct.C1)
	c2.ScalarMult(ct.C2, rk)
	return &Ciphertext{C1: &c1, C2: &c2}, nil
}

// InvertReKey returns rk_{b→a} from rk_{a→b}, demonstrating the
// bidirectional property.
func InvertReKey(rk *big.Int) (*big.Int, error) {
	inv := new(big.Int).ModInverse(rk, bn254.Order)
	if inv == nil {
		return nil, errors.New("bbs: non-invertible rekey")
	}
	return inv, nil
}

// CollusionAttack shows the scheme is not collusion-safe: the proxy (rk)
// and the delegatee (b) jointly recover the delegator's secret a = b/rk.
func CollusionAttack(rk *big.Int, delegateeSK *big.Int) (*big.Int, error) {
	rkInv, err := InvertReKey(rk)
	if err != nil {
		return nil, err
	}
	a := new(big.Int).Mul(delegateeSK, rkInv)
	return a.Mod(a, bn254.Order), nil
}
