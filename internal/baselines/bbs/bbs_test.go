package bbs

import (
	"math/big"
	"testing"

	"typepre/internal/bn254"
)

func randomG1(t *testing.T) *bn254.G1 {
	t.Helper()
	k, err := bn254.RandomScalar(nil)
	if err != nil {
		t.Fatal(err)
	}
	var p bn254.G1
	p.ScalarBaseMult(k)
	return &p
}

func TestEncryptDecrypt(t *testing.T) {
	kp, err := KeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	m := randomG1(t)
	ct, err := Encrypt(kp.PK, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(kp.SK, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("round trip failed")
	}
}

func TestWrongKeyFails(t *testing.T) {
	alice, _ := KeyGen(nil)
	eve, _ := KeyGen(nil)
	m := randomG1(t)
	ct, err := Encrypt(alice.PK, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(eve.SK, ct)
	if err != nil {
		t.Fatal(err)
	}
	if got.Equal(m) {
		t.Fatal("wrong key decrypted the message")
	}
}

func TestReEncryption(t *testing.T) {
	alice, _ := KeyGen(nil)
	bob, _ := KeyGen(nil)
	m := randomG1(t)

	ct, err := Encrypt(alice.PK, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := ReKey(alice, bob)
	if err != nil {
		t.Fatal(err)
	}
	rct, err := ReEncrypt(rk, ct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(bob.SK, rct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("re-encryption round trip failed")
	}
	// Alice can no longer open the transformed ciphertext directly.
	back, _ := Decrypt(alice.SK, rct)
	if back.Equal(m) {
		t.Fatal("delegator key still opens the re-encrypted ciphertext")
	}
}

func TestBidirectional(t *testing.T) {
	alice, _ := KeyGen(nil)
	bob, _ := KeyGen(nil)
	m := randomG1(t)

	rk, err := ReKey(alice, bob)
	if err != nil {
		t.Fatal(err)
	}
	back, err := InvertReKey(rk)
	if err != nil {
		t.Fatal(err)
	}
	// The inverted key converts Bob's ciphertexts to Alice's — the
	// bidirectional property the paper flags as sometimes undesirable.
	ctBob, err := Encrypt(bob.PK, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	rct, err := ReEncrypt(back, ctBob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(alice.SK, rct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("bidirectional conversion failed")
	}
}

func TestCollusionRecoversDelegatorKey(t *testing.T) {
	alice, _ := KeyGen(nil)
	bob, _ := KeyGen(nil)
	rk, err := ReKey(alice, bob)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := CollusionAttack(rk, bob.SK)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Cmp(alice.SK) != 0 {
		t.Fatal("collusion attack should recover the delegator's secret in BBS")
	}
}

func TestRekeyConvertsAllCiphertexts(t *testing.T) {
	// The all-or-nothing property: a single rekey converts every message,
	// with no way to scope it to a category.
	alice, _ := KeyGen(nil)
	bob, _ := KeyGen(nil)
	rk, _ := ReKey(alice, bob)
	for i := 0; i < 4; i++ {
		m := randomG1(t)
		ct, _ := Encrypt(alice.PK, m, nil)
		rct, err := ReEncrypt(rk, ct)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := Decrypt(bob.SK, rct)
		if !got.Equal(m) {
			t.Fatalf("ciphertext %d not converted", i)
		}
	}
}

func TestNilInputs(t *testing.T) {
	if _, err := Decrypt(nil, &Ciphertext{}); err == nil {
		t.Fatal("nil secret accepted")
	}
	if _, err := ReEncrypt(nil, nil); err == nil {
		t.Fatal("nil inputs accepted")
	}
	if _, err := ReKey(nil, nil); err == nil {
		t.Fatal("nil key pairs accepted")
	}
	if _, err := Decrypt(big.NewInt(7), nil); err == nil {
		t.Fatal("nil ciphertext accepted")
	}
}
