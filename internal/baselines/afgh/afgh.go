// Package afgh implements the Ateniese–Fu–Green–Hohenberger unidirectional
// proxy re-encryption scheme (NDSS '05 / TISSEC '06) over the bn254 pairing,
// the strongest non-identity-based comparator in the paper's related work.
//
// Global values: g₁ ∈ G1, g₂ ∈ G2, Z = ê(g₁, g₂).
//
//	KeyGen:     a ∈ Z*_r, pk = (g₁^a, g₂^a)
//	Encrypt2:   second-level (delegatable): c = (g₁^(ar), m·Z^r)
//	Decrypt2:   m = c2 / ê(c1, g₂)^(1/a)
//	ReKey:      rk_{a→b} = (g₂^b)^(1/a) = g₂^(b/a)   — needs only the
//	            delegatee's PUBLIC key: non-interactive, unidirectional
//	ReEncrypt:  c' = (ê(c1, rk), c2) = (Z^(br), m·Z^r)
//	Decrypt1:   m = c2 / c1'^(1/b)   (first-level ciphertext)
//	Encrypt1:   non-delegatable: c = (Z^(ar), m·Z^r)
//
// The paper contrasts this design with its own: AFGH needs TWO encryption
// levels (second-level messages are delegatable, first-level are private),
// and a rekey converts ALL second-level ciphertexts — per-category
// disclosure requires one key pair per category (experiment E5).
package afgh

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"typepre/internal/bn254"
)

// ErrDecrypt is returned on malformed inputs.
var ErrDecrypt = errors.New("afgh: decryption failed")

// KeyPair is an AFGH key pair.
type KeyPair struct {
	SK  *big.Int
	PK1 *bn254.G1 // g₁^a, used by senders for second-level encryption
	PK2 *bn254.G2 // g₂^a, used by delegators to build rekeys toward us
}

// KeyGen creates a fresh key pair. rng may be nil for crypto/rand.
func KeyGen(rng io.Reader) (*KeyPair, error) {
	a, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("afgh: keygen: %w", err)
	}
	var pk1 bn254.G1
	pk1.ScalarBaseMult(a)
	var pk2 bn254.G2
	pk2.ScalarBaseMult(a)
	return &KeyPair{SK: a, PK1: &pk1, PK2: &pk2}, nil
}

// SecondLevelCiphertext can be re-encrypted toward a delegatee.
type SecondLevelCiphertext struct {
	C1 *bn254.G1 // g₁^(ar)
	C2 *bn254.GT // m·Z^r
}

// FirstLevelCiphertext cannot be re-encrypted further.
type FirstLevelCiphertext struct {
	C1 *bn254.GT // Z^(ar) (Encrypt1) or Z^(br) (re-encryption output)
	C2 *bn254.GT // m·Z^r
}

// EncryptSecondLevel encrypts a GT message so that the recipient can both
// decrypt it and delegate it.
func EncryptSecondLevel(pk *KeyPair, m *bn254.GT, rng io.Reader) (*SecondLevelCiphertext, error) {
	r, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("afgh: encrypt2: %w", err)
	}
	var c1 bn254.G1
	c1.ScalarMult(pk.PK1, r)
	var c2 bn254.GT
	c2.Exp(bn254.GTBase(), r)
	c2.Mul(m, &c2)
	return &SecondLevelCiphertext{C1: &c1, C2: &c2}, nil
}

// DecryptSecondLevel opens a second-level ciphertext with the recipient's
// own secret key.
func DecryptSecondLevel(sk *big.Int, ct *SecondLevelCiphertext) (*bn254.GT, error) {
	if sk == nil || ct == nil || ct.C1 == nil || ct.C2 == nil {
		return nil, ErrDecrypt
	}
	aInv := new(big.Int).ModInverse(sk, bn254.Order)
	if aInv == nil {
		return nil, ErrDecrypt
	}
	zr := bn254.Pair(ct.C1, bn254.G2Generator())
	var den bn254.GT
	den.Exp(zr, aInv)
	var m bn254.GT
	m.Div(ct.C2, &den)
	return &m, nil
}

// EncryptFirstLevel encrypts a GT message non-delegatably. The component
// Z^(ar) = ê(pk1, g₂)^r is derived purely from the recipient's public key.
func EncryptFirstLevel(pk *KeyPair, m *bn254.GT, rng io.Reader) (*FirstLevelCiphertext, error) {
	r, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("afgh: encrypt1: %w", err)
	}
	zar := bn254.Pair(pk.PK1, bn254.G2Generator())
	var c1 bn254.GT
	c1.Exp(zar, r)
	var c2 bn254.GT
	c2.Exp(bn254.GTBase(), r)
	c2.Mul(m, &c2)
	return &FirstLevelCiphertext{C1: &c1, C2: &c2}, nil
}

// DecryptFirstLevel opens a first-level (or re-encrypted) ciphertext.
func DecryptFirstLevel(sk *big.Int, ct *FirstLevelCiphertext) (*bn254.GT, error) {
	if sk == nil || ct == nil || ct.C1 == nil || ct.C2 == nil {
		return nil, ErrDecrypt
	}
	bInv := new(big.Int).ModInverse(sk, bn254.Order)
	if bInv == nil {
		return nil, ErrDecrypt
	}
	var den bn254.GT
	den.Exp(ct.C1, bInv)
	var m bn254.GT
	m.Div(ct.C2, &den)
	return &m, nil
}

// ReKey builds the unidirectional proxy key g₂^(b/a) from the delegator's
// secret and the delegatee's PUBLIC key — no interaction needed.
func ReKey(delegatorSK *big.Int, delegateePK2 *bn254.G2) (*bn254.G2, error) {
	aInv := new(big.Int).ModInverse(delegatorSK, bn254.Order)
	if aInv == nil {
		return nil, errors.New("afgh: non-invertible secret key")
	}
	var rk bn254.G2
	rk.ScalarMult(delegateePK2, aInv)
	return &rk, nil
}

// ReEncrypt converts a second-level ciphertext for the delegator into a
// first-level ciphertext for the delegatee. A single rekey converts every
// second-level ciphertext — no type granularity.
func ReEncrypt(rk *bn254.G2, ct *SecondLevelCiphertext) (*FirstLevelCiphertext, error) {
	if rk == nil || ct == nil || ct.C1 == nil || ct.C2 == nil {
		return nil, ErrDecrypt
	}
	c1 := bn254.Pair(ct.C1, rk) // ê(g₁^(ar), g₂^(b/a)) = Z^(br)
	var c2 bn254.GT
	c2.Set(ct.C2)
	return &FirstLevelCiphertext{C1: c1, C2: &c2}, nil
}

// CollusionRecoverWeakKey shows what the proxy and the delegatee can learn
// together: g₂^(1/a) = rk^(1/b), the "weak" secret that opens second-level
// ciphertexts (which the delegatee could already read) but NOT first-level
// ones — AFGH's master secret stays safe, matching the paper's discussion.
func CollusionRecoverWeakKey(rk *bn254.G2, delegateeSK *big.Int) (*bn254.G2, error) {
	bInv := new(big.Int).ModInverse(delegateeSK, bn254.Order)
	if bInv == nil {
		return nil, errors.New("afgh: non-invertible secret key")
	}
	var weak bn254.G2
	weak.ScalarMult(rk, bInv)
	return &weak, nil
}

// DecryptSecondLevelWithWeakKey opens a second-level ciphertext using only
// the weak key g₂^(1/a).
func DecryptSecondLevelWithWeakKey(weak *bn254.G2, ct *SecondLevelCiphertext) (*bn254.GT, error) {
	if weak == nil || ct == nil || ct.C1 == nil || ct.C2 == nil {
		return nil, ErrDecrypt
	}
	den := bn254.Pair(ct.C1, weak) // ê(g₁^(ar), g₂^(1/a)) = Z^r
	var m bn254.GT
	m.Div(ct.C2, den)
	return &m, nil
}
