package afgh

import (
	"testing"

	"typepre/internal/bn254"
)

func randomGT(t *testing.T) *bn254.GT {
	t.Helper()
	m, _, err := bn254.RandomGT(nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSecondLevelRoundTrip(t *testing.T) {
	kp, err := KeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	m := randomGT(t)
	ct, err := EncryptSecondLevel(kp, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecryptSecondLevel(kp.SK, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("second-level round trip failed")
	}
}

func TestFirstLevelRoundTrip(t *testing.T) {
	kp, _ := KeyGen(nil)
	m := randomGT(t)
	ct, err := EncryptFirstLevel(kp, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecryptFirstLevel(kp.SK, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("first-level round trip failed")
	}
}

func TestReEncryption(t *testing.T) {
	alice, _ := KeyGen(nil)
	bob, _ := KeyGen(nil)
	m := randomGT(t)

	ct, err := EncryptSecondLevel(alice, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Non-interactive: rekey needs only Bob's public key.
	rk, err := ReKey(alice.SK, bob.PK2)
	if err != nil {
		t.Fatal(err)
	}
	rct, err := ReEncrypt(rk, ct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecryptFirstLevel(bob.SK, rct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("re-encryption round trip failed")
	}
}

func TestUnidirectional(t *testing.T) {
	// rk_{a→b} must not convert Bob's ciphertexts toward Alice.
	alice, _ := KeyGen(nil)
	bob, _ := KeyGen(nil)
	m := randomGT(t)

	rk, _ := ReKey(alice.SK, bob.PK2)
	ctBob, _ := EncryptSecondLevel(bob, m, nil)
	rct, err := ReEncrypt(rk, ctBob)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := DecryptFirstLevel(alice.SK, rct)
	if got.Equal(m) {
		t.Fatal("rekey worked in the reverse direction")
	}
}

func TestWrongDelegateeFails(t *testing.T) {
	alice, _ := KeyGen(nil)
	bob, _ := KeyGen(nil)
	eve, _ := KeyGen(nil)
	m := randomGT(t)

	ct, _ := EncryptSecondLevel(alice, m, nil)
	rk, _ := ReKey(alice.SK, bob.PK2)
	rct, _ := ReEncrypt(rk, ct)
	got, _ := DecryptFirstLevel(eve.SK, rct)
	if got.Equal(m) {
		t.Fatal("non-delegatee opened the re-encrypted ciphertext")
	}
}

func TestFirstLevelNotDelegatable(t *testing.T) {
	// Re-encryption applies only to second-level ciphertexts; a first-level
	// ciphertext has a GT first component and cannot even be fed to
	// ReEncrypt. This is the two-level design cost the paper avoids.
	alice, _ := KeyGen(nil)
	m := randomGT(t)
	ct1, _ := EncryptFirstLevel(alice, m, nil)
	// The type system enforces the separation; verify the decryption of a
	// first-level ciphertext by a non-owner fails algebraically too.
	bob, _ := KeyGen(nil)
	got, _ := DecryptFirstLevel(bob.SK, ct1)
	if got.Equal(m) {
		t.Fatal("non-owner opened a first-level ciphertext")
	}
}

func TestCollusionRecoversOnlyWeakKey(t *testing.T) {
	alice, _ := KeyGen(nil)
	bob, _ := KeyGen(nil)
	m := randomGT(t)

	rk, _ := ReKey(alice.SK, bob.PK2)
	weak, err := CollusionRecoverWeakKey(rk, bob.SK)
	if err != nil {
		t.Fatal(err)
	}
	// Weak key opens second-level ciphertexts...
	ct2, _ := EncryptSecondLevel(alice, m, nil)
	got, err := DecryptSecondLevelWithWeakKey(weak, ct2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("weak key failed on second-level ciphertext")
	}
	// ...but NOT first-level ones (master secret stays safe). The weak key
	// is a G2 element and a first-level ciphertext lives entirely in GT, so
	// the only conceivable use is pairing against something — and there is
	// no G1 handle carrying the secret. Verify the weak key is not simply
	// the master public key image g₂^a.
	var weakAsSecret bn254.G2
	weakAsSecret.ScalarBaseMult(alice.SK)
	if weak.Equal(&weakAsSecret) {
		t.Fatal("weak key equals the master public key image")
	}
}

func TestRekeyConvertsAllSecondLevel(t *testing.T) {
	alice, _ := KeyGen(nil)
	bob, _ := KeyGen(nil)
	rk, _ := ReKey(alice.SK, bob.PK2)
	for i := 0; i < 3; i++ {
		m := randomGT(t)
		ct, _ := EncryptSecondLevel(alice, m, nil)
		rct, err := ReEncrypt(rk, ct)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := DecryptFirstLevel(bob.SK, rct)
		if !got.Equal(m) {
			t.Fatalf("ciphertext %d not converted", i)
		}
	}
}

func TestNilInputs(t *testing.T) {
	if _, err := DecryptSecondLevel(nil, nil); err == nil {
		t.Fatal("nil inputs accepted")
	}
	if _, err := DecryptFirstLevel(nil, nil); err == nil {
		t.Fatal("nil inputs accepted")
	}
	if _, err := ReEncrypt(nil, nil); err == nil {
		t.Fatal("nil inputs accepted")
	}
	if _, err := DecryptSecondLevelWithWeakKey(nil, nil); err == nil {
		t.Fatal("nil inputs accepted")
	}
}
