package ga

import (
	"testing"

	"typepre/internal/bn254"
	"typepre/internal/ibe"
)

type fixture struct {
	kgc1, kgc2 *ibe.KGC
	aliceKey   *ibe.PrivateKey
	bobKey     *ibe.PrivateKey
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	kgc1, err := ibe.Setup("kgc1", nil)
	if err != nil {
		t.Fatal(err)
	}
	kgc2, err := ibe.Setup("kgc2", nil)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		kgc1:     kgc1,
		kgc2:     kgc2,
		aliceKey: kgc1.Extract("alice@example.com"),
		bobKey:   kgc2.Extract("bob@example.com"),
	}
}

func randomGT(t *testing.T) *bn254.GT {
	t.Helper()
	m, _, err := bn254.RandomGT(nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestReEncryptionRoundTrip(t *testing.T) {
	f := newFixture(t)
	m := randomGT(t)
	ct, err := Encrypt(f.kgc1.Params(), "alice@example.com", m, nil)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := RKGen(f.aliceKey, f.kgc2.Params(), "bob@example.com", nil)
	if err != nil {
		t.Fatal(err)
	}
	rct, err := ReEncrypt(rk, ct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecryptReEncrypted(f.bobKey, rct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("GA round trip failed")
	}
}

func TestDelegatorStillDecrypts(t *testing.T) {
	f := newFixture(t)
	m := randomGT(t)
	ct, _ := Encrypt(f.kgc1.Params(), "alice@example.com", m, nil)
	got, err := Decrypt(f.aliceKey, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("delegator cannot decrypt own ciphertext")
	}
}

func TestOneRekeyConvertsEverything(t *testing.T) {
	// The property the paper fixes: ANY ciphertext of Alice is converted by
	// a single rekey — there is no type separation to scope the delegation.
	f := newFixture(t)
	rk, _ := RKGen(f.aliceKey, f.kgc2.Params(), "bob@example.com", nil)
	for i := 0; i < 4; i++ {
		m := randomGT(t)
		ct, _ := Encrypt(f.kgc1.Params(), "alice@example.com", m, nil)
		rct, err := ReEncrypt(rk, ct)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := DecryptReEncrypted(f.bobKey, rct)
		if !got.Equal(m) {
			t.Fatalf("ciphertext %d not converted — GA should convert all", i)
		}
	}
}

func TestWrongDelegateeFails(t *testing.T) {
	f := newFixture(t)
	eveKey := f.kgc2.Extract("eve@example.com")
	m := randomGT(t)
	ct, _ := Encrypt(f.kgc1.Params(), "alice@example.com", m, nil)
	rk, _ := RKGen(f.aliceKey, f.kgc2.Params(), "bob@example.com", nil)
	rct, _ := ReEncrypt(rk, ct)
	got, _ := DecryptReEncrypted(eveKey, rct)
	if got.Equal(m) {
		t.Fatal("non-delegatee opened the ciphertext")
	}
}

func TestCollusionDoesNotRecoverMasterKey(t *testing.T) {
	// GA is collusion-safe in the same sense as the paper's scheme: the
	// pair (proxy, delegatee) recovers sk_id exactly — wait, without the
	// type exponent the recoverable value IS sk_id. Verify precisely that:
	// rk + H1(X)⁻¹ = sk⁻¹, so collusion recovers sk itself. This is why GA
	// restricts delegation to "all messages" trust decisions, while the
	// paper's type exponent keeps sk hidden (see core tests).
	f := newFixture(t)
	rk, _ := RKGen(f.aliceKey, f.kgc2.Params(), "bob@example.com", nil)
	x, err := ibe.Decrypt(f.bobKey, rk.EncX)
	if err != nil {
		t.Fatal(err)
	}
	// sk = (rk − H1(X))^(−1) in additive notation: recover and compare.
	var recovered bn254.G1
	recovered.Neg(hashX(x))
	recovered.Add(rk.RK, &recovered) // sk⁻¹ = −sk
	recovered.Neg(&recovered)
	if !recovered.Equal(f.aliceKey.SK) {
		t.Fatal("GA collusion algebra mismatch: expected delegation key recovery")
	}
}

func hashX(x *bn254.GT) *bn254.G1 {
	return bn254.HashToG1(bn254.DomainG1+"/gt", x.Marshal())
}

func TestNilInputs(t *testing.T) {
	f := newFixture(t)
	if _, err := ReEncrypt(nil, nil); err == nil {
		t.Fatal("nil inputs accepted")
	}
	if _, err := DecryptReEncrypted(f.bobKey, nil); err == nil {
		t.Fatal("nil reciphertext accepted")
	}
}
