// Package ga implements the Green–Ateniese identity-based proxy
// re-encryption scheme IBP1 (ACNS '07) in its CPA form, the construction
// the paper's scheme extends with message types. Structurally it is the
// paper's scheme with the type exponent H2(sk‖t) removed, which makes the
// comparison in experiment E4 exact: the cost delta between ga and core IS
// the cost of type-based fine granularity.
//
//	Encrypt:  c = (g₂^r, m·ê(H1(id), pk₁)^r)            (plain BF-IBE)
//	RKGen:    rk = (sk_id⁻¹·H1(X), Encrypt2(X, id_j)),  X ∈R GT
//	ReEnc:    c' = (c1, c2·ê(rk₁, c1)) = (c1, m·ê(H1(X), c1))
//	Dec':     X = Decrypt2(rk₂), m = c'2 / ê(H1(X), c'1)
//
// One rekey re-encrypts EVERY ciphertext of the delegator: per-category
// disclosure requires trusting the proxy to filter, which is exactly the
// trust assumption the paper removes.
package ga

import (
	"errors"
	"fmt"
	"io"

	"typepre/internal/bn254"
	"typepre/internal/core"
	"typepre/internal/ibe"
)

// ErrDecrypt is returned on malformed inputs.
var ErrDecrypt = errors.New("ga: decryption failed")

// ReKey is an identity-based (type-less) proxy key.
type ReKey struct {
	DelegatorID string
	DelegateeID string
	RK          *bn254.G1       // sk_id⁻¹ · H1(X)
	EncX        *ibe.Ciphertext // Encrypt2(X, id_j)
}

// Encrypt is plain Boneh–Franklin encryption (the delegatable form).
func Encrypt(params *ibe.Params, id string, m *bn254.GT, rng io.Reader) (*ibe.Ciphertext, error) {
	return ibe.Encrypt(params, id, m, rng)
}

// Decrypt opens a ciphertext with the delegator's own key.
func Decrypt(sk *ibe.PrivateKey, ct *ibe.Ciphertext) (*bn254.GT, error) {
	return ibe.Decrypt(sk, ct)
}

// RKGen builds the proxy key toward delegateeID at the KGC described by
// delegateeParams. Non-interactive and unidirectional, like the paper's
// scheme — but with no type parameter.
func RKGen(sk *ibe.PrivateKey, delegateeParams *ibe.Params, delegateeID string, rng io.Reader) (*ReKey, error) {
	x, _, err := bn254.RandomGT(rng)
	if err != nil {
		return nil, fmt.Errorf("ga: rkgen: %w", err)
	}
	encX, err := ibe.Encrypt(delegateeParams, delegateeID, x, rng)
	if err != nil {
		return nil, fmt.Errorf("ga: rkgen: %w", err)
	}
	var rk bn254.G1
	rk.Neg(sk.SK) // sk⁻¹ in additive notation
	rk.Add(&rk, core.HashGTToG1(x))
	return &ReKey{
		DelegatorID: sk.ID,
		DelegateeID: delegateeID,
		RK:          &rk,
		EncX:        encX,
	}, nil
}

// ReCiphertext is a re-encrypted ciphertext for the delegatee.
type ReCiphertext struct {
	C1   *bn254.G2
	C2   *bn254.GT
	EncX *ibe.Ciphertext
}

// ReEncrypt applies the proxy key. It succeeds on every ciphertext of the
// delegator — the all-or-nothing behavior experiment E6 quantifies.
func ReEncrypt(rk *ReKey, ct *ibe.Ciphertext) (*ReCiphertext, error) {
	if rk == nil || rk.RK == nil || ct == nil || ct.C1 == nil || ct.C2 == nil {
		return nil, ErrDecrypt
	}
	adj := bn254.Pair(rk.RK, ct.C1)
	var c2 bn254.GT
	c2.Mul(ct.C2, adj)
	var c1 bn254.G2
	c1.Set(ct.C1)
	return &ReCiphertext{C1: &c1, C2: &c2, EncX: rk.EncX}, nil
}

// DecryptReEncrypted opens a re-encrypted ciphertext with the delegatee's
// private key.
func DecryptReEncrypted(sk *ibe.PrivateKey, rct *ReCiphertext) (*bn254.GT, error) {
	if rct == nil || rct.C1 == nil || rct.C2 == nil || rct.EncX == nil {
		return nil, ErrDecrypt
	}
	x, err := ibe.Decrypt(sk, rct.EncX)
	if err != nil {
		return nil, fmt.Errorf("ga: %w", err)
	}
	den := bn254.Pair(core.HashGTToG1(x), rct.C1)
	var m bn254.GT
	m.Div(rct.C2, den)
	return &m, nil
}
