// Package dodisivan implements the Dodis–Ivan secret-splitting proxy
// re-encryption construction (NDSS '03) instantiated on Boneh–Franklin IBE,
// as described in the paper's related work: the delegator splits his
// private key into two shares, the proxy partially decrypts with the first
// share, and the delegatee finishes decryption with the second share.
//
//	Split:   sk_id = sk1 · sk2 in G1  (sk2 = g^δ random, sk1 = sk_id − sk2
//	         in additive notation)
//	Proxy:   partial = c2 / ê(sk1, c1) = m · ê(sk2, c1)
//	Finish:  m = partial / ê(sk2, c1)
//
// Documented drawbacks this package demonstrates (and the tests verify):
//
//   - INTERACTIVE: sk2 must be transferred to the delegatee secretly.
//   - NOT COLLUSION-SAFE: sk1·sk2 = sk_id — the proxy and the delegatee can
//     jointly recover the delegator's entire private key (Collude).
//   - ALL-OR-NOTHING: the share pair converts every ciphertext of the
//     delegator; no per-type granularity.
package dodisivan

import (
	"errors"
	"fmt"
	"io"

	"typepre/internal/bn254"
	"typepre/internal/ibe"
)

// ErrDecrypt is returned on malformed inputs.
var ErrDecrypt = errors.New("dodisivan: decryption failed")

// Shares is a split of an IBE private key: ProxyShare goes to the proxy,
// DelegateeShare must be handed to the delegatee over a secure channel.
type Shares struct {
	ID             string
	ProxyShare     *bn254.G1 // sk1
	DelegateeShare *bn254.G1 // sk2
}

// Split divides the delegator's private key into two multiplicative shares.
func Split(sk *ibe.PrivateKey, rng io.Reader) (*Shares, error) {
	delta, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("dodisivan: split: %w", err)
	}
	var sk2 bn254.G1
	sk2.ScalarBaseMult(delta)
	var sk1 bn254.G1
	sk1.Neg(&sk2)
	sk1.Add(sk.SK, &sk1) // sk1 = sk − sk2 (additive notation)
	return &Shares{ID: sk.ID, ProxyShare: &sk1, DelegateeShare: &sk2}, nil
}

// PartialCiphertext is the proxy's output: the original randomizer plus the
// partially unmasked payload.
type PartialCiphertext struct {
	C1 *bn254.G2
	C2 *bn254.GT // m · ê(sk2, c1)
}

// ProxyTransform partially decrypts a Boneh–Franklin ciphertext with the
// proxy share. It applies to EVERY ciphertext of the delegator.
func ProxyTransform(proxyShare *bn254.G1, ct *ibe.Ciphertext) (*PartialCiphertext, error) {
	if proxyShare == nil || ct == nil || ct.C1 == nil || ct.C2 == nil {
		return nil, ErrDecrypt
	}
	den := bn254.Pair(proxyShare, ct.C1)
	var c2 bn254.GT
	c2.Div(ct.C2, den)
	var c1 bn254.G2
	c1.Set(ct.C1)
	return &PartialCiphertext{C1: &c1, C2: &c2}, nil
}

// Finish completes decryption with the delegatee share.
func Finish(delegateeShare *bn254.G1, pct *PartialCiphertext) (*bn254.GT, error) {
	if delegateeShare == nil || pct == nil || pct.C1 == nil || pct.C2 == nil {
		return nil, ErrDecrypt
	}
	den := bn254.Pair(delegateeShare, pct.C1)
	var m bn254.GT
	m.Div(pct.C2, den)
	return &m, nil
}

// Collude reconstructs the delegator's full private key from the two
// shares — the collusion attack the paper's scheme rules out.
func Collude(s *Shares) *bn254.G1 {
	var sk bn254.G1
	sk.Add(s.ProxyShare, s.DelegateeShare)
	return &sk
}
