package dodisivan

import (
	"testing"

	"typepre/internal/bn254"
	"typepre/internal/ibe"
)

func setup(t *testing.T) (*ibe.KGC, *ibe.PrivateKey) {
	t.Helper()
	kgc, err := ibe.Setup("kgc", nil)
	if err != nil {
		t.Fatal(err)
	}
	return kgc, kgc.Extract("alice@example.com")
}

func randomGT(t *testing.T) *bn254.GT {
	t.Helper()
	m, _, err := bn254.RandomGT(nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSplitDecryptionRoundTrip(t *testing.T) {
	kgc, sk := setup(t)
	shares, err := Split(sk, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := randomGT(t)
	ct, err := ibe.Encrypt(kgc.Params(), "alice@example.com", m, nil)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := ProxyTransform(shares.ProxyShare, ct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Finish(shares.DelegateeShare, partial)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("split decryption failed")
	}
}

func TestProxyAloneCannotDecrypt(t *testing.T) {
	kgc, sk := setup(t)
	shares, err := Split(sk, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := randomGT(t)
	ct, _ := ibe.Encrypt(kgc.Params(), "alice@example.com", m, nil)
	partial, err := ProxyTransform(shares.ProxyShare, ct)
	if err != nil {
		t.Fatal(err)
	}
	if partial.C2.Equal(m) {
		t.Fatal("proxy share alone recovered the message")
	}
}

func TestDelegateeShareAloneCannotDecrypt(t *testing.T) {
	kgc, sk := setup(t)
	shares, _ := Split(sk, nil)
	m := randomGT(t)
	ct, _ := ibe.Encrypt(kgc.Params(), "alice@example.com", m, nil)
	// Applying Finish directly to the original ciphertext (skipping the
	// proxy) must not reveal m.
	got, err := Finish(shares.DelegateeShare, &PartialCiphertext{C1: ct.C1, C2: ct.C2})
	if err != nil {
		t.Fatal(err)
	}
	if got.Equal(m) {
		t.Fatal("delegatee share alone recovered the message")
	}
}

func TestCollusionRecoversMasterKey(t *testing.T) {
	// The paper's criticism of Dodis–Ivan: proxy + delegatee = full key.
	_, sk := setup(t)
	shares, _ := Split(sk, nil)
	recovered := Collude(shares)
	if !recovered.Equal(sk.SK) {
		t.Fatal("collusion should recover the full private key in Dodis–Ivan")
	}
}

func TestSplitIsRandomized(t *testing.T) {
	_, sk := setup(t)
	s1, _ := Split(sk, nil)
	s2, _ := Split(sk, nil)
	if s1.ProxyShare.Equal(s2.ProxyShare) {
		t.Fatal("two splits produced identical proxy shares")
	}
	// Both splits must still recombine to the same key.
	if !Collude(s1).Equal(Collude(s2)) {
		t.Fatal("splits recombine to different keys")
	}
}

func TestSharesConvertAllCiphertexts(t *testing.T) {
	kgc, sk := setup(t)
	shares, _ := Split(sk, nil)
	for i := 0; i < 3; i++ {
		m := randomGT(t)
		ct, _ := ibe.Encrypt(kgc.Params(), "alice@example.com", m, nil)
		partial, err := ProxyTransform(shares.ProxyShare, ct)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := Finish(shares.DelegateeShare, partial)
		if !got.Equal(m) {
			t.Fatalf("ciphertext %d not converted", i)
		}
	}
}

func TestNilInputs(t *testing.T) {
	if _, err := ProxyTransform(nil, nil); err == nil {
		t.Fatal("nil inputs accepted")
	}
	if _, err := Finish(nil, nil); err == nil {
		t.Fatal("nil inputs accepted")
	}
}
