package phr

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"typepre/internal/core"
	"typepre/internal/hybrid"
)

// HTTP API for the PHR disclosure service: the deployable form of the §5
// architecture. The server holds only what the semi-trusted parties hold —
// sealed records and re-encryption grants — and every response carrying
// record content is a ciphertext for exactly one requester.
//
//	POST   /v1/records                      upload a sealed record
//	GET    /v1/records/{id}?requester=R     disclose one record toward R
//	GET    /v1/patients/{p}/categories/{c}?requester=R   bulk disclosure
//	POST   /v1/grants                       install a marshaled rekey
//	DELETE /v1/grants?patient=&category=&requester=      revoke
//	GET    /v1/audit?category=C             audit entries (JSON)
//
// Binary payloads use application/octet-stream with the package's own
// framing; metadata rides in headers (X-Record-*). Full endpoint,
// wire-format and trust-model documentation lives in docs/httpapi.md.

// Header names of the record-upload metadata.
const (
	HeaderRecordID       = "X-Record-Id"
	HeaderRecordPatient  = "X-Record-Patient"
	HeaderRecordCategory = "X-Record-Category"
)

// Request-body ceilings. Oversized uploads are rejected with 413, never
// silently truncated.
const (
	MaxRecordBytes = 16 << 20 // sealed record upload
	MaxGrantBytes  = 1 << 20  // marshaled rekey upload
)

// Server exposes a Service over HTTP.
type Server struct {
	svc *Service
	mux *http.ServeMux
}

// NewServer wraps a service.
func NewServer(svc *Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/records", s.handlePutRecord)
	s.mux.HandleFunc("GET /v1/records/{id...}", s.handleDisclose)
	s.mux.HandleFunc("GET /v1/patients/{patient}/categories/{category}", s.handleDiscloseCategory)
	s.mux.HandleFunc("POST /v1/grants", s.handleInstallGrant)
	s.mux.HandleFunc("DELETE /v1/grants", s.handleRevokeGrant)
	s.mux.HandleFunc("GET /v1/audit", s.handleAudit)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func httpError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrNoGrant), errors.Is(err, ErrStaleGrant):
		http.Error(w, err.Error(), http.StatusForbidden)
	case errors.Is(err, ErrDuplicate):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, ErrNoProxy):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// readLimitedBody reads at most limit bytes of the request body. A body
// that exceeds the limit gets a 413 (read limit+1 bytes to tell "exactly
// limit" apart from "over"); a transport error gets a 400. On failure the
// response has been written and the caller must return.
func readLimitedBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if int64(len(body)) > limit {
		http.Error(w, fmt.Sprintf("request body exceeds %d bytes", limit),
			http.StatusRequestEntityTooLarge)
		return nil, false
	}
	return body, true
}

func (s *Server) handlePutRecord(w http.ResponseWriter, r *http.Request) {
	id := r.Header.Get(HeaderRecordID)
	patient := r.Header.Get(HeaderRecordPatient)
	category := r.Header.Get(HeaderRecordCategory)
	if id == "" || patient == "" || category == "" {
		http.Error(w, "missing record metadata headers", http.StatusBadRequest)
		return
	}
	body, ok := readLimitedBody(w, r, MaxRecordBytes)
	if !ok {
		return
	}
	sealed, err := hybrid.UnmarshalCiphertext(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The sealed wire type may carry a rotation-epoch suffix; the routing
	// category is always the logical one.
	if Category(category) != BaseCategory(sealed.KEM.Type) {
		http.Error(w, "category header does not match sealed type", http.StatusBadRequest)
		return
	}
	rec := &EncryptedRecord{
		ID:        id,
		PatientID: patient,
		Category:  Category(category),
		CreatedAt: time.Now(),
		Sealed:    sealed,
	}
	if err := s.svc.Store.Put(rec); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) handleDisclose(w http.ResponseWriter, r *http.Request) {
	recordID := r.PathValue("id")
	requester := r.URL.Query().Get("requester")
	if requester == "" {
		http.Error(w, "missing requester", http.StatusBadRequest)
		return
	}
	rct, err := s.svc.Request(recordID, requester)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(rct.Marshal())
}

func (s *Server) handleDiscloseCategory(w http.ResponseWriter, r *http.Request) {
	patient := r.PathValue("patient")
	category := Category(r.PathValue("category"))
	requester := r.URL.Query().Get("requester")
	if requester == "" {
		http.Error(w, "missing requester", http.StatusBadRequest)
		return
	}
	proxy, err := s.svc.ProxyFor(category)
	if err != nil {
		httpError(w, err)
		return
	}
	// Stream length-prefixed containers as the worker pool finishes ordered
	// items: same wire framing as the old buffered response, but the server
	// holds at most a pool's worth of containers at a time. Errors that
	// occur before the first frame (no grant, no records re-encryptable)
	// still map to clean HTTP statuses; after the first frame the status
	// line is already on the wire, so the only honest signal left is an
	// aborted connection, which the client decoder reports as truncation.
	w.Header().Set("Content-Type", "application/octet-stream")
	flusher, _ := w.(http.Flusher)
	wrote := false
	err = proxy.DiscloseCategoryStream(s.svc.Store, patient, category, requester, func(rct *hybrid.ReCiphertext) error {
		b := rct.Marshal()
		var prefix [4]byte
		binary.BigEndian.PutUint32(prefix[:], uint32(len(b)))
		// The first Write attempt commits the 200 status even if it fails
		// partway, so flip wrote before touching the ResponseWriter.
		wrote = true
		if _, err := w.Write(prefix[:]); err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		if !wrote {
			httpError(w, err)
			return
		}
		panic(http.ErrAbortHandler)
	}
}

func (s *Server) handleInstallGrant(w http.ResponseWriter, r *http.Request) {
	body, ok := readLimitedBody(w, r, MaxGrantBytes)
	if !ok {
		return
	}
	rk, err := core.UnmarshalReKey(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	proxy, err := s.svc.ProxyFor(rk.Type)
	if err != nil {
		httpError(w, err)
		return
	}
	if err := proxy.Install(rk); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) handleRevokeGrant(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	patient, category, requester := q.Get("patient"), Category(q.Get("category")), q.Get("requester")
	if patient == "" || category == "" || requester == "" {
		http.Error(w, "missing patient/category/requester", http.StatusBadRequest)
		return
	}
	proxy, err := s.svc.ProxyFor(category)
	if err != nil {
		httpError(w, err)
		return
	}
	if err := proxy.Revoke(patient, category, requester); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	category := Category(r.URL.Query().Get("category"))
	proxy, err := s.svc.ProxyFor(category)
	if err != nil {
		httpError(w, err)
		return
	}
	// Marshal before touching the ResponseWriter so an encoding failure can
	// still surface as a status code instead of a torn 200 body.
	buf, err := json.Marshal(proxy.Audit().Entries())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf)
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

// Client is a minimal typed client for the HTTP API. Identifiers (record
// IDs, patients, categories, requesters) may contain any bytes — '/', '&',
// '#', '+', spaces — the client escapes them on every request, and the
// server's wildcard routes unescape them back, so hostile IDs round-trip.
type Client struct {
	Base string
	HTTP *http.Client
}

// NewClient returns a client for the given base URL (no trailing slash).
func NewClient(base string) *Client {
	return &Client{Base: base, HTTP: http.DefaultClient}
}

// doStream issues the request and hands back the (open) response body on
// the expected status. On any other status it consumes a bounded error
// snippet and returns it as an error.
func (c *Client) doStream(req *http.Request, wantStatus int) (io.ReadCloser, error) {
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != wantStatus {
		defer resp.Body.Close()
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 8<<10))
		return nil, fmt.Errorf("phr: %s %s: %s: %s", req.Method, req.URL.Path, resp.Status, snippet)
	}
	return resp.Body, nil
}

func (c *Client) do(req *http.Request, wantStatus int) ([]byte, error) {
	body, err := c.doStream(req, wantStatus)
	if err != nil {
		return nil, err
	}
	defer body.Close()
	return io.ReadAll(body)
}

// PutRecord uploads a sealed record.
func (c *Client) PutRecord(rec *EncryptedRecord) error {
	req, err := http.NewRequest("POST", c.Base+"/v1/records", bytesReader(rec.Sealed.Marshal()))
	if err != nil {
		return err
	}
	req.Header.Set(HeaderRecordID, rec.ID)
	req.Header.Set(HeaderRecordPatient, rec.PatientID)
	req.Header.Set(HeaderRecordCategory, string(rec.Category))
	_, err = c.do(req, http.StatusCreated)
	return err
}

// InstallGrant uploads a rekey; the server routes it to the right proxy.
func (c *Client) InstallGrant(rk *core.ReKey) error {
	req, err := http.NewRequest("POST", c.Base+"/v1/grants", bytesReader(rk.Marshal()))
	if err != nil {
		return err
	}
	_, err = c.do(req, http.StatusCreated)
	return err
}

// RevokeGrant removes a grant.
func (c *Client) RevokeGrant(patient string, category Category, requester string) error {
	q := url.Values{
		"patient":   {patient},
		"category":  {string(category)},
		"requester": {requester},
	}
	req, err := http.NewRequest("DELETE", c.Base+"/v1/grants?"+q.Encode(), nil)
	if err != nil {
		return err
	}
	_, err = c.do(req, http.StatusNoContent)
	return err
}

// Disclose fetches one record re-encrypted toward the requester.
func (c *Client) Disclose(recordID, requester string) (*hybrid.ReCiphertext, error) {
	u := fmt.Sprintf("%s/v1/records/%s?requester=%s",
		c.Base, url.PathEscape(recordID), url.QueryEscape(requester))
	req, err := http.NewRequest("GET", u, nil)
	if err != nil {
		return nil, err
	}
	body, err := c.do(req, http.StatusOK)
	if err != nil {
		return nil, err
	}
	return hybrid.UnmarshalReCiphertext(body)
}

// DiscloseCategoryStream fetches every record of (patient, category) and
// calls yield once per container, in the server's (insertion) order, as
// frames arrive — the client never buffers more than one container. A
// server-side mid-stream failure surfaces as a truncation error after the
// frames delivered so far.
func (c *Client) DiscloseCategoryStream(patient string, category Category, requester string, yield func(*hybrid.ReCiphertext) error) error {
	u := fmt.Sprintf("%s/v1/patients/%s/categories/%s?requester=%s",
		c.Base, url.PathEscape(patient), url.PathEscape(string(category)), url.QueryEscape(requester))
	req, err := http.NewRequest("GET", u, nil)
	if err != nil {
		return err
	}
	body, err := c.doStream(req, http.StatusOK)
	if err != nil {
		return err
	}
	defer body.Close()
	return DecodeBulkStream(body, yield)
}

// DecodeBulkStream incrementally decodes a length-prefixed bulk-disclosure
// response — the wire format handleDiscloseCategory produces — calling
// yield once per decoded container. It is the single decoder of that
// framing (the client uses it, and the fuzz target hammers it with
// truncated, oversized and hostile frames): a malformed stream returns an
// error after the frames decoded so far, and a frame length beyond the
// protocol limit is rejected before any allocation of that size.
func DecodeBulkStream(r io.Reader, yield func(*hybrid.ReCiphertext) error) error {
	br := bufio.NewReader(r)
	var prefix [4]byte
	for {
		if _, err := io.ReadFull(br, prefix[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("phr: truncated bulk response: %w", err)
		}
		n := binary.BigEndian.Uint32(prefix[:])
		if n > MaxRecordBytes+4096 {
			return fmt.Errorf("phr: bulk item of %d bytes exceeds protocol limit", n)
		}
		item := make([]byte, n)
		if _, err := io.ReadFull(br, item); err != nil {
			return fmt.Errorf("phr: truncated bulk item: %w", err)
		}
		rct, err := hybrid.UnmarshalReCiphertext(item)
		if err != nil {
			return err
		}
		if err := yield(rct); err != nil {
			return err
		}
	}
}

// DiscloseCategory is DiscloseCategoryStream collected into a slice.
func (c *Client) DiscloseCategory(patient string, category Category, requester string) ([]*hybrid.ReCiphertext, error) {
	var out []*hybrid.ReCiphertext
	err := c.DiscloseCategoryStream(patient, category, requester, func(rct *hybrid.ReCiphertext) error {
		out = append(out, rct)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Audit fetches a proxy's audit entries.
func (c *Client) Audit(category Category) ([]AuditEntry, error) {
	q := url.Values{"category": {string(category)}}
	req, err := http.NewRequest("GET", c.Base+"/v1/audit?"+q.Encode(), nil)
	if err != nil {
		return nil, err
	}
	body, err := c.do(req, http.StatusOK)
	if err != nil {
		return nil, err
	}
	var entries []AuditEntry
	if err := json.Unmarshal(body, &entries); err != nil {
		return nil, err
	}
	return entries, nil
}

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }
