package phr

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"typepre/internal/core"
	"typepre/internal/hybrid"
)

// HTTP API for the PHR disclosure service: the deployable form of the §5
// architecture. The server holds only what the semi-trusted parties hold —
// sealed records and re-encryption grants — and every response carrying
// record content is a ciphertext for exactly one requester.
//
//	POST   /v1/records                      upload a sealed record
//	GET    /v1/records/{id}?requester=R     disclose one record toward R
//	GET    /v1/patients/{p}/categories/{c}?requester=R   bulk disclosure
//	POST   /v1/grants                       install a marshaled rekey
//	DELETE /v1/grants?patient=&category=&requester=      revoke
//	GET    /v1/audit?category=C             audit entries (JSON)
//
// Binary payloads use application/octet-stream with the package's own
// framing; metadata rides in headers (X-Record-*). Full endpoint,
// wire-format and trust-model documentation lives in docs/httpapi.md.

// Header names of the record-upload metadata.
const (
	HeaderRecordID       = "X-Record-Id"
	HeaderRecordPatient  = "X-Record-Patient"
	HeaderRecordCategory = "X-Record-Category"
)

// Server exposes a Service over HTTP.
type Server struct {
	svc *Service
	mux *http.ServeMux
}

// NewServer wraps a service.
func NewServer(svc *Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/records", s.handlePutRecord)
	s.mux.HandleFunc("GET /v1/records/{id...}", s.handleDisclose)
	s.mux.HandleFunc("GET /v1/patients/{patient}/categories/{category}", s.handleDiscloseCategory)
	s.mux.HandleFunc("POST /v1/grants", s.handleInstallGrant)
	s.mux.HandleFunc("DELETE /v1/grants", s.handleRevokeGrant)
	s.mux.HandleFunc("GET /v1/audit", s.handleAudit)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func httpError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrNoGrant):
		http.Error(w, err.Error(), http.StatusForbidden)
	case errors.Is(err, ErrDuplicate):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, ErrNoProxy):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func (s *Server) handlePutRecord(w http.ResponseWriter, r *http.Request) {
	id := r.Header.Get(HeaderRecordID)
	patient := r.Header.Get(HeaderRecordPatient)
	category := r.Header.Get(HeaderRecordCategory)
	if id == "" || patient == "" || category == "" {
		http.Error(w, "missing record metadata headers", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sealed, err := hybrid.UnmarshalCiphertext(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if core.Type(category) != sealed.KEM.Type {
		http.Error(w, "category header does not match sealed type", http.StatusBadRequest)
		return
	}
	rec := &EncryptedRecord{
		ID:        id,
		PatientID: patient,
		Category:  Category(category),
		CreatedAt: time.Now(),
		Sealed:    sealed,
	}
	if err := s.svc.Store.Put(rec); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) handleDisclose(w http.ResponseWriter, r *http.Request) {
	recordID := r.PathValue("id")
	requester := r.URL.Query().Get("requester")
	if requester == "" {
		http.Error(w, "missing requester", http.StatusBadRequest)
		return
	}
	rct, err := s.svc.Request(recordID, requester)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(rct.Marshal())
}

func (s *Server) handleDiscloseCategory(w http.ResponseWriter, r *http.Request) {
	patient := r.PathValue("patient")
	category := Category(r.PathValue("category"))
	requester := r.URL.Query().Get("requester")
	if requester == "" {
		http.Error(w, "missing requester", http.StatusBadRequest)
		return
	}
	proxy, err := s.svc.ProxyFor(category)
	if err != nil {
		httpError(w, err)
		return
	}
	rcts, err := proxy.DiscloseCategory(s.svc.Store, patient, category, requester)
	if err != nil {
		httpError(w, err)
		return
	}
	// Length-prefixed concatenation of the re-encrypted containers.
	w.Header().Set("Content-Type", "application/octet-stream")
	var out []byte
	for _, rct := range rcts {
		b := rct.Marshal()
		out = append(out, byte(len(b)>>24), byte(len(b)>>16), byte(len(b)>>8), byte(len(b)))
		out = append(out, b...)
	}
	w.Write(out)
}

func (s *Server) handleInstallGrant(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rk, err := core.UnmarshalReKey(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	proxy, err := s.svc.ProxyFor(rk.Type)
	if err != nil {
		httpError(w, err)
		return
	}
	if err := proxy.Install(rk); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) handleRevokeGrant(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	patient, category, requester := q.Get("patient"), Category(q.Get("category")), q.Get("requester")
	if patient == "" || category == "" || requester == "" {
		http.Error(w, "missing patient/category/requester", http.StatusBadRequest)
		return
	}
	proxy, err := s.svc.ProxyFor(category)
	if err != nil {
		httpError(w, err)
		return
	}
	if err := proxy.Revoke(patient, category, requester); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	category := Category(r.URL.Query().Get("category"))
	proxy, err := s.svc.ProxyFor(category)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(proxy.Audit().Entries())
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

// Client is a minimal typed client for the HTTP API.
type Client struct {
	Base string
	HTTP *http.Client
}

// NewClient returns a client for the given base URL (no trailing slash).
func NewClient(base string) *Client {
	return &Client{Base: base, HTTP: http.DefaultClient}
}

func (c *Client) do(req *http.Request, wantStatus int) ([]byte, error) {
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != wantStatus {
		return nil, fmt.Errorf("phr: %s %s: %s: %s", req.Method, req.URL.Path, resp.Status, body)
	}
	return body, nil
}

// PutRecord uploads a sealed record.
func (c *Client) PutRecord(rec *EncryptedRecord) error {
	req, err := http.NewRequest("POST", c.Base+"/v1/records", bytesReader(rec.Sealed.Marshal()))
	if err != nil {
		return err
	}
	req.Header.Set(HeaderRecordID, rec.ID)
	req.Header.Set(HeaderRecordPatient, rec.PatientID)
	req.Header.Set(HeaderRecordCategory, string(rec.Category))
	_, err = c.do(req, http.StatusCreated)
	return err
}

// InstallGrant uploads a rekey; the server routes it to the right proxy.
func (c *Client) InstallGrant(rk *core.ReKey) error {
	req, err := http.NewRequest("POST", c.Base+"/v1/grants", bytesReader(rk.Marshal()))
	if err != nil {
		return err
	}
	_, err = c.do(req, http.StatusCreated)
	return err
}

// RevokeGrant removes a grant.
func (c *Client) RevokeGrant(patient string, category Category, requester string) error {
	url := fmt.Sprintf("%s/v1/grants?patient=%s&category=%s&requester=%s",
		c.Base, patient, category, requester)
	req, err := http.NewRequest("DELETE", url, nil)
	if err != nil {
		return err
	}
	_, err = c.do(req, http.StatusNoContent)
	return err
}

// Disclose fetches one record re-encrypted toward the requester.
func (c *Client) Disclose(recordID, requester string) (*hybrid.ReCiphertext, error) {
	url := fmt.Sprintf("%s/v1/records/%s?requester=%s", c.Base, recordID, requester)
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		return nil, err
	}
	body, err := c.do(req, http.StatusOK)
	if err != nil {
		return nil, err
	}
	return hybrid.UnmarshalReCiphertext(body)
}

// DiscloseCategory fetches every record of (patient, category).
func (c *Client) DiscloseCategory(patient string, category Category, requester string) ([]*hybrid.ReCiphertext, error) {
	url := fmt.Sprintf("%s/v1/patients/%s/categories/%s?requester=%s",
		c.Base, patient, category, requester)
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		return nil, err
	}
	body, err := c.do(req, http.StatusOK)
	if err != nil {
		return nil, err
	}
	var out []*hybrid.ReCiphertext
	for len(body) > 0 {
		if len(body) < 4 {
			return nil, fmt.Errorf("phr: truncated bulk response")
		}
		n := int(body[0])<<24 | int(body[1])<<16 | int(body[2])<<8 | int(body[3])
		body = body[4:]
		if len(body) < n {
			return nil, fmt.Errorf("phr: truncated bulk item")
		}
		rct, err := hybrid.UnmarshalReCiphertext(body[:n])
		if err != nil {
			return nil, err
		}
		out = append(out, rct)
		body = body[n:]
	}
	return out, nil
}

// Audit fetches a proxy's audit entries.
func (c *Client) Audit(category Category) ([]AuditEntry, error) {
	req, err := http.NewRequest("GET", fmt.Sprintf("%s/v1/audit?category=%s", c.Base, category), nil)
	if err != nil {
		return nil, err
	}
	body, err := c.do(req, http.StatusOK)
	if err != nil {
		return nil, err
	}
	var entries []AuditEntry
	if err := json.Unmarshal(body, &entries); err != nil {
		return nil, err
	}
	return entries, nil
}

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }
