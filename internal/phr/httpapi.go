package phr

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"typepre/internal/core"
	"typepre/internal/hybrid"
	"typepre/internal/loadstat"
)

// HTTP API for the PHR disclosure service: the deployable form of the §5
// architecture. The server holds only what the semi-trusted parties hold —
// sealed records and re-encryption grants — and every response carrying
// record content is a ciphertext for exactly one requester.
//
//	POST   /v1/records                      upload a sealed record
//	GET    /v1/records/{id}?requester=R     disclose one record toward R
//	GET    /v1/patients/{p}/categories/{c}?requester=R   bulk disclosure
//	POST   /v1/patients/{p}/breakglass?requester=R&reason=...   emergency access
//	POST   /v1/grants                       install a marshaled rekey
//	DELETE /v1/grants?patient=&category=&requester=      revoke
//	GET    /v1/audit?category=C[&limit=N]   audit entries (JSON)
//	GET    /v1/metrics                      per-endpoint server metrics (JSON)
//
// Binary payloads use application/octet-stream with the package's own
// framing; metadata rides in headers (X-Record-*). Full endpoint,
// wire-format and trust-model documentation lives in docs/httpapi.md.

// Header names of the record-upload metadata.
const (
	HeaderRecordID       = "X-Record-Id"
	HeaderRecordPatient  = "X-Record-Patient"
	HeaderRecordCategory = "X-Record-Category"
)

// Request-body ceilings. Oversized uploads are rejected with 413, never
// silently truncated.
const (
	MaxRecordBytes = 16 << 20 // sealed record upload
	MaxGrantBytes  = 1 << 20  // marshaled rekey upload
)

// Endpoint labels used by the server's own instrumentation and by the
// cmd/phrload harness, so client-observed and server-observed metrics
// attribute one to one.
const (
	EndpointPut        = "put"
	EndpointDisclose   = "disclose"
	EndpointStream     = "disclose-category-stream"
	EndpointBreakGlass = "break-glass"
	EndpointGrant      = "install-grant"
	EndpointRevoke     = "revoke"
	EndpointAudit      = "audit"
)

// ServerConfig carries measurement controls for the HTTP layer. The zero
// value is the production configuration; the Legacy*/No* switches re-enable
// pre-optimization code paths so cmd/phrload -compare can attribute the
// hot-path fixes with a repeatable A/B run.
type ServerConfig struct {
	// LegacyAuditJSON re-marshals the entire audit log on every GET
	// /v1/audit instead of serving the incremental encode cache.
	LegacyAuditJSON bool
	// NoFramePool marshals each disclosure response container into a fresh
	// allocation and writes its length prefix separately, instead of using
	// the pooled single-write frame path.
	NoFramePool bool
}

// Server exposes a Service over HTTP.
type Server struct {
	svc   *Service
	cfg   ServerConfig
	mux   *http.ServeMux
	start time.Time

	// Per-endpoint request instrumentation; served by GET /v1/metrics.
	metrics  *loadstat.Collector
	inflight loadstat.Gauge
}

// NewServer wraps a service with the production configuration.
func NewServer(svc *Service) *Server { return NewServerWith(svc, ServerConfig{}) }

// NewServerWith wraps a service with explicit measurement controls.
func NewServerWith(svc *Service, cfg ServerConfig) *Server {
	s := &Server{
		svc:     svc,
		cfg:     cfg,
		mux:     http.NewServeMux(),
		start:   time.Now(),
		metrics: loadstat.NewCollector(),
	}
	s.handle("POST /v1/records", EndpointPut, s.handlePutRecord)
	s.handle("GET /v1/records/{id...}", EndpointDisclose, s.handleDisclose)
	s.handle("GET /v1/patients/{patient}/categories/{category}", EndpointStream, s.handleDiscloseCategory)
	s.handle("POST /v1/patients/{patient}/breakglass", EndpointBreakGlass, s.handleBreakGlass)
	s.handle("POST /v1/grants", EndpointGrant, s.handleInstallGrant)
	s.handle("DELETE /v1/grants", EndpointRevoke, s.handleRevokeGrant)
	s.handle("GET /v1/audit", EndpointAudit, s.handleAudit)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics exposes the server-side per-endpoint recorders (test and
// harness hook).
func (s *Server) Metrics() *loadstat.Collector { return s.metrics }

// statusWriter captures the response status for instrumentation. It
// always implements http.Flusher — flushing degrades to a no-op when the
// underlying writer cannot — so the streaming handlers behave identically
// wrapped or not.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handle registers a handler wrapped with per-endpoint instrumentation:
// an in-flight gauge around the call and a latency/error observation per
// request. The deferred Record also runs when a streaming handler aborts
// the connection via panic(http.ErrAbortHandler).
func (s *Server) handle(pattern, endpoint string, h http.HandlerFunc) {
	rec := s.metrics.Endpoint(endpoint)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		begin := time.Now()
		s.inflight.Inc()
		defer func() {
			s.inflight.Dec()
			rec.Record(time.Since(begin), sw.status >= 400)
		}()
		h(sw, r)
	})
}

// ServerMetrics is the GET /v1/metrics response body.
type ServerMetrics struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	InFlight      int64                    `json:"in_flight"`
	InFlightHigh  int64                    `json:"in_flight_high"`
	// StoreRecords is the backend's current record count — the durability
	// gate the crash-recovery CI job compares across a SIGKILL/restart.
	StoreRecords int                      `json:"store_records"`
	Endpoints    []loadstat.EndpointStats `json:"endpoints"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	uptime := time.Since(s.start)
	m := ServerMetrics{
		UptimeSeconds: uptime.Seconds(),
		InFlight:      s.inflight.Value(),
		InFlightHigh:  s.inflight.High(),
		StoreRecords:  s.svc.Store.Count(),
		Endpoints:     s.metrics.Snapshot(uptime),
	}
	buf, err := json.Marshal(m)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf)
}

func httpError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrNoGrant), errors.Is(err, ErrStaleGrant):
		http.Error(w, err.Error(), http.StatusForbidden)
	case errors.Is(err, ErrDuplicate):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, ErrNoProxy):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrStorage):
		// The request was fine; the storage layer failed it.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// readLimitedBody reads at most limit bytes of the request body. A body
// that exceeds the limit gets a 413 (read limit+1 bytes to tell "exactly
// limit" apart from "over"); a transport error gets a 400. On failure the
// response has been written and the caller must return.
func readLimitedBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if int64(len(body)) > limit {
		http.Error(w, fmt.Sprintf("request body exceeds %d bytes", limit),
			http.StatusRequestEntityTooLarge)
		return nil, false
	}
	return body, true
}

func (s *Server) handlePutRecord(w http.ResponseWriter, r *http.Request) {
	id := r.Header.Get(HeaderRecordID)
	patient := r.Header.Get(HeaderRecordPatient)
	category := r.Header.Get(HeaderRecordCategory)
	if id == "" || patient == "" || category == "" {
		http.Error(w, "missing record metadata headers", http.StatusBadRequest)
		return
	}
	body, ok := readLimitedBody(w, r, MaxRecordBytes)
	if !ok {
		return
	}
	sealed, err := hybrid.UnmarshalCiphertext(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The sealed wire type may carry a rotation-epoch suffix; the routing
	// category is always the logical one.
	if Category(category) != BaseCategory(sealed.KEM.Type) {
		http.Error(w, "category header does not match sealed type", http.StatusBadRequest)
		return
	}
	rec := &EncryptedRecord{
		ID:        id,
		PatientID: patient,
		Category:  Category(category),
		CreatedAt: time.Now(),
		Sealed:    sealed,
	}
	if err := s.svc.Store.Put(rec); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

// framePool recycles the response-encoding buffers of the disclosure
// handlers: one container (plus its optional length prefix) is marshaled
// into a pooled buffer and written with a single Write, instead of
// allocating a fresh container-sized slice per record and issuing two
// writes per frame. Buffers grow to the largest container they have
// carried and are reused across requests and goroutines.
var framePool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

// writeContainer writes one marshaled container through the pool. With
// prefix, the container is preceded by the 4-byte big-endian length the
// bulk-stream framing uses.
func writeContainer(w io.Writer, rct *hybrid.ReCiphertext, prefix bool) error {
	bp := framePool.Get().(*[]byte)
	b := (*bp)[:0]
	if prefix {
		b = append(b, 0, 0, 0, 0)
	}
	b = rct.AppendTo(b)
	if prefix {
		binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	}
	_, err := w.Write(b)
	*bp = b
	framePool.Put(bp)
	return err
}

func (s *Server) handleDisclose(w http.ResponseWriter, r *http.Request) {
	recordID := r.PathValue("id")
	requester := r.URL.Query().Get("requester")
	if requester == "" {
		http.Error(w, "missing requester", http.StatusBadRequest)
		return
	}
	rct, err := s.svc.Request(recordID, requester)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if s.cfg.NoFramePool {
		w.Write(rct.Marshal())
		return
	}
	writeContainer(w, rct, false)
}

func (s *Server) handleDiscloseCategory(w http.ResponseWriter, r *http.Request) {
	patient := r.PathValue("patient")
	category := Category(r.PathValue("category"))
	requester := r.URL.Query().Get("requester")
	if requester == "" {
		http.Error(w, "missing requester", http.StatusBadRequest)
		return
	}
	proxy, err := s.svc.ProxyFor(category)
	if err != nil {
		httpError(w, err)
		return
	}
	s.streamFrames(w, func(frame func(*hybrid.ReCiphertext) error) error {
		return proxy.DiscloseCategoryStream(s.svc.Store, patient, category, requester, frame)
	})
}

// handleBreakGlass is the wire form of Service.BreakGlass: emergency bulk
// disclosure through the responder's standing emergency grant, streamed
// with the same framing as the category endpoint. The mandatory reason
// rides in the query; its absence is a 400 before any audit traffic.
func (s *Server) handleBreakGlass(w http.ResponseWriter, r *http.Request) {
	patient := r.PathValue("patient")
	q := r.URL.Query()
	requester, reason := q.Get("requester"), q.Get("reason")
	if requester == "" {
		http.Error(w, "missing requester", http.StatusBadRequest)
		return
	}
	proxy, err := s.svc.ProxyFor(CategoryEmergency)
	if err != nil {
		httpError(w, err)
		return
	}
	s.streamFrames(w, func(frame func(*hybrid.ReCiphertext) error) error {
		return proxy.BreakGlass(s.svc.Store, patient, CategoryEmergency, requester, reason, frame)
	})
}

// streamFrames runs a bulk-disclosure producer, writing each container as
// a length-prefixed frame as the worker pool finishes ordered items: the
// server holds at most a pool's worth of containers at a time. Errors that
// occur before the first frame (no grant, no records re-encryptable, no
// reason) still map to clean HTTP statuses; after the first frame the
// status line is already on the wire, so the only honest signal left is an
// aborted connection, which the client decoder reports as a typed
// truncation error.
func (s *Server) streamFrames(w http.ResponseWriter, produce func(func(*hybrid.ReCiphertext) error) error) {
	w.Header().Set("Content-Type", "application/octet-stream")
	flusher, _ := w.(http.Flusher)
	wrote := false
	err := produce(func(rct *hybrid.ReCiphertext) error {
		// The first Write attempt commits the 200 status even if it fails
		// partway, so flip wrote before touching the ResponseWriter.
		wrote = true
		if s.cfg.NoFramePool {
			b := rct.Marshal()
			var prefix [4]byte
			binary.BigEndian.PutUint32(prefix[:], uint32(len(b)))
			if _, err := w.Write(prefix[:]); err != nil {
				return err
			}
			if _, err := w.Write(b); err != nil {
				return err
			}
		} else if err := writeContainer(w, rct, true); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		if !wrote {
			httpError(w, err)
			return
		}
		panic(http.ErrAbortHandler)
	}
}

func (s *Server) handleInstallGrant(w http.ResponseWriter, r *http.Request) {
	body, ok := readLimitedBody(w, r, MaxGrantBytes)
	if !ok {
		return
	}
	rk, err := core.UnmarshalReKey(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Route by the logical category: a post-rotation rekey carries a
	// versioned wire type ("medication#e1") but proxies are deployed per
	// base category, and Install itself keys grants by BaseCategory.
	proxy, err := s.svc.ProxyFor(BaseCategory(rk.Type))
	if err != nil {
		httpError(w, err)
		return
	}
	if err := proxy.Install(rk); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) handleRevokeGrant(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	patient, category, requester := q.Get("patient"), Category(q.Get("category")), q.Get("requester")
	if patient == "" || category == "" || requester == "" {
		http.Error(w, "missing patient/category/requester", http.StatusBadRequest)
		return
	}
	proxy, err := s.svc.ProxyFor(category)
	if err != nil {
		httpError(w, err)
		return
	}
	if err := proxy.Revoke(patient, category, requester); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	category := Category(q.Get("category"))
	proxy, err := s.svc.ProxyFor(category)
	if err != nil {
		httpError(w, err)
		return
	}
	limit := 0
	if ls := q.Get("limit"); ls != "" {
		limit, err = strconv.Atoi(ls)
		if err != nil || limit < 0 {
			http.Error(w, "invalid limit", http.StatusBadRequest)
			return
		}
	}
	// Marshal (or extend the encode cache) before touching the
	// ResponseWriter so an encoding failure can still surface as a status
	// code instead of a torn 200 body.
	log := proxy.Audit()
	switch {
	case limit > 0:
		// Bounded tails are small; marshal them directly.
		buf, err := json.Marshal(log.Tail(limit))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf)
	case s.cfg.LegacyAuditJSON:
		// Pre-optimization path: re-encode the whole log every request.
		buf, err := json.Marshal(log.Entries())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(buf)
	default:
		// Full log: serve the incremental encode cache — O(new entries)
		// encoding work, zero-copy write of the cached body.
		body, err := log.JSONBody()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(len(body)+2))
		w.Write([]byte{'['})
		w.Write(body)
		w.Write([]byte{']'})
	}
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

// Client is a minimal typed client for the HTTP API. Identifiers (record
// IDs, patients, categories, requesters) may contain any bytes — '/', '&',
// '#', '+', spaces — the client escapes them on every request, and the
// server's wildcard routes unescape them back, so hostile IDs round-trip.
type Client struct {
	Base string
	HTTP *http.Client
}

// NewClient returns a client for the given base URL (no trailing slash).
func NewClient(base string) *Client {
	return &Client{Base: base, HTTP: http.DefaultClient}
}

// doStream issues the request and hands back the (open) response body on
// the expected status. On any other status it consumes a bounded error
// snippet and returns it as an error.
func (c *Client) doStream(req *http.Request, wantStatus int) (io.ReadCloser, error) {
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != wantStatus {
		defer resp.Body.Close()
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 8<<10))
		return nil, fmt.Errorf("phr: %s %s: %s: %s", req.Method, req.URL.Path, resp.Status, snippet)
	}
	return resp.Body, nil
}

func (c *Client) do(req *http.Request, wantStatus int) ([]byte, error) {
	body, err := c.doStream(req, wantStatus)
	if err != nil {
		return nil, err
	}
	defer body.Close()
	return io.ReadAll(body)
}

// PutRecord uploads a sealed record.
func (c *Client) PutRecord(rec *EncryptedRecord) error {
	req, err := http.NewRequest("POST", c.Base+"/v1/records", bytesReader(rec.Sealed.Marshal()))
	if err != nil {
		return err
	}
	req.Header.Set(HeaderRecordID, rec.ID)
	req.Header.Set(HeaderRecordPatient, rec.PatientID)
	req.Header.Set(HeaderRecordCategory, string(rec.Category))
	_, err = c.do(req, http.StatusCreated)
	return err
}

// InstallGrant uploads a rekey; the server routes it to the right proxy.
func (c *Client) InstallGrant(rk *core.ReKey) error {
	req, err := http.NewRequest("POST", c.Base+"/v1/grants", bytesReader(rk.Marshal()))
	if err != nil {
		return err
	}
	_, err = c.do(req, http.StatusCreated)
	return err
}

// RevokeGrant removes a grant.
func (c *Client) RevokeGrant(patient string, category Category, requester string) error {
	q := url.Values{
		"patient":   {patient},
		"category":  {string(category)},
		"requester": {requester},
	}
	req, err := http.NewRequest("DELETE", c.Base+"/v1/grants?"+q.Encode(), nil)
	if err != nil {
		return err
	}
	_, err = c.do(req, http.StatusNoContent)
	return err
}

// Disclose fetches one record re-encrypted toward the requester.
func (c *Client) Disclose(recordID, requester string) (*hybrid.ReCiphertext, error) {
	u := fmt.Sprintf("%s/v1/records/%s?requester=%s",
		c.Base, url.PathEscape(recordID), url.QueryEscape(requester))
	req, err := http.NewRequest("GET", u, nil)
	if err != nil {
		return nil, err
	}
	body, err := c.do(req, http.StatusOK)
	if err != nil {
		return nil, err
	}
	return hybrid.UnmarshalReCiphertext(body)
}

// DiscloseCategoryStream fetches every record of (patient, category) and
// calls yield once per container, in the server's (insertion) order, as
// frames arrive — the client never buffers more than one container. A
// server-side mid-stream failure surfaces as a truncation error after the
// frames delivered so far.
func (c *Client) DiscloseCategoryStream(patient string, category Category, requester string, yield func(*hybrid.ReCiphertext) error) error {
	u := fmt.Sprintf("%s/v1/patients/%s/categories/%s?requester=%s",
		c.Base, url.PathEscape(patient), url.PathEscape(string(category)), url.QueryEscape(requester))
	req, err := http.NewRequest("GET", u, nil)
	if err != nil {
		return err
	}
	body, err := c.doStream(req, http.StatusOK)
	if err != nil {
		return err
	}
	defer body.Close()
	return DecodeBulkStream(body, yield)
}

// Bulk-stream decoding errors. A server that fails mid-stream (a
// re-encryption error, a mid-stream revocation) can only signal by
// aborting the connection after the 200 status line is committed; the
// decoder surfaces that as ErrTruncatedStream, distinctly from a clean
// end-of-stream (nil) and from a malformed frame (hybrid.ErrEncoding).
var (
	// ErrTruncatedStream marks a bulk stream that ended mid-frame: the
	// connection was cut (server abort, network failure) after some number
	// of complete frames.
	ErrTruncatedStream = errors.New("phr: bulk stream truncated")
	// ErrFrameTooLarge marks a frame whose length prefix exceeds the
	// protocol limit; it is rejected before any allocation of that size.
	ErrFrameTooLarge = errors.New("phr: bulk frame exceeds protocol limit")
)

// DecodeBulkStream incrementally decodes a length-prefixed bulk-disclosure
// response — the wire format the streaming disclosure endpoints produce —
// calling yield once per decoded container. It is the single decoder of
// that framing (the client uses it, and the fuzz target hammers it with
// truncated, oversized and hostile frames). A clean EOF at a frame
// boundary returns nil; a stream cut anywhere else returns an error
// wrapping ErrTruncatedStream after the frames decoded so far; an absurd
// length prefix returns an error wrapping ErrFrameTooLarge before any
// allocation of that size.
func DecodeBulkStream(r io.Reader, yield func(*hybrid.ReCiphertext) error) error {
	br := bufio.NewReader(r)
	var prefix [4]byte
	for frames := 0; ; frames++ {
		if n, err := io.ReadFull(br, prefix[:]); err != nil {
			// errors.Is, not ==: an io.Reader that wraps its transport's
			// EOF (adding context with %w) still marks a clean boundary.
			// The n == 0 guard keeps a wrapped EOF mid-header typed as
			// truncation (ReadFull only maps the bare sentinel to
			// ErrUnexpectedEOF).
			if n == 0 && errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("%w in frame header after %d complete frames: %w", ErrTruncatedStream, frames, err)
		}
		n := binary.BigEndian.Uint32(prefix[:])
		if n > MaxRecordBytes+4096 {
			return fmt.Errorf("%w: frame %d declares %d bytes", ErrFrameTooLarge, frames, n)
		}
		item := make([]byte, n)
		if _, err := io.ReadFull(br, item); err != nil {
			return fmt.Errorf("%w in frame body after %d complete frames: %w", ErrTruncatedStream, frames, err)
		}
		rct, err := hybrid.UnmarshalReCiphertext(item)
		if err != nil {
			return err
		}
		if err := yield(rct); err != nil {
			return err
		}
	}
}

// BreakGlass performs emergency disclosure of a patient's emergency
// records toward a pre-authorized responder, streaming containers to yield
// as frames arrive. The reason is mandatory (400 without it) and lands in
// the audit log with every released record.
func (c *Client) BreakGlass(patient, requester, reason string, yield func(*hybrid.ReCiphertext) error) error {
	q := url.Values{"requester": {requester}, "reason": {reason}}
	u := fmt.Sprintf("%s/v1/patients/%s/breakglass?%s",
		c.Base, url.PathEscape(patient), q.Encode())
	req, err := http.NewRequest("POST", u, nil)
	if err != nil {
		return err
	}
	body, err := c.doStream(req, http.StatusOK)
	if err != nil {
		return err
	}
	defer body.Close()
	return DecodeBulkStream(body, yield)
}

// Metrics fetches the server's per-endpoint instrumentation snapshot.
func (c *Client) Metrics() (*ServerMetrics, error) {
	req, err := http.NewRequest("GET", c.Base+"/v1/metrics", nil)
	if err != nil {
		return nil, err
	}
	body, err := c.do(req, http.StatusOK)
	if err != nil {
		return nil, err
	}
	var m ServerMetrics
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// DiscloseCategory is DiscloseCategoryStream collected into a slice.
func (c *Client) DiscloseCategory(patient string, category Category, requester string) ([]*hybrid.ReCiphertext, error) {
	var out []*hybrid.ReCiphertext
	err := c.DiscloseCategoryStream(patient, category, requester, func(rct *hybrid.ReCiphertext) error {
		out = append(out, rct)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Audit fetches a proxy's audit entries.
func (c *Client) Audit(category Category) ([]AuditEntry, error) {
	q := url.Values{"category": {string(category)}}
	req, err := http.NewRequest("GET", c.Base+"/v1/audit?"+q.Encode(), nil)
	if err != nil {
		return nil, err
	}
	body, err := c.do(req, http.StatusOK)
	if err != nil {
		return nil, err
	}
	var entries []AuditEntry
	if err := json.Unmarshal(body, &entries); err != nil {
		return nil, err
	}
	return entries, nil
}

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }
