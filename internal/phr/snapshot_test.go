package phr

import (
	"bytes"
	"errors"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := newScenario(t)
	bodies := map[string][]byte{}
	for i, cat := range []Category{CategoryIllnessHistory, CategoryEmergency, CategoryMedication} {
		body := []byte{byte(i), byte(i + 1), byte(i + 2)}
		rec, err := s.alice.AddRecord(s.svc.Store, cat, body, nil)
		if err != nil {
			t.Fatal(err)
		}
		bodies[rec.ID] = body
	}

	var buf bytes.Buffer
	if err := Snapshot(s.svc.Store, &buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreStore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Count() != s.svc.Store.Count() {
		t.Fatalf("restored %d records, want %d", restored.Count(), s.svc.Store.Count())
	}
	// Every restored record must decrypt to the original body.
	for id, want := range bodies {
		got, err := s.alice.ReadOwn(restored, id)
		if err != nil {
			t.Fatalf("record %s: %v", id, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %s body mismatch after restore", id)
		}
	}
	// Indexes rebuilt.
	if len(restored.Categories("alice@phr.example")) != 3 {
		t.Fatal("categories index not rebuilt")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	s := newScenario(t)
	if _, err := s.alice.AddRecord(s.svc.Store, CategoryEmergency, []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := Snapshot(s.svc.Store, &b1); err != nil {
		t.Fatal(err)
	}
	if err := Snapshot(s.svc.Store, &b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two snapshots of the same store differ")
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := Snapshot(NewStore(), &buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreStore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Count() != 0 {
		t.Fatal("empty snapshot restored non-empty store")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := RestoreStore(bytes.NewReader([]byte("not a snapshot at all"))); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("want ErrSnapshot, got %v", err)
	}
	// Correct magic, bad version.
	bad := append(append([]byte{}, snapshotMagic[:]...), 0xff, 0xff, 0xff, 0xff)
	if _, err := RestoreStore(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("want ErrSnapshot for bad version, got %v", err)
	}
	// Truncated record section.
	s := newScenario(t)
	if _, err := s.alice.AddRecord(s.svc.Store, CategoryEmergency, []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Snapshot(s.svc.Store, &buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := RestoreStore(bytes.NewReader(trunc)); err == nil {
		t.Fatal("accepted truncated snapshot")
	}
}

func TestRestoreRejectsDuplicateRecordID(t *testing.T) {
	s := newScenario(t)
	if _, err := s.alice.AddRecord(s.svc.Store, CategoryEmergency, []byte("once"), nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Snapshot(s.svc.Store, &buf); err != nil {
		t.Fatal(err)
	}
	// Splice the single record frame in twice: header | frame | frame | trailer.
	raw := buf.Bytes()
	header, trailer := raw[:12], raw[len(raw)-12:]
	frame := raw[12 : len(raw)-12]
	forged := append(append(append(append([]byte{}, header...), frame...), frame...), trailer...)
	if _, err := RestoreStore(bytes.NewReader(forged)); !errors.Is(err, ErrSnapshotDuplicate) {
		t.Fatalf("want ErrSnapshotDuplicate, got %v", err)
	}
	// The duplicate must also be rejected when restoring into a backend that
	// already holds the ID (resume-into-nonempty-store case).
	var again bytes.Buffer
	if err := Snapshot(s.svc.Store, &again); err != nil {
		t.Fatal(err)
	}
	if err := Restore(s.svc.Store, bytes.NewReader(again.Bytes())); !errors.Is(err, ErrSnapshotDuplicate) {
		t.Fatalf("restore into populated store: want ErrSnapshotDuplicate, got %v", err)
	}
}
