package phr

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"typepre/internal/hybrid"
	"typepre/internal/ibe"
)

// httpScenario wires the §5 cast to a live httptest server.
type httpScenario struct {
	*scenario
	ts     *httptest.Server
	client *Client
}

func newHTTPScenario(t *testing.T) *httpScenario {
	t.Helper()
	s := newScenario(t)
	ts := httptest.NewServer(NewServer(s.svc))
	t.Cleanup(ts.Close)
	return &httpScenario{scenario: s, ts: ts, client: NewClient(ts.URL)}
}

// sealRecord builds an EncryptedRecord locally (patient side) without
// touching the store, for upload via the API.
func (h *httpScenario) sealRecord(t *testing.T, id string, c Category, body []byte) *EncryptedRecord {
	t.Helper()
	sealed, err := hybrid.Encrypt(h.alice.Delegator(), body, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &EncryptedRecord{ID: id, PatientID: h.alice.ID(), Category: c, Sealed: sealed}
}

func TestHTTPUploadDiscloseFlow(t *testing.T) {
	h := newHTTPScenario(t)
	body := []byte("blood type O−")
	rec := h.sealRecord(t, "alice/r1", CategoryEmergency, body)

	if err := h.client.PutRecord(rec); err != nil {
		t.Fatal(err)
	}
	// Grant Bob via the API.
	rk, err := h.alice.Delegator().Delegate(h.kgc2.Params(), "dr-bob@clinic.example", CategoryEmergency, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.client.InstallGrant(rk); err != nil {
		t.Fatal(err)
	}
	// Disclose and decrypt client-side.
	rct, err := h.client.Disclose("alice/r1", "dr-bob@clinic.example")
	if err != nil {
		t.Fatal(err)
	}
	got, err := hybrid.DecryptReEncrypted(h.bobKey, rct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("HTTP disclosure round trip failed")
	}
}

func TestHTTPForbiddenWithoutGrant(t *testing.T) {
	h := newHTTPScenario(t)
	rec := h.sealRecord(t, "alice/r1", CategoryEmergency, []byte("x"))
	if err := h.client.PutRecord(rec); err != nil {
		t.Fatal(err)
	}
	_, err := h.client.Disclose("alice/r1", "eve@outside.example")
	if err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("want 403, got %v", err)
	}
}

func TestHTTPNotFound(t *testing.T) {
	h := newHTTPScenario(t)
	_, err := h.client.Disclose("nope", "dr-bob@clinic.example")
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("want 404, got %v", err)
	}
}

func TestHTTPDuplicateUploadConflict(t *testing.T) {
	h := newHTTPScenario(t)
	rec := h.sealRecord(t, "alice/r1", CategoryEmergency, []byte("x"))
	if err := h.client.PutRecord(rec); err != nil {
		t.Fatal(err)
	}
	err := h.client.PutRecord(rec)
	if err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("want 409, got %v", err)
	}
}

func TestHTTPCategoryMismatchRejected(t *testing.T) {
	h := newHTTPScenario(t)
	rec := h.sealRecord(t, "alice/r1", CategoryEmergency, []byte("x"))
	rec.Category = CategoryMedication // header disagrees with sealed type
	err := h.client.PutRecord(rec)
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("want 400, got %v", err)
	}
}

func TestHTTPBulkDisclosure(t *testing.T) {
	h := newHTTPScenario(t)
	want := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	for i, b := range want {
		rec := h.sealRecord(t, "alice/r"+string(rune('1'+i)), CategoryEmergency, b)
		if err := h.client.PutRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	rk, _ := h.alice.Delegator().Delegate(h.kgc2.Params(), "dr-bob@clinic.example", CategoryEmergency, nil)
	if err := h.client.InstallGrant(rk); err != nil {
		t.Fatal(err)
	}
	rcts, err := h.client.DiscloseCategory(h.alice.ID(), CategoryEmergency, "dr-bob@clinic.example")
	if err != nil {
		t.Fatal(err)
	}
	if len(rcts) != len(want) {
		t.Fatalf("bulk returned %d, want %d", len(rcts), len(want))
	}
	for i, rct := range rcts {
		got, err := hybrid.DecryptReEncrypted(h.bobKey, rct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("bulk item %d mismatch", i)
		}
	}
}

func TestHTTPRevocation(t *testing.T) {
	h := newHTTPScenario(t)
	rec := h.sealRecord(t, "alice/r1", CategoryEmergency, []byte("x"))
	if err := h.client.PutRecord(rec); err != nil {
		t.Fatal(err)
	}
	rk, _ := h.alice.Delegator().Delegate(h.kgc2.Params(), "dr-bob@clinic.example", CategoryEmergency, nil)
	if err := h.client.InstallGrant(rk); err != nil {
		t.Fatal(err)
	}
	if _, err := h.client.Disclose("alice/r1", "dr-bob@clinic.example"); err != nil {
		t.Fatal(err)
	}
	if err := h.client.RevokeGrant(h.alice.ID(), CategoryEmergency, "dr-bob@clinic.example"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.client.Disclose("alice/r1", "dr-bob@clinic.example"); err == nil {
		t.Fatal("disclosure succeeded after revocation")
	}
	// Double revoke → 403.
	if err := h.client.RevokeGrant(h.alice.ID(), CategoryEmergency, "dr-bob@clinic.example"); err == nil {
		t.Fatal("double revoke succeeded")
	}
}

func TestHTTPAudit(t *testing.T) {
	h := newHTTPScenario(t)
	rec := h.sealRecord(t, "alice/r1", CategoryEmergency, []byte("x"))
	if err := h.client.PutRecord(rec); err != nil {
		t.Fatal(err)
	}
	h.client.Disclose("alice/r1", "eve@outside.example") // denied, audited
	entries, err := h.client.Audit(CategoryEmergency)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Outcome != OutcomeNoGrant {
		t.Fatalf("audit = %+v", entries)
	}
}

// TestHTTPHostileIdentifiersRoundTrip uploads, bulk-discloses, singly
// discloses and revokes with identifiers full of URL metacharacters —
// '/', '&', '#', '+', '?', spaces, non-ASCII — and expects every call to
// address exactly the intended resource.
func TestHTTPHostileIdentifiersRoundTrip(t *testing.T) {
	kgc1, err := ibe.Setup("hostile-kgc1", nil)
	if err != nil {
		t.Fatal(err)
	}
	kgc2, err := ibe.Setup("hostile-kgc2", nil)
	if err != nil {
		t.Fatal(err)
	}
	hostileCat := Category("emer/gency +extra&more")
	hostileID := "week/2, réf #9&x+y z?"
	hostilePatient := "pat ient/№1&x+y@phr"
	hostileReq := "dr bob/?&#+@clinic"

	svc := NewService([]Category{hostileCat})
	ts := httptest.NewServer(NewServer(svc))
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL)

	alice := NewPatient(kgc1, hostilePatient)
	bobKey := kgc2.Extract(hostileReq)
	body := []byte("hostile-id record body")
	sealed, err := hybrid.Encrypt(alice.Delegator(), body, hostileCat, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := &EncryptedRecord{ID: hostileID, PatientID: hostilePatient, Category: hostileCat, Sealed: sealed}
	if err := client.PutRecord(rec); err != nil {
		t.Fatal(err)
	}
	rk, err := alice.Delegator().Delegate(kgc2.Params(), hostileReq, hostileCat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.InstallGrant(rk); err != nil {
		t.Fatal(err)
	}

	rct, err := client.Disclose(hostileID, hostileReq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := hybrid.DecryptReEncrypted(bobKey, rct)
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("hostile single disclosure failed: %v", err)
	}

	rcts, err := client.DiscloseCategory(hostilePatient, hostileCat, hostileReq)
	if err != nil {
		t.Fatal(err)
	}
	if len(rcts) != 1 {
		t.Fatalf("hostile bulk disclosure returned %d records, want 1", len(rcts))
	}
	if got, err := hybrid.DecryptReEncrypted(bobKey, rcts[0]); err != nil || !bytes.Equal(got, body) {
		t.Fatalf("hostile bulk decryption failed: %v", err)
	}

	if err := client.RevokeGrant(hostilePatient, hostileCat, hostileReq); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Disclose(hostileID, hostileReq); err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("want 403 after hostile revoke, got %v", err)
	}
	entries, err := client.Audit(hostileCat)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 || entries[len(entries)-1].Outcome != OutcomeNoGrant {
		t.Fatalf("hostile audit fetch = %+v", entries)
	}
}

// TestHTTPOversizedBodies pins the 413 contract: oversized uploads are
// rejected loudly, never truncated into a confusing decode error.
func TestHTTPOversizedBodies(t *testing.T) {
	h := newHTTPScenario(t)

	req, err := http.NewRequest("POST", h.ts.URL+"/v1/records",
		bytes.NewReader(make([]byte, MaxRecordBytes+1)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderRecordID, "big")
	req.Header.Set(HeaderRecordPatient, "alice")
	req.Header.Set(HeaderRecordCategory, string(CategoryEmergency))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("record upload: want 413, got %d", resp.StatusCode)
	}

	// Exactly at the limit is not 413 (it fails later as a decode 400).
	req, _ = http.NewRequest("POST", h.ts.URL+"/v1/records", bytes.NewReader(make([]byte, MaxRecordBytes)))
	req.Header.Set(HeaderRecordID, "big")
	req.Header.Set(HeaderRecordPatient, "alice")
	req.Header.Set(HeaderRecordCategory, string(CategoryEmergency))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("at-limit garbage upload: want 400, got %d", resp.StatusCode)
	}

	resp, err = http.Post(h.ts.URL+"/v1/grants", "application/octet-stream",
		bytes.NewReader(make([]byte, MaxGrantBytes+1)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("grant upload: want 413, got %d", resp.StatusCode)
	}
}

// TestHTTPBulkErrorPaths covers the promised statuses of the streaming
// bulk endpoint before any frame is written.
func TestHTTPBulkErrorPaths(t *testing.T) {
	h := newHTTPScenario(t)
	// Missing requester.
	resp, err := http.Get(h.ts.URL + "/v1/patients/alice/categories/emergency")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing requester: want 400, got %d", resp.StatusCode)
	}
	// No proxy for the category.
	if _, err := h.client.DiscloseCategory("alice", "nope", "dr-bob@clinic.example"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown category: want 404, got %v", err)
	}
	// No grant.
	if _, err := h.client.DiscloseCategory(h.alice.ID(), CategoryEmergency, "eve@outside.example"); err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("no grant: want 403, got %v", err)
	}
	// Missing revoke parameters.
	req, _ := http.NewRequest("DELETE", h.ts.URL+"/v1/grants?patient=alice", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("partial revoke params: want 400, got %d", resp.StatusCode)
	}
}

// TestHTTPBulkStreamClientCancel checks the incremental decoder: ordered
// delivery, and a consumer error stopping the stream early.
func TestHTTPBulkStreamClientCancel(t *testing.T) {
	h := newHTTPScenario(t)
	want := [][]byte{[]byte("one"), []byte("two"), []byte("three"), []byte("four")}
	for i, b := range want {
		rec := h.sealRecord(t, "alice/s"+string(rune('1'+i)), CategoryEmergency, b)
		if err := h.client.PutRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	rk, _ := h.alice.Delegator().Delegate(h.kgc2.Params(), "dr-bob@clinic.example", CategoryEmergency, nil)
	if err := h.client.InstallGrant(rk); err != nil {
		t.Fatal(err)
	}

	i := 0
	err := h.client.DiscloseCategoryStream(h.alice.ID(), CategoryEmergency, "dr-bob@clinic.example",
		func(rct *hybrid.ReCiphertext) error {
			got, err := hybrid.DecryptReEncrypted(h.bobKey, rct)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, want[i]) {
				t.Fatalf("stream item %d out of order", i)
			}
			i++
			return nil
		})
	if err != nil || i != len(want) {
		t.Fatalf("full stream: err=%v items=%d", err, i)
	}

	stop := errors.New("enough")
	i = 0
	err = h.client.DiscloseCategoryStream(h.alice.ID(), CategoryEmergency, "dr-bob@clinic.example",
		func(*hybrid.ReCiphertext) error {
			i++
			if i == 2 {
				return stop
			}
			return nil
		})
	if !errors.Is(err, stop) || i != 2 {
		t.Fatalf("cancelled stream: err=%v items=%d", err, i)
	}
}

// TestHTTPAuditContentType pins the audit response shape: JSON content
// type and a valid (possibly empty) array.
func TestHTTPAuditContentType(t *testing.T) {
	h := newHTTPScenario(t)
	resp, err := http.Get(h.ts.URL + "/v1/audit?category=" + string(CategoryEmergency))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("want 200, got %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var entries []AuditEntry
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatalf("audit body is not valid JSON: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("fresh audit log = %+v", entries)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	h := newHTTPScenario(t)
	// Missing metadata headers.
	resp, err := http.Post(h.ts.URL+"/v1/records", "application/octet-stream", bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("want 400, got %d", resp.StatusCode)
	}
	// Garbage grant body.
	resp, err = http.Post(h.ts.URL+"/v1/grants", "application/octet-stream", bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("want 400, got %d", resp.StatusCode)
	}
	// Missing requester.
	resp, err = http.Get(h.ts.URL + "/v1/records/alice/r1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("want 400, got %d", resp.StatusCode)
	}
	// Unknown audit category.
	resp, err = http.Get(h.ts.URL + "/v1/audit?category=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("want 404, got %d", resp.StatusCode)
	}
}
