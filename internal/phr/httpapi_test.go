package phr

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"typepre/internal/hybrid"
)

// httpScenario wires the §5 cast to a live httptest server.
type httpScenario struct {
	*scenario
	ts     *httptest.Server
	client *Client
}

func newHTTPScenario(t *testing.T) *httpScenario {
	t.Helper()
	s := newScenario(t)
	ts := httptest.NewServer(NewServer(s.svc))
	t.Cleanup(ts.Close)
	return &httpScenario{scenario: s, ts: ts, client: NewClient(ts.URL)}
}

// sealRecord builds an EncryptedRecord locally (patient side) without
// touching the store, for upload via the API.
func (h *httpScenario) sealRecord(t *testing.T, id string, c Category, body []byte) *EncryptedRecord {
	t.Helper()
	sealed, err := hybrid.Encrypt(h.alice.Delegator(), body, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &EncryptedRecord{ID: id, PatientID: h.alice.ID(), Category: c, Sealed: sealed}
}

func TestHTTPUploadDiscloseFlow(t *testing.T) {
	h := newHTTPScenario(t)
	body := []byte("blood type O−")
	rec := h.sealRecord(t, "alice/r1", CategoryEmergency, body)

	if err := h.client.PutRecord(rec); err != nil {
		t.Fatal(err)
	}
	// Grant Bob via the API.
	rk, err := h.alice.Delegator().Delegate(h.kgc2.Params(), "dr-bob@clinic.example", CategoryEmergency, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.client.InstallGrant(rk); err != nil {
		t.Fatal(err)
	}
	// Disclose and decrypt client-side.
	rct, err := h.client.Disclose("alice/r1", "dr-bob@clinic.example")
	if err != nil {
		t.Fatal(err)
	}
	got, err := hybrid.DecryptReEncrypted(h.bobKey, rct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("HTTP disclosure round trip failed")
	}
}

func TestHTTPForbiddenWithoutGrant(t *testing.T) {
	h := newHTTPScenario(t)
	rec := h.sealRecord(t, "alice/r1", CategoryEmergency, []byte("x"))
	if err := h.client.PutRecord(rec); err != nil {
		t.Fatal(err)
	}
	_, err := h.client.Disclose("alice/r1", "eve@outside.example")
	if err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("want 403, got %v", err)
	}
}

func TestHTTPNotFound(t *testing.T) {
	h := newHTTPScenario(t)
	_, err := h.client.Disclose("nope", "dr-bob@clinic.example")
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("want 404, got %v", err)
	}
}

func TestHTTPDuplicateUploadConflict(t *testing.T) {
	h := newHTTPScenario(t)
	rec := h.sealRecord(t, "alice/r1", CategoryEmergency, []byte("x"))
	if err := h.client.PutRecord(rec); err != nil {
		t.Fatal(err)
	}
	err := h.client.PutRecord(rec)
	if err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("want 409, got %v", err)
	}
}

func TestHTTPCategoryMismatchRejected(t *testing.T) {
	h := newHTTPScenario(t)
	rec := h.sealRecord(t, "alice/r1", CategoryEmergency, []byte("x"))
	rec.Category = CategoryMedication // header disagrees with sealed type
	err := h.client.PutRecord(rec)
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("want 400, got %v", err)
	}
}

func TestHTTPBulkDisclosure(t *testing.T) {
	h := newHTTPScenario(t)
	want := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	for i, b := range want {
		rec := h.sealRecord(t, "alice/r"+string(rune('1'+i)), CategoryEmergency, b)
		if err := h.client.PutRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	rk, _ := h.alice.Delegator().Delegate(h.kgc2.Params(), "dr-bob@clinic.example", CategoryEmergency, nil)
	if err := h.client.InstallGrant(rk); err != nil {
		t.Fatal(err)
	}
	rcts, err := h.client.DiscloseCategory(h.alice.ID(), CategoryEmergency, "dr-bob@clinic.example")
	if err != nil {
		t.Fatal(err)
	}
	if len(rcts) != len(want) {
		t.Fatalf("bulk returned %d, want %d", len(rcts), len(want))
	}
	for i, rct := range rcts {
		got, err := hybrid.DecryptReEncrypted(h.bobKey, rct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("bulk item %d mismatch", i)
		}
	}
}

func TestHTTPRevocation(t *testing.T) {
	h := newHTTPScenario(t)
	rec := h.sealRecord(t, "alice/r1", CategoryEmergency, []byte("x"))
	if err := h.client.PutRecord(rec); err != nil {
		t.Fatal(err)
	}
	rk, _ := h.alice.Delegator().Delegate(h.kgc2.Params(), "dr-bob@clinic.example", CategoryEmergency, nil)
	if err := h.client.InstallGrant(rk); err != nil {
		t.Fatal(err)
	}
	if _, err := h.client.Disclose("alice/r1", "dr-bob@clinic.example"); err != nil {
		t.Fatal(err)
	}
	if err := h.client.RevokeGrant(h.alice.ID(), CategoryEmergency, "dr-bob@clinic.example"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.client.Disclose("alice/r1", "dr-bob@clinic.example"); err == nil {
		t.Fatal("disclosure succeeded after revocation")
	}
	// Double revoke → 403.
	if err := h.client.RevokeGrant(h.alice.ID(), CategoryEmergency, "dr-bob@clinic.example"); err == nil {
		t.Fatal("double revoke succeeded")
	}
}

func TestHTTPAudit(t *testing.T) {
	h := newHTTPScenario(t)
	rec := h.sealRecord(t, "alice/r1", CategoryEmergency, []byte("x"))
	if err := h.client.PutRecord(rec); err != nil {
		t.Fatal(err)
	}
	h.client.Disclose("alice/r1", "eve@outside.example") // denied, audited
	entries, err := h.client.Audit(CategoryEmergency)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Outcome != OutcomeNoGrant {
		t.Fatalf("audit = %+v", entries)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	h := newHTTPScenario(t)
	// Missing metadata headers.
	resp, err := http.Post(h.ts.URL+"/v1/records", "application/octet-stream", bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("want 400, got %d", resp.StatusCode)
	}
	// Garbage grant body.
	resp, err = http.Post(h.ts.URL+"/v1/grants", "application/octet-stream", bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("want 400, got %d", resp.StatusCode)
	}
	// Missing requester.
	resp, err = http.Get(h.ts.URL + "/v1/records/alice/r1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("want 400, got %d", resp.StatusCode)
	}
	// Unknown audit category.
	resp, err = http.Get(h.ts.URL + "/v1/audit?category=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("want 404, got %d", resp.StatusCode)
	}
}
