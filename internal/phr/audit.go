package phr

import (
	"encoding/json"
	"sync"
	"time"
)

// Outcome classifies an audited disclosure attempt.
type Outcome string

// Audit outcomes.
const (
	OutcomeGranted  Outcome = "granted"
	OutcomeNoGrant  Outcome = "no-grant"
	OutcomeNotFound Outcome = "not-found"
	OutcomeError    Outcome = "error"
	// OutcomeStaleGrant marks a request through a grant that predates the
	// category's key rotation: the rekey still sits in the grant table but
	// can no longer transform the re-sealed records.
	OutcomeStaleGrant Outcome = "stale-grant"
	// OutcomeBreakGlass marks an emergency disclosure through the
	// break-glass path. It is a *successful* disclosure — deliberately
	// distinguishable from OutcomeGranted so compliance review can find
	// every emergency access, and never counted as a denial.
	OutcomeBreakGlass Outcome = "break-glass"
)

// IsDenial reports whether the outcome records a refused or failed
// disclosure (as opposed to content leaving the proxy).
func (o Outcome) IsDenial() bool {
	return o != OutcomeGranted && o != OutcomeBreakGlass
}

// AuditEntry records one disclosure attempt at a proxy.
type AuditEntry struct {
	// Seq is the entry's position in the proxy's log, assigned at append
	// time, starting at 1 and strictly increasing: ties in the wall-clock
	// Time cannot obscure the order in which disclosures happened.
	Seq       uint64
	Time      time.Time
	Proxy     string
	PatientID string
	RecordID  string
	Category  Category
	Requester string
	Outcome   Outcome
	// Note carries outcome context; the break-glass path stores its
	// mandatory reason here.
	Note string `json:",omitempty"`
}

// AuditLog is an append-only, concurrency-safe log of disclosure attempts.
// §5 relies on patients choosing proxies "according to trust"; the audit
// log is what makes that trust inspectable.
type AuditLog struct {
	mu      sync.RWMutex
	nextSeq uint64       // phrlint:guardedby mu
	entries []AuditEntry // phrlint:guardedby mu
	// Incremental JSON encode cache: encBuf holds the comma-joined JSON
	// encodings of entries[:encodedN] (the array body, no brackets).
	// Entries are immutable once appended, so the cache only ever extends —
	// serving the audit log costs O(entries appended since the last read)
	// instead of re-marshaling the whole unbounded log per request. The
	// cache roughly doubles the log's memory; an entry is ~200 bytes either
	// way.
	encBuf   []byte // phrlint:guardedby mu
	encodedN int    // phrlint:guardedby mu
}

// NewAuditLog returns an empty log.
func NewAuditLog() *AuditLog { return &AuditLog{} }

// Append adds an entry (stamped with the current time if zero) and assigns
// the next sequence number. The stamp is taken under the same lock as the
// sequence number, so Seq order and Time order can never contradict each
// other — the "strictly ordered per proxy" invariant the drills check.
func (l *AuditLog) Append(e AuditEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	l.nextSeq++
	e.Seq = l.nextSeq
	l.entries = append(l.entries, e)
}

// Len returns the number of entries.
func (l *AuditLog) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// JSONBody returns the JSON array body (no surrounding brackets) of every
// entry, in append order, extending the incremental encode cache with any
// entries appended since the last call. The returned slice is a snapshot:
// concurrent appends extend the cache past its length but never mutate the
// bytes it covers, so callers may write it out without copying. Byte-for-
// byte, "[" + body + "]" equals json.Marshal of Entries().
func (l *AuditLog) JSONBody() ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for ; l.encodedN < len(l.entries); l.encodedN++ {
		b, err := json.Marshal(l.entries[l.encodedN])
		if err != nil {
			return nil, err
		}
		if l.encodedN > 0 {
			l.encBuf = append(l.encBuf, ',')
		}
		l.encBuf = append(l.encBuf, b...)
	}
	// Full-slice expression caps the snapshot so a later append that grows
	// in place cannot be observed through it.
	return l.encBuf[:len(l.encBuf):len(l.encBuf)], nil
}

// Tail returns (a copy of) the last n entries in append order; n <= 0 or
// n >= Len returns everything.
func (l *AuditLog) Tail(n int) []AuditEntry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	start := 0
	if n > 0 && n < len(l.entries) {
		start = len(l.entries) - n
	}
	out := make([]AuditEntry, len(l.entries)-start)
	copy(out, l.entries[start:])
	return out
}

// Entries returns a copy of all entries in append order.
func (l *AuditLog) Entries() []AuditEntry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]AuditEntry, len(l.entries))
	copy(out, l.entries)
	return out
}

// ByRequester returns the entries for one requester, in order.
func (l *AuditLog) ByRequester(requester string) []AuditEntry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []AuditEntry
	for _, e := range l.entries {
		if e.Requester == requester {
			out = append(out, e)
		}
	}
	return out
}

// Denials returns the entries recording refused or failed disclosures.
// Break-glass accesses are successful disclosures and are not denials;
// find them with ByOutcome(OutcomeBreakGlass).
func (l *AuditLog) Denials() []AuditEntry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []AuditEntry
	for _, e := range l.entries {
		if e.Outcome.IsDenial() {
			out = append(out, e)
		}
	}
	return out
}

// ByOutcome returns the entries with the given outcome, in order.
func (l *AuditLog) ByOutcome(o Outcome) []AuditEntry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []AuditEntry
	for _, e := range l.entries {
		if e.Outcome == o {
			out = append(out, e)
		}
	}
	return out
}
