package phr

import (
	"sync"
	"time"
)

// Outcome classifies an audited disclosure attempt.
type Outcome string

// Audit outcomes.
const (
	OutcomeGranted  Outcome = "granted"
	OutcomeNoGrant  Outcome = "no-grant"
	OutcomeNotFound Outcome = "not-found"
	OutcomeError    Outcome = "error"
)

// AuditEntry records one disclosure attempt at a proxy.
type AuditEntry struct {
	Time      time.Time
	Proxy     string
	PatientID string
	RecordID  string
	Category  Category
	Requester string
	Outcome   Outcome
}

// AuditLog is an append-only, concurrency-safe log of disclosure attempts.
// §5 relies on patients choosing proxies "according to trust"; the audit
// log is what makes that trust inspectable.
type AuditLog struct {
	mu      sync.RWMutex
	entries []AuditEntry
}

// NewAuditLog returns an empty log.
func NewAuditLog() *AuditLog { return &AuditLog{} }

// Append adds an entry (stamped with the current time if zero).
func (l *AuditLog) Append(e AuditEntry) {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, e)
}

// Len returns the number of entries.
func (l *AuditLog) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// Entries returns a copy of all entries in append order.
func (l *AuditLog) Entries() []AuditEntry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]AuditEntry, len(l.entries))
	copy(out, l.entries)
	return out
}

// ByRequester returns the entries for one requester, in order.
func (l *AuditLog) ByRequester(requester string) []AuditEntry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []AuditEntry
	for _, e := range l.entries {
		if e.Requester == requester {
			out = append(out, e)
		}
	}
	return out
}

// Denials returns the entries whose outcome is not OutcomeGranted.
func (l *AuditLog) Denials() []AuditEntry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []AuditEntry
	for _, e := range l.entries {
		if e.Outcome != OutcomeGranted {
			out = append(out, e)
		}
	}
	return out
}
