package phr

import (
	"sync"
	"time"
)

// Outcome classifies an audited disclosure attempt.
type Outcome string

// Audit outcomes.
const (
	OutcomeGranted  Outcome = "granted"
	OutcomeNoGrant  Outcome = "no-grant"
	OutcomeNotFound Outcome = "not-found"
	OutcomeError    Outcome = "error"
	// OutcomeStaleGrant marks a request through a grant that predates the
	// category's key rotation: the rekey still sits in the grant table but
	// can no longer transform the re-sealed records.
	OutcomeStaleGrant Outcome = "stale-grant"
	// OutcomeBreakGlass marks an emergency disclosure through the
	// break-glass path. It is a *successful* disclosure — deliberately
	// distinguishable from OutcomeGranted so compliance review can find
	// every emergency access, and never counted as a denial.
	OutcomeBreakGlass Outcome = "break-glass"
)

// IsDenial reports whether the outcome records a refused or failed
// disclosure (as opposed to content leaving the proxy).
func (o Outcome) IsDenial() bool {
	return o != OutcomeGranted && o != OutcomeBreakGlass
}

// AuditEntry records one disclosure attempt at a proxy.
type AuditEntry struct {
	// Seq is the entry's position in the proxy's log, assigned at append
	// time, starting at 1 and strictly increasing: ties in the wall-clock
	// Time cannot obscure the order in which disclosures happened.
	Seq       uint64
	Time      time.Time
	Proxy     string
	PatientID string
	RecordID  string
	Category  Category
	Requester string
	Outcome   Outcome
	// Note carries outcome context; the break-glass path stores its
	// mandatory reason here.
	Note string `json:",omitempty"`
}

// AuditLog is an append-only, concurrency-safe log of disclosure attempts.
// §5 relies on patients choosing proxies "according to trust"; the audit
// log is what makes that trust inspectable.
type AuditLog struct {
	mu      sync.RWMutex
	nextSeq uint64
	entries []AuditEntry
}

// NewAuditLog returns an empty log.
func NewAuditLog() *AuditLog { return &AuditLog{} }

// Append adds an entry (stamped with the current time if zero) and assigns
// the next sequence number. The stamp is taken under the same lock as the
// sequence number, so Seq order and Time order can never contradict each
// other — the "strictly ordered per proxy" invariant the drills check.
func (l *AuditLog) Append(e AuditEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	l.nextSeq++
	e.Seq = l.nextSeq
	l.entries = append(l.entries, e)
}

// Len returns the number of entries.
func (l *AuditLog) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// Entries returns a copy of all entries in append order.
func (l *AuditLog) Entries() []AuditEntry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]AuditEntry, len(l.entries))
	copy(out, l.entries)
	return out
}

// ByRequester returns the entries for one requester, in order.
func (l *AuditLog) ByRequester(requester string) []AuditEntry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []AuditEntry
	for _, e := range l.entries {
		if e.Requester == requester {
			out = append(out, e)
		}
	}
	return out
}

// Denials returns the entries recording refused or failed disclosures.
// Break-glass accesses are successful disclosures and are not denials;
// find them with ByOutcome(OutcomeBreakGlass).
func (l *AuditLog) Denials() []AuditEntry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []AuditEntry
	for _, e := range l.entries {
		if e.Outcome.IsDenial() {
			out = append(out, e)
		}
	}
	return out
}

// ByOutcome returns the entries with the given outcome, in order.
func (l *AuditLog) ByOutcome(o Outcome) []AuditEntry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []AuditEntry
	for _, e := range l.entries {
		if e.Outcome == o {
			out = append(out, e)
		}
	}
	return out
}
