package phr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"typepre/internal/hybrid"
)

// ErrStorage marks a backend failure below the record model: an I/O error,
// a corrupt frame, a store already closed. HTTP maps it to 500 — the
// request was well-formed, the storage layer failed it.
var ErrStorage = errors.New("phr: storage failure")

// Backend is the pluggable storage layer beneath the PHR service: the
// semi-trusted database of §5 that holds sealed records and routing
// metadata and nothing else. Two implementations ship with the package:
// the in-memory backend (NewStore, the default, used by tests and
// single-run tools) and the crash-safe on-disk backend in
// internal/phr/diskstore.
//
// Methods that carry record payloads (Put, Replace, Get, Delete and the
// two List methods) return errors: a durable backend reads sealed bodies
// from disk and must be able to report failure. The index-only queries
// (Count, CountByPatient, Patients, Categories) are served from memory in
// every implementation and cannot fail.
//
// All methods must be safe for concurrent use. Returned records are
// private copies: callers may mutate them freely, and implementations
// must never mutate a record after it has been stored (the memory
// backend's lock-free read path depends on stored records being
// immutable).
type Backend interface {
	// Put inserts a record; ErrDuplicate if the ID exists.
	Put(r *EncryptedRecord) error
	// Replace swaps the sealed body of an existing record in place — the
	// store-side primitive of key rotation. ErrNotFound when absent; the
	// routing metadata (patient, category) must not change.
	Replace(r *EncryptedRecord) error
	// Get fetches a record by ID; ErrNotFound when absent.
	Get(id string) (*EncryptedRecord, error)
	// Delete removes a record by ID; ErrNotFound when absent.
	Delete(id string) error
	// ListByPatient returns all records of a patient in insertion order.
	ListByPatient(patientID string) ([]*EncryptedRecord, error)
	// ListByPatientCategory returns a patient's records of one category in
	// insertion order — the secondary-index read path proxies use.
	ListByPatientCategory(patientID string, c Category) ([]*EncryptedRecord, error)
	// Count returns the total number of records.
	Count() int
	// CountByPatient returns the number of records of one patient.
	CountByPatient(patientID string) int
	// Patients returns the sorted patient IDs with at least one record.
	Patients() []string
	// Categories returns the sorted distinct categories of a patient.
	Categories(patientID string) []Category
	// Close flushes and releases the backend. Every acknowledged write
	// must be durable (per the backend's sync policy) when Close returns;
	// using the backend afterwards returns ErrStorage.
	Close() error
}

// ---------------------------------------------------------------------------
// Record wire form
// ---------------------------------------------------------------------------

// The storage wire form of one record, shared by the snapshot container
// and the disk backend's log entries:
//
//	u32 len(id)       | id
//	u32 len(patient)  | patient
//	u32 len(category) | category
//	u64 createdAt (UnixNano, big-endian)
//	u32 len(sealed)   | sealed (hybrid.Ciphertext.Marshal)
//
// All integers big-endian. The encoding is deterministic for a given
// record, so identical stores produce identical snapshots.

// maxRecordFieldBytes bounds any single length-prefixed field during
// decoding, rejecting absurd prefixes before allocation.
const maxRecordFieldBytes = 1 << 30

func appendField(buf, field []byte) []byte {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(field)))
	buf = append(buf, lenBuf[:]...)
	return append(buf, field...)
}

func takeField(b []byte) (field, rest []byte, err error) {
	if len(b) < 4 {
		return nil, nil, errors.New("truncated field length")
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if n > maxRecordFieldBytes || uint64(n) > uint64(len(b)) {
		return nil, nil, fmt.Errorf("field of %d bytes exceeds remaining %d", n, len(b))
	}
	return b[:n], b[n:], nil
}

// MarshalRecord appends the storage wire form of rec to buf and returns
// the extended slice.
func MarshalRecord(buf []byte, rec *EncryptedRecord) []byte {
	buf = appendField(buf, []byte(rec.ID))
	buf = appendField(buf, []byte(rec.PatientID))
	buf = appendField(buf, []byte(rec.Category))
	var tsBuf [8]byte
	binary.BigEndian.PutUint64(tsBuf[:], uint64(rec.CreatedAt.UnixNano()))
	buf = append(buf, tsBuf[:]...)
	return appendField(buf, rec.Sealed.Marshal())
}

// UnmarshalRecord decodes one record from its storage wire form. The
// whole input must be consumed: trailing bytes are an error.
func UnmarshalRecord(b []byte) (*EncryptedRecord, error) {
	id, b, err := takeField(b)
	if err != nil {
		return nil, fmt.Errorf("phr: record id: %w", err)
	}
	patient, b, err := takeField(b)
	if err != nil {
		return nil, fmt.Errorf("phr: record patient: %w", err)
	}
	category, b, err := takeField(b)
	if err != nil {
		return nil, fmt.Errorf("phr: record category: %w", err)
	}
	if len(b) < 8 {
		return nil, errors.New("phr: record timestamp truncated")
	}
	ts := int64(binary.BigEndian.Uint64(b))
	b = b[8:]
	sealedBytes, b, err := takeField(b)
	if err != nil {
		return nil, fmt.Errorf("phr: record body: %w", err)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("phr: %d trailing bytes after record", len(b))
	}
	sealed, err := hybrid.UnmarshalCiphertext(sealedBytes)
	if err != nil {
		return nil, fmt.Errorf("phr: record ciphertext: %w", err)
	}
	return &EncryptedRecord{
		ID:        string(id),
		PatientID: string(patient),
		Category:  Category(category),
		CreatedAt: time.Unix(0, ts),
		Sealed:    sealed,
	}, nil
}
