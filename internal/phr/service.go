package phr

import (
	"errors"
	"fmt"
	"sync"

	"typepre/internal/hybrid"
	"typepre/internal/ibe"
)

// Service errors.
var (
	ErrNoProxy = errors.New("phr: no proxy deployed for this category")
)

// Service is the complete §5 deployment: one semi-trusted store, one proxy
// per category (the paper's recommended topology — compromise of one proxy
// must not cross category boundaries), and the KGC2 domain requesters are
// registered at.
type Service struct {
	// Store is the pluggable storage layer holding the sealed records:
	// the in-memory backend by default, the crash-safe disk backend in a
	// persistent deployment (cmd/phrserver -store=disk).
	Store Backend

	mu      sync.RWMutex
	proxies map[Category]*Proxy // phrlint:guardedby mu
}

// NewService creates a service with one dedicated proxy per category,
// backed by the in-memory store.
func NewService(categories []Category) *Service {
	return NewServiceWith(categories, NewStore())
}

// NewServiceWith creates a service over an explicit storage backend.
func NewServiceWith(categories []Category, backend Backend) *Service {
	// The proxy map is fully built before the Service is constructed, so
	// no partially-initialized Service is ever reachable and every access
	// through s.proxies happens under s.mu.
	proxies := map[Category]*Proxy{}
	for _, c := range categories {
		proxies[c] = NewProxy("proxy-" + string(c))
	}
	return &Service{Store: backend, proxies: proxies}
}

// ProxyFor returns the proxy serving a category.
func (s *Service) ProxyFor(c Category) (*Proxy, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.proxies[c]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoProxy, c)
	}
	return p, nil
}

// DeployProxy installs (or replaces) the proxy for a category — §5's
// dynamic scenario where Alice, traveling to the US, stands up a local
// emergency proxy.
func (s *Service) DeployProxy(c Category, p *Proxy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.proxies[c] = p
}

// Proxies returns the deployed proxies keyed by category (copy).
func (s *Service) Proxies() map[Category]*Proxy {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[Category]*Proxy, len(s.proxies))
	for c, p := range s.proxies {
		out[c] = p
	}
	return out
}

// Grant routes a patient's delegation to the category's proxy.
func (s *Service) Grant(p *Patient, requesterParams *ibe.Params, requesterID string, c Category) error {
	proxy, err := s.ProxyFor(c)
	if err != nil {
		return err
	}
	return p.Grant(proxy, requesterParams, requesterID, c, nil)
}

// Request performs the full disclosure flow for one record: route to the
// category proxy, re-encrypt, and return the transformed ciphertext. The
// requester decrypts locally with their own key (the service never holds
// requester keys).
func (s *Service) Request(recordID, requesterID string) (*hybrid.ReCiphertext, error) {
	rec, err := s.Store.Get(recordID)
	if err != nil {
		return nil, err
	}
	proxy, err := s.ProxyFor(rec.Category)
	if err != nil {
		return nil, err
	}
	return proxy.Disclose(s.Store, recordID, requesterID)
}

// Read is the requester-side convenience wrapper: request + decrypt.
func (s *Service) Read(recordID string, requester *ibe.PrivateKey) ([]byte, error) {
	rct, err := s.Request(recordID, requester.ID)
	if err != nil {
		return nil, err
	}
	return hybrid.DecryptReEncrypted(requester, rct)
}

// BreakGlass performs emergency disclosure of a patient's
// CategoryEmergency records toward a pre-authorized responder. It is the
// same cryptographic path as any bulk disclosure — the responder must hold
// a standing emergency grant; break-glass cannot conjure access the
// patient never delegated — but every record released is audited with the
// distinguishable OutcomeBreakGlass and the mandatory reason, and a denied
// attempt is audited with the reason too.
func (s *Service) BreakGlass(patientID, requesterID, reason string) ([]*hybrid.ReCiphertext, error) {
	proxy, err := s.ProxyFor(CategoryEmergency)
	if err != nil {
		return nil, err
	}
	var out []*hybrid.ReCiphertext
	err = proxy.BreakGlass(s.Store, patientID, CategoryEmergency, requesterID, reason, func(rct *hybrid.ReCiphertext) error {
		out = append(out, rct)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ReadCategory requests and decrypts every record of (patient, category).
// Re-encryption runs on the parallel bulk path; results keep insertion
// order.
func (s *Service) ReadCategory(patientID string, c Category, requester *ibe.PrivateKey) ([][]byte, error) {
	proxy, err := s.ProxyFor(c)
	if err != nil {
		return nil, err
	}
	rcts, err := proxy.DiscloseCategoryParallel(s.Store, patientID, c, requester.ID)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, 0, len(rcts))
	for _, rct := range rcts {
		body, err := hybrid.DecryptReEncrypted(requester, rct)
		if err != nil {
			return nil, err
		}
		out = append(out, body)
	}
	return out, nil
}
