package phr

import (
	"typepre/internal/core"
	"typepre/internal/hybrid"
)

// This file implements the E6 blast-radius experiment: what fraction of
// stored records does an attacker expose by corrupting proxies (and
// colluding with the requesters those proxies serve)?
//
// Under the paper's scheme a corrupted type-t proxy key, even combined with
// the delegatee's key, yields only the type-t "weak" key (§4.3): the blast
// radius is the records of the delegated (patient, category) pairs.
//
// Under a traditional (type-less) PRE deployment — one proxy holding one
// identity-wide rekey per (patient, requester) — the same corruption
// exposes EVERY record of every delegating patient.

// ExposureReport summarizes a compromise simulation.
type ExposureReport struct {
	TotalRecords   int
	ExposedRecords int
	// ExposedByCategory counts exposed records per category.
	ExposedByCategory map[Category]int
}

// Fraction returns exposed/total (0 when the store is empty).
func (r *ExposureReport) Fraction() float64 {
	if r.TotalRecords == 0 {
		return 0
	}
	return float64(r.ExposedRecords) / float64(r.TotalRecords)
}

// SimulateTypePREBreach computes the records an attacker can decrypt after
// corrupting the given proxies AND colluding with every requester that has
// a grant on them. Exposure is structural: a record is exposed iff some
// corrupted proxy holds a grant for its (patient, category) pair —
// precisely what the recovered type keys open (Theorem 1; verified
// cryptographically by VerifyTypePREBreach and the tests).
func SimulateTypePREBreach(store Backend, corrupted []*Proxy) *ExposureReport {
	// Keyed by the *sealed* wire type (category + rotation epoch), not the
	// logical category: a rekey for an old epoch opens nothing that has
	// been re-sealed since — rotation shrinks the blast radius.
	exposedPairs := map[patientCategory]bool{}
	for _, p := range corrupted {
		for _, rk := range p.CompromisedGrants() {
			exposedPairs[patientCategory{rk.DelegatorID, Category(rk.Type)}] = true
		}
	}
	return exposureFrom(store, func(rec *EncryptedRecord) bool {
		return exposedPairs[patientCategory{rec.PatientID, Category(rec.Sealed.KEM.Type)}]
	})
}

// SimulateTraditionalPREBreach computes the exposure of the same corruption
// under a type-less PRE deployment: any grant from a patient exposes ALL of
// that patient's records.
func SimulateTraditionalPREBreach(store Backend, corrupted []*Proxy) *ExposureReport {
	exposedPatients := map[string]bool{}
	for _, p := range corrupted {
		for _, rk := range p.CompromisedGrants() {
			exposedPatients[rk.DelegatorID] = true
		}
	}
	return exposureFrom(store, func(rec *EncryptedRecord) bool {
		return exposedPatients[rec.PatientID]
	})
}

// exposureFrom walks every stored record and tallies the ones the given
// predicate marks as exposed; counts are reported by logical category. A
// backend read failure skips the unreadable patient — the simulation
// reports what the attacker could actually read.
func exposureFrom(store Backend, exposed func(*EncryptedRecord) bool) *ExposureReport {
	rep := &ExposureReport{ExposedByCategory: map[Category]int{}}
	for _, patient := range store.Patients() {
		recs, err := store.ListByPatient(patient)
		if err != nil {
			continue
		}
		for _, rec := range recs {
			rep.TotalRecords++
			if exposed(rec) {
				rep.ExposedRecords++
				rep.ExposedByCategory[rec.Category]++
			}
		}
	}
	return rep
}

// VerifyTypePREBreach cryptographically validates the structural simulation
// on a workload: for every record the simulation marks exposed, the
// attacker (holding the corrupted proxies' rekeys and the colluding
// requesters' keys) actually recovers a working type key and could decrypt;
// for a sample of non-exposed records, recovered keys do NOT open them.
// Returns (exposedVerified, isolatedVerified).
func VerifyTypePREBreach(w *Workload, corrupted []*Proxy) (bool, bool) {
	// Recover all type keys available to the attacker, keyed by the sealed
	// wire type they open (category at a specific rotation epoch).
	typeKeys := map[patientCategory]*core.TypeKey{}
	for _, p := range corrupted {
		for _, rk := range p.CompromisedGrants() {
			requesterKey, ok := w.Requesters[rk.DelegateeID]
			if !ok {
				continue
			}
			tk, err := core.RecoverTypeKey(rk, requesterKey)
			if err != nil {
				return false, false
			}
			typeKeys[patientCategory{rk.DelegatorID, Category(rk.Type)}] = tk
		}
	}

	exposedOK := true
	isolatedOK := true
	for _, rec := range w.Records {
		key := patientCategory{rec.PatientID, Category(rec.Sealed.KEM.Type)}
		tk, exposed := typeKeys[key]
		if exposed {
			// The attacker opens the KEM with the type key and unseals.
			if !attackerCanOpen(tk, rec, w.Bodies[rec.ID]) {
				exposedOK = false
			}
			continue
		}
		// Try every recovered key of the same patient: none may work.
		for pc, wrongTk := range typeKeys {
			if pc.patient != rec.PatientID {
				continue
			}
			if attackerCanOpen(wrongTk, rec, w.Bodies[rec.ID]) {
				isolatedOK = false
			}
		}
	}
	return exposedOK, isolatedOK
}

// attackerCanOpen checks whether a recovered type key opens a sealed
// record: it decrypts the KEM with the type key, derives the DEM key and
// compares the unsealed body.
func attackerCanOpen(tk *core.TypeKey, rec *EncryptedRecord, want []byte) bool {
	k, err := core.DecryptWithTypeKey(tk, rec.Sealed.KEM)
	if err != nil {
		return false
	}
	body, err := hybrid.OpenWithKEMKey(k, rec.Sealed)
	if err != nil {
		return false
	}
	return string(body) == string(want)
}
