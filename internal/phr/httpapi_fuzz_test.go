package phr

import (
	"bytes"
	"encoding/binary"
	"testing"

	"typepre/internal/hybrid"
	"typepre/internal/ibe"
)

// Fuzz target for the length-prefixed bulk-disclosure decoder — the one
// piece of client code that parses bytes straight off an untrusted wire.
// Invariants: no panic on any input, no allocation driven past the
// protocol limit by a hostile length prefix, and every decoded frame is a
// canonically encoded container.

// validBulkStream builds a two-frame wire stream through the real
// disclosure path.
func validBulkStream(f *testing.F) []byte {
	f.Helper()
	kgc1, err := ibe.Setup("bulkfuzz-kgc1", nil)
	if err != nil {
		f.Fatal(err)
	}
	kgc2, err := ibe.Setup("bulkfuzz-kgc2", nil)
	if err != nil {
		f.Fatal(err)
	}
	svc := NewService([]Category{CategoryEmergency})
	alice := NewPatient(kgc1, "alice@bulkfuzz")
	for _, b := range [][]byte{[]byte("frame one"), []byte("frame two")} {
		if _, err := alice.AddRecord(svc.Store, CategoryEmergency, b, nil); err != nil {
			f.Fatal(err)
		}
	}
	if err := svc.Grant(alice, kgc2.Params(), "bob@bulkfuzz", CategoryEmergency); err != nil {
		f.Fatal(err)
	}
	proxy, err := svc.ProxyFor(CategoryEmergency)
	if err != nil {
		f.Fatal(err)
	}
	var stream bytes.Buffer
	err = proxy.DiscloseCategoryStream(svc.Store, alice.ID(), CategoryEmergency, "bob@bulkfuzz",
		func(rct *hybrid.ReCiphertext) error {
			b := rct.Marshal()
			var prefix [4]byte
			binary.BigEndian.PutUint32(prefix[:], uint32(len(b)))
			stream.Write(prefix[:])
			stream.Write(b)
			return nil
		})
	if err != nil {
		f.Fatal(err)
	}
	return stream.Bytes()
}

func FuzzDecodeBulkStream(f *testing.F) {
	valid := validBulkStream(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])           // truncated mid-frame
	f.Add(valid[:2])                      // truncated prefix
	f.Add([]byte{})                       // empty stream
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // oversized length prefix
	f.Add([]byte{0, 0, 0, 0})             // zero-length frame
	hostile := append([]byte{0, 0, 0, 8}, bytes.Repeat([]byte{0xaa}, 8)...)
	f.Add(hostile) // well-framed garbage
	f.Fuzz(func(t *testing.T, data []byte) {
		frames := 0
		err := DecodeBulkStream(bytes.NewReader(data), func(rct *hybrid.ReCiphertext) error {
			frames++
			// Anything the decoder accepts must re-marshal canonically:
			// a hostile frame cannot alias two wire forms of one record.
			b := rct.Marshal()
			if len(b) == 0 {
				t.Fatal("accepted frame re-marshals to nothing")
			}
			re, err := hybrid.UnmarshalReCiphertext(b)
			if err != nil {
				t.Fatalf("accepted frame does not re-decode: %v", err)
			}
			if !bytes.Equal(re.Marshal(), b) {
				t.Fatal("accepted frame is not canonical")
			}
			return nil
		})
		// A clean EOF means every byte was consumed as well-formed frames;
		// otherwise the error must arrive without a panic. Either way the
		// decoder can never have yielded more frames than fit in the input
		// (each frame costs at least its 4-byte prefix).
		if frames > len(data)/4 {
			t.Fatalf("%d frames decoded from %d bytes", frames, len(data))
		}
		_ = err
	})
}
