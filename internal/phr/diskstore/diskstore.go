// Package diskstore is the crash-safe on-disk phr.Backend: an append-only
// segment log with an in-memory index, built for a semi-trusted record
// server that must survive restarts (and SIGKILL) without losing an
// acknowledged write.
//
// Layout: the data directory holds numbered segment files
// (seg-00000001.log, …). Every write — put, replace, delete — is one
// length-prefixed, CRC-framed entry appended to the active segment:
//
//	u32 len(payload) | u32 crc32(payload) | payload
//	payload = op byte (put=1, replace=2, delete=3) ++ body
//
// put/replace bodies are the record wire form (phr.MarshalRecord); delete
// bodies are the raw record ID. The log is the only durable state: the
// primary index (ID → log location) and the secondary indexes (patient,
// patient+category) live in memory and are rebuilt by replaying the
// segments on Open. Sealed bodies stay on disk — memory holds metadata
// and offsets only, so the store's footprint is bounded by record count,
// not record bytes.
//
// Recovery is WAL-style: replay stops at the first torn frame (short
// header, short body, or CRC mismatch) in the final segment and truncates
// the tail there — a crash mid-append loses at most the unacknowledged
// entry being written. A broken frame in any non-final segment is real
// corruption and fails Open. Segments rotate at Options.SegmentBytes;
// Compact rewrites live entries into fresh segments and drops
// deleted/replaced garbage.
//
// Durability is governed by Options.Fsync: FsyncAlways syncs the active
// segment before a write is acknowledged (a crash loses nothing
// acknowledged); FsyncInterval syncs on a background interval (a crash
// loses at most the last interval's acknowledged writes). See
// docs/storage.md for the full format and policy discussion.
//
// The store is safe for concurrent use by one process. It takes no
// directory lock: running two stores over one directory corrupts it.
package diskstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"typepre/internal/phr"
)

// Log entry opcodes.
const (
	opPut     = 1
	opReplace = 2
	opDelete  = 3
)

// frameHeaderLen is u32 payload length + u32 CRC32 (IEEE) of the payload.
const frameHeaderLen = 8

// maxFrameBytes bounds a single entry; an absurd length prefix during
// replay is treated like a torn frame, never allocated.
const maxFrameBytes = 1 << 30

// ErrCorrupt marks a broken frame outside the recoverable tail position —
// data loss that truncation cannot honestly repair. It wraps
// phr.ErrStorage.
var ErrCorrupt = errors.New("diskstore: corrupt segment")

// FsyncMode selects the durability policy for acknowledged writes.
type FsyncMode int

const (
	// FsyncAlways syncs the active segment before every write returns:
	// an acknowledged write survives any crash.
	FsyncAlways FsyncMode = iota
	// FsyncInterval syncs on a background interval: a crash loses at most
	// the acknowledged writes of the last interval.
	FsyncInterval
)

func (m FsyncMode) String() string {
	if m == FsyncAlways {
		return "always"
	}
	return "interval"
}

// ParseFsyncMode parses the phrserver flag form ("always", "interval").
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	}
	return 0, fmt.Errorf("diskstore: unknown fsync mode %q (have always, interval)", s)
}

// Options configures a Store. The zero value is usable: 64 MiB segments,
// FsyncAlways.
type Options struct {
	// SegmentBytes is the rotation threshold of the active segment.
	SegmentBytes int64
	// Fsync is the durability policy (default FsyncAlways).
	Fsync FsyncMode
	// FsyncInterval is the background sync period in FsyncInterval mode
	// (default 100ms).
	FsyncInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	return o
}

// RecoveryStats reports what Open replayed and repaired.
type RecoveryStats struct {
	// Segments replayed.
	Segments int
	// Entries replayed across all segments.
	Entries int
	// Records live after replay.
	Records int
	// TruncatedBytes dropped from the final segment's torn tail (0 on a
	// clean shutdown).
	TruncatedBytes int64
}

// Stats is a point-in-time report of the store's shape.
type Stats struct {
	Records      int
	Segments     int
	LiveBytes    int64 // payload bytes of live entries
	GarbageBytes int64 // payload bytes of replaced/deleted entries still on disk
	Recovery     RecoveryStats
}

type patCat struct {
	patient  string
	category phr.Category
}

// entryLoc is one live record's position in the log plus the routing
// metadata needed without a disk read.
type entryLoc struct {
	seg      int
	off      int64 // payload offset (past the frame header)
	n        int32 // payload length (op byte included)
	patient  string
	category phr.Category
}

// Store is the on-disk Backend. All methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu     sync.RWMutex
	closed bool

	index     map[string]entryLoc
	byPatient map[string][]string // patient → record IDs, insertion order
	byPatCat  map[patCat][]string

	segs       map[int]*os.File
	activeID   int
	activeSize int64
	dirty      bool // unsynced appends on the active segment

	liveBytes    int64
	garbageBytes int64
	recovery     RecoveryStats

	flushStop chan struct{}
	flushDone chan struct{}
}

// Store implements phr.Backend.
var _ phr.Backend = (*Store)(nil)

func segName(id int) string { return fmt.Sprintf("seg-%08d.log", id) }

func parseSegName(name string) (int, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	id, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".log"))
	if err != nil || id <= 0 {
		return 0, false
	}
	return id, true
}

// Open opens (or creates) a store over dir, replaying every segment to
// rebuild the indexes and truncating a torn tail left by a crash.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("%w: %w", phr.ErrStorage, err)
	}
	s := &Store{
		dir:       dir,
		opts:      opts,
		index:     map[string]entryLoc{},
		byPatient: map[string][]string{},
		byPatCat:  map[patCat][]string{},
		segs:      map[int]*os.File{},
	}

	ids, err := s.segmentIDs()
	if err != nil {
		return nil, err
	}
	for i, id := range ids {
		if err := s.replaySegment(id, i == len(ids)-1); err != nil {
			s.closeFiles()
			return nil, err
		}
	}
	if len(ids) == 0 {
		if err := s.createSegment(1); err != nil {
			return nil, err
		}
	} else {
		s.activeID = ids[len(ids)-1]
		fi, err := s.segs[s.activeID].Stat()
		if err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("%w: %w", phr.ErrStorage, err)
		}
		s.activeSize = fi.Size()
	}
	s.recovery.Records = len(s.index)

	if opts.Fsync == FsyncInterval {
		s.flushStop = make(chan struct{})
		s.flushDone = make(chan struct{})
		go s.flushLoop()
	}
	return s, nil
}

func (s *Store) segmentIDs() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", phr.ErrStorage, err)
	}
	var ids []int
	for _, e := range entries {
		if id, ok := parseSegName(e.Name()); ok && !e.IsDir() {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids, nil
}

// replaySegment scans one segment sequentially, applying every valid
// entry to the in-memory indexes. A broken frame in the final segment is
// a torn tail: the file is truncated at the last valid frame boundary. A
// broken frame anywhere else fails with ErrCorrupt.
func (s *Store) replaySegment(id int, last bool) error {
	path := filepath.Join(s.dir, segName(id))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("%w: %w", phr.ErrStorage, err)
	}
	s.segs[id] = f
	s.recovery.Segments++

	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("%w: %w", phr.ErrStorage, err)
	}
	size := fi.Size()

	var off int64
	var header [frameHeaderLen]byte
	var payload []byte
	for off < size {
		torn := func(why string) error {
			if !last {
				return fmt.Errorf("%w: %w: segment %d offset %d: %s (only the final segment may have a torn tail)",
					phr.ErrStorage, ErrCorrupt, id, off, why)
			}
			// WAL recovery: drop the torn tail, keep the valid prefix.
			if err := f.Truncate(off); err != nil {
				return fmt.Errorf("%w: truncating torn tail: %w", phr.ErrStorage, err)
			}
			if err := f.Sync(); err != nil {
				return fmt.Errorf("%w: %w", phr.ErrStorage, err)
			}
			s.recovery.TruncatedBytes += size - off
			return nil
		}
		if size-off < frameHeaderLen {
			return torn("short frame header")
		}
		if _, err := f.ReadAt(header[:], off); err != nil {
			return fmt.Errorf("%w: %w", phr.ErrStorage, err)
		}
		n := binary.BigEndian.Uint32(header[:4])
		crc := binary.BigEndian.Uint32(header[4:])
		if n == 0 || n > maxFrameBytes {
			return torn(fmt.Sprintf("frame declares %d bytes", n))
		}
		if size-off-frameHeaderLen < int64(n) {
			return torn("short frame body")
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := f.ReadAt(payload, off+frameHeaderLen); err != nil {
			return fmt.Errorf("%w: %w", phr.ErrStorage, err)
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return torn("CRC mismatch")
		}
		if err := s.applyEntry(id, off+frameHeaderLen, payload); err != nil {
			// A frame with a valid CRC but an undecodable body was written
			// whole and then damaged — not a torn write; truncation would
			// silently discard committed data.
			return fmt.Errorf("%w: %w: segment %d offset %d: %w", phr.ErrStorage, ErrCorrupt, id, off, err)
		}
		s.recovery.Entries++
		off += frameHeaderLen + int64(n)
	}
	return nil
}

// applyEntry replays one decoded payload into the indexes. Replay is an
// upsert for put/replace and a no-op delete for unknown IDs: compaction
// may leave overlapping segments behind a crash, and later entries win.
func (s *Store) applyEntry(seg int, off int64, payload []byte) error {
	switch payload[0] {
	case opPut, opReplace:
		rec, err := phr.UnmarshalRecord(payload[1:])
		if err != nil {
			return err
		}
		loc := entryLoc{seg: seg, off: off, n: int32(len(payload)), patient: rec.PatientID, category: rec.Category}
		if old, ok := s.index[rec.ID]; ok {
			s.garbageBytes += int64(old.n)
			s.liveBytes -= int64(old.n)
		} else {
			s.byPatient[rec.PatientID] = append(s.byPatient[rec.PatientID], rec.ID)
			key := patCat{rec.PatientID, rec.Category}
			s.byPatCat[key] = append(s.byPatCat[key], rec.ID)
		}
		s.index[rec.ID] = loc
		s.liveBytes += int64(len(payload))
		return nil
	case opDelete:
		id := string(payload[1:])
		if old, ok := s.index[id]; ok {
			s.dropFromIndex(id, old)
		}
		return nil
	default:
		return fmt.Errorf("unknown opcode %d", payload[0])
	}
}

func (s *Store) dropFromIndex(id string, loc entryLoc) {
	delete(s.index, id)
	s.garbageBytes += int64(loc.n)
	s.liveBytes -= int64(loc.n)
	// Drop emptied index keys outright, mirroring the memory backend's
	// churn-leak behavior.
	if rest := removeString(s.byPatient[loc.patient], id); len(rest) > 0 {
		s.byPatient[loc.patient] = rest
	} else {
		delete(s.byPatient, loc.patient)
	}
	key := patCat{loc.patient, loc.category}
	if rest := removeString(s.byPatCat[key], id); len(rest) > 0 {
		s.byPatCat[key] = rest
	} else {
		delete(s.byPatCat, key)
	}
}

func removeString(xs []string, x string) []string {
	for i, v := range xs {
		if v == x {
			return append(xs[:i], xs[i+1:]...)
		}
	}
	return xs
}

func (s *Store) createSegment(id int) error {
	path := filepath.Join(s.dir, segName(id))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("%w: %w", phr.ErrStorage, err)
	}
	s.segs[id] = f
	s.activeID = id
	s.activeSize = 0
	return s.syncDir()
}

// syncDir fsyncs the data directory so segment creation/removal survives
// a crash (best effort on platforms where directory fsync fails).
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("%w: %w", phr.ErrStorage, err)
	}
	defer d.Close()
	d.Sync()
	return nil
}

// appendEntry writes one framed payload to the active segment, applying
// the fsync policy and rotating past the size threshold. Caller holds mu.
func (s *Store) appendEntry(payload []byte) (seg int, off int64, err error) {
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderLen:], payload)

	f := s.segs[s.activeID]
	if _, err := f.WriteAt(frame, s.activeSize); err != nil {
		return 0, 0, fmt.Errorf("%w: append: %w", phr.ErrStorage, err)
	}
	seg, off = s.activeID, s.activeSize+frameHeaderLen
	s.activeSize += int64(len(frame))

	if s.opts.Fsync == FsyncAlways {
		if err := f.Sync(); err != nil {
			return 0, 0, fmt.Errorf("%w: fsync: %w", phr.ErrStorage, err)
		}
	} else {
		s.dirty = true
	}

	if s.activeSize >= s.opts.SegmentBytes {
		// Rotate: seal the full segment (sync it so the rotation boundary
		// is durable) and start the next one.
		if err := f.Sync(); err != nil {
			return 0, 0, fmt.Errorf("%w: fsync: %w", phr.ErrStorage, err)
		}
		s.dirty = false
		if err := s.createSegment(s.activeID + 1); err != nil {
			return 0, 0, err
		}
	}
	return seg, off, nil
}

// readPayload fetches one live entry's payload. Caller holds mu (read or
// write): segment files are only removed under the write lock.
func (s *Store) readPayload(loc entryLoc) ([]byte, error) {
	f, ok := s.segs[loc.seg]
	if !ok {
		return nil, fmt.Errorf("%w: segment %d vanished", phr.ErrStorage, loc.seg)
	}
	payload := make([]byte, loc.n)
	if _, err := f.ReadAt(payload, loc.off); err != nil {
		return nil, fmt.Errorf("%w: read: %w", phr.ErrStorage, err)
	}
	return payload, nil
}

func (s *Store) decodeRecord(loc entryLoc) (*phr.EncryptedRecord, error) {
	payload, err := s.readPayload(loc)
	if err != nil {
		return nil, err
	}
	rec, err := phr.UnmarshalRecord(payload[1:])
	if err != nil {
		return nil, fmt.Errorf("%w: %w", phr.ErrStorage, err)
	}
	return rec, nil
}

func (s *Store) flushLoop() {
	defer close(s.flushDone)
	t := time.NewTicker(s.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mu.Lock()
			if s.dirty && !s.closed {
				s.segs[s.activeID].Sync()
				s.dirty = false
			}
			s.mu.Unlock()
		case <-s.flushStop:
			return
		}
	}
}

// ---------------------------------------------------------------------------
// phr.Backend
// ---------------------------------------------------------------------------

func encodeRecordPayload(op byte, r *phr.EncryptedRecord) []byte {
	return phr.MarshalRecord([]byte{op}, r)
}

// Put inserts a record; ErrDuplicate if the ID exists.
func (s *Store) Put(r *phr.EncryptedRecord) error {
	if r == nil || r.ID == "" {
		return fmt.Errorf("phr: invalid record")
	}
	payload := encodeRecordPayload(opPut, r)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("%w: store closed", phr.ErrStorage)
	}
	if _, ok := s.index[r.ID]; ok {
		return fmt.Errorf("%w: %s", phr.ErrDuplicate, r.ID)
	}
	seg, off, err := s.appendEntry(payload)
	if err != nil {
		return err
	}
	s.index[r.ID] = entryLoc{seg: seg, off: off, n: int32(len(payload)), patient: r.PatientID, category: r.Category}
	s.byPatient[r.PatientID] = append(s.byPatient[r.PatientID], r.ID)
	key := patCat{r.PatientID, r.Category}
	s.byPatCat[key] = append(s.byPatCat[key], r.ID)
	s.liveBytes += int64(len(payload))
	return nil
}

// Replace swaps the sealed body of an existing record; the routing
// metadata must not change.
func (s *Store) Replace(r *phr.EncryptedRecord) error {
	if r == nil || r.ID == "" {
		return fmt.Errorf("phr: invalid record")
	}
	payload := encodeRecordPayload(opReplace, r)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("%w: store closed", phr.ErrStorage)
	}
	old, ok := s.index[r.ID]
	if !ok {
		return fmt.Errorf("%w: %s", phr.ErrNotFound, r.ID)
	}
	if old.patient != r.PatientID || old.category != r.Category {
		return fmt.Errorf("phr: replace of %s cannot change routing metadata", r.ID)
	}
	seg, off, err := s.appendEntry(payload)
	if err != nil {
		return err
	}
	s.index[r.ID] = entryLoc{seg: seg, off: off, n: int32(len(payload)), patient: old.patient, category: old.category}
	s.garbageBytes += int64(old.n)
	s.liveBytes += int64(len(payload)) - int64(old.n)
	return nil
}

// Get fetches a record by ID.
func (s *Store) Get(id string) (*phr.EncryptedRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, fmt.Errorf("%w: store closed", phr.ErrStorage)
	}
	loc, ok := s.index[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", phr.ErrNotFound, id)
	}
	return s.decodeRecord(loc)
}

// Delete removes a record by ID, appending a tombstone.
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("%w: store closed", phr.ErrStorage)
	}
	loc, ok := s.index[id]
	if !ok {
		return fmt.Errorf("%w: %s", phr.ErrNotFound, id)
	}
	payload := append([]byte{opDelete}, id...)
	if _, _, err := s.appendEntry(payload); err != nil {
		return err
	}
	s.dropFromIndex(id, loc)
	return nil
}

func (s *Store) list(ids []string) ([]*phr.EncryptedRecord, error) {
	out := make([]*phr.EncryptedRecord, 0, len(ids))
	for _, id := range ids {
		rec, err := s.decodeRecord(s.index[id])
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// ListByPatient returns all records of a patient in insertion order.
func (s *Store) ListByPatient(patientID string) ([]*phr.EncryptedRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, fmt.Errorf("%w: store closed", phr.ErrStorage)
	}
	return s.list(s.byPatient[patientID])
}

// ListByPatientCategory returns a patient's records of one category in
// insertion order.
func (s *Store) ListByPatientCategory(patientID string, c phr.Category) ([]*phr.EncryptedRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, fmt.Errorf("%w: store closed", phr.ErrStorage)
	}
	return s.list(s.byPatCat[patCat{patientID, c}])
}

// Count returns the total number of records.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// CountByPatient returns the number of records of one patient.
func (s *Store) CountByPatient(patientID string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byPatient[patientID])
}

// Patients returns the sorted patient IDs with at least one record.
func (s *Store) Patients() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.byPatient))
	for p := range s.byPatient {
		out = append(out, p)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Categories returns the sorted distinct categories of a patient.
func (s *Store) Categories(patientID string) []phr.Category {
	s.mu.RLock()
	seen := map[phr.Category]bool{}
	for key, ids := range s.byPatCat {
		if key.patient == patientID && len(ids) > 0 {
			seen[key.category] = true
		}
	}
	s.mu.RUnlock()
	out := make([]phr.Category, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Close flushes the active segment and releases every file handle. After
// Close every method fails with phr.ErrStorage.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var err error
	if f := s.segs[s.activeID]; f != nil {
		err = f.Sync()
	}
	s.closeFiles()
	s.mu.Unlock()

	if s.flushStop != nil {
		close(s.flushStop)
		<-s.flushDone
	}
	if err != nil {
		return fmt.Errorf("%w: %w", phr.ErrStorage, err)
	}
	return nil
}

func (s *Store) closeFiles() {
	for _, f := range s.segs {
		f.Close()
	}
	s.segs = map[int]*os.File{}
}

// Recovery reports what Open replayed and repaired.
func (s *Store) Recovery() RecoveryStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.recovery
}

// Stats reports the store's current shape.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Records:      len(s.index),
		Segments:     len(s.segs),
		LiveBytes:    s.liveBytes,
		GarbageBytes: s.garbageBytes,
		Recovery:     s.recovery,
	}
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

var _ io.Closer = (*Store)(nil)
