package diskstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"typepre/internal/phr"
)

// Compact rewrites every live record into fresh segments and deletes the
// old ones, reclaiming the space of replaced and deleted entries. The
// pass is crash-safe by ordering, not by atomicity:
//
//  1. live entries are copied into new segments numbered after the
//     current active one, and synced;
//  2. only then are the old segment files removed, oldest first.
//
// A crash at any point leaves a directory whose replay converges to the
// same records: replay treats put as upsert, so surviving old entries are
// overridden by the compacted copies that follow them, and a tombstone
// can never outlive the put it deletes (the put's segment is always
// removed first).
//
// Compact holds the write lock for its duration — reads and writes stall.
// Call it from an operational window, not a request path.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("%w: store closed", phr.ErrStorage)
	}

	oldIDs := make([]int, 0, len(s.segs))
	for id := range s.segs {
		oldIDs = append(oldIDs, id)
	}
	sort.Ints(oldIDs)

	// Seal the current log: everything from here on goes to new segments.
	if s.dirty {
		if err := s.segs[s.activeID].Sync(); err != nil {
			return fmt.Errorf("%w: fsync: %w", phr.ErrStorage, err)
		}
		s.dirty = false
	}
	if err := s.createSegment(s.activeID + 1); err != nil {
		return err
	}

	// Copy live entries in deterministic order (sorted patients,
	// insertion order within a patient). Payload bytes are copied
	// verbatim off disk; a replace entry becomes a put in the new log.
	patients := make([]string, 0, len(s.byPatient))
	for p := range s.byPatient {
		patients = append(patients, p)
	}
	sort.Strings(patients)

	newLocs := make(map[string]entryLoc, len(s.index))
	var liveBytes int64
	frame := []byte(nil)
	for _, p := range patients {
		for _, id := range s.byPatient[p] {
			loc := s.index[id]
			payload, err := s.readPayload(loc)
			if err != nil {
				return err
			}
			payload[0] = opPut
			frame = frame[:0]
			frame = binary.BigEndian.AppendUint32(frame, uint32(len(payload)))
			frame = binary.BigEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
			frame = append(frame, payload...)

			f := s.segs[s.activeID]
			if _, err := f.WriteAt(frame, s.activeSize); err != nil {
				return fmt.Errorf("%w: compact append: %w", phr.ErrStorage, err)
			}
			newLocs[id] = entryLoc{
				seg: s.activeID, off: s.activeSize + frameHeaderLen,
				n: int32(len(payload)), patient: loc.patient, category: loc.category,
			}
			s.activeSize += int64(len(frame))
			liveBytes += int64(len(payload))
			if s.activeSize >= s.opts.SegmentBytes {
				if err := f.Sync(); err != nil {
					return fmt.Errorf("%w: fsync: %w", phr.ErrStorage, err)
				}
				if err := s.createSegment(s.activeID + 1); err != nil {
					return err
				}
			}
		}
	}
	// Make the compacted copies durable before any old entry disappears.
	if err := s.segs[s.activeID].Sync(); err != nil {
		return fmt.Errorf("%w: fsync: %w", phr.ErrStorage, err)
	}

	// Point the index at the new copies, then drop the old segments,
	// oldest first.
	for id, loc := range newLocs {
		s.index[id] = loc
	}
	for _, id := range oldIDs {
		if f, ok := s.segs[id]; ok {
			f.Close()
			delete(s.segs, id)
		}
		if err := os.Remove(filepath.Join(s.dir, segName(id))); err != nil {
			return fmt.Errorf("%w: removing %s: %w", phr.ErrStorage, segName(id), err)
		}
	}
	if err := s.syncDir(); err != nil {
		return err
	}
	s.liveBytes = liveBytes
	s.garbageBytes = 0
	return nil
}
