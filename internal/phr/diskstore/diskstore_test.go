package diskstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"typepre/internal/core"
	"typepre/internal/hybrid"
	"typepre/internal/ibe"
	"typepre/internal/phr"
)

// testSealed builds one real sealed container once; records in these
// tests share its KEM and vary the (opaque to the store) payload bytes.
var testSealed = sync.OnceValue(func() *hybrid.Ciphertext {
	kgc, err := ibe.Setup("diskstore-test", nil)
	if err != nil {
		panic(err)
	}
	del := core.NewDelegator(kgc.Extract("alice@phr.example"))
	ct, err := hybrid.Encrypt(del, []byte("diskstore test body"), core.Type(phr.CategoryEmergency), nil)
	if err != nil {
		panic(err)
	}
	return ct
})

// testRecord mints a record with a payload of n bytes derived from the
// id, so byte-level integrity is checkable after recovery.
func testRecord(id, patient string, c phr.Category, n int) *phr.EncryptedRecord {
	base := testSealed()
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(int(id[len(id)-1]) + i)
	}
	return &phr.EncryptedRecord{
		ID:        id,
		PatientID: patient,
		Category:  c,
		CreatedAt: time.Unix(0, 1234567890),
		Sealed: &hybrid.Ciphertext{
			KEM:     &core.Ciphertext{C1: base.KEM.C1, C2: base.KEM.C2, Type: core.Type(c)},
			Nonce:   base.Nonce,
			Payload: payload,
		},
	}
}

func openT(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestCRUDRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})

	recs := []*phr.EncryptedRecord{
		testRecord("a/1", "alice", phr.CategoryEmergency, 100),
		testRecord("a/2", "alice", phr.CategoryMedication, 200),
		testRecord("a/3", "alice", phr.CategoryEmergency, 50),
		testRecord("b/1", "bob", phr.CategoryLabResults, 300),
	}
	for _, r := range recs {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(recs[0]); !errors.Is(err, phr.ErrDuplicate) {
		t.Fatalf("duplicate put: got %v, want ErrDuplicate", err)
	}
	if _, err := s.Get("nope"); !errors.Is(err, phr.ErrNotFound) {
		t.Fatalf("missing get: got %v, want ErrNotFound", err)
	}

	// Replace swaps the sealed body in place.
	repl := testRecord("a/2", "alice", phr.CategoryMedication, 222)
	if err := s.Replace(repl); err != nil {
		t.Fatal(err)
	}
	wrongRoute := testRecord("a/2", "alice", phr.CategoryEmergency, 10)
	if err := s.Replace(wrongRoute); err == nil {
		t.Fatal("replace accepted a routing-metadata change")
	}
	if err := s.Delete("a/3"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a/3"); !errors.Is(err, phr.ErrNotFound) {
		t.Fatalf("double delete: got %v, want ErrNotFound", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: indexes rebuilt from the log.
	s2 := openT(t, dir, Options{})
	if n := s2.Count(); n != 3 {
		t.Fatalf("Count after reopen = %d, want 3", n)
	}
	got, err := s2.Get("a/2")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Sealed.Payload, repl.Sealed.Payload) {
		t.Fatal("replace lost across reopen")
	}
	if got.CreatedAt.UnixNano() != 1234567890 {
		t.Fatalf("CreatedAt lost: %v", got.CreatedAt)
	}
	if _, err := s2.Get("a/3"); !errors.Is(err, phr.ErrNotFound) {
		t.Fatalf("tombstone not replayed: %v", err)
	}
	listed, err := s2.ListByPatient("alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 2 || listed[0].ID != "a/1" || listed[1].ID != "a/2" {
		t.Fatalf("insertion order lost: %v", ids(listed))
	}
	byCat, err := s2.ListByPatientCategory("alice", phr.CategoryEmergency)
	if err != nil {
		t.Fatal(err)
	}
	if len(byCat) != 1 || byCat[0].ID != "a/1" {
		t.Fatalf("category index = %v", ids(byCat))
	}
	if ps := s2.Patients(); len(ps) != 2 || ps[0] != "alice" || ps[1] != "bob" {
		t.Fatalf("Patients = %v", ps)
	}
	if cs := s2.Categories("alice"); len(cs) != 2 {
		t.Fatalf("Categories = %v", cs)
	}
	if n := s2.CountByPatient("bob"); n != 1 {
		t.Fatalf("CountByPatient(bob) = %d", n)
	}
	st := s2.Recovery()
	if st.Records != 3 || st.TruncatedBytes != 0 {
		t.Fatalf("recovery stats = %+v", st)
	}
}

func ids(recs []*phr.EncryptedRecord) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.ID
	}
	return out
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if _, ok := parseSegName(e.Name()); ok {
			out = append(out, e.Name())
		}
	}
	return out
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{SegmentBytes: 4 << 10})
	for i := 0; i < 40; i++ {
		if err := s.Put(testRecord(fmt.Sprintf("r/%03d", i), "alice", phr.CategoryEmergency, 256)); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(segFiles(t, dir)); n < 3 {
		t.Fatalf("no rotation: %d segment files", n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{SegmentBytes: 4 << 10})
	if s2.Count() != 40 {
		t.Fatalf("Count after multi-segment reopen = %d, want 40", s2.Count())
	}
	recs, err := s2.ListByPatient("alice")
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if r.ID != fmt.Sprintf("r/%03d", i) {
			t.Fatalf("order broken at %d: %s", i, r.ID)
		}
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{SegmentBytes: 4 << 10})
	for i := 0; i < 30; i++ {
		if err := s.Put(testRecord(fmt.Sprintf("r/%03d", i), "alice", phr.CategoryEmergency, 256)); err != nil {
			t.Fatal(err)
		}
	}
	// Churn: delete a third, replace a third.
	for i := 0; i < 30; i += 3 {
		if err := s.Delete(fmt.Sprintf("r/%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 30; i += 3 {
		if err := s.Replace(testRecord(fmt.Sprintf("r/%03d", i), "alice", phr.CategoryEmergency, 64)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()
	if before.GarbageBytes == 0 {
		t.Fatal("expected garbage before compaction")
	}
	segsBefore := len(segFiles(t, dir))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.GarbageBytes != 0 {
		t.Fatalf("garbage after compaction = %d", after.GarbageBytes)
	}
	if after.Records != 20 {
		t.Fatalf("records after compaction = %d, want 20", after.Records)
	}
	if segsAfter := len(segFiles(t, dir)); segsAfter >= segsBefore {
		t.Fatalf("compaction grew segments: %d -> %d", segsBefore, segsAfter)
	}
	// Reads and writes keep working on the compacted log…
	if _, err := s.Get("r/001"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testRecord("post/1", "alice", phr.CategoryEmergency, 32)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// …and the compacted directory replays to the same state.
	s2 := openT(t, dir, Options{SegmentBytes: 4 << 10})
	if s2.Count() != 21 {
		t.Fatalf("Count after compacted reopen = %d, want 21", s2.Count())
	}
	got, err := s2.Get("r/001")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sealed.Payload) != 64 {
		t.Fatalf("replaced body lost through compaction: %d bytes", len(got.Sealed.Payload))
	}
	for i := 0; i < 30; i += 3 {
		if _, err := s2.Get(fmt.Sprintf("r/%03d", i)); !errors.Is(err, phr.ErrNotFound) {
			t.Fatalf("deleted record r/%03d resurrected: %v", i, err)
		}
	}
}

func TestFsyncIntervalMode(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{Fsync: FsyncInterval, FsyncInterval: 5 * time.Millisecond})
	if err := s.Put(testRecord("x/1", "alice", phr.CategoryEmergency, 128)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the background flusher run
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{})
	if s2.Count() != 1 {
		t.Fatalf("Count = %d, want 1", s2.Count())
	}
}

func TestClosedStoreFails(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close is not idempotent: %v", err)
	}
	if err := s.Put(testRecord("x/1", "alice", phr.CategoryEmergency, 8)); !errors.Is(err, phr.ErrStorage) {
		t.Fatalf("put on closed store: %v", err)
	}
	if _, err := s.Get("x/1"); !errors.Is(err, phr.ErrStorage) {
		t.Fatalf("get on closed store: %v", err)
	}
}

func TestCorruptMiddleSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{SegmentBytes: 2 << 10})
	for i := 0; i < 20; i++ {
		if err := s.Put(testRecord(fmt.Sprintf("r/%03d", i), "alice", phr.CategoryEmergency, 256)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segFiles(t, dir)
	if len(segs) < 2 {
		t.Fatalf("need multiple segments, have %v", segs)
	}
	// Flip one payload byte in the FIRST segment: not a torn tail, real
	// corruption, and Open must refuse to silently drop data.
	first := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over corrupt middle segment: %v, want ErrCorrupt", err)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := openT(t, t.TempDir(), Options{Fsync: FsyncInterval})
	for i := 0; i < 8; i++ {
		if err := s.Put(testRecord(fmt.Sprintf("seed/%d", i), "alice", phr.CategoryEmergency, 64)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("w%d/%d", g, i)
				if err := s.Put(testRecord(id, "bob", phr.CategoryMedication, 64)); err != nil {
					errs <- err
					return
				}
				if _, err := s.Get(id); err != nil {
					errs <- err
					return
				}
				if _, err := s.ListByPatientCategory("alice", phr.CategoryEmergency); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := s.Count(); n != 8+4*50 {
		t.Fatalf("Count = %d, want %d", n, 8+4*50)
	}
}

// TestSustains100kRecords is the scale gate from the roadmap: 100k sealed
// records through the log, reopened with a full index rebuild, spot reads
// intact. Memory holds only the index; bodies stay on disk.
func TestSustains100kRecords(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-record scale test skipped in -short mode")
	}
	const n = 100_000
	dir := t.TempDir()
	s := openT(t, dir, Options{Fsync: FsyncInterval, SegmentBytes: 16 << 20})
	for i := 0; i < n; i++ {
		patient := fmt.Sprintf("p-%03d", i%199)
		if err := s.Put(testRecord(fmt.Sprintf("rec/%06d", i), patient, phr.CategoryEmergency, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Count() != n {
		t.Fatalf("Count = %d", s.Count())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{})
	if s2.Count() != n {
		t.Fatalf("Count after reopen = %d, want %d", s2.Count(), n)
	}
	for _, i := range []int{0, 1, n / 2, n - 2, n - 1} {
		rec, err := s2.Get(fmt.Sprintf("rec/%06d", i))
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Sealed.Payload) != 64 {
			t.Fatalf("record %d payload = %d bytes", i, len(rec.Sealed.Payload))
		}
	}
}

// TestServiceOverDiskBackend is the end-to-end check: a real workload
// generated into a disk backend, disclosed through the service, then the
// backend is restarted and the records disclose identically (grants are
// in-proxy state and are re-installed, as after a real server restart).
func TestServiceOverDiskBackend(t *testing.T) {
	dir := t.TempDir()
	backend := openT(t, dir, Options{})

	cfg := phr.DefaultWorkload()
	cfg.Backend = backend
	w, err := phr.GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if backend.Count() != len(w.Records) {
		t.Fatalf("backend holds %d records, workload made %d", backend.Count(), len(w.Records))
	}
	g := w.Grants[0]
	key := w.Requesters[g.RequesterID]
	before, err := w.Service.ReadCategory(g.PatientID, g.Category, key)
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: new backend over the same directory, fresh service (fresh
	// proxies — grants do not survive, exactly like a process restart),
	// re-grant, and the same records disclose to the same plaintexts.
	backend2 := openT(t, dir, Options{})
	if backend2.Count() != len(w.Records) {
		t.Fatalf("restart lost records: %d, want %d", backend2.Count(), len(w.Records))
	}
	svc2 := phr.NewServiceWith(cfg.Categories, backend2)
	var patient *phr.Patient
	for _, p := range w.Patients {
		if p.ID() == g.PatientID {
			patient = p
		}
	}
	if err := svc2.Grant(patient, w.KGC2.Params(), g.RequesterID, g.Category); err != nil {
		t.Fatal(err)
	}
	after, err := svc2.ReadCategory(g.PatientID, g.Category, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("disclosed %d records after restart, want %d", len(after), len(before))
	}
	for i := range after {
		if !bytes.Equal(after[i], before[i]) {
			t.Fatalf("record %d plaintext changed across restart", i)
		}
	}
}
