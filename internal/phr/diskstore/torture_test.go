package diskstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"typepre/internal/phr"
)

// frameStarts parses a segment file and returns the byte offset where each
// frame begins, independently of the store's own replay code.
func frameStarts(t *testing.T, path string) []int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var starts []int64
	off := int64(0)
	for off < int64(len(data)) {
		starts = append(starts, off)
		n := int64(binary.BigEndian.Uint32(data[off:]))
		off += frameHeaderLen + n
	}
	if off != int64(len(data)) {
		t.Fatalf("segment %s does not end on a frame boundary", path)
	}
	return starts
}

// TestTornTailRecovery is the crash-recovery torture test: a segment is
// truncated at EVERY byte offset inside its final frame — simulating a
// torn write at each possible point — and the store must reopen with
// exactly the records whose frames survived intact, every body readable,
// and the log writable again.
func TestTornTailRecovery(t *testing.T) {
	const n = 8
	master := t.TempDir()
	s, err := Open(master, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*phr.EncryptedRecord, n)
	for i := range want {
		want[i] = testRecord(fmt.Sprintf("rec/%d", i), "alice", phr.CategoryEmergency, 96+i)
		if err := s.Put(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	seg := filepath.Join(master, segName(1))
	pristine, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	starts := frameStarts(t, seg)
	if len(starts) != n {
		t.Fatalf("expected %d frames, found %d", n, len(starts))
	}
	lastStart := starts[n-1]

	for cut := lastStart; cut < int64(len(pristine)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), pristine[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rs, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: reopen failed: %v", cut, err)
		}
		if got := rs.Count(); got != n-1 {
			t.Fatalf("cut=%d: recovered %d records, want exact prefix %d", cut, got, n-1)
		}
		if tb := rs.Recovery().TruncatedBytes; tb != cut-lastStart {
			t.Fatalf("cut=%d: TruncatedBytes=%d, want %d", cut, tb, cut-lastStart)
		}
		for i := 0; i < n-1; i++ {
			rec, err := rs.Get(want[i].ID)
			if err != nil {
				t.Fatalf("cut=%d: record %d unreadable: %v", cut, i, err)
			}
			if len(rec.Sealed.Payload) != 96+i {
				t.Fatalf("cut=%d: record %d payload=%d bytes, want %d", cut, i, len(rec.Sealed.Payload), 96+i)
			}
		}
		if _, err := rs.Get(want[n-1].ID); !errors.Is(err, phr.ErrNotFound) {
			t.Fatalf("cut=%d: torn record visible: %v", cut, err)
		}
		// The truncated tail is reclaimed: the log accepts the record again
		// and a further reopen sees it.
		if err := rs.Put(want[n-1]); err != nil {
			t.Fatalf("cut=%d: rewrite after recovery: %v", cut, err)
		}
		if err := rs.Close(); err != nil {
			t.Fatal(err)
		}
		rs2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: second reopen: %v", cut, err)
		}
		if rs2.Count() != n {
			t.Fatalf("cut=%d: second reopen lost the rewrite: %d records", cut, rs2.Count())
		}
		rs2.Close()
	}
}

// TestTornTailBitFlips complements truncation with corruption: flipping any
// byte of the final frame must not surface a bogus record — the tail is
// dropped (CRC or length check) and the prefix survives.
func TestTornTailBitFlips(t *testing.T) {
	const n = 5
	master := t.TempDir()
	s, err := Open(master, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := s.Put(testRecord(fmt.Sprintf("rec/%d", i), "alice", phr.CategoryEmergency, 80)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(master, segName(1))
	pristine, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	starts := frameStarts(t, seg)
	lastStart := starts[n-1]

	for pos := lastStart; pos < int64(len(pristine)); pos++ {
		dir := t.TempDir()
		mutated := append([]byte(nil), pristine...)
		mutated[pos] ^= 0x01
		if err := os.WriteFile(filepath.Join(dir, segName(1)), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		rs, err := Open(dir, Options{})
		if err != nil {
			// A flip in the length word can make the frame claim an absurd
			// size; that is still a recoverable torn tail, never ErrCorrupt.
			t.Fatalf("pos=%d: reopen failed: %v", pos, err)
		}
		if got := rs.Count(); got != n-1 {
			t.Fatalf("pos=%d: recovered %d records, want %d", pos, got, n-1)
		}
		rs.Close()
	}
}
