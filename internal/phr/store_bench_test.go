package phr

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// benchPopulate fills a memBackend with one patient holding n sealed
// records, reusing a single sealed container (the store treats it as
// opaque bytes, so one real ciphertext is representative).
func benchPopulate(b *testing.B, n int) *memBackend {
	b.Helper()
	w, err := GenerateWorkload(WorkloadConfig{
		Seed: 1, Patients: 1, Requesters: 1,
		Categories:        []Category{CategoryEmergency},
		RecordsPerPatient: 1, BodySize: 256, GrantsPerPatient: 0,
	})
	if err != nil {
		b.Fatal(err)
	}
	sealed := w.Records[0].Sealed
	s := newMemBackend()
	for i := 0; i < n; i++ {
		rec := &EncryptedRecord{
			ID:        fmt.Sprintf("bench/%06d", i),
			PatientID: "patient-000@phr.example",
			Category:  CategoryEmergency,
			CreatedAt: time.Unix(0, int64(i)),
			Sealed:    sealed,
		}
		if err := s.Put(rec); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// listLegacy is the pre-refactor read path: records are deep-cloned while
// the read lock is held, so every concurrent reader serializes behind
// clone work and writers stall behind all of it.
func (s *memBackend) listLegacy(patientID string) []*EncryptedRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*EncryptedRecord, 0, len(s.byPatient[patientID]))
	for _, id := range s.byPatient[patientID] {
		if r, ok := s.byID[id]; ok {
			out = append(out, r.Clone())
		}
	}
	return out
}

// BenchmarkListByPatient512 measures the bulk-disclosure read path at the
// 512-record patient size used by the service benchmarks, comparing the
// legacy clone-under-lock path against the current one (pointer snapshot
// under RLock, clone outside). The interesting axis is parallelism: the
// clone work no longer serializes readers against each other or writers.
func BenchmarkListByPatient512(b *testing.B) {
	const records = 512
	for _, bc := range []struct {
		name string
		list func(s *memBackend) int
	}{
		{"legacy-clone-under-lock", func(s *memBackend) int {
			return len(s.listLegacy("patient-000@phr.example"))
		}},
		{"clone-outside-lock", func(s *memBackend) int {
			recs, err := s.ListByPatient("patient-000@phr.example")
			if err != nil {
				return -1
			}
			return len(recs)
		}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			s := benchPopulate(b, records)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if got := bc.list(s); got != records {
						b.Fatalf("listed %d records, want %d", got, records)
					}
				}
			})
		})
	}
}

// BenchmarkPutDuringBulkReads512 measures what the lock-hold fix actually
// buys: writer latency while readers bulk-list a 512-record patient. The
// legacy path holds the RLock for the whole clone (~100µs), so a writer's
// Lock waits for every in-flight clone to drain — and, because RWMutex
// blocks new readers once a writer waits, each slow reader also convoys
// everyone else. The current path holds the RLock only for the pointer
// snapshot, so writers slip in between clones.
func BenchmarkPutDuringBulkReads512(b *testing.B) {
	const records = 512
	for _, bc := range []struct {
		name string
		list func(s *memBackend) int
	}{
		{"legacy-clone-under-lock", func(s *memBackend) int {
			return len(s.listLegacy("patient-000@phr.example"))
		}},
		{"clone-outside-lock", func(s *memBackend) int {
			recs, _ := s.ListByPatient("patient-000@phr.example")
			return len(recs)
		}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			s := benchPopulate(b, records)
			sealed := mustGet(b, s, "bench/000000").Sealed
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if got := bc.list(s); got != records {
							return
						}
					}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := &EncryptedRecord{
					ID:        fmt.Sprintf("writer/%d", i),
					PatientID: "patient-writer@phr.example",
					Category:  CategoryEmergency,
					Sealed:    sealed,
				}
				if err := s.Put(rec); err != nil {
					b.Fatal(err)
				}
				if err := s.Delete(rec.ID); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}

func mustGet(b *testing.B, s *memBackend, id string) *EncryptedRecord {
	b.Helper()
	rec, err := s.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	return rec
}
