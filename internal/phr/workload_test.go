package phr

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

// TestGenerateWorkloadFromDeterministic pins the reproducible-corpus mode:
// two generations from the same seed are byte-identical — same record IDs,
// same plaintext bodies, same *sealed* bytes (nonces and KEM scalars drawn
// from the seeded source), and same installed grants down to the marshaled
// rekeys.
func TestGenerateWorkloadFromDeterministic(t *testing.T) {
	cfg := DefaultWorkload()
	cfg.Patients = 2
	cfg.RecordsPerPatient = 3
	cfg.GrantsPerPatient = 2
	cfg.InsecureDeterministic = true

	gen := func() *Workload {
		t.Helper()
		w, err := GenerateWorkloadFrom(cfg, rand.NewSource(42))
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	a, b := gen(), gen()

	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		ra, rb := a.Records[i], b.Records[i]
		if ra.ID != rb.ID || ra.PatientID != rb.PatientID || ra.Category != rb.Category {
			t.Fatalf("record %d metadata differs: %+v vs %+v", i, ra, rb)
		}
		if !bytes.Equal(a.Bodies[ra.ID], b.Bodies[rb.ID]) {
			t.Fatalf("record %d plaintext differs", i)
		}
		if !bytes.Equal(ra.Sealed.Marshal(), rb.Sealed.Marshal()) {
			t.Fatalf("record %d sealed bytes differ: corpus is not byte-identical", i)
		}
	}

	if len(a.Grants) != len(b.Grants) {
		t.Fatalf("grant counts differ: %d vs %d", len(a.Grants), len(b.Grants))
	}
	for i := range a.Grants {
		if a.Grants[i] != b.Grants[i] {
			t.Fatalf("grant %d differs: %+v vs %+v", i, a.Grants[i], b.Grants[i])
		}
	}
	// The installed rekeys themselves must match bit for bit.
	ga, gb := marshaledGrants(a), marshaledGrants(b)
	if len(ga) != len(gb) {
		t.Fatalf("installed rekey counts differ: %d vs %d", len(ga), len(gb))
	}
	for i := range ga {
		if !bytes.Equal(ga[i], gb[i]) {
			t.Fatalf("installed rekey %d differs between runs", i)
		}
	}
}

// TestGenerateWorkloadSeedsDiverge is the control: different seeds give
// different corpora even in deterministic mode.
func TestGenerateWorkloadSeedsDiverge(t *testing.T) {
	cfg := DefaultWorkload()
	cfg.Patients = 1
	cfg.RecordsPerPatient = 1
	cfg.GrantsPerPatient = 0
	cfg.InsecureDeterministic = true

	a, err := GenerateWorkloadFrom(cfg, rand.NewSource(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateWorkloadFrom(cfg, rand.NewSource(2))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Records[0].Sealed.Marshal(), b.Records[0].Sealed.Marshal()) {
		t.Fatal("different seeds produced identical sealed records")
	}
}

// TestGenerateWorkloadStructureOnlyDeterminism pins the long-standing
// default: without InsecureDeterministic the *structure* (IDs, bodies,
// grant triples) is seed-determined while the cryptography stays
// randomized.
func TestGenerateWorkloadStructureOnlyDeterminism(t *testing.T) {
	cfg := DefaultWorkload()
	cfg.Patients = 1
	cfg.RecordsPerPatient = 2
	cfg.GrantsPerPatient = 1

	a, err := GenerateWorkloadFrom(cfg, rand.NewSource(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateWorkloadFrom(cfg, rand.NewSource(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		if a.Records[i].ID != b.Records[i].ID {
			t.Fatalf("record %d IDs differ", i)
		}
		if !bytes.Equal(a.Bodies[a.Records[i].ID], b.Bodies[b.Records[i].ID]) {
			t.Fatalf("record %d bodies differ", i)
		}
		if bytes.Equal(a.Records[i].Sealed.Marshal(), b.Records[i].Sealed.Marshal()) {
			t.Fatalf("record %d sealed bytes identical without InsecureDeterministic", i)
		}
	}
}

// marshaledGrants collects every installed rekey across the service's
// proxies, marshaled and sorted for stable comparison.
func marshaledGrants(w *Workload) [][]byte {
	var out [][]byte
	for _, p := range w.Service.Proxies() {
		for _, rk := range p.CompromisedGrants() {
			out = append(out, rk.Marshal())
		}
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i], out[j]) < 0 })
	return out
}
