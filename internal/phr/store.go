package phr

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Store errors.
var (
	ErrNotFound  = errors.New("phr: record not found")
	ErrDuplicate = errors.New("phr: duplicate record id")
)

// patientCategory is the composite secondary-index key.
type patientCategory struct {
	patient  string
	category Category
}

// memBackend is the in-memory Backend: a primary index by record ID and
// secondary indexes by patient and by (patient, category), all behind one
// RWMutex. It stands in for the semi-trusted database of §5: it sees only
// sealed bodies and routing metadata. All methods are safe for concurrent
// use.
//
// Stored records are never mutated after insertion (Put/Replace store
// private clones), so the read paths can copy the record pointers under
// the RLock and clone outside it — the lock is held for O(ids), not
// O(bytes cloned).
type memBackend struct {
	mu        sync.RWMutex
	closed    bool                         // phrlint:guardedby mu
	byID      map[string]*EncryptedRecord  // phrlint:guardedby mu
	byPatient map[string][]string          // phrlint:guardedby mu — patient → record IDs, insertion order
	byPatCat  map[patientCategory][]string // phrlint:guardedby mu
}

// NewStore returns an empty in-memory backend — the default storage layer
// for tests, examples and single-run tools. For a store that survives
// restarts use internal/phr/diskstore.
func NewStore() Backend { return newMemBackend() }

func newMemBackend() *memBackend {
	return &memBackend{
		byID:      map[string]*EncryptedRecord{},
		byPatient: map[string][]string{},
		byPatCat:  map[patientCategory][]string{},
	}
}

// Put inserts a record. It fails with ErrDuplicate if the ID exists.
func (s *memBackend) Put(r *EncryptedRecord) error {
	if r == nil || r.ID == "" {
		return fmt.Errorf("phr: invalid record")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("%w: store closed", ErrStorage)
	}
	if _, ok := s.byID[r.ID]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicate, r.ID)
	}
	cp := r.Clone()
	s.byID[cp.ID] = cp
	s.byPatient[cp.PatientID] = append(s.byPatient[cp.PatientID], cp.ID)
	key := patientCategory{cp.PatientID, cp.Category}
	s.byPatCat[key] = append(s.byPatCat[key], cp.ID)
	return nil
}

// Replace swaps the sealed body of an existing record in place — the
// store-side primitive of key rotation. The record must exist and keep its
// routing metadata (patient and category): rotation changes what seals a
// record, never where it lives in the indexes.
func (s *memBackend) Replace(r *EncryptedRecord) error {
	if r == nil || r.ID == "" {
		return fmt.Errorf("phr: invalid record")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("%w: store closed", ErrStorage)
	}
	cur, ok := s.byID[r.ID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, r.ID)
	}
	if cur.PatientID != r.PatientID || cur.Category != r.Category {
		return fmt.Errorf("phr: replace of %s cannot change routing metadata", r.ID)
	}
	s.byID[r.ID] = r.Clone()
	return nil
}

// Get fetches a record by ID.
func (s *memBackend) Get(id string) (*EncryptedRecord, error) {
	s.mu.RLock()
	r, ok := s.byID[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return r.Clone(), nil
}

// Delete removes a record by ID.
func (s *memBackend) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("%w: store closed", ErrStorage)
	}
	r, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	delete(s.byID, id)
	// Drop emptied index keys outright: under record churn, keeping
	// empty-slice entries leaks one map key per (patient) and
	// (patient, category) ever seen.
	if rest := removeString(s.byPatient[r.PatientID], id); len(rest) > 0 {
		s.byPatient[r.PatientID] = rest
	} else {
		delete(s.byPatient, r.PatientID)
	}
	key := patientCategory{r.PatientID, r.Category}
	if rest := removeString(s.byPatCat[key], id); len(rest) > 0 {
		s.byPatCat[key] = rest
	} else {
		delete(s.byPatCat, key)
	}
	return nil
}

// Close marks the backend closed; further writes fail with ErrStorage.
// There is nothing to flush — the memory backend is not durable.
func (s *memBackend) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// indexSizes reports the number of live secondary-index keys; a test hook
// for the churn-leak regression.
func (s *memBackend) indexSizes() (patients, patientCategories int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byPatient), len(s.byPatCat)
}

func removeString(xs []string, x string) []string {
	for i, v := range xs {
		if v == x {
			return append(xs[:i], xs[i+1:]...)
		}
	}
	return xs
}

// collect copies the record pointers for a list of IDs under the RLock.
// The returned pointers are the stored records themselves — immutable by
// the backend's invariant — so the caller clones them lock-free.
//
// phrlint:locked mu — the caller holds (at least) the read lock.
func (s *memBackend) collect(ids []string) []*EncryptedRecord {
	out := make([]*EncryptedRecord, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.byID[id])
	}
	return out
}

// cloneAll turns the pointer snapshot into private copies outside any
// lock: the O(records) cloning work no longer blocks writers.
func cloneAll(recs []*EncryptedRecord) []*EncryptedRecord {
	for i, r := range recs {
		recs[i] = r.Clone()
	}
	return recs
}

// ListByPatient returns all records of a patient in insertion order.
func (s *memBackend) ListByPatient(patientID string) ([]*EncryptedRecord, error) {
	s.mu.RLock()
	recs := s.collect(s.byPatient[patientID])
	s.mu.RUnlock()
	return cloneAll(recs), nil
}

// ListByPatientCategory returns a patient's records of one category in
// insertion order — the secondary-index read path proxies use.
func (s *memBackend) ListByPatientCategory(patientID string, c Category) ([]*EncryptedRecord, error) {
	s.mu.RLock()
	recs := s.collect(s.byPatCat[patientCategory{patientID, c}])
	s.mu.RUnlock()
	return cloneAll(recs), nil
}

// Count returns the total number of records.
func (s *memBackend) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byID)
}

// CountByPatient returns the number of records of one patient.
func (s *memBackend) CountByPatient(patientID string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byPatient[patientID])
}

// Patients returns the sorted list of patient IDs with at least one record.
func (s *memBackend) Patients() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.byPatient))
	for p, ids := range s.byPatient {
		if len(ids) > 0 {
			out = append(out, p)
		}
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Categories returns the sorted distinct categories stored for a patient.
func (s *memBackend) Categories(patientID string) []Category {
	s.mu.RLock()
	seen := map[Category]bool{}
	for key, ids := range s.byPatCat {
		if key.patient == patientID && len(ids) > 0 {
			seen[key.category] = true
		}
	}
	s.mu.RUnlock()
	out := make([]Category, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
