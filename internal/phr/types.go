// Package phr implements the fine-grained Personal Health Record
// disclosure service of the paper's Section 5 on top of the
// type-and-identity PRE scheme: patients categorize their records by
// privacy level, store them encrypted, and install per-category proxy keys
// at proxies of their choosing. Corrupting the proxy for one category
// exposes at most that category (experiment E6 quantifies this).
//
// The package is a small database system: an encrypted record store with
// primary and secondary indexes, per-category proxy servers with grant
// tables, an append-only audit log, and a disclosure service that wires
// them together.
package phr

import (
	"fmt"
	"time"

	"typepre/internal/core"
	"typepre/internal/hybrid"
)

// Category is a PHR privacy category; it doubles as the PRE message type.
// The paper's §5 example uses three (t1, t2, t3); real PHRs have more.
type Category = core.Type

// The categories of the §5 scenario plus common PHR extensions.
const (
	CategoryIllnessHistory Category = "illness-history" // the paper's t1
	CategoryFoodStatistics Category = "food-statistics" // the paper's t2
	CategoryEmergency      Category = "emergency"       // the paper's t3
	CategoryMedication     Category = "medication"
	CategoryLabResults     Category = "lab-results"
	CategoryVaccination    Category = "vaccination"
)

// StandardCategories lists the built-in categories in a stable order.
func StandardCategories() []Category {
	return []Category{
		CategoryIllnessHistory,
		CategoryFoodStatistics,
		CategoryEmergency,
		CategoryMedication,
		CategoryLabResults,
		CategoryVaccination,
	}
}

// BaseCategory maps a sealed wire type back to its logical category by
// stripping any rotation-epoch suffix: records, grants and audit entries
// are always keyed by the logical category, whatever epoch the underlying
// cryptography is at.
func BaseCategory(t core.Type) Category {
	return Category(core.BaseType(t))
}

// Record is a plaintext PHR entry as the patient sees it.
type Record struct {
	ID        string
	PatientID string
	Category  Category
	CreatedAt time.Time
	Body      []byte
}

// EncryptedRecord is the at-rest form: metadata in clear (needed for
// indexing and routing), body sealed with the hybrid PRE scheme.
type EncryptedRecord struct {
	ID        string
	PatientID string
	Category  Category
	CreatedAt time.Time
	Sealed    *hybrid.Ciphertext
}

// Clone returns a shallow copy safe for concurrent reads (the sealed
// ciphertext is immutable by convention).
func (r *EncryptedRecord) Clone() *EncryptedRecord {
	cp := *r
	return &cp
}

// recordIDCounter helps tests and the workload generator mint unique IDs.
func recordID(patientID string, n int) string {
	return fmt.Sprintf("%s/rec-%06d", patientID, n)
}
