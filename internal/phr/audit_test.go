package phr

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// Audit-log invariants: strict per-proxy ordering, a denial entry on every
// error path, and view consistency under concurrent appends (run with
// -race in CI).

// assertStrictlyOrdered checks Seq is strictly increasing and Time is
// non-decreasing over a proxy's entries.
func assertStrictlyOrdered(t *testing.T, entries []AuditEntry) {
	t.Helper()
	for i := 1; i < len(entries); i++ {
		if entries[i].Seq <= entries[i-1].Seq {
			t.Fatalf("entry %d: Seq %d not after %d", i, entries[i].Seq, entries[i-1].Seq)
		}
		if entries[i].Time.Before(entries[i-1].Time) {
			t.Fatalf("entry %d: Time went backwards", i)
		}
	}
}

func TestAuditSeqStrictlyOrderedUnderConcurrentAppends(t *testing.T) {
	log := NewAuditLog()
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				log.Append(AuditEntry{
					Proxy:     "p",
					Requester: fmt.Sprintf("req-%d", w%3),
					Outcome:   []Outcome{OutcomeGranted, OutcomeNoGrant, OutcomeBreakGlass}[i%3],
				})
			}
		}(w)
	}
	wg.Wait()
	entries := log.Entries()
	if len(entries) != writers*perWriter {
		t.Fatalf("entries = %d, want %d", len(entries), writers*perWriter)
	}
	assertStrictlyOrdered(t, entries)
	if entries[0].Seq != 1 || entries[len(entries)-1].Seq != uint64(len(entries)) {
		t.Fatalf("Seq range [%d, %d], want [1, %d]",
			entries[0].Seq, entries[len(entries)-1].Seq, len(entries))
	}
}

func TestAuditDenialOnEveryErrorPath(t *testing.T) {
	s := newScenario(t)
	rec, err := s.alice.AddRecord(s.svc.Store, CategoryEmergency, []byte("x"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.svc.Grant(s.alice, s.kgc2.Params(), s.bobKey.ID, CategoryEmergency); err != nil {
		t.Fatal(err)
	}
	proxy, _ := s.svc.ProxyFor(CategoryEmergency)

	// Each error path must append exactly one denial with its own outcome.
	steps := []struct {
		name    string
		act     func() error
		outcome Outcome
	}{
		{"unknown requester", func() error {
			_, err := s.svc.Read(rec.ID, s.eveKey)
			return err
		}, OutcomeNoGrant},
		{"unknown record", func() error {
			_, err := proxy.Disclose(s.svc.Store, "no-such-record", s.bobKey.ID)
			return err
		}, OutcomeNotFound},
		{"rotated-away key", func() error {
			if _, err := s.alice.RotateTypeKey(s.svc.Store, CategoryEmergency, nil); err != nil {
				return fmt.Errorf("rotate: %w", err)
			}
			_, err := s.svc.Read(rec.ID, s.bobKey)
			if !errors.Is(err, ErrStaleGrant) {
				return fmt.Errorf("want ErrStaleGrant, got %v", err)
			}
			return err
		}, OutcomeStaleGrant},
		{"revoked", func() error {
			if err := s.alice.Revoke(proxy, s.bobKey.ID, CategoryEmergency); err != nil {
				return fmt.Errorf("revoke: %w", err)
			}
			_, err := s.svc.Read(rec.ID, s.bobKey)
			return err
		}, OutcomeNoGrant},
	}
	for _, step := range steps {
		before := len(proxy.Audit().Denials())
		if err := step.act(); err == nil {
			t.Fatalf("%s: expected an error", step.name)
		}
		denials := proxy.Audit().Denials()
		if len(denials) != before+1 {
			t.Fatalf("%s: denials %d → %d, want exactly one new entry", step.name, before, len(denials))
		}
		if got := denials[len(denials)-1].Outcome; got != step.outcome {
			t.Fatalf("%s: denial outcome = %s, want %s", step.name, got, step.outcome)
		}
	}
	assertStrictlyOrdered(t, proxy.Audit().Entries())
}

func TestAuditViewsConsistentUnderConcurrency(t *testing.T) {
	// ByRequester and Denials must be consistent snapshots while writers
	// append: no torn reads, and the final views partition the log.
	log := NewAuditLog()
	requesters := []string{"a", "b", "c"}
	outcomes := []Outcome{OutcomeGranted, OutcomeNoGrant, OutcomeBreakGlass, OutcomeStaleGrant}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					for _, req := range requesters {
						log.ByRequester(req)
					}
					log.Denials()
					log.Entries()
				}
			}
		}()
	}
	const writers, perWriter = 6, 40
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				log.Append(AuditEntry{
					Requester: requesters[(w+i)%len(requesters)],
					Outcome:   outcomes[i%len(outcomes)],
				})
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	total := writers * perWriter
	if log.Len() != total {
		t.Fatalf("Len = %d, want %d", log.Len(), total)
	}
	// The per-requester views partition the log and preserve order.
	sum := 0
	for _, req := range requesters {
		view := log.ByRequester(req)
		sum += len(view)
		assertStrictlyOrdered(t, view)
	}
	if sum != total {
		t.Fatalf("ByRequester views cover %d entries, want %d", sum, total)
	}
	// Denials + successful disclosures account for every entry.
	granted := len(log.ByOutcome(OutcomeGranted)) + len(log.ByOutcome(OutcomeBreakGlass))
	if got := len(log.Denials()) + granted; got != total {
		t.Fatalf("denials+successes = %d, want %d", got, total)
	}
}
