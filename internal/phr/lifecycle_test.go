package phr

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"typepre/internal/core"
	"typepre/internal/hybrid"
)

// Lifecycle regression tests: revocation vs the prepared-grant cache,
// category key rotation, and break-glass. The scenario package runs the
// same stories end to end as multi-step drills; these pin the individual
// mechanisms at unit granularity.

func TestRevokedGrantNotServedFromPreparedCache(t *testing.T) {
	s := newScenario(t)
	rec, err := s.alice.AddRecord(s.svc.Store, CategoryEmergency, []byte("bt O−"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.svc.Grant(s.alice, s.kgc2.Params(), s.bobKey.ID, CategoryEmergency); err != nil {
		t.Fatal(err)
	}
	proxy, _ := s.svc.ProxyFor(CategoryEmergency)
	// Warm the prepared grant's pairing cache on every path.
	if _, err := s.svc.Read(rec.ID, s.bobKey); err != nil {
		t.Fatal(err)
	}
	if _, err := proxy.DiscloseCategoryParallel(s.svc.Store, s.alice.ID(), CategoryEmergency, s.bobKey.ID); err != nil {
		t.Fatal(err)
	}

	if err := s.alice.Revoke(proxy, s.bobKey.ID, CategoryEmergency); err != nil {
		t.Fatal(err)
	}
	// The warm cache must be unreachable on every disclosure path.
	if _, err := s.svc.Read(rec.ID, s.bobKey); !errors.Is(err, ErrNoGrant) {
		t.Fatalf("serial path after revoke: want ErrNoGrant, got %v", err)
	}
	if _, err := proxy.DiscloseCategory(s.svc.Store, s.alice.ID(), CategoryEmergency, s.bobKey.ID); !errors.Is(err, ErrNoGrant) {
		t.Fatalf("bulk path after revoke: want ErrNoGrant, got %v", err)
	}
	if _, err := proxy.DiscloseCategoryParallel(s.svc.Store, s.alice.ID(), CategoryEmergency, s.bobKey.ID); !errors.Is(err, ErrNoGrant) {
		t.Fatalf("parallel path after revoke: want ErrNoGrant, got %v", err)
	}
	yields := 0
	err = proxy.DiscloseCategoryStream(s.svc.Store, s.alice.ID(), CategoryEmergency, s.bobKey.ID,
		func(*hybrid.ReCiphertext) error { yields++; return nil })
	if !errors.Is(err, ErrNoGrant) || yields != 0 {
		t.Fatalf("stream path after revoke: err=%v yields=%d", err, yields)
	}
}

func TestRevokeKillsInFlightStream(t *testing.T) {
	const records = 4
	s := newScenario(t)
	for i := 0; i < records; i++ {
		if _, err := s.alice.AddRecord(s.svc.Store, CategoryEmergency, []byte(fmt.Sprintf("r%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.svc.Grant(s.alice, s.kgc2.Params(), s.bobKey.ID, CategoryEmergency); err != nil {
		t.Fatal(err)
	}
	proxy, _ := s.svc.ProxyFor(CategoryEmergency)

	yields := 0
	err := proxy.DiscloseCategoryStream(s.svc.Store, s.alice.ID(), CategoryEmergency, s.bobKey.ID,
		func(*hybrid.ReCiphertext) error {
			yields++
			if yields == 1 {
				// The patient revokes while the stream is mid-flight.
				if err := s.alice.Revoke(proxy, s.bobKey.ID, CategoryEmergency); err != nil {
					t.Errorf("mid-stream revoke: %v", err)
				}
			}
			return nil
		})
	if !errors.Is(err, ErrNoGrant) {
		t.Fatalf("in-flight stream survived revocation: err=%v", err)
	}
	if yields != 1 {
		t.Fatalf("stream released %d records after revocation, want 1", yields)
	}
	// Audit: exactly one granted entry (the delivered record) and one
	// denial for the terminated stream.
	log := proxy.Audit()
	if got := len(log.ByOutcome(OutcomeGranted)); got != 1 {
		t.Fatalf("granted audit entries = %d, want 1", got)
	}
	denials := log.Denials()
	if len(denials) != 1 || denials[0].Outcome != OutcomeNoGrant {
		t.Fatalf("denials = %+v, want one no-grant entry", denials)
	}
}

func TestReinstallMidStreamAlsoKillsOldStream(t *testing.T) {
	// Re-keying (revoke + fresh grant) mid-stream must not let the old
	// stream keep serving from its snapshot of the retired grant.
	s := newScenario(t)
	for i := 0; i < 3; i++ {
		if _, err := s.alice.AddRecord(s.svc.Store, CategoryEmergency, []byte{byte(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.svc.Grant(s.alice, s.kgc2.Params(), s.bobKey.ID, CategoryEmergency); err != nil {
		t.Fatal(err)
	}
	proxy, _ := s.svc.ProxyFor(CategoryEmergency)
	yields := 0
	err := proxy.DiscloseCategoryStream(s.svc.Store, s.alice.ID(), CategoryEmergency, s.bobKey.ID,
		func(*hybrid.ReCiphertext) error {
			yields++
			if yields == 1 {
				if err := s.svc.Grant(s.alice, s.kgc2.Params(), s.bobKey.ID, CategoryEmergency); err != nil {
					t.Errorf("mid-stream re-grant: %v", err)
				}
			}
			return nil
		})
	if !errors.Is(err, ErrNoGrant) || yields != 1 {
		t.Fatalf("old stream survived re-keying: err=%v yields=%d", err, yields)
	}
	// The fresh grant serves normally.
	if _, err := proxy.DiscloseCategoryParallel(s.svc.Store, s.alice.ID(), CategoryEmergency, s.bobKey.ID); err != nil {
		t.Fatal(err)
	}
}

func TestRotateTypeKeyLifecycle(t *testing.T) {
	s := newScenario(t)
	want := [][]byte{[]byte("metformin 500mg"), []byte("lisinopril 10mg"), []byte("atorvastatin 20mg")}
	var ids []string
	for _, b := range want {
		rec, err := s.alice.AddRecord(s.svc.Store, CategoryMedication, b, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}
	if err := s.svc.Grant(s.alice, s.kgc2.Params(), s.bobKey.ID, CategoryMedication); err != nil {
		t.Fatal(err)
	}
	if _, err := s.svc.ReadCategory(s.alice.ID(), CategoryMedication, s.bobKey); err != nil {
		t.Fatal(err)
	}

	n, err := s.alice.RotateTypeKey(s.svc.Store, CategoryMedication, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("rotated %d records, want %d", n, len(want))
	}
	if got := s.alice.Epoch(CategoryMedication); got != 1 {
		t.Fatalf("epoch = %d, want 1", got)
	}
	// Every stored record is re-sealed under the epoch-1 wire type, still
	// indexed under the logical category.
	wantType := core.VersionedType(core.Type(CategoryMedication), 1)
	recs := mustList(t, s.svc.Store, s.alice.ID(), CategoryMedication)
	if len(recs) != len(want) {
		t.Fatalf("store lists %d records after rotation, want %d", len(recs), len(want))
	}
	for _, rec := range recs {
		if rec.Sealed.KEM.Type != wantType {
			t.Fatalf("record %s sealed as %q, want %q", rec.ID, rec.Sealed.KEM.Type, wantType)
		}
	}
	// The pre-rotation grant is dead on both paths, audited as stale.
	proxy, _ := s.svc.ProxyFor(CategoryMedication)
	if _, err := s.svc.Read(ids[0], s.bobKey); !errors.Is(err, ErrStaleGrant) {
		t.Fatalf("serial path on stale grant: want ErrStaleGrant, got %v", err)
	}
	if _, err := proxy.DiscloseCategoryParallel(s.svc.Store, s.alice.ID(), CategoryMedication, s.bobKey.ID); !errors.Is(err, ErrStaleGrant) {
		t.Fatalf("bulk path on stale grant: want ErrStaleGrant, got %v", err)
	}
	if got := len(proxy.Audit().ByOutcome(OutcomeStaleGrant)); got != 2 {
		t.Fatalf("stale-grant audit entries = %d, want 2", got)
	}
	// The owner still reads everything.
	for i, id := range ids {
		got, err := s.alice.ReadOwn(s.svc.Store, id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("owner read of %s mismatch after rotation", id)
		}
	}
	// A fresh grant replaces the stale one and discloses the same
	// plaintexts.
	if err := s.svc.Grant(s.alice, s.kgc2.Params(), s.bobKey.ID, CategoryMedication); err != nil {
		t.Fatal(err)
	}
	if got := proxy.GrantCount(); got != 1 {
		t.Fatalf("grant count after re-grant = %d, want 1 (stale grant replaced)", got)
	}
	bodies, err := s.svc.ReadCategory(s.alice.ID(), CategoryMedication, s.bobKey)
	if err != nil {
		t.Fatal(err)
	}
	if len(bodies) != len(want) {
		t.Fatalf("post-rotation disclosure returned %d records, want %d", len(bodies), len(want))
	}
	for i := range want {
		if !bytes.Equal(bodies[i], want[i]) {
			t.Fatalf("post-rotation record %d mismatch", i)
		}
	}
}

func TestBreakGlassLifecycle(t *testing.T) {
	s := newScenario(t)
	emergency := [][]byte{[]byte("blood type O−"), []byte("allergy: penicillin")}
	for _, b := range emergency {
		if _, err := s.alice.AddRecord(s.svc.Store, CategoryEmergency, b, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.alice.AddRecord(s.svc.Store, CategoryMedication, []byte("private"), nil); err != nil {
		t.Fatal(err)
	}
	// The responder holds a standing emergency grant — break-glass cannot
	// conjure access that was never delegated.
	if err := s.svc.Grant(s.alice, s.kgc2.Params(), s.bobKey.ID, CategoryEmergency); err != nil {
		t.Fatal(err)
	}

	// A reason is mandatory, and its absence leaks nothing.
	if _, err := s.svc.BreakGlass(s.alice.ID(), s.bobKey.ID, ""); !errors.Is(err, ErrBreakGlassReason) {
		t.Fatalf("break-glass without reason: want ErrBreakGlassReason, got %v", err)
	}
	proxy, _ := s.svc.ProxyFor(CategoryEmergency)
	if proxy.Audit().Len() != 0 {
		t.Fatal("reason-less break-glass attempt produced audit traffic")
	}

	const reason = "cardiac arrest, ER admission #4711"
	rcts, err := s.svc.BreakGlass(s.alice.ID(), s.bobKey.ID, reason)
	if err != nil {
		t.Fatal(err)
	}
	if len(rcts) != len(emergency) {
		t.Fatalf("break-glass disclosed %d records, want %d", len(rcts), len(emergency))
	}
	for i, rct := range rcts {
		got, err := hybrid.DecryptReEncrypted(s.bobKey, rct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, emergency[i]) {
			t.Fatalf("break-glass record %d mismatch", i)
		}
	}
	// Every released record carries the distinguishable outcome and the
	// reason; none counts as a denial.
	entries := proxy.Audit().ByOutcome(OutcomeBreakGlass)
	if len(entries) != len(emergency) {
		t.Fatalf("break-glass audit entries = %d, want %d", len(entries), len(emergency))
	}
	for _, e := range entries {
		if e.Note != reason {
			t.Fatalf("break-glass entry lost its reason: %+v", e)
		}
	}
	if len(proxy.Audit().Denials()) != 0 {
		t.Fatal("break-glass access counted as a denial")
	}
	// Break-glass is emergency-only: the responder still cannot touch
	// other categories, and an unauthorized requester is denied with the
	// reason on record.
	if _, err := s.svc.ReadCategory(s.alice.ID(), CategoryMedication, s.bobKey); !errors.Is(err, ErrNoGrant) {
		t.Fatalf("break-glass responder read a non-emergency category: %v", err)
	}
	if _, err := s.svc.BreakGlass(s.alice.ID(), s.eveKey.ID, reason); !errors.Is(err, ErrNoGrant) {
		t.Fatalf("unauthorized break-glass: want ErrNoGrant, got %v", err)
	}
	denials := proxy.Audit().Denials()
	if len(denials) != 1 || denials[0].Outcome != OutcomeNoGrant || denials[0].Note != reason {
		t.Fatalf("unauthorized break-glass denial = %+v", denials)
	}
}
