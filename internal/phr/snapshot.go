package phr

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"typepre/internal/hybrid"
)

// Store snapshots: a length-prefixed binary container holding every
// record (metadata + sealed body). The snapshot contains only what the
// semi-trusted store already sees — ciphertexts and routing metadata — so
// persisting it needs no additional trust.

// snapshotMagic guards against feeding arbitrary files to RestoreStore.
var snapshotMagic = [8]byte{'t', 'p', 'r', 'e', 's', 'n', 'a', 'p'}

// snapshotVersion is bumped on incompatible format changes.
const snapshotVersion uint32 = 1

// ErrSnapshot is returned for malformed snapshot data.
var ErrSnapshot = errors.New("phr: invalid snapshot")

func writeChunk(w io.Writer, chunk []byte) error {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(chunk)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(chunk)
	return err
}

func readChunkFrom(r io.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > 1<<30 {
		return nil, fmt.Errorf("%w: chunk of %d bytes", ErrSnapshot, n)
	}
	chunk := make([]byte, n)
	if _, err := io.ReadFull(r, chunk); err != nil {
		return nil, err
	}
	return chunk, nil
}

// Snapshot writes every record to w in insertion-independent, ID-sorted
// order (deterministic output for identical contents).
func (s *Store) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	var verBuf [4]byte
	binary.BigEndian.PutUint32(verBuf[:], snapshotVersion)
	if _, err := bw.Write(verBuf[:]); err != nil {
		return err
	}

	// Collect all records patient by patient (Patients() is sorted, and
	// per-patient lists preserve insertion order).
	var records []*EncryptedRecord
	for _, p := range s.Patients() {
		records = append(records, s.ListByPatient(p)...)
	}
	var cntBuf [4]byte
	binary.BigEndian.PutUint32(cntBuf[:], uint32(len(records)))
	if _, err := bw.Write(cntBuf[:]); err != nil {
		return err
	}
	for _, rec := range records {
		if err := writeChunk(bw, []byte(rec.ID)); err != nil {
			return err
		}
		if err := writeChunk(bw, []byte(rec.PatientID)); err != nil {
			return err
		}
		if err := writeChunk(bw, []byte(rec.Category)); err != nil {
			return err
		}
		var tsBuf [8]byte
		binary.BigEndian.PutUint64(tsBuf[:], uint64(rec.CreatedAt.UnixNano()))
		if _, err := bw.Write(tsBuf[:]); err != nil {
			return err
		}
		if err := writeChunk(bw, rec.Sealed.Marshal()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// RestoreStore reads a snapshot produced by Snapshot into a fresh store.
func RestoreStore(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshot)
	}
	var verBuf [4]byte
	if _, err := io.ReadFull(br, verBuf[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	if v := binary.BigEndian.Uint32(verBuf[:]); v != snapshotVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrSnapshot, v)
	}
	var cntBuf [4]byte
	if _, err := io.ReadFull(br, cntBuf[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	count := binary.BigEndian.Uint32(cntBuf[:])

	store := NewStore()
	for i := uint32(0); i < count; i++ {
		id, err := readChunkFrom(br)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d id: %v", ErrSnapshot, i, err)
		}
		patient, err := readChunkFrom(br)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d patient: %v", ErrSnapshot, i, err)
		}
		category, err := readChunkFrom(br)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d category: %v", ErrSnapshot, i, err)
		}
		var tsBuf [8]byte
		if _, err := io.ReadFull(br, tsBuf[:]); err != nil {
			return nil, fmt.Errorf("%w: record %d timestamp: %v", ErrSnapshot, i, err)
		}
		sealedBytes, err := readChunkFrom(br)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d body: %v", ErrSnapshot, i, err)
		}
		sealed, err := hybrid.UnmarshalCiphertext(sealedBytes)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d ciphertext: %v", ErrSnapshot, i, err)
		}
		rec := &EncryptedRecord{
			ID:        string(id),
			PatientID: string(patient),
			Category:  Category(category),
			CreatedAt: time.Unix(0, int64(binary.BigEndian.Uint64(tsBuf[:]))),
			Sealed:    sealed,
		}
		if err := store.Put(rec); err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrSnapshot, i, err)
		}
	}
	return store, nil
}
