package phr

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Store snapshots: a length-prefixed binary container holding every
// record (metadata + sealed body) — the backup/restore path over any
// Backend. The snapshot contains only what the semi-trusted store already
// sees — ciphertexts and routing metadata — so persisting it needs no
// additional trust.
//
// Format (version 2):
//
//	magic "tpresnap" | u32 version
//	per record: u32 len | record wire form (MarshalRecord)
//	terminator:  u32 0  | u64 record count
//
// Records are framed individually and the count rides in the trailer, so
// both writer and reader stream record-by-record: neither side ever
// buffers more than one record.

// snapshotMagic guards against feeding arbitrary files to Restore.
var snapshotMagic = [8]byte{'t', 'p', 'r', 'e', 's', 'n', 'a', 'p'}

// snapshotVersion is bumped on incompatible format changes. Version 1
// (count-prefixed, field-per-chunk framing) is no longer read.
const snapshotVersion uint32 = 2

// Snapshot errors.
var (
	// ErrSnapshot is returned for malformed snapshot data.
	ErrSnapshot = errors.New("phr: invalid snapshot")
	// ErrSnapshotDuplicate marks a snapshot carrying the same record ID
	// twice — a corrupt or hand-edited container, rejected before the
	// second copy can shadow the first.
	ErrSnapshotDuplicate = errors.New("phr: snapshot contains duplicate record id")
)

// Snapshot writes every record of the backend to w, patient by patient in
// sorted patient order (insertion order within a patient): deterministic
// output for identical contents. Snapshot a quiesced backend — records
// added or deleted concurrently may or may not be included.
func Snapshot(b Backend, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], snapshotVersion)
	if _, err := bw.Write(u32[:]); err != nil {
		return err
	}
	var count uint64
	var buf []byte
	for _, p := range b.Patients() {
		recs, err := b.ListByPatient(p)
		if err != nil {
			return fmt.Errorf("phr: snapshot of %s: %w", p, err)
		}
		for _, rec := range recs {
			buf = MarshalRecord(buf[:0], rec)
			binary.BigEndian.PutUint32(u32[:], uint32(len(buf)))
			if _, err := bw.Write(u32[:]); err != nil {
				return err
			}
			if _, err := bw.Write(buf); err != nil {
				return err
			}
			count++
		}
	}
	// Terminator: a zero-length frame, then the count for validation.
	binary.BigEndian.PutUint32(u32[:], 0)
	if _, err := bw.Write(u32[:]); err != nil {
		return err
	}
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], count)
	if _, err := bw.Write(u64[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// Restore streams a snapshot produced by Snapshot into an existing
// backend, one record at a time — restoring into a disk backend never
// materializes the whole container in memory. A record ID appearing twice
// in the snapshot fails with ErrSnapshotDuplicate; an ID already present
// in the backend fails with the backend's ErrDuplicate. Either way the
// records restored before the failure remain.
func Restore(b Backend, r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("%w: %w", ErrSnapshot, err)
	}
	if magic != snapshotMagic {
		return fmt.Errorf("%w: bad magic", ErrSnapshot)
	}
	var u32 [4]byte
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return fmt.Errorf("%w: %w", ErrSnapshot, err)
	}
	if v := binary.BigEndian.Uint32(u32[:]); v != snapshotVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrSnapshot, v)
	}

	seen := map[string]bool{}
	var count uint64
	var buf []byte
	for {
		if _, err := io.ReadFull(br, u32[:]); err != nil {
			return fmt.Errorf("%w: record %d frame: %w", ErrSnapshot, count, err)
		}
		n := binary.BigEndian.Uint32(u32[:])
		if n == 0 {
			break // terminator
		}
		if n > maxRecordFieldBytes {
			return fmt.Errorf("%w: record %d frame of %d bytes", ErrSnapshot, count, n)
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("%w: record %d body: %w", ErrSnapshot, count, err)
		}
		rec, err := UnmarshalRecord(buf)
		if err != nil {
			return fmt.Errorf("%w: record %d: %w", ErrSnapshot, count, err)
		}
		if seen[rec.ID] {
			return fmt.Errorf("%w: %s", ErrSnapshotDuplicate, rec.ID)
		}
		seen[rec.ID] = true
		if err := b.Put(rec); err != nil {
			if errors.Is(err, ErrDuplicate) {
				// The backend already holds this ID — same collision class as
				// a duplicate inside the snapshot, same typed error.
				return fmt.Errorf("%w: %s", ErrSnapshotDuplicate, rec.ID)
			}
			return fmt.Errorf("phr: restore record %s: %w", rec.ID, err)
		}
		count++
	}
	var u64 [8]byte
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return fmt.Errorf("%w: trailer: %w", ErrSnapshot, err)
	}
	if want := binary.BigEndian.Uint64(u64[:]); want != count {
		return fmt.Errorf("%w: trailer count %d, restored %d", ErrSnapshot, want, count)
	}
	return nil
}

// RestoreStore reads a snapshot into a fresh in-memory backend.
func RestoreStore(r io.Reader) (Backend, error) {
	b := NewStore()
	if err := Restore(b, r); err != nil {
		return nil, err
	}
	return b, nil
}
