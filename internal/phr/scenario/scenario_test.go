package scenario

import (
	"errors"
	"strings"
	"testing"
)

// TestDrills runs every shipped drill as an ordinary test case, so the
// lifecycle stories gate CI (including under -race: the federation-churn
// drill is deliberately concurrent). A drill that fails prints its full
// report — steps, violated invariants, skips — not just a boolean.
func TestDrills(t *testing.T) {
	for _, c := range Drills() {
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			d, err := c.New(1)
			if err != nil {
				t.Fatalf("constructing drill: %v", err)
			}
			rep := Run(d)
			if !rep.Passed() {
				t.Fatalf("drill failed:\n%s", rep)
			}
			if rep.StepsRun != len(d.Steps) {
				t.Fatalf("ran %d of %d steps", rep.StepsRun, len(d.Steps))
			}
			for _, sr := range rep.Steps {
				if sr.Skipped {
					t.Fatalf("step %s skipped in a passing run", sr.Step)
				}
			}
		})
	}
}

// TestRunAll exercises the suite entry point phrdemo -drills uses. It
// reruns every drill, so -short skips it (TestDrills already covers each
// one individually).
func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite rerun; TestDrills covers each drill")
	}
	reports, err := RunAll(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(Drills()) {
		t.Fatalf("got %d reports, want %d", len(reports), len(Drills()))
	}
	for _, r := range reports {
		if !r.Passed() {
			t.Errorf("drill failed:\n%s", r)
		}
	}
}

// Engine semantics: failures must be loud, later steps must be skipped
// (not run against undefined state), and a drill that checks nothing must
// not pass.

func TestRunStopsAfterFailedInvariant(t *testing.T) {
	ran := []string{}
	d := &Drill{
		Name: "synthetic",
		Steps: []Step{
			{
				Name: "bad",
				Run:  func() error { ran = append(ran, "bad"); return nil },
				Invariants: []Invariant{
					{Name: "holds", Check: func() error { return nil }},
					{Name: "breaks", Check: func() error { return errors.New("boom") }},
					{Name: "diagnostic-still-runs", Check: func() error { ran = append(ran, "diag"); return nil }},
				},
			},
			{
				Name: "never",
				Run:  func() error { ran = append(ran, "never"); return nil },
			},
		},
	}
	rep := Run(d)
	if rep.Passed() {
		t.Fatal("run with a violated invariant passed")
	}
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0], "boom") {
		t.Fatalf("failures = %v", rep.Failures)
	}
	if got := strings.Join(ran, ","); got != "bad,diag" {
		t.Fatalf("execution order = %q, want bad,diag (later steps skipped, sibling invariants still evaluated)", got)
	}
	if !rep.Steps[1].Skipped {
		t.Fatal("step after a failure was not marked skipped")
	}
	if !strings.Contains(rep.String(), "invariant") {
		t.Fatalf("report does not name the violated invariant:\n%s", rep)
	}
}

func TestRunStepErrorFailsRun(t *testing.T) {
	d := &Drill{
		Name: "synthetic",
		Steps: []Step{
			{
				Name:       "explodes",
				Run:        func() error { return errors.New("setup died") },
				Invariants: []Invariant{{Name: "unreached", Check: func() error { return nil }}},
			},
		},
	}
	rep := Run(d)
	if rep.Passed() {
		t.Fatal("run with a failed step passed")
	}
	if rep.InvariantsChecked != 0 {
		t.Fatal("invariants of a failed step were evaluated against undefined state")
	}
}

func TestSilenceIsNotSuccess(t *testing.T) {
	d := &Drill{
		Name:  "empty",
		Steps: []Step{{Name: "noop", Run: func() error { return nil }}},
	}
	rep := Run(d)
	if rep.Passed() {
		t.Fatal("a drill that checked no invariants passed")
	}
}
