package scenario

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"typepre/internal/core"
	"typepre/internal/hybrid"
	"typepre/internal/ibe"
	"typepre/internal/phr"
)

// The four shipped drills. Each constructor materializes its own
// deployment with phr.GenerateWorkloadFrom and a rand.Source derived from
// the seed, so a failing run reproduces exactly (the cryptography itself
// uses crypto/rand and is necessarily randomized — the *structure* is what
// the seed pins).

// drillWorkload builds a single-category corpus with a known shape: one
// patient population, every record in the given category, grants installed
// explicitly by the drill (GrantsPerPatient=0 keeps the generator from
// sampling its own).
func drillWorkload(seed int64, c phr.Category, patients, records int) (*phr.Workload, error) {
	cfg := phr.DefaultWorkload()
	cfg.Seed = seed
	cfg.Patients = patients
	cfg.Requesters = 2
	cfg.Categories = []phr.Category{c}
	cfg.RecordsPerPatient = records
	cfg.GrantsPerPatient = 0
	return phr.GenerateWorkloadFrom(cfg, rand.NewSource(seed))
}

// requesterIDs returns the generated requester identities in a stable
// order (the workload keys them by identity string).
func requesterIDs(w *phr.Workload) []string {
	ids := make([]string, 0, len(w.Requesters))
	for i := 0; len(ids) < len(w.Requesters); i++ {
		id := fmt.Sprintf("clinician-%03d@clinic.example", i)
		if _, ok := w.Requesters[id]; !ok {
			break
		}
		ids = append(ids, id)
	}
	if len(ids) != len(w.Requesters) {
		panic("scenario: workload requester naming changed; update requesterIDs")
	}
	return ids
}

// expectBodies checks that got matches the stored plaintexts of
// (patient, category) in insertion order.
func expectBodies(w *phr.Workload, patientID string, c phr.Category, got [][]byte) error {
	recs, err := w.Service.Store.ListByPatientCategory(patientID, c)
	if err != nil {
		return err
	}
	if len(got) != len(recs) {
		return fmt.Errorf("disclosed %d records, want %d", len(got), len(recs))
	}
	for i, rec := range recs {
		if !bytes.Equal(got[i], w.Bodies[rec.ID]) {
			return fmt.Errorf("record %s: plaintext mismatch", rec.ID)
		}
	}
	return nil
}

// auditOrdered checks the per-proxy ordering invariant: Seq strictly
// increasing from 1 with no gaps, Time never going backwards.
func auditOrdered(entries []phr.AuditEntry) error {
	for i, e := range entries {
		if e.Seq != uint64(i+1) {
			return fmt.Errorf("entry %d has Seq %d, want %d", i, e.Seq, i+1)
		}
		if i > 0 && e.Time.Before(entries[i-1].Time) {
			return fmt.Errorf("entry %d: Time went backwards", i)
		}
	}
	return nil
}

// firstErr keeps the first error reported by a pack of goroutines.
type firstErr struct {
	mu  sync.Mutex
	err error
}

func (f *firstErr) set(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

func (f *firstErr) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// errIs builds the invariant "recorded error is target" over a captured
// error pointer (the step's Run stores the expected failure there).
func errIs(name string, got *error, target error) Invariant {
	return Invariant{Name: name, Check: func() error {
		if !errors.Is(*got, target) {
			// The mismatch report quotes both errors as text on purpose:
			// wrapping the *wanted* sentinel with %w would make errors.Is
			// on the invariant failure match an error that never occurred,
			// and *got may be nil.
			//phrlint:ignore errwrap: want/got are quoted as text; wrapping the expected sentinel would forge an errors.Is match
			return fmt.Errorf("want %v, got %v", target, *got)
		}
		return nil
	}}
}

// RevocationDrill: grant → disclose (warming the prepared-rekey pairing
// cache on every path) → revoke → every disclosure path must fail with
// ErrNoGrant and an audited denial; a revocation racing an in-flight
// stream must kill the stream before its next record.
func RevocationDrill(seed int64) (*Drill, error) {
	const records = 4
	w, err := drillWorkload(seed, phr.CategoryEmergency, 1, records)
	if err != nil {
		return nil, err
	}
	patient := w.Patients[0]
	requester := w.Requesters[requesterIDs(w)[0]]
	proxy, err := w.Service.ProxyFor(phr.CategoryEmergency)
	if err != nil {
		return nil, err
	}

	var serialErr, bulkErr, parallelErr, streamErr error
	streamYields := 0
	var midErr error
	midYields := 0

	return &Drill{
		Name:        "revocation",
		Description: "revoked grants must die on every disclosure path, including the prepared cache and in-flight streams",
		Steps: []Step{
			{
				Name: "grant-and-disclose",
				Run: func() error {
					if err := w.Service.Grant(patient, w.KGC2.Params(), requester.ID, phr.CategoryEmergency); err != nil {
						return err
					}
					// Warm the prepared grant's pairing cache on the
					// serial, parallel, and streaming paths.
					recs, err := w.Service.Store.ListByPatientCategory(patient.ID(), phr.CategoryEmergency)
					if err != nil {
						return err
					}
					for _, rec := range recs {
						if _, err := w.Service.Read(rec.ID, requester); err != nil {
							return err
						}
					}
					return nil
				},
				Invariants: []Invariant{
					{Name: "grant-installed", Check: func() error {
						if n := proxy.GrantCount(); n != 1 {
							return fmt.Errorf("grant count = %d, want 1", n)
						}
						return nil
					}},
					{Name: "bulk-discloses-all", Check: func() error {
						got, err := w.Service.ReadCategory(patient.ID(), phr.CategoryEmergency, requester)
						if err != nil {
							return err
						}
						return expectBodies(w, patient.ID(), phr.CategoryEmergency, got)
					}},
				},
			},
			{
				Name: "revoke",
				Run: func() error {
					if err := patient.Revoke(proxy, requester.ID, phr.CategoryEmergency); err != nil {
						return err
					}
					// Exercise every disclosure path against the warm
					// cache; invariants assert on the recorded errors.
					recs, err := w.Service.Store.ListByPatientCategory(patient.ID(), phr.CategoryEmergency)
					if err != nil {
						return err
					}
					_, serialErr = w.Service.Request(recs[0].ID, requester.ID)
					_, bulkErr = proxy.DiscloseCategory(w.Service.Store, patient.ID(), phr.CategoryEmergency, requester.ID)
					_, parallelErr = proxy.DiscloseCategoryParallel(w.Service.Store, patient.ID(), phr.CategoryEmergency, requester.ID)
					streamErr = proxy.DiscloseCategoryStream(w.Service.Store, patient.ID(), phr.CategoryEmergency, requester.ID,
						func(*hybrid.ReCiphertext) error { streamYields++; return nil })
					return nil
				},
				Invariants: []Invariant{
					{Name: "grant-removed", Check: func() error {
						if n := proxy.GrantCount(); n != 0 {
							return fmt.Errorf("grant count = %d, want 0", n)
						}
						return nil
					}},
					errIs("serial-path-denied", &serialErr, phr.ErrNoGrant),
					errIs("bulk-path-denied", &bulkErr, phr.ErrNoGrant),
					errIs("parallel-path-denied", &parallelErr, phr.ErrNoGrant),
					errIs("stream-path-denied", &streamErr, phr.ErrNoGrant),
					{Name: "stream-released-nothing", Check: func() error {
						if streamYields != 0 {
							return fmt.Errorf("revoked stream released %d records", streamYields)
						}
						return nil
					}},
					{Name: "denials-audited", Check: func() error {
						// One denial per refused path.
						if n := len(proxy.Audit().ByOutcome(phr.OutcomeNoGrant)); n != 4 {
							return fmt.Errorf("no-grant audit entries = %d, want 4", n)
						}
						return nil
					}},
				},
			},
			{
				Name: "revoke-mid-stream",
				Run: func() error {
					if err := w.Service.Grant(patient, w.KGC2.Params(), requester.ID, phr.CategoryEmergency); err != nil {
						return err
					}
					midErr = proxy.DiscloseCategoryStream(w.Service.Store, patient.ID(), phr.CategoryEmergency, requester.ID,
						func(*hybrid.ReCiphertext) error {
							midYields++
							if midYields == 1 {
								return patient.Revoke(proxy, requester.ID, phr.CategoryEmergency)
							}
							return nil
						})
					return nil
				},
				Invariants: []Invariant{
					errIs("in-flight-stream-killed", &midErr, phr.ErrNoGrant),
					{Name: "at-most-one-record-escaped", Check: func() error {
						if midYields != 1 {
							return fmt.Errorf("stream released %d records after mid-flight revoke, want 1", midYields)
						}
						return nil
					}},
					{Name: "audit-ordered", Check: func() error {
						return auditOrdered(proxy.Audit().Entries())
					}},
				},
			},
		},
	}, nil
}

// KeyRotationDrill: disclose → rotate the category's type epoch (re-seals
// every record) → the pre-rotation grant must be dead (ErrStaleGrant,
// audited) while the owner still reads everything → a fresh grant
// discloses the same plaintexts.
func KeyRotationDrill(seed int64) (*Drill, error) {
	const records = 3
	w, err := drillWorkload(seed, phr.CategoryMedication, 1, records)
	if err != nil {
		return nil, err
	}
	patient := w.Patients[0]
	requester := w.Requesters[requesterIDs(w)[0]]
	proxy, err := w.Service.ProxyFor(phr.CategoryMedication)
	if err != nil {
		return nil, err
	}

	resealed := 0
	var staleSerialErr, staleBulkErr error

	return &Drill{
		Name:        "key-rotation",
		Description: "rotating a category's type epoch must kill old grants and preserve every plaintext",
		Steps: []Step{
			{
				Name: "grant-and-disclose",
				Run: func() error {
					return w.Service.Grant(patient, w.KGC2.Params(), requester.ID, phr.CategoryMedication)
				},
				Invariants: []Invariant{
					{Name: "pre-rotation-disclosure", Check: func() error {
						got, err := w.Service.ReadCategory(patient.ID(), phr.CategoryMedication, requester)
						if err != nil {
							return err
						}
						return expectBodies(w, patient.ID(), phr.CategoryMedication, got)
					}},
				},
			},
			{
				Name: "rotate",
				Run: func() error {
					var err error
					resealed, err = patient.RotateTypeKey(w.Service.Store, phr.CategoryMedication, nil)
					return err
				},
				Invariants: []Invariant{
					{Name: "all-records-resealed", Check: func() error {
						if resealed != records {
							return fmt.Errorf("re-sealed %d records, want %d", resealed, records)
						}
						if e := patient.Epoch(phr.CategoryMedication); e != 1 {
							return fmt.Errorf("epoch = %d, want 1", e)
						}
						wantType := core.VersionedType(core.Type(phr.CategoryMedication), 1)
						recs, err := w.Service.Store.ListByPatientCategory(patient.ID(), phr.CategoryMedication)
						if err != nil {
							return err
						}
						for _, rec := range recs {
							if rec.Sealed.KEM.Type != wantType {
								return fmt.Errorf("record %s sealed as %q, want %q", rec.ID, rec.Sealed.KEM.Type, wantType)
							}
						}
						return nil
					}},
					{Name: "owner-still-reads", Check: func() error {
						recs, err := w.Service.Store.ListByPatientCategory(patient.ID(), phr.CategoryMedication)
						if err != nil {
							return err
						}
						for _, rec := range recs {
							got, err := patient.ReadOwn(w.Service.Store, rec.ID)
							if err != nil {
								return fmt.Errorf("owner read of %s: %w", rec.ID, err)
							}
							if !bytes.Equal(got, w.Bodies[rec.ID]) {
								return fmt.Errorf("owner read of %s: plaintext mismatch", rec.ID)
							}
						}
						return nil
					}},
				},
			},
			{
				Name: "stale-grant-denied",
				Run: func() error {
					recs, err := w.Service.Store.ListByPatientCategory(patient.ID(), phr.CategoryMedication)
					if err != nil {
						return err
					}
					_, staleSerialErr = w.Service.Request(recs[0].ID, requester.ID)
					_, staleBulkErr = proxy.DiscloseCategoryParallel(w.Service.Store, patient.ID(), phr.CategoryMedication, requester.ID)
					return nil
				},
				Invariants: []Invariant{
					errIs("serial-path-stale", &staleSerialErr, phr.ErrStaleGrant),
					errIs("bulk-path-stale", &staleBulkErr, phr.ErrStaleGrant),
					{Name: "staleness-audited", Check: func() error {
						if n := len(proxy.Audit().ByOutcome(phr.OutcomeStaleGrant)); n != 2 {
							return fmt.Errorf("stale-grant audit entries = %d, want 2", n)
						}
						return nil
					}},
				},
			},
			{
				Name: "re-grant",
				Run: func() error {
					return w.Service.Grant(patient, w.KGC2.Params(), requester.ID, phr.CategoryMedication)
				},
				Invariants: []Invariant{
					{Name: "stale-grant-replaced", Check: func() error {
						if n := proxy.GrantCount(); n != 1 {
							return fmt.Errorf("grant count = %d, want 1 (fresh grant must replace the stale one)", n)
						}
						return nil
					}},
					{Name: "post-rotation-disclosure", Check: func() error {
						got, err := w.Service.ReadCategory(patient.ID(), phr.CategoryMedication, requester)
						if err != nil {
							return err
						}
						return expectBodies(w, patient.ID(), phr.CategoryMedication, got)
					}},
					{Name: "audit-ordered", Check: func() error {
						return auditOrdered(proxy.Audit().Entries())
					}},
				},
			},
		},
	}, nil
}

// BreakGlassDrill: emergency disclosure through a standing emergency grant
// must require a reason, audit every released record distinguishably, and
// never widen access beyond CategoryEmergency or beyond pre-authorized
// responders.
func BreakGlassDrill(seed int64) (*Drill, error) {
	cfg := phr.DefaultWorkload()
	cfg.Seed = seed
	cfg.Patients = 1
	cfg.Requesters = 2
	cfg.Categories = []phr.Category{phr.CategoryEmergency, phr.CategoryMedication}
	cfg.RecordsPerPatient = 0 // records added explicitly below
	cfg.GrantsPerPatient = 0
	w, err := phr.GenerateWorkloadFrom(cfg, rand.NewSource(seed))
	if err != nil {
		return nil, err
	}
	patient := w.Patients[0]
	ids := requesterIDs(w)
	responder, intruder := w.Requesters[ids[0]], w.Requesters[ids[1]]
	proxy, err := w.Service.ProxyFor(phr.CategoryEmergency)
	if err != nil {
		return nil, err
	}

	const reason = "cardiac arrest, ER admission #4711"
	emergency := [][]byte{[]byte("blood type O-"), []byte("allergy: penicillin")}
	var noReasonErr, scopeErr, intruderErr error
	var disclosed [][]byte

	return &Drill{
		Name:        "break-glass",
		Description: "emergency access must be pre-authorized, reasoned, distinguishably audited, and scoped to the emergency category",
		Steps: []Step{
			{
				Name: "provision",
				Run: func() error {
					for _, b := range emergency {
						rec, err := patient.AddRecord(w.Service.Store, phr.CategoryEmergency, b, nil)
						if err != nil {
							return err
						}
						w.Bodies[rec.ID] = b
					}
					rec, err := patient.AddRecord(w.Service.Store, phr.CategoryMedication, []byte("private"), nil)
					if err != nil {
						return err
					}
					w.Bodies[rec.ID] = []byte("private")
					// The responder holds a standing emergency grant;
					// break-glass cannot conjure access never delegated.
					return w.Service.Grant(patient, w.KGC2.Params(), responder.ID, phr.CategoryEmergency)
				},
				Invariants: []Invariant{
					{Name: "standing-grant-installed", Check: func() error {
						if n := proxy.GrantCount(); n != 1 {
							return fmt.Errorf("grant count = %d, want 1", n)
						}
						return nil
					}},
				},
			},
			{
				Name: "reason-required",
				Run: func() error {
					_, noReasonErr = w.Service.BreakGlass(patient.ID(), responder.ID, "")
					return nil
				},
				Invariants: []Invariant{
					errIs("missing-reason-rejected", &noReasonErr, phr.ErrBreakGlassReason),
					{Name: "no-audit-traffic-before-reason", Check: func() error {
						if n := proxy.Audit().Len(); n != 0 {
							return fmt.Errorf("reason-less attempt produced %d audit entries", n)
						}
						return nil
					}},
				},
			},
			{
				Name: "break-glass",
				Run: func() error {
					rcts, err := w.Service.BreakGlass(patient.ID(), responder.ID, reason)
					if err != nil {
						return err
					}
					for _, rct := range rcts {
						body, err := hybrid.DecryptReEncrypted(responder, rct)
						if err != nil {
							return err
						}
						disclosed = append(disclosed, body)
					}
					return nil
				},
				Invariants: []Invariant{
					{Name: "emergency-records-disclosed", Check: func() error {
						return expectBodies(w, patient.ID(), phr.CategoryEmergency, disclosed)
					}},
					{Name: "distinguishably-audited-with-reason", Check: func() error {
						entries := proxy.Audit().ByOutcome(phr.OutcomeBreakGlass)
						if len(entries) != len(emergency) {
							return fmt.Errorf("break-glass audit entries = %d, want %d", len(entries), len(emergency))
						}
						for _, e := range entries {
							if e.Note != reason {
								return fmt.Errorf("entry %d lost its reason: %q", e.Seq, e.Note)
							}
						}
						return nil
					}},
					{Name: "not-counted-as-denial", Check: func() error {
						if n := len(proxy.Audit().Denials()); n != 0 {
							return fmt.Errorf("break-glass produced %d denial entries", n)
						}
						return nil
					}},
					{Name: "audit-ordered", Check: func() error {
						return auditOrdered(proxy.Audit().Entries())
					}},
				},
			},
			{
				Name: "scope-enforced",
				Run: func() error {
					_, scopeErr = w.Service.ReadCategory(patient.ID(), phr.CategoryMedication, responder)
					_, intruderErr = w.Service.BreakGlass(patient.ID(), intruder.ID, reason)
					return nil
				},
				Invariants: []Invariant{
					errIs("other-categories-stay-closed", &scopeErr, phr.ErrNoGrant),
					errIs("unauthorized-responder-denied", &intruderErr, phr.ErrNoGrant),
					{Name: "denial-carries-reason", Check: func() error {
						denials := proxy.Audit().Denials()
						if len(denials) != 1 {
							return fmt.Errorf("emergency-proxy denials = %d, want 1", len(denials))
						}
						d := denials[0]
						if d.Outcome != phr.OutcomeNoGrant || d.Requester != intruder.ID || d.Note != reason {
							return fmt.Errorf("denial = %+v, want no-grant by %s with the reason on record", d, intruder.ID)
						}
						return nil
					}},
				},
			},
		},
	}, nil
}

// FederationChurnDrill: cross-KGC delegation (the examples/multidomain
// story at workload scale — a third domain's params cross the wire
// serialized) under grant/revoke churn with concurrent disclosures. The
// churned pair flaps between granted and denied; a steady grant from
// another domain must never be disturbed. Run race-clean under
// `go test -race`.
func FederationChurnDrill(seed int64) (*Drill, error) {
	// Small but real: every combination of {writer flap, racing reader,
	// steady reader} still interleaves, and the whole drill stays cheap
	// enough to run under -race in CI.
	const (
		patients = 2
		records  = 2
		rounds   = 3
	)
	w, err := drillWorkload(seed, phr.CategoryEmergency, patients, records)
	if err != nil {
		return nil, err
	}
	steady := w.Requesters[requesterIDs(w)[0]] // domain 2 (KGC2) clinician
	proxy, err := w.Service.ProxyFor(phr.CategoryEmergency)
	if err != nil {
		return nil, err
	}

	// Domain 3: an unrelated KGC whose params reach the patients only in
	// serialized form, as in examples/multidomain.
	kgc3, err := ibe.Setup("phr-kgc3", nil)
	if err != nil {
		return nil, err
	}
	importedParams, err := ibe.UnmarshalParams(kgc3.Params().Marshal())
	if err != nil {
		return nil, fmt.Errorf("scenario: params wire round-trip: %w", err)
	}
	specialist := kgc3.Extract("specialist-007@kgc3.example")

	var (
		churnOK, churnDenied atomic.Int64
		churnUnexpected      firstErr // first unexpected outcome, if any
		steadyFailure        firstErr // first steady-pair failure, if any
	)

	return &Drill{
		Name:        "federation-churn",
		Description: "cross-KGC delegation must survive grant/revoke churn with concurrent disclosures, without disturbing other domains' grants",
		Steps: []Step{
			{
				Name: "federate",
				Run: func() error {
					for _, p := range w.Patients {
						if err := w.Service.Grant(p, w.KGC2.Params(), steady.ID, phr.CategoryEmergency); err != nil {
							return err
						}
						// The cross-domain grant goes through the
						// wire-imported params, not the live KGC3 object.
						if err := p.Grant(proxy, importedParams, specialist.ID, phr.CategoryEmergency, nil); err != nil {
							return err
						}
					}
					return nil
				},
				Invariants: []Invariant{
					{Name: "cross-domain-disclosure", Check: func() error {
						for _, p := range w.Patients {
							got, err := w.Service.ReadCategory(p.ID(), phr.CategoryEmergency, specialist)
							if err != nil {
								return fmt.Errorf("specialist read of %s: %w", p.ID(), err)
							}
							if err := expectBodies(w, p.ID(), phr.CategoryEmergency, got); err != nil {
								return fmt.Errorf("specialist read of %s: %w", p.ID(), err)
							}
						}
						return nil
					}},
					{Name: "all-grants-installed", Check: func() error {
						if n := proxy.GrantCount(); n != 2*patients {
							return fmt.Errorf("grant count = %d, want %d", n, 2*patients)
						}
						return nil
					}},
				},
			},
			{
				Name: "churn",
				Run: func() error {
					var writers, readers sync.WaitGroup
					done := make(chan struct{})
					// One writer per patient flaps the specialist's grant:
					// revoke → a disclosure attempt that MUST be denied →
					// re-grant → a disclosure that MUST succeed. The
					// denied/granted outcomes are deterministic because the
					// writer owns the pair's grant lifecycle.
					for _, p := range w.Patients {
						writers.Add(1)
						go func(p *phr.Patient) {
							defer writers.Done()
							for i := 0; i < rounds; i++ {
								if err := p.Revoke(proxy, specialist.ID, phr.CategoryEmergency); err != nil {
									churnUnexpected.set(fmt.Errorf("revoke round %d: %w", i, err))
									return
								}
								if _, err := w.Service.ReadCategory(p.ID(), phr.CategoryEmergency, specialist); !errors.Is(err, phr.ErrNoGrant) {
									// err is nil when the revoked pair was wrongly served — the
									// failure being reported — so it cannot be wrapped with %w.
									//phrlint:ignore errwrap: err is nil on the disclosed-after-revoke path; %w of nil would malform the report
									churnUnexpected.set(fmt.Errorf("round %d: revoked pair disclosed (err=%v)", i, err))
									return
								}
								churnDenied.Add(1)
								if err := p.Grant(proxy, importedParams, specialist.ID, phr.CategoryEmergency, nil); err != nil {
									churnUnexpected.set(fmt.Errorf("re-grant round %d: %w", i, err))
									return
								}
								got, err := w.Service.ReadCategory(p.ID(), phr.CategoryEmergency, specialist)
								if err != nil {
									churnUnexpected.set(fmt.Errorf("round %d: fresh grant denied: %w", i, err))
									return
								}
								if err := expectBodies(w, p.ID(), phr.CategoryEmergency, got); err != nil {
									churnUnexpected.set(fmt.Errorf("round %d: %w", i, err))
									return
								}
								churnOK.Add(1)
							}
						}(p)
					}
					// Concurrent racing readers on the churned pair: every
					// attempt must either disclose correct plaintexts or be
					// denied with ErrNoGrant — nothing in between.
					for _, p := range w.Patients {
						readers.Add(1)
						go func(p *phr.Patient) {
							defer readers.Done()
							for {
								select {
								case <-done:
									return
								default:
								}
								got, err := w.Service.ReadCategory(p.ID(), phr.CategoryEmergency, specialist)
								switch {
								case errors.Is(err, phr.ErrNoGrant):
									churnDenied.Add(1)
								case err != nil:
									churnUnexpected.set(fmt.Errorf("racing reader on %s: %w", p.ID(), err))
									return
								default:
									if e := expectBodies(w, p.ID(), phr.CategoryEmergency, got); e != nil {
										churnUnexpected.set(fmt.Errorf("racing reader on %s: %w", p.ID(), e))
										return
									}
									churnOK.Add(1)
								}
							}
						}(p)
					}
					// Steady readers: the KGC2 clinician's grant is never
					// touched by the churn and must never be denied.
					for _, p := range w.Patients {
						readers.Add(1)
						go func(p *phr.Patient) {
							defer readers.Done()
							for {
								select {
								case <-done:
									return
								default:
								}
								got, err := w.Service.ReadCategory(p.ID(), phr.CategoryEmergency, steady)
								if err == nil {
									err = expectBodies(w, p.ID(), phr.CategoryEmergency, got)
								}
								if err != nil {
									steadyFailure.set(fmt.Errorf("steady grant on %s disturbed: %w", p.ID(), err))
									return
								}
							}
						}(p)
					}
					// Writers are the clock: when every flap has run its
					// rounds, stop the readers and drain them.
					writers.Wait()
					close(done)
					readers.Wait()
					return nil
				},
				Invariants: []Invariant{
					{Name: "no-unexpected-outcomes", Check: func() error {
						return churnUnexpected.get()
					}},
					{Name: "steady-grant-undisturbed", Check: func() error {
						return steadyFailure.get()
					}},
					{Name: "churn-exercised-both-outcomes", Check: func() error {
						ok, denied := churnOK.Load(), churnDenied.Load()
						if ok < int64(patients*rounds) || denied < int64(patients*rounds) {
							return fmt.Errorf("ok=%d denied=%d, want >= %d each", ok, denied, patients*rounds)
						}
						return nil
					}},
				},
			},
			{
				Name: "settle",
				Run:  func() error { return nil },
				Invariants: []Invariant{
					{Name: "every-pair-discloses-after-churn", Check: func() error {
						for _, p := range w.Patients {
							for _, req := range []*ibe.PrivateKey{steady, specialist} {
								got, err := w.Service.ReadCategory(p.ID(), phr.CategoryEmergency, req)
								if err != nil {
									return fmt.Errorf("%s for %s: %w", p.ID(), req.ID, err)
								}
								if err := expectBodies(w, p.ID(), phr.CategoryEmergency, got); err != nil {
									return fmt.Errorf("%s for %s: %w", p.ID(), req.ID, err)
								}
							}
						}
						return nil
					}},
					{Name: "audit-ordered-under-concurrency", Check: func() error {
						return auditOrdered(proxy.Audit().Entries())
					}},
					{Name: "audit-views-consistent", Check: func() error {
						log := proxy.Audit()
						byReq := 0
						for _, id := range []string{steady.ID, specialist.ID} {
							entries := log.ByRequester(id)
							for i := 1; i < len(entries); i++ {
								if entries[i].Seq <= entries[i-1].Seq {
									return fmt.Errorf("ByRequester(%s) out of order at %d", id, i)
								}
							}
							byReq += len(entries)
						}
						if byReq != log.Len() {
							return fmt.Errorf("ByRequester partitions cover %d of %d entries", byReq, log.Len())
						}
						// At least every writer-forced denial is on record.
						if n := len(log.Denials()); n < patients*rounds {
							return fmt.Errorf("denials = %d, want >= %d", n, patients*rounds)
						}
						return nil
					}},
				},
			},
		},
	}, nil
}
