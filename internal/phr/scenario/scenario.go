// Package scenario is an executable lifecycle drill engine for the PHR
// disclosure service. The paper pitches type-and-identity PRE for personal
// health records, where the security story is about *lifecycles* — a
// clinician losing access, a patient re-keying a category after a
// compromise, emergency access under audit, cross-domain delegation churn
// — not one-shot encrypt/decrypt. Each drill here runs a named, multi-step
// operational scenario over a live Service+Store+proxies and checks
// machine-verified invariants after every step, producing a structured
// Report. The drills run as ordinary `go test` cases (and under -race) and
// via `phrdemo -drills`, so every future refactor of the crypto stack is
// pinned against these stories.
package scenario

import (
	"fmt"
	"strings"
)

// Invariant is one machine-checked property, evaluated after the step it
// is attached to. Check returns nil when the property holds.
type Invariant struct {
	Name  string
	Check func() error
}

// Step is one operational action of a drill plus the invariants that must
// hold once it completes. Steps that exercise expected failures perform
// the failing call inside Run, record its error, and let invariants assert
// on it — Run returning an error means the drill itself broke.
type Step struct {
	Name       string
	Run        func() error
	Invariants []Invariant
}

// Drill is a named multi-step scenario. Steps share state by closing over
// their constructor's environment.
type Drill struct {
	Name        string
	Description string
	Steps       []Step
}

// InvariantResult records one invariant evaluation.
type InvariantResult struct {
	Invariant string
	Err       string // empty = held
}

// StepResult records one executed (or skipped) step.
type StepResult struct {
	Step       string
	Skipped    bool   // true when an earlier failure made the state undefined
	Err        string // non-empty when the step's action itself failed
	Invariants []InvariantResult
}

// Report is the structured outcome of one drill run.
type Report struct {
	Drill             string
	Steps             []StepResult
	StepsRun          int
	InvariantsChecked int
	Failures          []string
}

// Passed reports whether the drill ran to completion with every invariant
// holding. A drill that checked nothing does not pass: silence is not
// success.
func (r *Report) Passed() bool {
	return len(r.Failures) == 0 && r.StepsRun > 0 && r.InvariantsChecked > 0
}

// String renders a human-readable summary (one line per step and per
// failed invariant).
func (r *Report) String() string {
	var b strings.Builder
	status := "PASS"
	if !r.Passed() {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "drill %-17s %s  (%d steps, %d invariants checked)\n",
		r.Drill, status, r.StepsRun, r.InvariantsChecked)
	for _, st := range r.Steps {
		switch {
		case st.Skipped:
			fmt.Fprintf(&b, "  ~ %s (skipped)\n", st.Step)
		case st.Err != "":
			fmt.Fprintf(&b, "  ✗ %s: %s\n", st.Step, st.Err)
		default:
			fmt.Fprintf(&b, "  ✓ %s\n", st.Step)
		}
		for _, inv := range st.Invariants {
			if inv.Err != "" {
				fmt.Fprintf(&b, "      invariant %s: %s\n", inv.Invariant, inv.Err)
			}
		}
	}
	return b.String()
}

// Run executes a drill: steps in order, each step's invariants right after
// it. The first failure (step error or violated invariant) marks the run
// failed; remaining invariants of the failing step still execute for
// diagnostics, but later steps are skipped — their preconditions no longer
// hold, and a cascade of secondary failures would bury the root cause.
func Run(d *Drill) *Report {
	rep := &Report{Drill: d.Name}
	failed := false
	for _, st := range d.Steps {
		sr := StepResult{Step: st.Name}
		if failed {
			sr.Skipped = true
			rep.Steps = append(rep.Steps, sr)
			continue
		}
		rep.StepsRun++
		if err := st.Run(); err != nil {
			sr.Err = err.Error()
			rep.Failures = append(rep.Failures, fmt.Sprintf("%s/%s: %v", d.Name, st.Name, err))
			failed = true
			rep.Steps = append(rep.Steps, sr)
			continue
		}
		for _, inv := range st.Invariants {
			ir := InvariantResult{Invariant: inv.Name}
			rep.InvariantsChecked++
			if err := inv.Check(); err != nil {
				ir.Err = err.Error()
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("%s/%s: invariant %q: %v", d.Name, st.Name, inv.Name, err))
				failed = true
			}
			sr.Invariants = append(sr.Invariants, ir)
		}
		rep.Steps = append(rep.Steps, sr)
	}
	if rep.InvariantsChecked == 0 {
		rep.Failures = append(rep.Failures, d.Name+": drill checked no invariants")
	}
	return rep
}

// Constructor names one shipped drill and builds it from a seed (the seed
// feeds phr.GenerateWorkloadFrom, so a failing run reproduces exactly).
type Constructor struct {
	Name string
	New  func(seed int64) (*Drill, error)
}

// Drills lists every shipped drill in a stable order.
func Drills() []Constructor {
	return []Constructor{
		{"revocation", RevocationDrill},
		{"key-rotation", KeyRotationDrill},
		{"break-glass", BreakGlassDrill},
		{"federation-churn", FederationChurnDrill},
	}
}

// RunAll constructs and runs every shipped drill with the given seed. A
// constructor error aborts the suite — a drill that cannot even set up is
// a failure, not a skip.
func RunAll(seed int64) ([]*Report, error) {
	var reports []*Report
	for _, c := range Drills() {
		d, err := c.New(seed)
		if err != nil {
			return reports, fmt.Errorf("scenario: building %s: %w", c.Name, err)
		}
		reports = append(reports, Run(d))
	}
	return reports, nil
}
