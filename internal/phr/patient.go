package phr

import (
	"fmt"
	"io"
	"sync"
	"time"

	"typepre/internal/core"
	"typepre/internal/hybrid"
	"typepre/internal/ibe"
)

// Patient is the data owner: one identity, ONE key pair (the paper's
// headline property), arbitrarily many categories and delegations.
type Patient struct {
	id        string
	delegator *core.Delegator

	mu      sync.Mutex
	nextRec int
}

// NewPatient registers a patient at the given KGC and wraps the extracted
// key in a delegator.
func NewPatient(kgc *ibe.KGC, id string) *Patient {
	return &Patient{id: id, delegator: core.NewDelegator(kgc.Extract(id))}
}

// ID returns the patient identity.
func (p *Patient) ID() string { return p.id }

// Delegator exposes the underlying PRE delegator.
func (p *Patient) Delegator() *core.Delegator { return p.delegator }

// AddRecord encrypts a record body under the given category and stores it.
func (p *Patient) AddRecord(store *Store, c Category, body []byte, rng io.Reader) (*EncryptedRecord, error) {
	sealed, err := hybrid.Encrypt(p.delegator, body, c, rng)
	if err != nil {
		return nil, fmt.Errorf("phr: add record: %w", err)
	}
	p.mu.Lock()
	n := p.nextRec
	p.nextRec++
	p.mu.Unlock()

	rec := &EncryptedRecord{
		ID:        recordID(p.id, n),
		PatientID: p.id,
		Category:  c,
		CreatedAt: time.Now(),
		Sealed:    sealed,
	}
	if err := store.Put(rec); err != nil {
		return nil, err
	}
	return rec, nil
}

// ReadOwn decrypts one of the patient's own records.
func (p *Patient) ReadOwn(store *Store, recordID string) ([]byte, error) {
	rec, err := store.Get(recordID)
	if err != nil {
		return nil, err
	}
	if rec.PatientID != p.id {
		return nil, fmt.Errorf("phr: record %s does not belong to %s", recordID, p.id)
	}
	return hybrid.Decrypt(p.delegator, rec.Sealed)
}

// Grant creates a per-category re-encryption key toward a requester
// registered at requesterKGC and installs it at the proxy. One call per
// (category, requester); the patient's key pair never changes.
func (p *Patient) Grant(proxy *Proxy, requesterParams *ibe.Params, requesterID string, c Category, rng io.Reader) error {
	rk, err := p.delegator.Delegate(requesterParams, requesterID, c, rng)
	if err != nil {
		return fmt.Errorf("phr: grant: %w", err)
	}
	return proxy.Install(rk)
}

// Revoke removes a previously installed grant from the proxy.
func (p *Patient) Revoke(proxy *Proxy, requesterID string, c Category) error {
	return proxy.Revoke(p.id, c, requesterID)
}
