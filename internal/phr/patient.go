package phr

import (
	"fmt"
	"io"
	"sync"
	"time"

	"typepre/internal/core"
	"typepre/internal/hybrid"
	"typepre/internal/ibe"
)

// Patient is the data owner: one identity, ONE key pair (the paper's
// headline property), arbitrarily many categories and delegations.
type Patient struct {
	id        string
	delegator *core.Delegator

	mu      sync.Mutex
	nextRec int // phrlint:guardedby mu
	// epochs tracks the current rotation epoch per category; absent means
	// epoch 0 (never rotated). Records and grants are bound to the
	// category's epoch at creation time (core.VersionedType).
	epochs map[Category]int // phrlint:guardedby mu
}

// NewPatient registers a patient at the given KGC and wraps the extracted
// key in a delegator.
func NewPatient(kgc *ibe.KGC, id string) *Patient {
	return &Patient{id: id, delegator: core.NewDelegator(kgc.Extract(id)), epochs: map[Category]int{}}
}

// ID returns the patient identity.
func (p *Patient) ID() string { return p.id }

// Delegator exposes the underlying PRE delegator.
func (p *Patient) Delegator() *core.Delegator { return p.delegator }

// Epoch returns the current rotation epoch of a category (0 = never
// rotated).
func (p *Patient) Epoch(c Category) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epochs[c]
}

// effectiveType is the wire type new records and grants of a category are
// bound to: the category at its current rotation epoch.
func (p *Patient) effectiveType(c Category) core.Type {
	p.mu.Lock()
	defer p.mu.Unlock()
	return core.VersionedType(core.Type(c), p.epochs[c])
}

// AddRecord encrypts a record body under the given category and stores it.
func (p *Patient) AddRecord(store Backend, c Category, body []byte, rng io.Reader) (*EncryptedRecord, error) {
	sealed, err := hybrid.Encrypt(p.delegator, body, p.effectiveType(c), rng)
	if err != nil {
		return nil, fmt.Errorf("phr: add record: %w", err)
	}
	p.mu.Lock()
	n := p.nextRec
	p.nextRec++
	p.mu.Unlock()

	rec := &EncryptedRecord{
		ID:        recordID(p.id, n),
		PatientID: p.id,
		Category:  c,
		CreatedAt: time.Now(),
		Sealed:    sealed,
	}
	if err := store.Put(rec); err != nil {
		return nil, err
	}
	return rec, nil
}

// ReadOwn decrypts one of the patient's own records. The sealed ciphertext
// carries its own (possibly rotated) wire type, so records of every epoch
// stay readable to the owner.
func (p *Patient) ReadOwn(store Backend, recordID string) ([]byte, error) {
	rec, err := store.Get(recordID)
	if err != nil {
		return nil, err
	}
	if rec.PatientID != p.id {
		return nil, fmt.Errorf("phr: record %s does not belong to %s", recordID, p.id)
	}
	return hybrid.Decrypt(p.delegator, rec.Sealed)
}

// Grant creates a per-category re-encryption key toward a requester
// registered at requesterKGC and installs it at the proxy. One call per
// (category, requester); the patient's key pair never changes. The rekey
// is bound to the category's current rotation epoch.
func (p *Patient) Grant(proxy *Proxy, requesterParams *ibe.Params, requesterID string, c Category, rng io.Reader) error {
	rk, err := p.delegator.Delegate(requesterParams, requesterID, p.effectiveType(c), rng)
	if err != nil {
		return fmt.Errorf("phr: grant: %w", err)
	}
	return proxy.Install(rk)
}

// Revoke removes a previously installed grant from the proxy.
func (p *Patient) Revoke(proxy *Proxy, requesterID string, c Category) error {
	return proxy.Revoke(p.id, c, requesterID)
}

// RotateTypeKey moves a category to a fresh type epoch and re-seals every
// stored record of the category under the new epoch's type — the response
// to a suspected key or proxy compromise. Every previously issued grant
// for the category becomes stale (ErrStaleGrant on disclosure) until the
// patient re-grants; the patient's own key pair never changes and older
// records stay readable through ReadOwn throughout.
//
// Rotation must not race with AddRecord or Grant on the same category: a
// record sealed under the old epoch after the re-seal pass would be
// stranded stale. Returns the number of records re-sealed.
func (p *Patient) RotateTypeKey(store Backend, c Category, rng io.Reader) (int, error) {
	p.mu.Lock()
	p.epochs[c]++
	epoch := p.epochs[c]
	p.mu.Unlock()

	newType := core.VersionedType(core.Type(c), epoch)
	resealed := 0
	recs, err := store.ListByPatientCategory(p.id, c)
	if err != nil {
		return 0, fmt.Errorf("phr: rotate %s/%s: %w", p.id, c, err)
	}
	for _, rec := range recs {
		if rec.Sealed.KEM.Type == newType {
			continue
		}
		sealed, err := hybrid.Reseal(p.delegator, rec.Sealed, newType, rng)
		if err != nil {
			return resealed, fmt.Errorf("phr: rotate %s/%s: %w", p.id, c, err)
		}
		rec.Sealed = sealed
		if err := store.Replace(rec); err != nil {
			return resealed, fmt.Errorf("phr: rotate %s/%s: %w", p.id, c, err)
		}
		resealed++
	}
	return resealed, nil
}
