package phr

import (
	"fmt"
	"io"
	"math/rand"

	"typepre/internal/ibe"
)

// WorkloadConfig parameterizes the synthetic PHR corpus. Real PHR data is
// not available (and would be unusable in a public repository); this
// generator reproduces the *structure* of the §5 scenario: patients with
// records spread over privacy categories, and clinicians granted access to
// subsets of those categories. The substitution is documented in DESIGN.md.
type WorkloadConfig struct {
	Seed              int64
	Patients          int
	Requesters        int
	Categories        []Category
	RecordsPerPatient int
	BodySize          int
	// GrantsPerPatient is the number of (category, requester) grants each
	// patient installs, sampled uniformly.
	GrantsPerPatient int
	// InsecureDeterministic drives *all* randomness — KGC master keys, KEM
	// scalars, AES-GCM nonces — from the workload's seeded source instead
	// of crypto/rand, making the generated corpus byte-identical across
	// runs with the same seed. Strictly for reproducible tests and
	// benchmarks: a corpus generated this way has predictable keys and
	// must never hold real data.
	InsecureDeterministic bool
	// Backend, when non-nil, is the storage layer the generated service
	// writes into (default: a fresh in-memory backend). Lets harnesses
	// benchmark the same corpus against memory and disk stores.
	Backend Backend
}

// DefaultWorkload matches the paper's three-category example at a small,
// test-friendly scale.
func DefaultWorkload() WorkloadConfig {
	return WorkloadConfig{
		Seed:              1,
		Patients:          3,
		Requesters:        3,
		Categories:        []Category{CategoryIllnessHistory, CategoryFoodStatistics, CategoryEmergency},
		RecordsPerPatient: 4,
		BodySize:          256,
		GrantsPerPatient:  2,
	}
}

// BulkFixture is the single-patient bulk-disclosure corpus shared by the
// DiscloseCategory tests, benchmarks, and typepre-bench's E9: n emergency
// records for one patient, one requester, one installed grant.
type BulkFixture struct {
	*Workload
	Proxy       *Proxy
	PatientID   string
	RequesterID string
}

// NewBulkFixture materializes the corpus. Callers measuring the warm
// serving path should run one disclosure first to populate the prepared
// grant's pairing cache.
func NewBulkFixture(records int) (*BulkFixture, error) {
	cfg := DefaultWorkload()
	cfg.Patients = 1
	cfg.Requesters = 1
	cfg.Categories = []Category{CategoryEmergency}
	cfg.RecordsPerPatient = records
	cfg.GrantsPerPatient = 1
	w, err := GenerateWorkload(cfg)
	if err != nil {
		return nil, err
	}
	if len(w.Grants) != 1 {
		return nil, fmt.Errorf("phr: bulk fixture installed %d grants, want 1", len(w.Grants))
	}
	proxy, err := w.Service.ProxyFor(CategoryEmergency)
	if err != nil {
		return nil, err
	}
	return &BulkFixture{
		Workload:    w,
		Proxy:       proxy,
		PatientID:   w.Patients[0].ID(),
		RequesterID: w.Grants[0].RequesterID,
	}, nil
}

// Grant names one installed delegation in a generated workload.
type Grant struct {
	PatientID   string
	Category    Category
	RequesterID string
}

// Workload is a fully materialized synthetic deployment.
type Workload struct {
	Config     WorkloadConfig
	KGC1, KGC2 *ibe.KGC
	Service    *Service
	Patients   []*Patient
	Requesters map[string]*ibe.PrivateKey
	Records    []*EncryptedRecord
	Grants     []Grant
	// Bodies holds the plaintext of every record for verification.
	Bodies map[string][]byte
}

// GenerateWorkload builds the corpus: KGCs, patients, requesters, records,
// and grants, with deterministic structure given the seed (the cryptography
// itself uses crypto/rand and is necessarily randomized).
func GenerateWorkload(cfg WorkloadConfig) (*Workload, error) {
	return GenerateWorkloadFrom(cfg, rand.NewSource(cfg.Seed))
}

// GenerateWorkloadFrom is GenerateWorkload with an explicit randomness
// source, so drills and benchmarks can reproduce a corpus exactly — or
// share one progression of draws across several generations — independent
// of the Seed field.
func GenerateWorkloadFrom(cfg WorkloadConfig, src rand.Source) (*Workload, error) {
	rng := rand.New(src)
	// cryptoRNG is what the key-generation and encryption paths draw from:
	// crypto/rand normally, the seeded source in reproducible-corpus mode.
	var cryptoRNG io.Reader
	if cfg.InsecureDeterministic {
		cryptoRNG = rng
	}
	kgc1, err := ibe.Setup("phr-kgc1", cryptoRNG)
	if err != nil {
		return nil, err
	}
	kgc2, err := ibe.Setup("phr-kgc2", cryptoRNG)
	if err != nil {
		return nil, err
	}
	backend := cfg.Backend
	if backend == nil {
		backend = NewStore()
	}
	w := &Workload{
		Config:     cfg,
		KGC1:       kgc1,
		KGC2:       kgc2,
		Service:    NewServiceWith(cfg.Categories, backend),
		Requesters: map[string]*ibe.PrivateKey{},
		Bodies:     map[string][]byte{},
	}

	for i := 0; i < cfg.Requesters; i++ {
		id := fmt.Sprintf("clinician-%03d@clinic.example", i)
		w.Requesters[id] = kgc2.Extract(id)
	}
	requesterIDs := make([]string, 0, len(w.Requesters))
	for i := 0; i < cfg.Requesters; i++ {
		requesterIDs = append(requesterIDs, fmt.Sprintf("clinician-%03d@clinic.example", i))
	}

	for i := 0; i < cfg.Patients; i++ {
		p := NewPatient(kgc1, fmt.Sprintf("patient-%03d@phr.example", i))
		w.Patients = append(w.Patients, p)

		for j := 0; j < cfg.RecordsPerPatient; j++ {
			c := cfg.Categories[rng.Intn(len(cfg.Categories))]
			body := make([]byte, cfg.BodySize)
			rng.Read(body)
			rec, err := p.AddRecord(w.Service.Store, c, body, cryptoRNG)
			if err != nil {
				return nil, err
			}
			w.Records = append(w.Records, rec)
			w.Bodies[rec.ID] = body
		}

		seen := map[grantKey]bool{}
		for j := 0; j < cfg.GrantsPerPatient; j++ {
			c := cfg.Categories[rng.Intn(len(cfg.Categories))]
			req := requesterIDs[rng.Intn(len(requesterIDs))]
			k := grantKey{p.ID(), c, req}
			if seen[k] {
				continue
			}
			seen[k] = true
			proxy, err := w.Service.ProxyFor(c)
			if err != nil {
				return nil, err
			}
			if err := p.Grant(proxy, kgc2.Params(), req, c, cryptoRNG); err != nil {
				return nil, err
			}
			w.Grants = append(w.Grants, Grant{PatientID: p.ID(), Category: c, RequesterID: req})
		}
	}
	return w, nil
}
