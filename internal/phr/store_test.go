package phr

import (
	"errors"
	"fmt"
	"testing"
)

// TestStoreDeleteReleasesIndexKeys is the churn-leak regression: empty
// secondary-index slices must be dropped with their map keys, so index-map
// sizes return to zero after put/delete cycles.
func TestStoreDeleteReleasesIndexKeys(t *testing.T) {
	s := newMemBackend()
	const cycles = 5
	for cycle := 0; cycle < cycles; cycle++ {
		var ids []string
		for p := 0; p < 4; p++ {
			for r := 0; r < 3; r++ {
				id := fmt.Sprintf("cycle%d/patient%d/rec%d", cycle, p, r)
				rec := &EncryptedRecord{
					ID:        id,
					PatientID: fmt.Sprintf("patient-%d", p),
					Category:  StandardCategories()[r%len(StandardCategories())],
				}
				if err := s.Put(rec); err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
			}
		}
		patients, patCats := s.indexSizes()
		if patients != 4 || patCats != 12 {
			t.Fatalf("cycle %d: live index sizes = (%d, %d), want (4, 12)", cycle, patients, patCats)
		}
		for _, id := range ids {
			if err := s.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
		patients, patCats = s.indexSizes()
		if patients != 0 || patCats != 0 {
			t.Fatalf("cycle %d: index keys leaked after full delete: byPatient=%d byPatCat=%d",
				cycle, patients, patCats)
		}
		if s.Count() != 0 {
			t.Fatalf("cycle %d: %d records remain", cycle, s.Count())
		}
	}
}

// TestStoreDeletePartialKeepsSiblingKeys checks that deleting one record
// does not drop an index key other records still need.
func TestStoreDeletePartialKeepsSiblingKeys(t *testing.T) {
	s := newMemBackend()
	a := &EncryptedRecord{ID: "r1", PatientID: "alice", Category: CategoryEmergency}
	b := &EncryptedRecord{ID: "r2", PatientID: "alice", Category: CategoryEmergency}
	c := &EncryptedRecord{ID: "r3", PatientID: "alice", Category: CategoryMedication}
	for _, r := range []*EncryptedRecord{a, b, c} {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("r1"); err != nil {
		t.Fatal(err)
	}
	if got := mustList(t, s, "alice", CategoryEmergency); len(got) != 1 || got[0].ID != "r2" {
		t.Fatalf("emergency index after partial delete = %v", got)
	}
	patients, patCats := s.indexSizes()
	if patients != 1 || patCats != 2 {
		t.Fatalf("index sizes = (%d, %d), want (1, 2)", patients, patCats)
	}
	if err := s.Delete("r2"); err != nil {
		t.Fatal(err)
	}
	if _, patCats = s.indexSizes(); patCats != 1 {
		t.Fatalf("emptied (alice, emergency) key not dropped: byPatCat=%d", patCats)
	}
	if err := s.Delete("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
}
