package phr

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"typepre/internal/hybrid"
)

// bulkWorkload materializes the shared bulk-disclosure fixture.
func bulkWorkload(t *testing.T, n int) (*Workload, *Proxy, string, string) {
	t.Helper()
	f, err := NewBulkFixture(n)
	if err != nil {
		t.Fatal(err)
	}
	return f.Workload, f.Proxy, f.PatientID, f.RequesterID
}

// TestDiscloseCategoryParallelMatchesSerial pins the worker-pool path to
// the serial one: same record order, byte-identical plaintexts after
// delegatee decryption.
func TestDiscloseCategoryParallelMatchesSerial(t *testing.T) {
	w, proxy, patient, requester := bulkWorkload(t, 24)
	key := w.Requesters[requester]

	serial, err := proxy.DiscloseCategory(w.Service.Store, patient, CategoryEmergency, requester)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := proxy.DiscloseCategoryParallel(w.Service.Store, patient, CategoryEmergency, requester)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 24 || len(parallel) != 24 {
		t.Fatalf("serial=%d parallel=%d, want 24", len(serial), len(parallel))
	}
	recs := mustList(t, w.Service.Store, patient, CategoryEmergency)
	for i := range parallel {
		want := w.Bodies[recs[i].ID]
		gotP, err := hybrid.DecryptReEncrypted(key, parallel[i])
		if err != nil {
			t.Fatalf("parallel item %d: %v", i, err)
		}
		gotS, err := hybrid.DecryptReEncrypted(key, serial[i])
		if err != nil {
			t.Fatalf("serial item %d: %v", i, err)
		}
		if !bytes.Equal(gotP, want) || !bytes.Equal(gotS, want) {
			t.Fatalf("item %d: plaintext mismatch (order broken?)", i)
		}
	}
}

// TestDiscloseCategoryStreamOrderAndAudit checks ordered emission and the
// per-record granted audit entries of the streaming path.
func TestDiscloseCategoryStreamOrderAndAudit(t *testing.T) {
	w, proxy, patient, requester := bulkWorkload(t, 8)
	key := w.Requesters[requester]
	recs := mustList(t, w.Service.Store, patient, CategoryEmergency)
	before := proxy.Audit().Len()

	i := 0
	err := proxy.DiscloseCategoryStream(w.Service.Store, patient, CategoryEmergency, requester,
		func(rct *hybrid.ReCiphertext) error {
			got, err := hybrid.DecryptReEncrypted(key, rct)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, w.Bodies[recs[i].ID]) {
				t.Fatalf("stream item %d out of order", i)
			}
			i++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if i != 8 {
		t.Fatalf("stream yielded %d items, want 8", i)
	}
	granted := 0
	for _, e := range proxy.Audit().Entries()[before:] {
		if e.Outcome == OutcomeGranted {
			granted++
		}
	}
	if granted != 8 {
		t.Fatalf("audit logged %d granted entries, want 8", granted)
	}

	// A consumer cancelling the stream is not a proxy error: the records
	// delivered so far stay audited as granted, nothing else is logged.
	before = proxy.Audit().Len()
	stop := errors.New("client went away")
	err = proxy.DiscloseCategoryStream(w.Service.Store, patient, CategoryEmergency, requester,
		func(*hybrid.ReCiphertext) error { return stop })
	if !errors.Is(err, stop) {
		t.Fatalf("got %v, want the consumer error", err)
	}
	for _, e := range proxy.Audit().Entries()[before:] {
		if e.Outcome == OutcomeError {
			t.Fatalf("consumer cancel audited as proxy error: %+v", e)
		}
	}
}

// TestDiscloseCategoryParallelNoGrant keeps the denial semantics: error,
// no results, one no-grant audit entry.
func TestDiscloseCategoryParallelNoGrant(t *testing.T) {
	w, proxy, patient, _ := bulkWorkload(t, 4)
	before := proxy.Audit().Len()
	_, err := proxy.DiscloseCategoryParallel(w.Service.Store, patient, CategoryEmergency, "eve@outside.example")
	if !errors.Is(err, ErrNoGrant) {
		t.Fatalf("got %v, want ErrNoGrant", err)
	}
	entries := proxy.Audit().Entries()[before:]
	if len(entries) != 1 || entries[0].Outcome != OutcomeNoGrant {
		t.Fatalf("audit after denial = %+v", entries)
	}
}

// TestDiscloseCategoryParallelConcurrentRequesters runs bulk disclosures
// from several goroutines against one proxy — race coverage for the pool,
// the grant table, the store, and the audit log together.
func TestDiscloseCategoryParallelConcurrentRequesters(t *testing.T) {
	w, proxy, patient, requester := bulkWorkload(t, 16)
	key := w.Requesters[requester]
	recs := mustList(t, w.Service.Store, patient, CategoryEmergency)

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rcts, err := proxy.DiscloseCategoryParallel(w.Service.Store, patient, CategoryEmergency, requester)
			if err != nil {
				errs <- err
				return
			}
			for i, rct := range rcts {
				got, err := hybrid.DecryptReEncrypted(key, rct)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, w.Bodies[recs[i].ID]) {
					errs <- errors.New("concurrent bulk disclosure: order broken")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
