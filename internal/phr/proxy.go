package phr

import (
	"errors"
	"fmt"
	"sync"

	"typepre/internal/core"
	"typepre/internal/hybrid"
)

// Proxy errors.
var (
	ErrNoGrant = errors.New("phr: no re-encryption grant for this request")
)

// grantKey identifies one installed delegation.
type grantKey struct {
	patient   string
	category  Category
	requester string
}

// Proxy is a re-encryption proxy server (§5: the patient picks one proxy
// per category "according to trust"). It holds the re-encryption keys
// installed by patients and transforms sealed records on request. It never
// sees plaintext: a proxy key lets it re-encrypt, not decrypt.
type Proxy struct {
	name  string
	audit *AuditLog

	mu     sync.RWMutex
	grants map[grantKey]*core.PreparedReKey
}

// NewProxy creates a proxy with its own audit log.
func NewProxy(name string) *Proxy {
	return &Proxy{name: name, audit: NewAuditLog(), grants: map[grantKey]*core.PreparedReKey{}}
}

// Name returns the proxy's deployment name.
func (p *Proxy) Name() string { return p.name }

// Audit exposes the proxy's audit log.
func (p *Proxy) Audit() *AuditLog { return p.audit }

// Install registers a re-encryption grant, preparing it for reuse across
// requests. The rekey's own metadata determines the (patient, category,
// requester) triple, so a mislabeled installation is impossible.
func (p *Proxy) Install(rk *core.ReKey) error {
	if rk == nil || rk.RK == nil {
		return fmt.Errorf("phr: invalid rekey")
	}
	k := grantKey{rk.DelegatorID, rk.Type, rk.DelegateeID}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.grants[k] = core.PrepareReKey(rk)
	return nil
}

// Revoke removes a grant. Returns ErrNoGrant when absent.
func (p *Proxy) Revoke(patientID string, c Category, requester string) error {
	k := grantKey{patientID, c, requester}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.grants[k]; !ok {
		return ErrNoGrant
	}
	delete(p.grants, k)
	return nil
}

// GrantCount returns the number of installed grants.
func (p *Proxy) GrantCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.grants)
}

// lookup finds the prepared grant for a request.
func (p *Proxy) lookup(patientID string, c Category, requester string) (*core.PreparedReKey, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	rk, ok := p.grants[grantKey{patientID, c, requester}]
	return rk, ok
}

// Disclose fetches a record from the store and re-encrypts it toward the
// requester, enforcing the grant table and writing an audit entry either
// way. This is the §5 on-demand disclosure path.
func (p *Proxy) Disclose(store *Store, recordID, requester string) (*hybrid.ReCiphertext, error) {
	rec, err := store.Get(recordID)
	if err != nil {
		p.audit.Append(AuditEntry{
			Proxy: p.name, RecordID: recordID, Requester: requester,
			Outcome: OutcomeNotFound,
		})
		return nil, err
	}
	rk, ok := p.lookup(rec.PatientID, rec.Category, requester)
	if !ok {
		p.audit.Append(AuditEntry{
			Proxy: p.name, PatientID: rec.PatientID, RecordID: recordID,
			Category: rec.Category, Requester: requester, Outcome: OutcomeNoGrant,
		})
		return nil, fmt.Errorf("%w: %s/%s for %s", ErrNoGrant, rec.PatientID, rec.Category, requester)
	}
	rct, err := hybrid.ReEncryptPrepared(rec.Sealed, rk)
	if err != nil {
		p.audit.Append(AuditEntry{
			Proxy: p.name, PatientID: rec.PatientID, RecordID: recordID,
			Category: rec.Category, Requester: requester, Outcome: OutcomeError,
		})
		return nil, err
	}
	p.audit.Append(AuditEntry{
		Proxy: p.name, PatientID: rec.PatientID, RecordID: recordID,
		Category: rec.Category, Requester: requester, Outcome: OutcomeGranted,
	})
	return rct, nil
}

// DiscloseCategory re-encrypts every record of (patient, category) toward
// the requester — the bulk path used in emergencies (§5: "the PHR data can
// be disclosed on demand by the proxy").
func (p *Proxy) DiscloseCategory(store *Store, patientID string, c Category, requester string) ([]*hybrid.ReCiphertext, error) {
	if _, ok := p.lookup(patientID, c, requester); !ok {
		p.audit.Append(AuditEntry{
			Proxy: p.name, PatientID: patientID, Category: c,
			Requester: requester, Outcome: OutcomeNoGrant,
		})
		return nil, fmt.Errorf("%w: %s/%s for %s", ErrNoGrant, patientID, c, requester)
	}
	recs := store.ListByPatientCategory(patientID, c)
	out := make([]*hybrid.ReCiphertext, 0, len(recs))
	for _, rec := range recs {
		rct, err := p.Disclose(store, rec.ID, requester)
		if err != nil {
			return nil, err
		}
		out = append(out, rct)
	}
	return out, nil
}

// DiscloseCategoryStream is the streaming bulk-disclosure path: it checks
// the grant once, fans re-encryption of the patient's records across a
// bounded worker pool (hybrid.ReEncryptStream, sized by GOMAXPROCS,
// sharing the prepared grant's pairing cache), and calls yield once per
// record in insertion order as results complete. Memory stays bounded by
// the pool size, not the record count, so the HTTP layer can stream frames
// to the wire as they are produced.
//
// Audit semantics match the serial path: one granted entry per disclosed
// record; a denial or a failed transformation is audited once.
func (p *Proxy) DiscloseCategoryStream(store *Store, patientID string, c Category, requester string, yield func(*hybrid.ReCiphertext) error) error {
	rk, ok := p.lookup(patientID, c, requester)
	if !ok {
		p.audit.Append(AuditEntry{
			Proxy: p.name, PatientID: patientID, Category: c,
			Requester: requester, Outcome: OutcomeNoGrant,
		})
		return fmt.Errorf("%w: %s/%s for %s", ErrNoGrant, patientID, c, requester)
	}
	recs := store.ListByPatientCategory(patientID, c)
	cts := make([]*hybrid.Ciphertext, len(recs))
	for i, rec := range recs {
		cts[i] = rec.Sealed
	}
	next := 0
	var yieldErr error // consumer rejection, not a transformation failure
	err := hybrid.ReEncryptStream(cts, rk, 0, func(rct *hybrid.ReCiphertext) error {
		rec := recs[next]
		next++
		if e := yield(rct); e != nil {
			yieldErr = e
			return e
		}
		// Audit after delivery, so the log records what actually left the
		// proxy: a record whose frame never reached the consumer is not
		// logged as disclosed.
		p.audit.Append(AuditEntry{
			Proxy: p.name, PatientID: rec.PatientID, RecordID: rec.ID,
			Category: rec.Category, Requester: requester, Outcome: OutcomeGranted,
		})
		return nil
	})
	// Only a re-encryption failure is a proxy error worth auditing; a
	// consumer that stops the stream (client disconnect, cancel) has every
	// delivered record audited as granted already.
	if err != nil && yieldErr == nil {
		p.audit.Append(AuditEntry{
			Proxy: p.name, PatientID: patientID, Category: c,
			Requester: requester, Outcome: OutcomeError,
		})
	}
	return err
}

// DiscloseCategoryParallel is DiscloseCategory with the re-encryption
// work spread across the worker pool: same results in the same (insertion)
// order, near-linear scaling in GOMAXPROCS on multi-record patients (the
// BenchmarkDiscloseCategory serial/parallel pair measures this).
func (p *Proxy) DiscloseCategoryParallel(store *Store, patientID string, c Category, requester string) ([]*hybrid.ReCiphertext, error) {
	var out []*hybrid.ReCiphertext
	err := p.DiscloseCategoryStream(store, patientID, c, requester, func(rct *hybrid.ReCiphertext) error {
		out = append(out, rct)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CompromisedGrants models a corrupted proxy: the attacker walks away with
// every installed rekey. Used by the E6 blast-radius experiment.
func (p *Proxy) CompromisedGrants() []*core.ReKey {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]*core.ReKey, 0, len(p.grants))
	for _, rk := range p.grants {
		out = append(out, rk.ReKey())
	}
	return out
}
