package phr

import (
	"errors"
	"fmt"
	"sync"

	"typepre/internal/core"
	"typepre/internal/hybrid"
)

// Proxy errors.
var (
	ErrNoGrant = errors.New("phr: no re-encryption grant for this request")
	// ErrStaleGrant marks a grant that predates the category's key
	// rotation: it is still installed, but the records have been re-sealed
	// under a newer type epoch and the rekey can no longer transform them.
	ErrStaleGrant = errors.New("phr: grant predates the category's key rotation")
	// ErrBreakGlassReason is returned when the break-glass path is invoked
	// without a reason; the audited reason is mandatory.
	ErrBreakGlassReason = errors.New("phr: break-glass access requires a reason")
)

// grantKey identifies one installed delegation by its *logical* category:
// a rotation-epoch rekey for "emergency#e2" is keyed under "emergency", so
// re-granting after a rotation replaces the stale grant instead of
// accumulating one entry per epoch.
type grantKey struct {
	patient   string
	category  Category
	requester string
}

// Proxy is a re-encryption proxy server (§5: the patient picks one proxy
// per category "according to trust"). It holds the re-encryption keys
// installed by patients and transforms sealed records on request. It never
// sees plaintext: a proxy key lets it re-encrypt, not decrypt.
type Proxy struct {
	name  string
	audit *AuditLog

	mu     sync.RWMutex
	grants map[grantKey]*core.PreparedReKey // phrlint:guardedby mu
}

// NewProxy creates a proxy with its own audit log.
func NewProxy(name string) *Proxy {
	return &Proxy{name: name, audit: NewAuditLog(), grants: map[grantKey]*core.PreparedReKey{}}
}

// Name returns the proxy's deployment name.
func (p *Proxy) Name() string { return p.name }

// Audit exposes the proxy's audit log.
func (p *Proxy) Audit() *AuditLog { return p.audit }

// Install registers a re-encryption grant, preparing it for reuse across
// requests. The rekey's own metadata determines the (patient, category,
// requester) triple, so a mislabeled installation is impossible. A rekey
// for a newer rotation epoch of the same logical category replaces the
// stale grant (and its prepared pairing cache) outright.
func (p *Proxy) Install(rk *core.ReKey) error {
	if rk == nil || rk.RK == nil {
		return fmt.Errorf("phr: invalid rekey")
	}
	k := grantKey{rk.DelegatorID, BaseCategory(rk.Type), rk.DelegateeID}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.grants[k] = core.PrepareReKey(rk)
	return nil
}

// Revoke removes a grant. Returns ErrNoGrant when absent. Removal drops
// the prepared rekey — and with it the cached pairing adjustments — so a
// revoked pair cannot be served from any warm cache, and any in-flight
// streaming disclosure for the pair terminates before its next record.
func (p *Proxy) Revoke(patientID string, c Category, requester string) error {
	k := grantKey{patientID, c, requester}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.grants[k]; !ok {
		return ErrNoGrant
	}
	delete(p.grants, k)
	return nil
}

// GrantCount returns the number of installed grants.
func (p *Proxy) GrantCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.grants)
}

// lookup finds the prepared grant for a request.
func (p *Proxy) lookup(patientID string, c Category, requester string) (*core.PreparedReKey, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	rk, ok := p.grants[grantKey{patientID, c, requester}]
	return rk, ok
}

// staleErr builds the denial for a grant whose epoch no longer matches the
// stored records.
func staleErr(patientID string, c Category, requester string, grantType, sealedType core.Type) error {
	return fmt.Errorf("%w: %s/%s for %s (grant epoch %q, records sealed as %q)",
		ErrStaleGrant, patientID, c, requester, grantType, sealedType)
}

// Disclose fetches a record from the store and re-encrypts it toward the
// requester, enforcing the grant table and writing an audit entry either
// way. This is the §5 on-demand disclosure path.
func (p *Proxy) Disclose(store Backend, recordID, requester string) (*hybrid.ReCiphertext, error) {
	rec, err := store.Get(recordID)
	if err != nil {
		p.audit.Append(AuditEntry{
			Proxy: p.name, RecordID: recordID, Requester: requester,
			Outcome: OutcomeNotFound,
		})
		return nil, err
	}
	rk, ok := p.lookup(rec.PatientID, rec.Category, requester)
	if !ok {
		p.audit.Append(AuditEntry{
			Proxy: p.name, PatientID: rec.PatientID, RecordID: recordID,
			Category: rec.Category, Requester: requester, Outcome: OutcomeNoGrant,
		})
		return nil, fmt.Errorf("%w: %s/%s for %s", ErrNoGrant, rec.PatientID, rec.Category, requester)
	}
	if rk.ReKey().Type != rec.Sealed.KEM.Type {
		p.audit.Append(AuditEntry{
			Proxy: p.name, PatientID: rec.PatientID, RecordID: recordID,
			Category: rec.Category, Requester: requester, Outcome: OutcomeStaleGrant,
		})
		return nil, staleErr(rec.PatientID, rec.Category, requester, rk.ReKey().Type, rec.Sealed.KEM.Type)
	}
	rct, err := hybrid.ReEncryptPrepared(rec.Sealed, rk)
	if err != nil {
		p.audit.Append(AuditEntry{
			Proxy: p.name, PatientID: rec.PatientID, RecordID: recordID,
			Category: rec.Category, Requester: requester, Outcome: OutcomeError,
		})
		return nil, err
	}
	p.audit.Append(AuditEntry{
		Proxy: p.name, PatientID: rec.PatientID, RecordID: recordID,
		Category: rec.Category, Requester: requester, Outcome: OutcomeGranted,
	})
	return rct, nil
}

// DiscloseCategory re-encrypts every record of (patient, category) toward
// the requester — the bulk path used in emergencies (§5: "the PHR data can
// be disclosed on demand by the proxy").
func (p *Proxy) DiscloseCategory(store Backend, patientID string, c Category, requester string) ([]*hybrid.ReCiphertext, error) {
	if _, ok := p.lookup(patientID, c, requester); !ok {
		p.audit.Append(AuditEntry{
			Proxy: p.name, PatientID: patientID, Category: c,
			Requester: requester, Outcome: OutcomeNoGrant,
		})
		return nil, fmt.Errorf("%w: %s/%s for %s", ErrNoGrant, patientID, c, requester)
	}
	recs, err := store.ListByPatientCategory(patientID, c)
	if err != nil {
		p.audit.Append(AuditEntry{
			Proxy: p.name, PatientID: patientID, Category: c,
			Requester: requester, Outcome: OutcomeError,
		})
		return nil, err
	}
	out := make([]*hybrid.ReCiphertext, 0, len(recs))
	for _, rec := range recs {
		rct, err := p.Disclose(store, rec.ID, requester)
		if err != nil {
			return nil, err
		}
		out = append(out, rct)
	}
	return out, nil
}

// DiscloseCategoryStream is the streaming bulk-disclosure path: it checks
// the grant once, fans re-encryption of the patient's records across a
// bounded worker pool (hybrid.ReEncryptStream, sized by GOMAXPROCS,
// sharing the prepared grant's pairing cache), and calls yield once per
// record in insertion order as results complete. Memory stays bounded by
// the pool size, not the record count, so the HTTP layer can stream frames
// to the wire as they are produced.
//
// Revocation wins over an in-flight stream: before each record is
// released, the grant is re-checked, and a pair revoked (or re-keyed)
// mid-stream stops the stream with ErrNoGrant before the next record
// leaves the proxy.
//
// Audit semantics match the serial path: one granted entry per disclosed
// record; a denial or a failed transformation is audited once.
func (p *Proxy) DiscloseCategoryStream(store Backend, patientID string, c Category, requester string, yield func(*hybrid.ReCiphertext) error) error {
	return p.discloseCategoryStream(store, patientID, c, requester, OutcomeGranted, "", yield)
}

// discloseCategoryStream is the shared bulk-disclosure engine; outcome and
// note parameterize how each released record is audited (OutcomeGranted
// for the regular path, OutcomeBreakGlass plus the mandatory reason for
// emergency access).
func (p *Proxy) discloseCategoryStream(store Backend, patientID string, c Category, requester string, outcome Outcome, note string, yield func(*hybrid.ReCiphertext) error) error {
	rk, ok := p.lookup(patientID, c, requester)
	if !ok {
		p.audit.Append(AuditEntry{
			Proxy: p.name, PatientID: patientID, Category: c,
			Requester: requester, Outcome: OutcomeNoGrant, Note: note,
		})
		return fmt.Errorf("%w: %s/%s for %s", ErrNoGrant, patientID, c, requester)
	}
	recs, err := store.ListByPatientCategory(patientID, c)
	if err != nil {
		p.audit.Append(AuditEntry{
			Proxy: p.name, PatientID: patientID, Category: c,
			Requester: requester, Outcome: OutcomeError, Note: note,
		})
		return err
	}
	grantType := rk.ReKey().Type
	for _, rec := range recs {
		if rec.Sealed.KEM.Type != grantType {
			p.audit.Append(AuditEntry{
				Proxy: p.name, PatientID: patientID, RecordID: rec.ID,
				Category: c, Requester: requester, Outcome: OutcomeStaleGrant, Note: note,
			})
			return staleErr(patientID, c, requester, grantType, rec.Sealed.KEM.Type)
		}
	}
	cts := make([]*hybrid.Ciphertext, len(recs))
	for i, rec := range recs {
		cts[i] = rec.Sealed
	}
	next := 0
	var yieldErr error // consumer rejection, not a transformation failure
	revoked := false
	err = hybrid.ReEncryptStream(cts, rk, 0, func(rct *hybrid.ReCiphertext) error {
		rec := recs[next]
		next++
		// Re-check liveness before the record leaves the proxy: a revoked
		// pair — or one re-keyed to a fresh grant — must not keep being
		// served from the snapshot this stream started with.
		if cur, live := p.lookup(patientID, c, requester); !live || cur != rk {
			revoked = true
			return fmt.Errorf("%w: %s/%s for %s (revoked mid-stream)", ErrNoGrant, patientID, c, requester)
		}
		if e := yield(rct); e != nil {
			yieldErr = e
			return e
		}
		// Audit after delivery, so the log records what actually left the
		// proxy: a record whose frame never reached the consumer is not
		// logged as disclosed.
		p.audit.Append(AuditEntry{
			Proxy: p.name, PatientID: rec.PatientID, RecordID: rec.ID,
			Category: rec.Category, Requester: requester, Outcome: outcome, Note: note,
		})
		return nil
	})
	// A mid-stream revocation is audited as the denial it is; only a
	// re-encryption failure is a proxy error; a consumer that stops the
	// stream (client disconnect, cancel) has every delivered record
	// audited already.
	switch {
	case revoked:
		p.audit.Append(AuditEntry{
			Proxy: p.name, PatientID: patientID, Category: c,
			Requester: requester, Outcome: OutcomeNoGrant, Note: note,
		})
	case err != nil && yieldErr == nil:
		p.audit.Append(AuditEntry{
			Proxy: p.name, PatientID: patientID, Category: c,
			Requester: requester, Outcome: OutcomeError, Note: note,
		})
	}
	return err
}

// BreakGlass is the emergency-access bulk disclosure path: identical
// cryptographic enforcement to DiscloseCategoryStream — break-glass does
// not bypass the grant table, it uses a pre-authorized emergency grant —
// but every released record is audited with the distinguishable
// OutcomeBreakGlass and the mandatory reason, and denials carry the reason
// too, so an emergency access can never hide among routine disclosures.
func (p *Proxy) BreakGlass(store Backend, patientID string, c Category, requester, reason string, yield func(*hybrid.ReCiphertext) error) error {
	if reason == "" {
		return ErrBreakGlassReason
	}
	return p.discloseCategoryStream(store, patientID, c, requester, OutcomeBreakGlass, reason, yield)
}

// DiscloseCategoryParallel is DiscloseCategory with the re-encryption
// work spread across the worker pool: same results in the same (insertion)
// order, near-linear scaling in GOMAXPROCS on multi-record patients (the
// BenchmarkDiscloseCategory serial/parallel pair measures this).
func (p *Proxy) DiscloseCategoryParallel(store Backend, patientID string, c Category, requester string) ([]*hybrid.ReCiphertext, error) {
	var out []*hybrid.ReCiphertext
	err := p.DiscloseCategoryStream(store, patientID, c, requester, func(rct *hybrid.ReCiphertext) error {
		out = append(out, rct)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CompromisedGrants models a corrupted proxy: the attacker walks away with
// every installed rekey. Used by the E6 blast-radius experiment.
func (p *Proxy) CompromisedGrants() []*core.ReKey {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]*core.ReKey, 0, len(p.grants))
	for _, rk := range p.grants {
		out = append(out, rk.ReKey())
	}
	return out
}
