package phr

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"typepre/internal/ibe"
)

// scenario is the §5 cast: Alice the patient, Bob the doctor, Eve a nosy
// outsider, all wired into a per-category service.
type scenario struct {
	kgc1, kgc2 *ibe.KGC
	svc        *Service
	alice      *Patient
	bobKey     *ibe.PrivateKey
	eveKey     *ibe.PrivateKey
}

func newScenario(t *testing.T) *scenario {
	t.Helper()
	kgc1, err := ibe.Setup("phr-kgc1", nil)
	if err != nil {
		t.Fatal(err)
	}
	kgc2, err := ibe.Setup("phr-kgc2", nil)
	if err != nil {
		t.Fatal(err)
	}
	return &scenario{
		kgc1:   kgc1,
		kgc2:   kgc2,
		svc:    NewService(StandardCategories()),
		alice:  NewPatient(kgc1, "alice@phr.example"),
		bobKey: kgc2.Extract("dr-bob@clinic.example"),
		eveKey: kgc2.Extract("eve@outside.example"),
	}
}

func TestPatientOwnRoundTrip(t *testing.T) {
	s := newScenario(t)
	body := []byte("2008-03-14: bronchitis, prescribed amoxicillin")
	rec, err := s.alice.AddRecord(s.svc.Store, CategoryIllnessHistory, body, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.alice.ReadOwn(s.svc.Store, rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("patient cannot read own record")
	}
}

func TestDisclosureFlow(t *testing.T) {
	s := newScenario(t)
	body := []byte("allergy: penicillin")
	rec, err := s.alice.AddRecord(s.svc.Store, CategoryEmergency, body, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.svc.Grant(s.alice, s.kgc2.Params(), "dr-bob@clinic.example", CategoryEmergency); err != nil {
		t.Fatal(err)
	}
	got, err := s.svc.Read(rec.ID, s.bobKey)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("granted doctor cannot read the record")
	}
}

func TestNoGrantDenied(t *testing.T) {
	s := newScenario(t)
	rec, err := s.alice.AddRecord(s.svc.Store, CategoryIllnessHistory, []byte("private"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.svc.Read(rec.ID, s.bobKey); !errors.Is(err, ErrNoGrant) {
		t.Fatalf("want ErrNoGrant, got %v", err)
	}
	// Denial must be audited.
	proxy, _ := s.svc.ProxyFor(CategoryIllnessHistory)
	denials := proxy.Audit().Denials()
	if len(denials) != 1 || denials[0].Outcome != OutcomeNoGrant {
		t.Fatalf("expected one no-grant audit entry, got %+v", denials)
	}
}

func TestGrantIsCategoryScoped(t *testing.T) {
	s := newScenario(t)
	recIll, _ := s.alice.AddRecord(s.svc.Store, CategoryIllnessHistory, []byte("illness"), nil)
	recFood, _ := s.alice.AddRecord(s.svc.Store, CategoryFoodStatistics, []byte("food"), nil)

	if err := s.svc.Grant(s.alice, s.kgc2.Params(), "dr-bob@clinic.example", CategoryFoodStatistics); err != nil {
		t.Fatal(err)
	}
	if got, err := s.svc.Read(recFood.ID, s.bobKey); err != nil || !bytes.Equal(got, []byte("food")) {
		t.Fatalf("granted category unreadable: %v", err)
	}
	if _, err := s.svc.Read(recIll.ID, s.bobKey); !errors.Is(err, ErrNoGrant) {
		t.Fatalf("ungranted category readable: %v", err)
	}
}

func TestGrantIsRequesterScoped(t *testing.T) {
	s := newScenario(t)
	rec, _ := s.alice.AddRecord(s.svc.Store, CategoryEmergency, []byte("bt O−"), nil)
	if err := s.svc.Grant(s.alice, s.kgc2.Params(), "dr-bob@clinic.example", CategoryEmergency); err != nil {
		t.Fatal(err)
	}
	if _, err := s.svc.Read(rec.ID, s.eveKey); !errors.Is(err, ErrNoGrant) {
		t.Fatalf("other requester readable: %v", err)
	}
}

func TestRevocation(t *testing.T) {
	s := newScenario(t)
	rec, _ := s.alice.AddRecord(s.svc.Store, CategoryEmergency, []byte("x"), nil)
	if err := s.svc.Grant(s.alice, s.kgc2.Params(), "dr-bob@clinic.example", CategoryEmergency); err != nil {
		t.Fatal(err)
	}
	if _, err := s.svc.Read(rec.ID, s.bobKey); err != nil {
		t.Fatal(err)
	}
	proxy, _ := s.svc.ProxyFor(CategoryEmergency)
	if err := s.alice.Revoke(proxy, "dr-bob@clinic.example", CategoryEmergency); err != nil {
		t.Fatal(err)
	}
	if _, err := s.svc.Read(rec.ID, s.bobKey); !errors.Is(err, ErrNoGrant) {
		t.Fatalf("revoked grant still effective: %v", err)
	}
	// Revoking twice reports ErrNoGrant.
	if err := s.alice.Revoke(proxy, "dr-bob@clinic.example", CategoryEmergency); !errors.Is(err, ErrNoGrant) {
		t.Fatalf("double revoke: want ErrNoGrant, got %v", err)
	}
}

func TestReadCategoryBulk(t *testing.T) {
	s := newScenario(t)
	want := [][]byte{[]byte("r1"), []byte("r2"), []byte("r3")}
	for _, b := range want {
		if _, err := s.alice.AddRecord(s.svc.Store, CategoryEmergency, b, nil); err != nil {
			t.Fatal(err)
		}
	}
	// One record of a different category must not leak into the bulk read.
	if _, err := s.alice.AddRecord(s.svc.Store, CategoryMedication, []byte("other"), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.svc.Grant(s.alice, s.kgc2.Params(), "dr-bob@clinic.example", CategoryEmergency); err != nil {
		t.Fatal(err)
	}
	got, err := s.svc.ReadCategory("alice@phr.example", CategoryEmergency, s.bobKey)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("bulk read returned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestStoreIndexes(t *testing.T) {
	s := newScenario(t)
	carol := NewPatient(s.kgc1, "carol@phr.example")
	if _, err := s.alice.AddRecord(s.svc.Store, CategoryIllnessHistory, []byte("a1"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.alice.AddRecord(s.svc.Store, CategoryEmergency, []byte("a2"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := carol.AddRecord(s.svc.Store, CategoryEmergency, []byte("c1"), nil); err != nil {
		t.Fatal(err)
	}

	if n := s.svc.Store.Count(); n != 3 {
		t.Fatalf("Count = %d, want 3", n)
	}
	if n := s.svc.Store.CountByPatient("alice@phr.example"); n != 2 {
		t.Fatalf("alice count = %d, want 2", n)
	}
	if got := s.svc.Store.Patients(); len(got) != 2 || got[0] != "alice@phr.example" {
		t.Fatalf("Patients = %v", got)
	}
	cats := s.svc.Store.Categories("alice@phr.example")
	if len(cats) != 2 {
		t.Fatalf("alice categories = %v", cats)
	}
	recs := mustList(t, s.svc.Store, "alice@phr.example", CategoryEmergency)
	if len(recs) != 1 {
		t.Fatalf("index returned %d records, want 1", len(recs))
	}
}

func TestStoreDeleteAndErrors(t *testing.T) {
	s := newScenario(t)
	rec, _ := s.alice.AddRecord(s.svc.Store, CategoryEmergency, []byte("x"), nil)
	if err := s.svc.Store.Put(rec); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate Put: want ErrDuplicate, got %v", err)
	}
	if err := s.svc.Store.Delete(rec.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.svc.Store.Get(rec.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete: want ErrNotFound, got %v", err)
	}
	if err := s.svc.Store.Delete(rec.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Delete: want ErrNotFound, got %v", err)
	}
	if s.svc.Store.CountByPatient("alice@phr.example") != 0 {
		t.Fatal("index not cleaned after delete")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	// The store is the shared substrate; hammer it from goroutines.
	s := newScenario(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				rec := &EncryptedRecord{
					ID:        fmt.Sprintf("g%d/r%d", g, i),
					PatientID: fmt.Sprintf("p%d", g%3),
					Category:  CategoryEmergency,
				}
				if err := s.svc.Store.Put(rec); err != nil {
					errs <- err
					return
				}
				if _, err := s.svc.Store.Get(rec.ID); err != nil {
					errs <- err
					return
				}
				if _, err := s.svc.Store.ListByPatient(rec.PatientID); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := s.svc.Store.Count(); n != 64 {
		t.Fatalf("Count = %d, want 64", n)
	}
}

func TestAuditTrail(t *testing.T) {
	s := newScenario(t)
	rec, _ := s.alice.AddRecord(s.svc.Store, CategoryEmergency, []byte("x"), nil)
	s.svc.Grant(s.alice, s.kgc2.Params(), "dr-bob@clinic.example", CategoryEmergency)
	if _, err := s.svc.Read(rec.ID, s.bobKey); err != nil {
		t.Fatal(err)
	}
	s.svc.Read(rec.ID, s.eveKey) // denied

	proxy, _ := s.svc.ProxyFor(CategoryEmergency)
	log := proxy.Audit()
	if log.Len() != 2 {
		t.Fatalf("audit entries = %d, want 2", log.Len())
	}
	bobEntries := log.ByRequester("dr-bob@clinic.example")
	if len(bobEntries) != 1 || bobEntries[0].Outcome != OutcomeGranted {
		t.Fatalf("bob audit = %+v", bobEntries)
	}
	if len(log.Denials()) != 1 {
		t.Fatalf("denials = %d, want 1", len(log.Denials()))
	}
	// Unknown record is audited as not-found.
	if _, err := proxy.Disclose(s.svc.Store, "nope", "dr-bob@clinic.example"); err == nil {
		t.Fatal("unknown record disclosed")
	}
	if got := log.Entries()[log.Len()-1].Outcome; got != OutcomeNotFound {
		t.Fatalf("last outcome = %s, want not-found", got)
	}
}

func TestDynamicProxyDeployment(t *testing.T) {
	// §5: Alice travels to the US and deploys a local emergency proxy.
	s := newScenario(t)
	rec, _ := s.alice.AddRecord(s.svc.Store, CategoryEmergency, []byte("blood type O−"), nil)

	usProxy := NewProxy("proxy-us-east")
	s.svc.DeployProxy(CategoryEmergency, usProxy)
	usDoctor := s.kgc2.Extract("er-doc@us-hospital.example")
	if err := s.svc.Grant(s.alice, s.kgc2.Params(), "er-doc@us-hospital.example", CategoryEmergency); err != nil {
		t.Fatal(err)
	}
	got, err := s.svc.Read(rec.ID, usDoctor)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("blood type O−")) {
		t.Fatal("US emergency disclosure failed")
	}
	if usProxy.GrantCount() != 1 {
		t.Fatal("grant not routed to the deployed proxy")
	}
}

func TestWorkloadGeneration(t *testing.T) {
	w, err := GenerateWorkload(DefaultWorkload())
	if err != nil {
		t.Fatal(err)
	}
	cfg := w.Config
	if len(w.Patients) != cfg.Patients {
		t.Fatalf("patients = %d", len(w.Patients))
	}
	if w.Service.Store.Count() != cfg.Patients*cfg.RecordsPerPatient {
		t.Fatalf("records = %d", w.Service.Store.Count())
	}
	if len(w.Grants) == 0 {
		t.Fatal("no grants generated")
	}
	// Every granted (patient, category, requester) triple must be readable.
	g := w.Grants[0]
	bodies, err := w.Service.ReadCategory(g.PatientID, g.Category, w.Requesters[g.RequesterID])
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bodies {
		if len(b) != cfg.BodySize {
			t.Fatalf("body size = %d, want %d", len(b), cfg.BodySize)
		}
	}
}

func TestBlastRadiusTypeVsTraditional(t *testing.T) {
	// E6 at test scale: corrupting one category proxy exposes at most that
	// category under the paper's scheme, but everything under traditional
	// PRE. Then cryptographically verify the structural simulation.
	w, err := GenerateWorkload(DefaultWorkload())
	if err != nil {
		t.Fatal(err)
	}
	emergency, err := w.Service.ProxyFor(CategoryEmergency)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := []*Proxy{emergency}

	typeRep := SimulateTypePREBreach(w.Service.Store, corrupted)
	tradRep := SimulateTraditionalPREBreach(w.Service.Store, corrupted)

	if typeRep.TotalRecords != w.Service.Store.Count() {
		t.Fatal("total mismatch")
	}
	// Type-PRE never exposes a category the corrupted proxy does not serve.
	for c, n := range typeRep.ExposedByCategory {
		if c != CategoryEmergency && n > 0 {
			t.Fatalf("type-PRE exposed foreign category %s", c)
		}
	}
	if typeRep.ExposedRecords > tradRep.ExposedRecords {
		t.Fatal("type-PRE exposed more than traditional PRE")
	}
	// Cryptographic ground truth.
	exposedOK, isolatedOK := VerifyTypePREBreach(w, corrupted)
	if !exposedOK {
		t.Fatal("simulation marked records exposed that the attacker cannot open")
	}
	if !isolatedOK {
		t.Fatal("attacker opened records the simulation marked isolated — Theorem 1 violated")
	}
}

func TestExposureFractionEmptyStore(t *testing.T) {
	rep := SimulateTypePREBreach(NewStore(), nil)
	if rep.Fraction() != 0 {
		t.Fatal("empty store fraction != 0")
	}
}

func TestServiceNoProxyForUnknownCategory(t *testing.T) {
	s := NewService([]Category{CategoryEmergency})
	if _, err := s.ProxyFor("unknown"); !errors.Is(err, ErrNoProxy) {
		t.Fatalf("want ErrNoProxy, got %v", err)
	}
}

func TestReadOwnWrongPatientRejected(t *testing.T) {
	s := newScenario(t)
	carol := NewPatient(s.kgc1, "carol@phr.example")
	rec, _ := s.alice.AddRecord(s.svc.Store, CategoryEmergency, []byte("x"), nil)
	if _, err := carol.ReadOwn(s.svc.Store, rec.ID); err == nil {
		t.Fatal("another patient read a foreign record")
	}
}

// mustList is the test-side wrapper over Backend list reads: the memory
// backend cannot fail them, so a non-nil error is a test bug.
func mustList(t *testing.T, b Backend, patientID string, c Category) []*EncryptedRecord {
	t.Helper()
	recs, err := b.ListByPatientCategory(patientID, c)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}
