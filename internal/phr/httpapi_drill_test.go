package phr

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"typepre/internal/core"
	"typepre/internal/hybrid"
)

// HTTP-layer lifecycle drills: the PR-6 scenario stories — revocation, key
// rotation, break-glass — driven through phrserver handlers and phr.Client
// so the wire protocol (status mapping, framing, audit visibility) is
// pinned against the same invariants the in-process drills check.

// TestHTTPRevocationDrill runs the revocation story over the wire: grant,
// disclose on every endpoint, revoke via the API, then watch every
// disclosure path deny with 403 and the denial land in the audit log
// fetched through the API.
func TestHTTPRevocationDrill(t *testing.T) {
	h := newHTTPScenario(t)
	const requester = "dr-bob@clinic.example"
	bodies := [][]byte{[]byte("bt O−"), []byte("allergy: latex")}
	for i, b := range bodies {
		rec := h.sealRecord(t, fmt.Sprintf("alice/rev-%d", i), CategoryEmergency, b)
		if err := h.client.PutRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	rk, err := h.alice.Delegator().Delegate(h.kgc2.Params(), requester, CategoryEmergency, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.client.InstallGrant(rk); err != nil {
		t.Fatal(err)
	}
	// Both disclosure shapes serve while the grant stands.
	if _, err := h.client.Disclose("alice/rev-0", requester); err != nil {
		t.Fatal(err)
	}
	rcts, err := h.client.DiscloseCategory(h.alice.ID(), CategoryEmergency, requester)
	if err != nil || len(rcts) != len(bodies) {
		t.Fatalf("pre-revoke bulk: err=%v n=%d", err, len(rcts))
	}

	if err := h.client.RevokeGrant(h.alice.ID(), CategoryEmergency, requester); err != nil {
		t.Fatal(err)
	}
	// Every path is now a 403 — the revoked pair cannot be served from any
	// warm cache.
	if _, err := h.client.Disclose("alice/rev-0", requester); err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("single disclosure after revoke: want 403, got %v", err)
	}
	if _, err := h.client.DiscloseCategory(h.alice.ID(), CategoryEmergency, requester); err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("bulk disclosure after revoke: want 403, got %v", err)
	}
	// The audit trail, fetched over the wire, records the granted
	// disclosures followed by the denials.
	entries, err := h.client.Audit(CategoryEmergency)
	if err != nil {
		t.Fatal(err)
	}
	var granted, denied int
	for _, e := range entries {
		switch {
		case e.Outcome == OutcomeGranted:
			granted++
		case e.Outcome.IsDenial():
			denied++
		}
	}
	if granted != 1+len(bodies) || denied != 2 {
		t.Fatalf("audit over HTTP: granted=%d denied=%d, want %d/2", granted, denied, 1+len(bodies))
	}
}

// TestHTTPRotationDrill runs the key-rotation story over the wire: after
// the patient rotates a category's type key, the pre-rotation grant is
// denied with 403 (ErrStaleGrant mapping) and audited as stale; a fresh
// grant installed through the API serves the re-sealed records and
// records sealed under the new epoch.
func TestHTTPRotationDrill(t *testing.T) {
	h := newHTTPScenario(t)
	const requester = "dr-bob@clinic.example"
	want := [][]byte{[]byte("metformin 500mg"), []byte("lisinopril 10mg")}
	for i, b := range want {
		rec := h.sealRecord(t, fmt.Sprintf("alice/rot-%d", i), CategoryMedication, b)
		if err := h.client.PutRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	rk, err := h.alice.Delegator().Delegate(h.kgc2.Params(), requester, CategoryMedication, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.client.InstallGrant(rk); err != nil {
		t.Fatal(err)
	}
	if _, err := h.client.Disclose("alice/rot-0", requester); err != nil {
		t.Fatal(err)
	}

	// Rotation is a patient-side operation against the store; the wire
	// contract under test is what the service answers afterwards.
	if _, err := h.alice.RotateTypeKey(h.svc.Store, CategoryMedication, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.client.Disclose("alice/rot-0", requester); err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("stale grant single disclosure: want 403, got %v", err)
	}
	if _, err := h.client.DiscloseCategory(h.alice.ID(), CategoryMedication, requester); err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("stale grant bulk disclosure: want 403, got %v", err)
	}
	entries, err := h.client.Audit(CategoryMedication)
	if err != nil {
		t.Fatal(err)
	}
	var stale int
	for _, e := range entries {
		if e.Outcome == OutcomeStaleGrant {
			stale++
		}
	}
	if stale != 2 {
		t.Fatalf("stale-grant audit entries over HTTP = %d, want 2", stale)
	}

	// A fresh grant for the rotated epoch, installed through the API,
	// restores service — including a record sealed directly under the new
	// epoch's wire type and uploaded through the API.
	rk2, err := h.alice.Delegator().Delegate(h.kgc2.Params(), requester,
		core.VersionedType(core.Type(CategoryMedication), h.alice.Epoch(CategoryMedication)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.client.InstallGrant(rk2); err != nil {
		t.Fatal(err)
	}
	post := []byte("atorvastatin 20mg")
	sealed, err := hybrid.Encrypt(h.alice.Delegator(), post,
		core.VersionedType(core.Type(CategoryMedication), h.alice.Epoch(CategoryMedication)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.client.PutRecord(&EncryptedRecord{
		ID: "alice/rot-post", PatientID: h.alice.ID(), Category: CategoryMedication, Sealed: sealed,
	}); err != nil {
		t.Fatal(err)
	}
	rcts, err := h.client.DiscloseCategory(h.alice.ID(), CategoryMedication, requester)
	if err != nil {
		t.Fatal(err)
	}
	if len(rcts) != len(want)+1 {
		t.Fatalf("post-rotation bulk returned %d records, want %d", len(rcts), len(want)+1)
	}
	for i, b := range append(append([][]byte{}, want...), post) {
		got, err := hybrid.DecryptReEncrypted(h.bobKey, rcts[i])
		if err != nil || !bytes.Equal(got, b) {
			t.Fatalf("post-rotation record %d: err=%v mismatch=%v", i, err, !bytes.Equal(got, b))
		}
	}
}

// TestHTTPBreakGlassDrill runs the break-glass story over the wire: the
// mandatory reason (400 without it, no audit traffic), streamed emergency
// disclosure through the standing grant, the distinguishable audit
// outcome carrying the reason, and the 403 for a responder without a
// grant — with the denial and its reason on record.
func TestHTTPBreakGlassDrill(t *testing.T) {
	h := newHTTPScenario(t)
	const responder = "dr-bob@clinic.example"
	emergency := [][]byte{[]byte("blood type O−"), []byte("allergy: penicillin")}
	for i, b := range emergency {
		rec := h.sealRecord(t, fmt.Sprintf("alice/bg-%d", i), CategoryEmergency, b)
		if err := h.client.PutRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	rk, err := h.alice.Delegator().Delegate(h.kgc2.Params(), responder, CategoryEmergency, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.client.InstallGrant(rk); err != nil {
		t.Fatal(err)
	}

	// Reason is mandatory: 400, and the refusal leaks nothing to the log.
	err = h.client.BreakGlass(h.alice.ID(), responder, "", func(*hybrid.ReCiphertext) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("break-glass without reason: want 400, got %v", err)
	}
	if entries, err := h.client.Audit(CategoryEmergency); err != nil || len(entries) != 0 {
		t.Fatalf("reason-less break-glass audit traffic: err=%v entries=%+v", err, entries)
	}

	const reason = "cardiac arrest, ER admission #4711"
	var got [][]byte
	err = h.client.BreakGlass(h.alice.ID(), responder, reason, func(rct *hybrid.ReCiphertext) error {
		b, err := hybrid.DecryptReEncrypted(h.bobKey, rct)
		if err != nil {
			return err
		}
		got = append(got, b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(emergency) {
		t.Fatalf("break-glass streamed %d records, want %d", len(got), len(emergency))
	}
	for i := range emergency {
		if !bytes.Equal(got[i], emergency[i]) {
			t.Fatalf("break-glass record %d mismatch", i)
		}
	}
	entries, err := h.client.Audit(CategoryEmergency)
	if err != nil {
		t.Fatal(err)
	}
	var bg int
	for _, e := range entries {
		if e.Outcome == OutcomeBreakGlass {
			bg++
			if e.Note != reason {
				t.Fatalf("break-glass entry lost its reason: %+v", e)
			}
		}
	}
	if bg != len(emergency) {
		t.Fatalf("break-glass audit entries over HTTP = %d, want %d", bg, len(emergency))
	}

	// No standing grant → 403, denial audited with the reason.
	err = h.client.BreakGlass(h.alice.ID(), "eve@outside.example", reason, func(*hybrid.ReCiphertext) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("unauthorized break-glass: want 403, got %v", err)
	}
	entries, err = h.client.Audit(CategoryEmergency)
	if err != nil {
		t.Fatal(err)
	}
	last := entries[len(entries)-1]
	if last.Outcome != OutcomeNoGrant || last.Note != reason {
		t.Fatalf("unauthorized break-glass denial = %+v", last)
	}
}

// TestHTTPMetricsEndpoint pins the instrumentation surface: after a few
// requests, /v1/metrics reports per-endpoint counts with the documented
// labels, and error requests are counted as errors.
func TestHTTPMetricsEndpoint(t *testing.T) {
	h := newHTTPScenario(t)
	rec := h.sealRecord(t, "alice/m1", CategoryEmergency, []byte("x"))
	if err := h.client.PutRecord(rec); err != nil {
		t.Fatal(err)
	}
	h.client.Disclose("alice/m1", "eve@outside.example") // 403 → error count
	if _, err := h.client.Audit(CategoryEmergency); err != nil {
		t.Fatal(err)
	}

	m, err := h.client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	byEndpoint := map[string]int{}
	errs := map[string]int{}
	for _, e := range m.Endpoints {
		byEndpoint[e.Endpoint] = int(e.Ops)
		errs[e.Endpoint] = int(e.Errors)
	}
	if byEndpoint[EndpointPut] != 1 || byEndpoint[EndpointDisclose] != 1 || byEndpoint[EndpointAudit] != 1 {
		t.Fatalf("endpoint ops = %+v", byEndpoint)
	}
	if errs[EndpointDisclose] != 1 {
		t.Fatalf("denied disclosure not counted as error: %+v", errs)
	}
	if m.InFlightHigh < 1 {
		t.Fatalf("in-flight high-water mark = %d, want ≥ 1", m.InFlightHigh)
	}
	if m.UptimeSeconds <= 0 {
		t.Fatalf("uptime = %v", m.UptimeSeconds)
	}
}

// TestHTTPAuditLimit pins the bounded-tail contract of GET /v1/audit.
func TestHTTPAuditLimit(t *testing.T) {
	h := newHTTPScenario(t)
	rec := h.sealRecord(t, "alice/l1", CategoryEmergency, []byte("x"))
	if err := h.client.PutRecord(rec); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		h.client.Disclose("alice/l1", "eve@outside.example") // audited denials
	}
	resp, err := http.Get(h.ts.URL + "/v1/audit?category=" + string(CategoryEmergency) + "&limit=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var entries []AuditEntry
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("limit=2 returned %d entries", len(entries))
	}
	if entries[0].Seq != 4 || entries[1].Seq != 5 {
		t.Fatalf("limit tail = seqs %d,%d, want 4,5", entries[0].Seq, entries[1].Seq)
	}
	// Malformed limit → 400.
	resp, err = http.Get(h.ts.URL + "/v1/audit?category=" + string(CategoryEmergency) + "&limit=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("limit=bogus: want 400, got %d", resp.StatusCode)
	}
}

// TestAuditJSONBodyMatchesMarshal pins the incremental encode cache to the
// reference encoding byte for byte, across interleaved appends and reads.
func TestAuditJSONBodyMatchesMarshal(t *testing.T) {
	log := NewAuditLog()
	check := func() {
		t.Helper()
		body, err := log.JSONBody()
		if err != nil {
			t.Fatal(err)
		}
		got := append(append([]byte{'['}, body...), ']')
		want, err := json.Marshal(log.Entries())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("cache diverged from json.Marshal:\n got %s\nwant %s", got, want)
		}
	}
	check() // empty log → []
	for i := 0; i < 10; i++ {
		log.Append(AuditEntry{Proxy: "p", RecordID: fmt.Sprintf("r%d", i),
			Requester: "q", Outcome: OutcomeGranted, Note: "why & <how>"})
		if i%3 == 0 {
			check() // interleave reads so the cache extends incrementally
		}
	}
	check()
}

// TestHTTPLegacyServerConfig pins that the measurement-control server
// (legacy audit encode, no frame pool) serves byte-identical responses.
func TestHTTPLegacyServerConfig(t *testing.T) {
	s := newScenario(t)
	legacy := httptest.NewServer(NewServerWith(s.svc, ServerConfig{LegacyAuditJSON: true, NoFramePool: true}))
	t.Cleanup(legacy.Close)
	client := NewClient(legacy.URL)

	body := []byte("legacy-path record")
	sealed, err := hybrid.Encrypt(s.alice.Delegator(), body, CategoryEmergency, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.PutRecord(&EncryptedRecord{
		ID: "alice/leg-1", PatientID: s.alice.ID(), Category: CategoryEmergency, Sealed: sealed,
	}); err != nil {
		t.Fatal(err)
	}
	rk, err := s.alice.Delegator().Delegate(s.kgc2.Params(), s.bobKey.ID, CategoryEmergency, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.InstallGrant(rk); err != nil {
		t.Fatal(err)
	}
	rct, err := client.Disclose("alice/leg-1", s.bobKey.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := hybrid.DecryptReEncrypted(s.bobKey, rct); err != nil || !bytes.Equal(got, body) {
		t.Fatalf("legacy single disclosure: err=%v", err)
	}
	rcts, err := client.DiscloseCategory(s.alice.ID(), CategoryEmergency, s.bobKey.ID)
	if err != nil || len(rcts) != 1 {
		t.Fatalf("legacy bulk disclosure: err=%v n=%d", err, len(rcts))
	}
	if entries, err := client.Audit(CategoryEmergency); err != nil || len(entries) != 2 {
		t.Fatalf("legacy audit: err=%v entries=%d", err, len(entries))
	}
}

// ---------------------------------------------------------------------------
// Bulk-stream decoder: corrupt and truncated streams
// ---------------------------------------------------------------------------

// validFrame produces one wire frame holding a freshly re-encrypted
// container, plus the expected plaintext.
func validFrame(t *testing.T) []byte {
	t.Helper()
	s := newScenario(t)
	rec, err := s.alice.AddRecord(s.svc.Store, CategoryEmergency, []byte("frame body"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.svc.Grant(s.alice, s.kgc2.Params(), s.bobKey.ID, CategoryEmergency); err != nil {
		t.Fatal(err)
	}
	rct, err := s.svc.Request(rec.ID, s.bobKey.ID)
	if err != nil {
		t.Fatal(err)
	}
	b := rct.Marshal()
	frame := make([]byte, 4, 4+len(b))
	binary.BigEndian.PutUint32(frame, uint32(len(b)))
	return append(frame, b...)
}

func TestDecodeBulkStreamCorruptAndTruncated(t *testing.T) {
	frame := validFrame(t)
	absurd := make([]byte, 4)
	binary.BigEndian.PutUint32(absurd, uint32(MaxRecordBytes+4097))
	garbage := append([]byte{0, 0, 0, 4}, []byte("junk")...)

	cases := []struct {
		name       string
		stream     []byte
		wantFrames int
		wantErr    error // nil = clean EOF
		wantEnc    bool  // hybrid.ErrEncoding expected
	}{
		{name: "empty stream", stream: nil, wantFrames: 0},
		{name: "one clean frame", stream: frame, wantFrames: 1},
		{name: "two clean frames", stream: append(append([]byte{}, frame...), frame...), wantFrames: 2},
		{name: "partial header 1 byte", stream: append(append([]byte{}, frame...), frame[0]), wantFrames: 1, wantErr: ErrTruncatedStream},
		{name: "partial header 3 bytes", stream: append(append([]byte{}, frame...), frame[:3]...), wantFrames: 1, wantErr: ErrTruncatedStream},
		{name: "truncated body", stream: append(append([]byte{}, frame...), frame[:len(frame)-5]...), wantFrames: 1, wantErr: ErrTruncatedStream},
		{name: "header only", stream: frame[:4], wantFrames: 0, wantErr: ErrTruncatedStream},
		{name: "absurd length prefix", stream: absurd, wantFrames: 0, wantErr: ErrFrameTooLarge},
		{name: "absurd prefix after clean frame", stream: append(append([]byte{}, frame...), absurd...), wantFrames: 1, wantErr: ErrFrameTooLarge},
		{name: "garbage container", stream: garbage, wantFrames: 0, wantEnc: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frames := 0
			err := DecodeBulkStream(bytes.NewReader(tc.stream), func(*hybrid.ReCiphertext) error {
				frames++
				return nil
			})
			if frames != tc.wantFrames {
				t.Fatalf("yielded %d frames, want %d (err=%v)", frames, tc.wantFrames, err)
			}
			switch {
			case tc.wantEnc:
				if !errors.Is(err, hybrid.ErrEncoding) {
					t.Fatalf("want hybrid.ErrEncoding, got %v", err)
				}
			case tc.wantErr == nil:
				if err != nil {
					t.Fatalf("want clean EOF, got %v", err)
				}
			default:
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("want %v, got %v", tc.wantErr, err)
				}
				// Truncation and oversize must never be conflated.
				other := ErrFrameTooLarge
				if tc.wantErr == ErrFrameTooLarge {
					other = ErrTruncatedStream
				}
				if errors.Is(err, other) {
					t.Fatalf("error matches both sentinels: %v", err)
				}
			}
		})
	}
}

// wrappedEOFReader serves a fixed stream, then reports end-of-stream as a
// transport error that wraps io.EOF rather than returning the bare
// sentinel — the shape a context-adding reader (fmt.Errorf("...: %w", err))
// produces.
type wrappedEOFReader struct {
	data []byte
}

func (r *wrappedEOFReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, fmt.Errorf("transport closed: %w", io.EOF)
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// TestDecodeBulkStreamWrappedEOF is the regression test for the former
// `err == io.EOF` comparison at the frame boundary: a wrapped EOF between
// frames is a clean end of stream, while a wrapped EOF mid-header is still
// typed truncation.
func TestDecodeBulkStreamWrappedEOF(t *testing.T) {
	frame := validFrame(t)

	frames := 0
	err := DecodeBulkStream(&wrappedEOFReader{data: append([]byte{}, frame...)}, func(*hybrid.ReCiphertext) error {
		frames++
		return nil
	})
	if err != nil {
		t.Fatalf("wrapped EOF at a frame boundary must read as a clean end of stream, got %v", err)
	}
	if frames != 1 {
		t.Fatalf("yielded %d frames, want 1", frames)
	}

	err = DecodeBulkStream(&wrappedEOFReader{data: frame[:2]}, func(*hybrid.ReCiphertext) error { return nil })
	if !errors.Is(err, ErrTruncatedStream) {
		t.Fatalf("wrapped EOF mid-header must be ErrTruncatedStream, got %v", err)
	}
}

// TestHTTPMidStreamAbortIsTypedTruncation pins the client-facing contract:
// a server that dies after the 200 is committed (here: one complete frame
// plus half of a second, then an aborted connection) surfaces to
// DiscloseCategoryStream as ErrTruncatedStream — distinctly from the clean
// EOF a completed stream produces — with the complete frames delivered.
func TestHTTPMidStreamAbortIsTypedTruncation(t *testing.T) {
	frame := validFrame(t)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/patients/{patient}/categories/{category}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(frame)
		w.Write(frame[:len(frame)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	frames := 0
	err := NewClient(ts.URL).DiscloseCategoryStream("alice", CategoryEmergency, "bob",
		func(*hybrid.ReCiphertext) error { frames++; return nil })
	if !errors.Is(err, ErrTruncatedStream) {
		t.Fatalf("mid-stream abort: want ErrTruncatedStream, got %v", err)
	}
	if frames != 1 {
		t.Fatalf("delivered %d complete frames before truncation, want 1", frames)
	}
}
