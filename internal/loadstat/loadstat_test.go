package loadstat

import (
	"math/rand/v2"
	"sync"
	"testing"
	"time"
)

func TestBucketOfBounds(t *testing.T) {
	for _, d := range []time.Duration{
		0, time.Microsecond, 3 * time.Microsecond, 100 * time.Microsecond,
		time.Millisecond, 250 * time.Millisecond, time.Second, 10 * time.Minute,
	} {
		b := bucketOf(d)
		if b < 0 || b >= numBuckets {
			t.Fatalf("bucketOf(%v) = %d out of range", d, b)
		}
		lo, hi := bucketBounds(b)
		us := float64(d.Microseconds())
		if b < numBuckets-1 && (us < lo || us >= hi) {
			t.Fatalf("bucketOf(%v)=%d but bounds [%v,%v) miss %vµs", d, b, lo, hi, us)
		}
	}
}

func TestSnapshotBasics(t *testing.T) {
	r := NewRecorder("put")
	for i := 0; i < 1000; i++ {
		r.Record(time.Duration(i)*time.Microsecond, i%10 == 0)
	}
	st := r.Snapshot(2 * time.Second)
	if st.Ops != 1000 || st.Errors != 100 {
		t.Fatalf("ops=%d errors=%d, want 1000/100", st.Ops, st.Errors)
	}
	if st.RPS != 500 {
		t.Fatalf("rps=%v, want 500", st.RPS)
	}
	if st.MeanUs < 400 || st.MeanUs > 600 {
		t.Fatalf("mean=%vµs, want ≈499.5", st.MeanUs)
	}
	// Factor-of-two buckets: quantiles are right to within one bucket.
	if st.P50Us < 256 || st.P50Us > 1024 {
		t.Fatalf("p50=%vµs, want within a bucket of 500", st.P50Us)
	}
	if st.MaxUs != 999 {
		t.Fatalf("max=%vµs, want 999", st.MaxUs)
	}
}

func TestEmptySnapshot(t *testing.T) {
	st := NewRecorder("idle").Snapshot(time.Second)
	if st.Ops != 0 || st.RPS != 0 || st.P99Us != 0 || st.MaxUs != 0 {
		t.Fatalf("empty recorder snapshot = %+v", st)
	}
}

// TestQuantileMonotonicity checks p50 ≤ p95 ≤ p99 ≤ max over many random
// latency distributions, including heavy-tailed ones.
func TestQuantileMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 50; trial++ {
		r := NewRecorder("q")
		n := 1 + rng.IntN(5000)
		for i := 0; i < n; i++ {
			us := rng.Int64N(1 << (1 + rng.IntN(24)))
			r.Record(time.Duration(us)*time.Microsecond, false)
		}
		st := r.Snapshot(time.Second)
		if !(st.P50Us <= st.P95Us && st.P95Us <= st.P99Us && st.P99Us <= st.MaxUs) {
			t.Fatalf("trial %d: quantiles not monotone: %+v", trial, st)
		}
		if st.Ops != uint64(n) {
			t.Fatalf("trial %d: ops=%d want %d", trial, st.Ops, n)
		}
	}
}

// TestConcurrentRecordersAndReaders hammers one collector from parallel
// recorders while snapshot readers run, then checks counter conservation:
// the final per-endpoint sums equal exactly what the writers recorded, and
// the total across endpoints equals the sum of the parts. Run under -race.
func TestConcurrentRecordersAndReaders(t *testing.T) {
	const (
		writers       = 8
		opsPerWriter  = 5000
		errEvery      = 7
		readerPasses  = 200
		endpointCount = 3
	)
	endpoints := []string{"put", "disclose", "stream"}
	c := NewCollector()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers: take snapshots concurrently and check monotonicity on every
	// intermediate snapshot.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < readerPasses; pass++ {
				select {
				case <-stop:
					return
				default:
				}
				for _, st := range c.Snapshot(time.Second) {
					if !(st.P50Us <= st.P95Us && st.P95Us <= st.P99Us && st.P99Us <= st.MaxUs) {
						t.Errorf("mid-run quantiles not monotone: %+v", st)
						return
					}
					if st.Errors > st.Ops {
						t.Errorf("mid-run errors %d > ops %d", st.Errors, st.Ops)
						return
					}
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 99))
			for i := 0; i < opsPerWriter; i++ {
				ep := endpoints[i%endpointCount]
				c.Endpoint(ep).Record(time.Duration(rng.Int64N(1e6)), i%errEvery == 0)
			}
		}(w)
	}
	wg.Wait()
	close(stop)

	var total, totalErrs uint64
	for _, st := range c.Snapshot(time.Second) {
		total += st.Ops
		totalErrs += st.Errors
	}
	if want := uint64(writers * opsPerWriter); total != want {
		t.Fatalf("counter conservation: total ops = %d, want %d", total, want)
	}
	// Each writer marks ceil(opsPerWriter/errEvery) errors.
	wantErrs := uint64(writers * ((opsPerWriter + errEvery - 1) / errEvery))
	if totalErrs != wantErrs {
		t.Fatalf("counter conservation: total errors = %d, want %d", totalErrs, wantErrs)
	}
	if got := c.TotalOps(); got != total {
		t.Fatalf("TotalOps = %d, want %d", got, total)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	const workers = 16
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if v := g.Value(); v != 0 {
		t.Fatalf("gauge settled at %d, want 0", v)
	}
	if h := g.High(); h < 1 || h > workers {
		t.Fatalf("high-water mark %d outside [1,%d]", h, workers)
	}
}

func TestCSVRow(t *testing.T) {
	st := EndpointStats{Endpoint: "put", Ops: 10, Errors: 1, RPS: 5, MeanUs: 1.5, P50Us: 1, P95Us: 2, P99Us: 3, MaxUs: 4}
	want := "put,10,1,5.0,1.5,1.0,2.0,3.0,4.0"
	if got := st.CSVRow(); got != want {
		t.Fatalf("CSVRow = %q, want %q", got, want)
	}
}
