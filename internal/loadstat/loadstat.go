// Package loadstat provides the measurement substrate of the service-level
// load harness (cmd/phrload) and the server's own request instrumentation:
// lock-free sharded counters and fixed-bucket latency histograms that many
// goroutines record into while others take consistent-enough snapshots,
// plus flat CSV/JSON-friendly result structs so BENCH_*.json stays stable
// across PRs.
//
// The package is stdlib-only. Recording never blocks and never allocates:
// a Record call is two or three atomic adds into a randomly chosen shard
// (math/rand/v2's per-goroutine source, no lock) plus an atomic max update.
// Snapshots sum the shards; a snapshot taken while recorders are running is
// approximate in the usual monotonic sense — it may split a concurrent
// update — but every completed Record before the snapshot is included.
package loadstat

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram geometry. Bucket i covers latencies in [2^i, 2^(i+1)) µs, so
// bucket 0 is "under 2µs" and the last bucket tops out above two minutes —
// wide enough for any sane HTTP request, coarse enough (factor-of-two
// resolution) that quantile interpolation inside a bucket stays honest.
const (
	numBuckets = 28 // 2^27 µs ≈ 134 s
	numShards  = 8
)

// shard is one independently updated slice of a Recorder. The padding
// keeps shards on separate cache lines so concurrent recorders do not
// false-share.
type shard struct {
	ops      atomic.Uint64
	errs     atomic.Uint64
	sumNanos atomic.Int64
	buckets  [numBuckets]atomic.Uint64
	_        [64]byte
}

// Recorder accumulates latency observations for one endpoint (or any other
// labeled operation). The zero value is not usable; get one from a
// Collector or NewRecorder.
type Recorder struct {
	name     string
	maxNanos atomic.Int64
	shards   [numShards]shard
}

// NewRecorder returns a standalone recorder with the given label.
func NewRecorder(name string) *Recorder { return &Recorder{name: name} }

// Name returns the recorder's label.
func (r *Recorder) Name() string { return r.name }

// bucketOf maps a latency to its histogram bucket.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	b := 0
	for us >= 2 && b < numBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

// Record adds one observation. failed marks the operation as an error; its
// latency still counts toward the distribution (a fast 4xx is still a
// served request).
func (r *Recorder) Record(d time.Duration, failed bool) {
	if d < 0 {
		d = 0
	}
	s := &r.shards[rand.Uint32N(numShards)]
	s.ops.Add(1)
	if failed {
		s.errs.Add(1)
	}
	s.sumNanos.Add(int64(d))
	s.buckets[bucketOf(d)].Add(1)
	for {
		cur := r.maxNanos.Load()
		if int64(d) <= cur || r.maxNanos.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// EndpointStats is the flat, serialization-friendly snapshot of one
// recorder. Latencies are in microseconds; RPS is ops divided by the
// elapsed wall time the caller supplies.
type EndpointStats struct {
	Endpoint string  `json:"endpoint"`
	Ops      uint64  `json:"ops"`
	Errors   uint64  `json:"errors"`
	RPS      float64 `json:"rps"`
	MeanUs   float64 `json:"mean_us"`
	P50Us    float64 `json:"p50_us"`
	P95Us    float64 `json:"p95_us"`
	P99Us    float64 `json:"p99_us"`
	MaxUs    float64 `json:"max_us"`
}

// CSVHeader is the column order WriteCSVRow follows.
const CSVHeader = "endpoint,ops,errors,rps,mean_us,p50_us,p95_us,p99_us,max_us"

// CSVRow renders the stats as one CSV line matching CSVHeader.
func (e EndpointStats) CSVRow() string {
	return fmt.Sprintf("%s,%d,%d,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f",
		e.Endpoint, e.Ops, e.Errors, e.RPS, e.MeanUs, e.P50Us, e.P95Us, e.P99Us, e.MaxUs)
}

// quantile estimates the q-th quantile (0 < q ≤ 1) from summed bucket
// counts by linear interpolation inside the containing bucket.
func quantile(buckets *[numBuckets]uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, n := range buckets {
		if n == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		if cum+float64(n) >= rank {
			frac := (rank - cum) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum += float64(n)
	}
	_, hi := bucketBounds(numBuckets - 1)
	return hi
}

// bucketBounds returns bucket i's [lo, hi) latency range in microseconds.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 2
	}
	lo = math.Exp2(float64(i))
	return lo, lo * 2
}

// Snapshot sums the shards and derives quantiles. elapsed is the wall time
// the observations cover (used for RPS; pass 0 to omit RPS). Quantiles are
// clamped to the observed max so p50 ≤ p95 ≤ p99 ≤ max always holds.
func (r *Recorder) Snapshot(elapsed time.Duration) EndpointStats {
	var buckets [numBuckets]uint64
	var ops, errs uint64
	var sum int64
	for i := range r.shards {
		s := &r.shards[i]
		ops += s.ops.Load()
		errs += s.errs.Load()
		sum += s.sumNanos.Load()
		for b := range s.buckets {
			buckets[b] += s.buckets[b].Load()
		}
	}
	st := EndpointStats{Endpoint: r.name, Ops: ops, Errors: errs}
	if ops == 0 {
		return st
	}
	maxUs := float64(r.maxNanos.Load()) / 1e3
	st.MeanUs = float64(sum) / float64(ops) / 1e3
	st.P50Us = math.Min(quantile(&buckets, ops, 0.50), maxUs)
	st.P95Us = math.Min(quantile(&buckets, ops, 0.95), maxUs)
	st.P99Us = math.Min(quantile(&buckets, ops, 0.99), maxUs)
	st.MaxUs = maxUs
	if elapsed > 0 {
		st.RPS = float64(ops) / elapsed.Seconds()
	}
	return st
}

// Collector is a registry of recorders keyed by endpoint label. Lookup of
// an existing recorder is a read-locked map hit; registration (rare, first
// request per endpoint) takes the write lock.
type Collector struct {
	mu        sync.RWMutex
	recorders map[string]*Recorder
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{recorders: map[string]*Recorder{}}
}

// Endpoint returns the recorder for a label, creating it on first use.
func (c *Collector) Endpoint(name string) *Recorder {
	c.mu.RLock()
	r, ok := c.recorders[name]
	c.mu.RUnlock()
	if ok {
		return r
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok = c.recorders[name]; ok {
		return r
	}
	r = NewRecorder(name)
	c.recorders[name] = r
	return r
}

// Snapshot returns the stats of every registered endpoint, sorted by
// label for stable output.
func (c *Collector) Snapshot(elapsed time.Duration) []EndpointStats {
	c.mu.RLock()
	recs := make([]*Recorder, 0, len(c.recorders))
	for _, r := range c.recorders {
		recs = append(recs, r)
	}
	c.mu.RUnlock()
	out := make([]EndpointStats, 0, len(recs))
	for _, r := range recs {
		out = append(out, r.Snapshot(elapsed))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Endpoint < out[j].Endpoint })
	return out
}

// TotalOps sums the op counts across all endpoints.
func (c *Collector) TotalOps() uint64 {
	var total uint64
	for _, e := range c.Snapshot(0) {
		total += e.Ops
	}
	return total
}

// Gauge is an atomic up/down counter with a high-water mark — the
// in-flight-requests instrument.
type Gauge struct {
	cur  atomic.Int64
	high atomic.Int64
}

// Inc increments the gauge and returns the new value, updating the
// high-water mark.
func (g *Gauge) Inc() int64 {
	v := g.cur.Add(1)
	for {
		h := g.high.Load()
		if v <= h || g.high.CompareAndSwap(h, v) {
			return v
		}
	}
}

// Dec decrements the gauge.
func (g *Gauge) Dec() { g.cur.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.cur.Load() }

// High returns the high-water mark.
func (g *Gauge) High() int64 { return g.high.Load() }
