package bn254

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"
)

// randG1 returns a pseudo-random non-identity subgroup point of G1.
func randG1(r *rand.Rand) *G1 {
	k := new(big.Int).Rand(r, Order)
	k.Add(k, big.NewInt(1))
	var p G1
	p.ScalarBaseMult(k)
	return &p
}

// randG2 returns a pseudo-random non-identity subgroup point of G2.
func randG2(r *rand.Rand) *G2 {
	k := new(big.Int).Rand(r, Order)
	k.Add(k, big.NewInt(1))
	var p G2
	p.ScalarBaseMult(k)
	return &p
}

// TestPairPreparedMatchesPair pins the prepared pairing to the naive one,
// bit for bit, over random points.
func TestPairPreparedMatchesPair(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 8; i++ {
		p := randG1(r)
		q := randG2(r)
		prep := PrepareG2(q)
		want := Pair(p, q)
		got := PairPrepared(p, prep)
		if !got.Equal(want) {
			t.Fatalf("iteration %d: PairPrepared != Pair", i)
		}
		// Reuse of the same preparation must be side-effect free.
		p2 := randG1(r)
		if !PairPrepared(p2, prep).Equal(Pair(p2, q)) {
			t.Fatalf("iteration %d: prepared reuse diverged", i)
		}
	}
}

// TestPairPreparedInfinity covers the degenerate inputs.
func TestPairPreparedInfinity(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	p := randG1(r)
	q := randG2(r)
	prepInf := PrepareG2(G2Infinity())
	if !prepInf.IsInfinity() {
		t.Fatal("PrepareG2(∞) not marked infinite")
	}
	if !PairPrepared(p, prepInf).IsOne() {
		t.Fatal("ê(P, ∞) != 1")
	}
	if !PairPrepared(G1Infinity(), PrepareG2(q)).IsOne() {
		t.Fatal("ê(∞, Q) != 1")
	}
}

// TestPairPreparedGenerator pins the cached generator preparation.
func TestPairPreparedGenerator(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	p := randG1(r)
	want := Pair(p, G2Generator())
	if !PairPrepared(p, G2GeneratorPrepared()).Equal(want) {
		t.Fatal("G2GeneratorPrepared pairing mismatch")
	}
	if G2GeneratorPrepared() != G2GeneratorPrepared() {
		t.Fatal("G2GeneratorPrepared not cached")
	}
}

// TestPairProductPreparedMatches pins the prepared multi-pairing.
func TestPairProductPreparedMatches(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	for _, n := range []int{0, 1, 2, 4} {
		ps := make([]*G1, n)
		qs := make([]*G2, n)
		preps := make([]*PreparedG2, n)
		for i := range ps {
			ps[i] = randG1(r)
			qs[i] = randG2(r)
			preps[i] = PrepareG2(qs[i])
		}
		if !PairProductPrepared(ps, preps).Equal(PairProduct(ps, qs)) {
			t.Fatalf("n=%d: PairProductPrepared != PairProduct", n)
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("mismatched input lengths did not panic")
		}
	}()
	PairProductPrepared([]*G1{G1Generator()}, nil)
}

// edgeScalars are the scalars most likely to break a windowed table:
// identity-adjacent values, the group order, and out-of-range inputs that
// exercise the modular reduction.
func edgeScalars() []*big.Int {
	return []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		big.NewInt(15),
		big.NewInt(16),
		big.NewInt(-1),
		new(big.Int).Set(Order),
		new(big.Int).Sub(Order, big.NewInt(1)),
		new(big.Int).Add(Order, big.NewInt(7)),
		new(big.Int).Lsh(big.NewInt(1), 253),
	}
}

func testScalars(seed int64, extra int) []*big.Int {
	ks := edgeScalars()
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < extra; i++ {
		ks = append(ks, new(big.Int).Rand(r, Order))
	}
	return ks
}

// TestG1FixedBaseMatchesGeneric pins the windowed table against the generic
// ladder, including the zero scalar and k ≡ 0 (mod r).
func TestG1FixedBaseMatchesGeneric(t *testing.T) {
	for _, k := range testScalars(46, 8) {
		var got, want G1
		got.ScalarBaseMult(k)
		want.scalarBaseMultGeneric(k)
		if !got.Equal(&want) {
			t.Fatalf("k=%s: fixed-base G1 != generic", k)
		}
		if k.Mod(new(big.Int).Set(k), Order).Sign() == 0 && !got.IsInfinity() {
			t.Fatalf("k=%s: expected infinity", k)
		}
	}
}

// TestG2FixedBaseMatchesGeneric is the G2 analogue.
func TestG2FixedBaseMatchesGeneric(t *testing.T) {
	for _, k := range testScalars(47, 8) {
		var got, want G2
		got.ScalarBaseMult(k)
		want.scalarBaseMultGeneric(k)
		if !got.Equal(&want) {
			t.Fatalf("k=%s: fixed-base G2 != generic", k)
		}
	}
}

// TestGTExpBaseMatchesGeneric pins the fixed-base GT table against GT.Exp.
func TestGTExpBaseMatchesGeneric(t *testing.T) {
	base := GTBase()
	for _, k := range testScalars(48, 8) {
		got := GTExpBase(k)
		var want GT
		want.Exp(base, k)
		if !got.Equal(&want) {
			t.Fatalf("k=%s: GTExpBase != GTBase^k", k)
		}
	}
}

// TestPreparedConcurrent exercises the lazy table/preparation guards from
// many goroutines; run with -race to check the sync.Once wiring.
func TestPreparedConcurrent(t *testing.T) {
	q := randG2(rand.New(rand.NewSource(49)))
	prep := PrepareG2(q)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 3; i++ {
				p := randG1(r)
				if !PairPrepared(p, prep).Equal(Pair(p, q)) {
					done <- fmt.Errorf("seed %d: concurrent prepared pairing mismatch", seed)
					return
				}
				k := new(big.Int).Rand(r, Order)
				var a, b G1
				a.ScalarBaseMult(k)
				b.scalarBaseMultGeneric(k)
				if !a.Equal(&b) {
					done <- fmt.Errorf("seed %d: concurrent fixed-base mismatch", seed)
					return
				}
				if !GTExpBase(k).Equal(new(GT).Exp(GTBase(), k)) {
					done <- fmt.Errorf("seed %d: concurrent GT table mismatch", seed)
					return
				}
			}
			done <- nil
		}(int64(100 + g))
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
