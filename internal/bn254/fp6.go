package bn254

import (
	"fmt"

	"typepre/internal/bn254/fp"
)

// fp6 is an element of Fp6 = Fp2[τ]/(τ³−ξ), stored as c0 + c1·τ + c2·τ²
// with ξ = 9+i. The zero value is the field's zero element.
type fp6 struct {
	c0, c1, c2 fp2
}

func (e *fp6) String() string {
	return fmt.Sprintf("[%s, %s, %s]", e.c0.String(), e.c1.String(), e.c2.String())
}

// Set assigns a to e and returns e.
func (e *fp6) Set(a *fp6) *fp6 {
	*e = *a
	return e
}

// SetZero assigns 0 to e and returns e.
func (e *fp6) SetZero() *fp6 {
	*e = fp6{}
	return e
}

// SetOne assigns 1 to e and returns e.
func (e *fp6) SetOne() *fp6 {
	e.c0.SetOne()
	e.c1.SetZero()
	e.c2.SetZero()
	return e
}

// IsZero reports whether e == 0.
func (e *fp6) IsZero() bool {
	return e.c0.IsZero() && e.c1.IsZero() && e.c2.IsZero()
}

// IsOne reports whether e == 1.
func (e *fp6) IsOne() bool {
	return e.c0.IsOne() && e.c1.IsZero() && e.c2.IsZero()
}

// Equal reports whether e == a.
func (e *fp6) Equal(a *fp6) bool {
	return e.c0.Equal(&a.c0) && e.c1.Equal(&a.c1) && e.c2.Equal(&a.c2)
}

// Add sets e = a + b and returns e.
func (e *fp6) Add(a, b *fp6) *fp6 {
	e.c0.Add(&a.c0, &b.c0)
	e.c1.Add(&a.c1, &b.c1)
	e.c2.Add(&a.c2, &b.c2)
	return e
}

// Sub sets e = a - b and returns e.
func (e *fp6) Sub(a, b *fp6) *fp6 {
	e.c0.Sub(&a.c0, &b.c0)
	e.c1.Sub(&a.c1, &b.c1)
	e.c2.Sub(&a.c2, &b.c2)
	return e
}

// Double sets e = 2a and returns e.
func (e *fp6) Double(a *fp6) *fp6 {
	e.c0.Double(&a.c0)
	e.c1.Double(&a.c1)
	e.c2.Double(&a.c2)
	return e
}

// Neg sets e = -a and returns e.
func (e *fp6) Neg(a *fp6) *fp6 {
	e.c0.Neg(&a.c0)
	e.c1.Neg(&a.c1)
	e.c2.Neg(&a.c2)
	return e
}

// mulByXi sets e = a·ξ for a ∈ Fp2 viewed in Fp6, in place helper on fp2.
func mulByXi(e, a *fp2) *fp2 {
	// (c0 + c1·i)(9 + i) = (9c0 - c1) + (9c1 + c0)·i
	var t0, t1 fp.Element
	t0.Double(&a.c0)
	t0.Double(&t0)
	t0.Double(&t0)
	t0.Add(&t0, &a.c0) // 9c0
	t0.Sub(&t0, &a.c1)
	t1.Double(&a.c1)
	t1.Double(&t1)
	t1.Double(&t1)
	t1.Add(&t1, &a.c1) // 9c1
	t1.Add(&t1, &a.c0)
	e.c0.Set(&t0)
	e.c1.Set(&t1)
	return e
}

// Mul sets e = a·b and returns e. Aliasing is allowed.
func (e *fp6) Mul(a, b *fp6) *fp6 {
	// Karatsuba interpolation with τ³ = ξ (Devegili et al., Alg. 13):
	// with v0 = a0b0, v1 = a1b1, v2 = a2b2,
	//   z0 = v0 + ξ((a1+a2)(b1+b2) − v1 − v2)
	//   z1 = (a0+a1)(b0+b1) − v0 − v1 + ξ v2
	//   z2 = (a0+a2)(b0+b2) − v0 − v2 + v1
	// Six fp2 multiplications instead of the schoolbook nine.
	var v0, v1, v2, s, t, z0, z1, z2 fp2
	v0.Mul(&a.c0, &b.c0)
	v1.Mul(&a.c1, &b.c1)
	v2.Mul(&a.c2, &b.c2)

	s.Add(&a.c1, &a.c2)
	t.Add(&b.c1, &b.c2)
	s.Mul(&s, &t)
	s.Sub(&s, &v1)
	s.Sub(&s, &v2)
	mulByXi(&s, &s)
	z0.Add(&v0, &s)

	s.Add(&a.c0, &a.c1)
	t.Add(&b.c0, &b.c1)
	s.Mul(&s, &t)
	s.Sub(&s, &v0)
	s.Sub(&s, &v1)
	mulByXi(&t, &v2)
	z1.Add(&s, &t)

	s.Add(&a.c0, &a.c2)
	t.Add(&b.c0, &b.c2)
	s.Mul(&s, &t)
	s.Sub(&s, &v0)
	s.Sub(&s, &v2)
	z2.Add(&s, &v1)

	e.c0.Set(&z0)
	e.c1.Set(&z1)
	e.c2.Set(&z2)
	return e
}

// Square sets e = a² and returns e.
func (e *fp6) Square(a *fp6) *fp6 {
	return e.Mul(a, a)
}

// MulByFp2 sets e = a·s where s ∈ Fp2 acts coefficient-wise, and returns e.
func (e *fp6) MulByFp2(a *fp6, s *fp2) *fp6 {
	e.c0.Mul(&a.c0, s)
	e.c1.Mul(&a.c1, s)
	e.c2.Mul(&a.c2, s)
	return e
}

// MulByTau sets e = a·τ = ξc2 + c0·τ + c1·τ² and returns e. The temporaries
// keep the rotation alias-safe.
func (e *fp6) MulByTau(a *fp6) *fp6 {
	var t0, t1, t2 fp2
	mulByXi(&t0, &a.c2)
	t1.Set(&a.c0)
	t2.Set(&a.c1)
	e.c0.Set(&t0)
	e.c1.Set(&t1)
	e.c2.Set(&t2)
	return e
}

// Inverse sets e = a⁻¹ and returns e. Panics on zero input.
func (e *fp6) Inverse(a *fp6) *fp6 {
	// Standard formulas:
	//   A = c0² − ξ c1 c2,  B = ξ c2² − c0 c1,  C = c1² − c0 c2
	//   F = c0 A + ξ c1 C + ξ c2 B
	//   a⁻¹ = (A + B·τ + C·τ²)/F
	var A, B, C, F, t fp2

	A.Square(&a.c0)
	t.Mul(&a.c1, &a.c2)
	mulByXi(&t, &t)
	A.Sub(&A, &t)

	B.Square(&a.c2)
	mulByXi(&B, &B)
	t.Mul(&a.c0, &a.c1)
	B.Sub(&B, &t)

	C.Square(&a.c1)
	t.Mul(&a.c0, &a.c2)
	C.Sub(&C, &t)

	F.Mul(&a.c1, &C)
	mulByXi(&F, &F)
	t.Mul(&a.c0, &A)
	F.Add(&F, &t)
	t.Mul(&a.c2, &B)
	mulByXi(&t, &t)
	F.Add(&F, &t)

	F.Inverse(&F)
	e.c0.Mul(&A, &F)
	e.c1.Mul(&B, &F)
	e.c2.Mul(&C, &F)
	return e
}

// Frobenius sets e = a^p and returns e.
func (e *fp6) Frobenius(a *fp6) *fp6 {
	// (c0 + c1τ + c2τ²)^p = conj(c0) + conj(c1)·ξ^((p-1)/3)·τ
	//                               + conj(c2)·ξ^(2(p-1)/3)·τ²
	e.c0.Conjugate(&a.c0)
	e.c1.Conjugate(&a.c1)
	e.c1.Mul(&e.c1, &xiToPMinus1Over3)
	e.c2.Conjugate(&a.c2)
	e.c2.Mul(&e.c2, &xiTo2PMinus2Over3)
	return e
}
