package bn254

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"
)

func TestGeneratorsValid(t *testing.T) {
	if !G1Generator().IsOnCurve() {
		t.Fatal("G1 generator not on curve")
	}
	if !G2Generator().IsOnCurve() {
		t.Fatal("G2 generator not on twist")
	}
	if !G2Generator().IsInSubgroup() {
		t.Fatal("G2 generator not in subgroup")
	}
	var p G1
	p.ScalarBaseMult(Order)
	if !p.IsInfinity() {
		t.Fatal("r·G1 != ∞")
	}
}

func TestG1GroupLaws(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := new(big.Int).Rand(r, Order)
	b := new(big.Int).Rand(r, Order)

	var pa, pb, sum1, sum2 G1
	pa.ScalarBaseMult(a)
	pb.ScalarBaseMult(b)
	sum1.Add(&pa, &pb)
	sum2.ScalarBaseMult(new(big.Int).Add(a, b))
	if !sum1.Equal(&sum2) {
		t.Fatal("aG + bG != (a+b)G in G1")
	}

	// Commutativity and identity.
	var sum3 G1
	sum3.Add(&pb, &pa)
	if !sum1.Equal(&sum3) {
		t.Fatal("G1 addition not commutative")
	}
	var inf G1
	inf.inf = true
	var same G1
	same.Add(&pa, &inf)
	if !same.Equal(&pa) {
		t.Fatal("P + ∞ != P")
	}

	// P + (−P) = ∞.
	var neg, z G1
	neg.Neg(&pa)
	z.Add(&pa, &neg)
	if !z.IsInfinity() {
		t.Fatal("P + (−P) != ∞")
	}

	// Double vs add.
	var dbl, add G1
	dbl.Double(&pa)
	add.Add(&pa, &pa)
	if !dbl.Equal(&add) {
		t.Fatal("2P != P+P")
	}
	if !dbl.IsOnCurve() {
		t.Fatal("2P not on curve")
	}
}

func TestG2GroupLaws(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := new(big.Int).Rand(r, Order)
	b := new(big.Int).Rand(r, Order)

	var pa, pb, sum1, sum2 G2
	pa.ScalarBaseMult(a)
	pb.ScalarBaseMult(b)
	sum1.Add(&pa, &pb)
	sum2.ScalarBaseMult(new(big.Int).Add(a, b))
	if !sum1.Equal(&sum2) {
		t.Fatal("aG + bG != (a+b)G in G2")
	}
	if !sum1.IsOnCurve() {
		t.Fatal("sum not on twist")
	}

	var neg, z G2
	neg.Neg(&pa)
	z.Add(&pa, &neg)
	if !z.IsInfinity() {
		t.Fatal("P + (−P) != ∞ in G2")
	}
}

func TestPairingNonDegenerate(t *testing.T) {
	g := Pair(G1Generator(), G2Generator())
	if g.IsOne() {
		t.Fatal("ê(G1, G2) == 1: degenerate pairing")
	}
	if !g.IsInSubgroup() {
		t.Fatal("pairing output not in order-r subgroup")
	}
}

func TestPairingBilinear(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 3; i++ {
		a := new(big.Int).Rand(r, Order)
		b := new(big.Int).Rand(r, Order)

		var pa G1
		pa.ScalarBaseMult(a)
		var qb G2
		qb.ScalarBaseMult(b)

		lhs := Pair(&pa, &qb)

		base := Pair(G1Generator(), G2Generator())
		var rhs GT
		rhs.Exp(base, new(big.Int).Mul(a, b))

		if !lhs.Equal(&rhs) {
			t.Fatalf("ê(aP, bQ) != ê(P,Q)^(ab), iteration %d", i)
		}
	}
}

func TestPairingLeftLinear(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	a := new(big.Int).Rand(r, Order)
	b := new(big.Int).Rand(r, Order)
	var pa, pb, sum G1
	pa.ScalarBaseMult(a)
	pb.ScalarBaseMult(b)
	sum.Add(&pa, &pb)

	q := G2Generator()
	lhs := Pair(&sum, q)
	var rhs GT
	rhs.Mul(Pair(&pa, q), Pair(&pb, q))
	if !lhs.Equal(&rhs) {
		t.Fatal("ê(P1+P2, Q) != ê(P1,Q)·ê(P2,Q)")
	}
}

func TestPairingRightLinear(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := new(big.Int).Rand(r, Order)
	b := new(big.Int).Rand(r, Order)
	var qa, qb, sum G2
	qa.ScalarBaseMult(a)
	qb.ScalarBaseMult(b)
	sum.Add(&qa, &qb)

	p := G1Generator()
	lhs := Pair(p, &sum)
	var rhs GT
	rhs.Mul(Pair(p, &qa), Pair(p, &qb))
	if !lhs.Equal(&rhs) {
		t.Fatal("ê(P, Q1+Q2) != ê(P,Q1)·ê(P,Q2)")
	}
}

func TestPairingIdentity(t *testing.T) {
	if !Pair(G1Infinity(), G2Generator()).IsOne() {
		t.Fatal("ê(∞, Q) != 1")
	}
	if !Pair(G1Generator(), G2Infinity()).IsOne() {
		t.Fatal("ê(P, ∞) != 1")
	}
}

func TestHardPartImplementationsAgree(t *testing.T) {
	// The Devegili addition chain and the direct exponentiation must
	// compute the same hard part on real Miller-loop outputs.
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 2; i++ {
		a := new(big.Int).Rand(r, Order)
		var pa G1
		pa.ScalarBaseMult(a)
		f := millerLoop(&pa, G2Generator())

		var inv, easy, t2 fp12
		inv.Inverse(f)
		easy.Conjugate(f)
		easy.Mul(&easy, &inv)
		t2.FrobeniusP2(&easy)
		easy.Mul(&easy, &t2)

		chain := hardPartChain(&easy)
		direct := hardPartDirect(&easy)
		if !chain.Equal(direct) {
			t.Fatal("hard-part addition chain disagrees with direct exponentiation")
		}
	}
}

func TestPairProduct(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := new(big.Int).Rand(r, Order)
	b := new(big.Int).Rand(r, Order)
	var pa, pb G1
	pa.ScalarBaseMult(a)
	pb.ScalarBaseMult(b)
	q := G2Generator()

	prod := PairProduct([]*G1{&pa, &pb}, []*G2{q, q})
	var want GT
	want.Mul(Pair(&pa, q), Pair(&pb, q))
	if !prod.Equal(&want) {
		t.Fatal("PairProduct != product of pairings")
	}
}

func TestPairProductMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PairProduct([]*G1{G1Generator()}, nil)
}

func TestG1MarshalRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 5; i++ {
		var p, q G1
		p.ScalarBaseMult(new(big.Int).Rand(r, Order))
		data := p.Marshal()
		if err := q.Unmarshal(data); err != nil {
			t.Fatal(err)
		}
		if !p.Equal(&q) {
			t.Fatal("G1 round trip mismatch")
		}
	}
	// Infinity round trip.
	var inf, got G1
	inf.inf = true
	if err := got.Unmarshal(inf.Marshal()); err != nil || !got.IsInfinity() {
		t.Fatal("G1 infinity round trip failed")
	}
}

func TestG1UnmarshalRejectsInvalid(t *testing.T) {
	var p G1
	if err := p.Unmarshal(make([]byte, 7)); err == nil {
		t.Fatal("accepted bad length")
	}
	bad := make([]byte, G1Size)
	bad[31] = 5 // x=5
	bad[63] = 1 // y=1, not on curve
	if err := p.Unmarshal(bad); err == nil {
		t.Fatal("accepted off-curve point")
	}
	// Out of range coordinate.
	tooBig := make([]byte, G1Size)
	copy(tooBig[:32], P.Bytes())
	tooBig[63] = 2
	if err := p.Unmarshal(tooBig); err == nil {
		t.Fatal("accepted out-of-range coordinate")
	}
}

func TestG2MarshalRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 3; i++ {
		var p, q G2
		p.ScalarBaseMult(new(big.Int).Rand(r, Order))
		if err := q.Unmarshal(p.Marshal()); err != nil {
			t.Fatal(err)
		}
		if !p.Equal(&q) {
			t.Fatal("G2 round trip mismatch")
		}
	}
	var inf, got G2
	inf.inf = true
	if err := got.Unmarshal(inf.Marshal()); err != nil || !got.IsInfinity() {
		t.Fatal("G2 infinity round trip failed")
	}
}

func TestG2UnmarshalRejectsInvalid(t *testing.T) {
	var p G2
	if err := p.Unmarshal(make([]byte, 3)); err == nil {
		t.Fatal("accepted bad length")
	}
	bad := make([]byte, G2Size)
	bad[31] = 1
	bad[127] = 1
	if err := p.Unmarshal(bad); err == nil {
		t.Fatal("accepted off-twist point")
	}
}

func TestGTMarshalRoundTrip(t *testing.T) {
	g := Pair(G1Generator(), G2Generator())
	var got GT
	if err := got.Unmarshal(g.Marshal()); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(g) {
		t.Fatal("GT round trip mismatch")
	}
	if !bytes.Equal(got.Marshal(), g.Marshal()) {
		t.Fatal("GT re-marshal mismatch")
	}
}

func TestGTUnmarshalRejectsInvalid(t *testing.T) {
	var g GT
	if err := g.Unmarshal(make([]byte, 5)); err == nil {
		t.Fatal("accepted bad length")
	}
	bad := make([]byte, GTSize)
	copy(bad[:32], P.Bytes()) // coefficient == p, out of range
	if err := g.Unmarshal(bad); err == nil {
		t.Fatal("accepted out-of-range coefficient")
	}
}

func TestGTGroupOps(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	a := new(big.Int).Rand(r, Order)
	b := new(big.Int).Rand(r, Order)
	base := GTBase()

	var ga, gb, prod, sum GT
	ga.Exp(base, a)
	gb.Exp(base, b)
	prod.Mul(&ga, &gb)
	sum.Exp(base, new(big.Int).Add(a, b))
	if !prod.Equal(&sum) {
		t.Fatal("GT exponent homomorphism broken")
	}

	var inv, one GT
	inv.Inverse(&ga)
	one.Mul(&ga, &inv)
	if !one.IsOne() {
		t.Fatal("g·g⁻¹ != 1")
	}

	var div GT
	div.Div(&prod, &gb)
	if !div.Equal(&ga) {
		t.Fatal("GT division broken")
	}
}

func TestHashToG1(t *testing.T) {
	p := HashToG1(DomainG1, []byte("alice@example.com"))
	if !p.IsOnCurve() || p.IsInfinity() {
		t.Fatal("hash output invalid")
	}
	q := HashToG1(DomainG1, []byte("alice@example.com"))
	if !p.Equal(q) {
		t.Fatal("hash not deterministic")
	}
	r2 := HashToG1(DomainG1, []byte("bob@example.com"))
	if p.Equal(r2) {
		t.Fatal("distinct messages hashed to same point")
	}
	r3 := HashToG1("other-domain", []byte("alice@example.com"))
	if p.Equal(r3) {
		t.Fatal("domain separation failed")
	}
	// Cofactor 1: point must have order r.
	var z G1
	z.ScalarMult(p, Order)
	if !z.IsInfinity() {
		t.Fatal("hashed point not of order r")
	}
}

func TestHashToZr(t *testing.T) {
	a := HashToZr(DomainZr, []byte("type:illness-history"))
	if a.Sign() <= 0 || a.Cmp(Order) >= 0 {
		t.Fatal("HashToZr out of range")
	}
	b := HashToZr(DomainZr, []byte("type:illness-history"))
	if a.Cmp(b) != 0 {
		t.Fatal("HashToZr not deterministic")
	}
	c := HashToZr(DomainZr, []byte("type:food-stats"))
	if a.Cmp(c) == 0 {
		t.Fatal("collision between distinct types")
	}
}

func TestRandomScalar(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 16; i++ {
		k, err := RandomScalar(nil)
		if err != nil {
			t.Fatal(err)
		}
		if k.Sign() <= 0 || k.Cmp(Order) >= 0 {
			t.Fatal("scalar out of range")
		}
		seen[k.String()] = true
	}
	if len(seen) < 16 {
		t.Fatal("random scalars repeated suspiciously")
	}
}

func TestRandomGT(t *testing.T) {
	g, k, err := RandomGT(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := GTExpBase(k)
	if !g.Equal(want) {
		t.Fatal("RandomGT witness exponent mismatch")
	}
	if !g.IsInSubgroup() {
		t.Fatal("RandomGT output not in subgroup")
	}
}

func TestKDFDeterministicAndLength(t *testing.T) {
	g := GTBase()
	k1 := KDF(DomainKDF, g, 32)
	k2 := KDF(DomainKDF, g, 32)
	if !bytes.Equal(k1, k2) {
		t.Fatal("KDF not deterministic")
	}
	if len(KDF(DomainKDF, g, 100)) != 100 {
		t.Fatal("KDF length wrong")
	}
	other := GTExpBase(big.NewInt(2))
	if bytes.Equal(k1, KDF(DomainKDF, other, 32)) {
		t.Fatal("KDF collision for distinct elements")
	}
	if bytes.Equal(k1, KDF("another-domain", g, 32)) {
		t.Fatal("KDF domain separation failed")
	}
}
