package bn254

import "math/big"

// Jacobian-coordinate scalar multiplication for G1 and G2. A point
// (X, Y, Z) represents the affine point (X/Z², Y/Z³); doubling and mixed
// addition avoid the per-step modular inversion of the affine formulas,
// which dominates their cost under math/big. ScalarMult uses these paths;
// the affine ladder is kept as the property-tested reference
// (scalarMultAffine) and as the E1 ablation.

// g1Jac is a G1 point in Jacobian coordinates; Z=0 encodes infinity.
type g1Jac struct {
	x, y, z big.Int
}

func (j *g1Jac) setInfinity() {
	j.x.SetInt64(1)
	j.y.SetInt64(1)
	j.z.SetInt64(0)
}

func (j *g1Jac) fromAffine(p *G1) {
	if p.inf {
		j.setInfinity()
		return
	}
	j.x.Set(&p.x)
	j.y.Set(&p.y)
	j.z.SetInt64(1)
}

func (j *g1Jac) toAffine(p *G1) {
	if j.z.Sign() == 0 {
		p.inf = true
		p.x.SetInt64(0)
		p.y.SetInt64(0)
		return
	}
	zInv := new(big.Int).ModInverse(&j.z, P)
	zInv2 := new(big.Int).Mul(zInv, zInv)
	zInv2.Mod(zInv2, P)
	zInv3 := new(big.Int).Mul(zInv2, zInv)
	zInv3.Mod(zInv3, P)
	p.x.Mul(&j.x, zInv2)
	modP(&p.x)
	p.y.Mul(&j.y, zInv3)
	modP(&p.y)
	p.inf = false
}

// double sets j = 2j (dbl-2009-l formulas, a = 0).
func (j *g1Jac) double() {
	if j.z.Sign() == 0 {
		return
	}
	var a, b, c, d, e, f, t big.Int
	a.Mul(&j.x, &j.x)
	a.Mod(&a, P) // A = X²
	b.Mul(&j.y, &j.y)
	b.Mod(&b, P) // B = Y²
	c.Mul(&b, &b)
	c.Mod(&c, P) // C = B²
	// D = 2((X+B)² − A − C)
	d.Add(&j.x, &b)
	d.Mul(&d, &d)
	d.Sub(&d, &a)
	d.Sub(&d, &c)
	d.Lsh(&d, 1)
	d.Mod(&d, P)
	// E = 3A, F = E²
	e.Lsh(&a, 1)
	e.Add(&e, &a)
	e.Mod(&e, P)
	f.Mul(&e, &e)
	f.Mod(&f, P)
	// Z3 = 2YZ (uses old Y)
	var z3 big.Int
	z3.Mul(&j.y, &j.z)
	z3.Lsh(&z3, 1)
	z3.Mod(&z3, P)
	// X3 = F − 2D
	t.Lsh(&d, 1)
	j.x.Sub(&f, &t)
	j.x.Mod(&j.x, P)
	// Y3 = E(D − X3) − 8C
	t.Sub(&d, &j.x)
	t.Mul(&t, &e)
	c.Lsh(&c, 3)
	t.Sub(&t, &c)
	j.y.Mod(&t, P)
	j.z.Set(&z3)
}

// addMixed sets j = j + q for an affine, non-infinity q
// (madd-2007-bl formulas).
func (j *g1Jac) addMixed(q *G1) {
	if j.z.Sign() == 0 {
		j.fromAffine(q)
		return
	}
	var z1z1, u2, s2, h, hh, i, jj, rr, v, t big.Int
	z1z1.Mul(&j.z, &j.z)
	z1z1.Mod(&z1z1, P)
	u2.Mul(&q.x, &z1z1)
	u2.Mod(&u2, P)
	s2.Mul(&q.y, &j.z)
	s2.Mul(&s2, &z1z1)
	s2.Mod(&s2, P)
	h.Sub(&u2, &j.x)
	h.Mod(&h, P)
	rr.Sub(&s2, &j.y)
	rr.Lsh(&rr, 1)
	rr.Mod(&rr, P)
	if h.Sign() == 0 {
		if rr.Sign() == 0 {
			j.double()
			return
		}
		j.setInfinity()
		return
	}
	hh.Mul(&h, &h)
	hh.Mod(&hh, P)
	i.Lsh(&hh, 2)
	i.Mod(&i, P)
	jj.Mul(&h, &i)
	jj.Mod(&jj, P)
	v.Mul(&j.x, &i)
	v.Mod(&v, P)
	// X3 = r² − J − 2V
	var x3 big.Int
	x3.Mul(&rr, &rr)
	x3.Sub(&x3, &jj)
	t.Lsh(&v, 1)
	x3.Sub(&x3, &t)
	x3.Mod(&x3, P)
	// Y3 = r(V − X3) − 2·Y1·J
	var y3 big.Int
	y3.Sub(&v, &x3)
	y3.Mul(&y3, &rr)
	t.Mul(&j.y, &jj)
	t.Lsh(&t, 1)
	y3.Sub(&y3, &t)
	y3.Mod(&y3, P)
	// Z3 = (Z1 + H)² − Z1Z1 − HH
	var z3 big.Int
	z3.Add(&j.z, &h)
	z3.Mul(&z3, &z3)
	z3.Sub(&z3, &z1z1)
	z3.Sub(&z3, &hh)
	z3.Mod(&z3, P)

	j.x.Set(&x3)
	j.y.Set(&y3)
	j.z.Set(&z3)
}

// scalarMultJacobianG1 computes k·a via the Jacobian ladder.
func scalarMultJacobianG1(p *G1, a *G1, k *big.Int) *G1 {
	kk := new(big.Int).Mod(k, Order)
	var acc g1Jac
	acc.setInfinity()
	if a.inf || kk.Sign() == 0 {
		p.inf = true
		p.x.SetInt64(0)
		p.y.SetInt64(0)
		return p
	}
	var base G1
	base.Set(a)
	for i := kk.BitLen() - 1; i >= 0; i-- {
		acc.double()
		if kk.Bit(i) == 1 {
			acc.addMixed(&base)
		}
	}
	acc.toAffine(p)
	return p
}

// g2Jac is a G2 point in Jacobian coordinates over Fp2; Z=0 is infinity.
type g2Jac struct {
	x, y, z fp2
}

func (j *g2Jac) setInfinity() {
	j.x.SetOne()
	j.y.SetOne()
	j.z.SetZero()
}

func (j *g2Jac) fromAffine(p *G2) {
	if p.inf {
		j.setInfinity()
		return
	}
	j.x.Set(&p.x)
	j.y.Set(&p.y)
	j.z.SetOne()
}

func (j *g2Jac) toAffine(p *G2) {
	if j.z.IsZero() {
		p.inf = true
		p.x.SetZero()
		p.y.SetZero()
		return
	}
	var zInv, zInv2, zInv3 fp2
	zInv.Inverse(&j.z)
	zInv2.Square(&zInv)
	zInv3.Mul(&zInv2, &zInv)
	p.x.Mul(&j.x, &zInv2)
	p.y.Mul(&j.y, &zInv3)
	p.inf = false
}

func (j *g2Jac) double() {
	if j.z.IsZero() {
		return
	}
	var a, b, c, d, e, f, t fp2
	a.Square(&j.x)
	b.Square(&j.y)
	c.Square(&b)
	d.Add(&j.x, &b)
	d.Square(&d)
	d.Sub(&d, &a)
	d.Sub(&d, &c)
	d.Double(&d)
	e.Double(&a)
	e.Add(&e, &a)
	f.Square(&e)
	var z3 fp2
	z3.Mul(&j.y, &j.z)
	z3.Double(&z3)
	t.Double(&d)
	j.x.Sub(&f, &t)
	t.Sub(&d, &j.x)
	t.Mul(&t, &e)
	c.Double(&c)
	c.Double(&c)
	c.Double(&c)
	j.y.Sub(&t, &c)
	j.z.Set(&z3)
}

func (j *g2Jac) addMixed(q *G2) {
	if j.z.IsZero() {
		j.fromAffine(q)
		return
	}
	var z1z1, u2, s2, h, hh, i, jj, rr, v, t fp2
	z1z1.Square(&j.z)
	u2.Mul(&q.x, &z1z1)
	s2.Mul(&q.y, &j.z)
	s2.Mul(&s2, &z1z1)
	h.Sub(&u2, &j.x)
	rr.Sub(&s2, &j.y)
	rr.Double(&rr)
	if h.IsZero() {
		if rr.IsZero() {
			j.double()
			return
		}
		j.setInfinity()
		return
	}
	hh.Square(&h)
	i.Double(&hh)
	i.Double(&i)
	jj.Mul(&h, &i)
	v.Mul(&j.x, &i)
	var x3, y3, z3 fp2
	x3.Square(&rr)
	x3.Sub(&x3, &jj)
	t.Double(&v)
	x3.Sub(&x3, &t)
	y3.Sub(&v, &x3)
	y3.Mul(&y3, &rr)
	t.Mul(&j.y, &jj)
	t.Double(&t)
	y3.Sub(&y3, &t)
	z3.Add(&j.z, &h)
	z3.Square(&z3)
	z3.Sub(&z3, &z1z1)
	z3.Sub(&z3, &hh)
	j.x.Set(&x3)
	j.y.Set(&y3)
	j.z.Set(&z3)
}

// scalarMultJacobianG2 computes k·a via the Jacobian ladder over Fp2.
func scalarMultJacobianG2(p *G2, a *G2, k *big.Int) *G2 {
	kk := new(big.Int).Mod(k, Order)
	if a.inf || kk.Sign() == 0 {
		p.inf = true
		p.x.SetZero()
		p.y.SetZero()
		return p
	}
	var acc g2Jac
	acc.setInfinity()
	var base G2
	base.Set(a)
	for i := kk.BitLen() - 1; i >= 0; i-- {
		acc.double()
		if kk.Bit(i) == 1 {
			acc.addMixed(&base)
		}
	}
	acc.toAffine(p)
	return p
}
