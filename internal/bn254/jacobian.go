package bn254

import (
	"math/big"

	"typepre/internal/bn254/fp"
)

// Jacobian-coordinate scalar multiplication for G1 and G2. A point
// (X, Y, Z) represents the affine point (X/Z², Y/Z³); doubling and mixed
// addition avoid the per-step field inversion of the affine formulas, which
// dominates their cost (a constant-time inversion is hundreds of
// multiplications). ScalarMult uses these paths; the affine ladder is kept
// as the property-tested reference (scalarMultAffine) and as the E1
// ablation.

// g1Jac is a G1 point in Jacobian coordinates; Z=0 encodes infinity.
type g1Jac struct {
	x, y, z fp.Element
}

func (j *g1Jac) setInfinity() {
	j.x.SetOne()
	j.y.SetOne()
	j.z.SetZero()
}

func (j *g1Jac) fromAffine(p *G1) {
	if p.inf {
		j.setInfinity()
		return
	}
	j.x.Set(&p.x)
	j.y.Set(&p.y)
	j.z.SetOne()
}

func (j *g1Jac) toAffine(p *G1) {
	if j.z.IsZero() {
		p.inf = true
		p.x.SetZero()
		p.y.SetZero()
		return
	}
	var zInv, zInv2, zInv3 fp.Element
	zInv.Inverse(&j.z)
	zInv2.Square(&zInv)
	zInv3.Mul(&zInv2, &zInv)
	p.x.Mul(&j.x, &zInv2)
	p.y.Mul(&j.y, &zInv3)
	p.inf = false
}

// double sets j = 2j (dbl-2009-l formulas, a = 0).
func (j *g1Jac) double() {
	if j.z.IsZero() {
		return
	}
	var a, b, c, d, e, f, t fp.Element
	a.Square(&j.x) // A = X²
	b.Square(&j.y) // B = Y²
	c.Square(&b)   // C = B²
	// D = 2((X+B)² − A − C)
	d.Add(&j.x, &b)
	d.Square(&d)
	d.Sub(&d, &a)
	d.Sub(&d, &c)
	d.Double(&d)
	// E = 3A, F = E²
	e.Double(&a)
	e.Add(&e, &a)
	f.Square(&e)
	// Z3 = 2YZ (uses old Y)
	var z3 fp.Element
	z3.Mul(&j.y, &j.z)
	z3.Double(&z3)
	// X3 = F − 2D
	t.Double(&d)
	j.x.Sub(&f, &t)
	// Y3 = E(D − X3) − 8C
	t.Sub(&d, &j.x)
	t.Mul(&t, &e)
	c.Double(&c)
	c.Double(&c)
	c.Double(&c)
	j.y.Sub(&t, &c)
	j.z.Set(&z3)
}

// addMixed sets j = j + q for an affine, non-infinity q
// (madd-2007-bl formulas).
func (j *g1Jac) addMixed(q *G1) {
	if j.z.IsZero() {
		j.fromAffine(q)
		return
	}
	var z1z1, u2, s2, h, hh, i, jj, rr, v, t fp.Element
	z1z1.Square(&j.z)
	u2.Mul(&q.x, &z1z1)
	s2.Mul(&q.y, &j.z)
	s2.Mul(&s2, &z1z1)
	h.Sub(&u2, &j.x)
	rr.Sub(&s2, &j.y)
	rr.Double(&rr)
	if h.IsZero() {
		if rr.IsZero() {
			j.double()
			return
		}
		j.setInfinity()
		return
	}
	hh.Square(&h)
	i.Double(&hh)
	i.Double(&i)
	jj.Mul(&h, &i)
	v.Mul(&j.x, &i)
	var x3, y3, z3 fp.Element
	// X3 = r² − J − 2V
	x3.Square(&rr)
	x3.Sub(&x3, &jj)
	t.Double(&v)
	x3.Sub(&x3, &t)
	// Y3 = r(V − X3) − 2·Y1·J
	y3.Sub(&v, &x3)
	y3.Mul(&y3, &rr)
	t.Mul(&j.y, &jj)
	t.Double(&t)
	y3.Sub(&y3, &t)
	// Z3 = (Z1 + H)² − Z1Z1 − HH
	z3.Add(&j.z, &h)
	z3.Square(&z3)
	z3.Sub(&z3, &z1z1)
	z3.Sub(&z3, &hh)

	j.x.Set(&x3)
	j.y.Set(&y3)
	j.z.Set(&z3)
}

// scalarMultJacobianG1 computes k·a via the Jacobian ladder.
func scalarMultJacobianG1(p *G1, a *G1, k *big.Int) *G1 {
	kk := new(big.Int).Mod(k, Order)
	var acc g1Jac
	acc.setInfinity()
	if a.inf || kk.Sign() == 0 {
		p.inf = true
		p.x.SetZero()
		p.y.SetZero()
		return p
	}
	var base G1
	base.Set(a)
	for i := kk.BitLen() - 1; i >= 0; i-- {
		acc.double()
		if kk.Bit(i) == 1 {
			acc.addMixed(&base)
		}
	}
	acc.toAffine(p)
	return p
}

// g2Jac is a G2 point in Jacobian coordinates over Fp2; Z=0 is infinity.
type g2Jac struct {
	x, y, z fp2
}

func (j *g2Jac) setInfinity() {
	j.x.SetOne()
	j.y.SetOne()
	j.z.SetZero()
}

func (j *g2Jac) fromAffine(p *G2) {
	if p.inf {
		j.setInfinity()
		return
	}
	j.x.Set(&p.x)
	j.y.Set(&p.y)
	j.z.SetOne()
}

func (j *g2Jac) toAffine(p *G2) {
	if j.z.IsZero() {
		p.inf = true
		p.x.SetZero()
		p.y.SetZero()
		return
	}
	var zInv, zInv2, zInv3 fp2
	zInv.Inverse(&j.z)
	zInv2.Square(&zInv)
	zInv3.Mul(&zInv2, &zInv)
	p.x.Mul(&j.x, &zInv2)
	p.y.Mul(&j.y, &zInv3)
	p.inf = false
}

func (j *g2Jac) double() {
	if j.z.IsZero() {
		return
	}
	var a, b, c, d, e, f, t fp2
	a.Square(&j.x)
	b.Square(&j.y)
	c.Square(&b)
	d.Add(&j.x, &b)
	d.Square(&d)
	d.Sub(&d, &a)
	d.Sub(&d, &c)
	d.Double(&d)
	e.Double(&a)
	e.Add(&e, &a)
	f.Square(&e)
	var z3 fp2
	z3.Mul(&j.y, &j.z)
	z3.Double(&z3)
	t.Double(&d)
	j.x.Sub(&f, &t)
	t.Sub(&d, &j.x)
	t.Mul(&t, &e)
	c.Double(&c)
	c.Double(&c)
	c.Double(&c)
	j.y.Sub(&t, &c)
	j.z.Set(&z3)
}

func (j *g2Jac) addMixed(q *G2) {
	if j.z.IsZero() {
		j.fromAffine(q)
		return
	}
	var z1z1, u2, s2, h, hh, i, jj, rr, v, t fp2
	z1z1.Square(&j.z)
	u2.Mul(&q.x, &z1z1)
	s2.Mul(&q.y, &j.z)
	s2.Mul(&s2, &z1z1)
	h.Sub(&u2, &j.x)
	rr.Sub(&s2, &j.y)
	rr.Double(&rr)
	if h.IsZero() {
		if rr.IsZero() {
			j.double()
			return
		}
		j.setInfinity()
		return
	}
	hh.Square(&h)
	i.Double(&hh)
	i.Double(&i)
	jj.Mul(&h, &i)
	v.Mul(&j.x, &i)
	var x3, y3, z3 fp2
	x3.Square(&rr)
	x3.Sub(&x3, &jj)
	t.Double(&v)
	x3.Sub(&x3, &t)
	y3.Sub(&v, &x3)
	y3.Mul(&y3, &rr)
	t.Mul(&j.y, &jj)
	t.Double(&t)
	y3.Sub(&y3, &t)
	z3.Add(&j.z, &h)
	z3.Square(&z3)
	z3.Sub(&z3, &z1z1)
	z3.Sub(&z3, &hh)
	j.x.Set(&x3)
	j.y.Set(&y3)
	j.z.Set(&z3)
}

// scalarMultJacobianG2 computes k·a via the Jacobian ladder over Fp2.
func scalarMultJacobianG2(p *G2, a *G2, k *big.Int) *G2 {
	kk := new(big.Int).Mod(k, Order)
	if a.inf || kk.Sign() == 0 {
		p.inf = true
		p.x.SetZero()
		p.y.SetZero()
		return p
	}
	var acc g2Jac
	acc.setInfinity()
	var base G2
	base.Set(a)
	for i := kk.BitLen() - 1; i >= 0; i-- {
		acc.double()
		if kk.Bit(i) == 1 {
			acc.addMixed(&base)
		}
	}
	acc.toAffine(p)
	return p
}
