package bn254

import (
	"math/big"
	"math/rand"
	"testing"
)

// In-package micro-benchmarks for the arithmetic layers, including the
// ablation pairs (affine vs Jacobian ladders, binary vs windowed
// exponentiation, chain vs direct final exponentiation) that back the E1
// table's design-choice discussion.

func benchScalar() *big.Int {
	r := rand.New(rand.NewSource(99))
	return new(big.Int).Rand(r, Order)
}

func BenchmarkFp2Mul(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := randFp2(r), randFp2(r)
	var out fp2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Mul(x, y)
	}
}

func BenchmarkFp2Inverse(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	x := randFp2(r)
	var out fp2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Inverse(x)
	}
}

func BenchmarkFp6Mul(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	x, y := randFp6(r), randFp6(r)
	var out fp6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Mul(x, y)
	}
}

func BenchmarkFp12Mul(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	x, y := randFp12(r), randFp12(r)
	var out fp12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Mul(x, y)
	}
}

func BenchmarkFp12Square(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	x := randFp12(r)
	var out fp12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Square(x)
	}
}

func BenchmarkFp12Inverse(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	x := randFp12(r)
	var out fp12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Inverse(x)
	}
}

func BenchmarkG1ScalarMultJacobian(b *testing.B) {
	k := benchScalar()
	var out G1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scalarMultJacobianG1(&out, &g1Gen, k)
	}
}

func BenchmarkG1ScalarMultAffine(b *testing.B) {
	k := benchScalar()
	var out G1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.scalarMultAffine(&g1Gen, k)
	}
}

func BenchmarkG2ScalarMultJacobian(b *testing.B) {
	k := benchScalar()
	var out G2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scalarMultJacobianG2(&out, &g2Gen, k)
	}
}

func BenchmarkG2ScalarMultAffine(b *testing.B) {
	k := benchScalar()
	var out G2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.scalarMultAffine(&g2Gen, k)
	}
}

func BenchmarkFp12ExpWindowed(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	x := randFp12(r)
	k := benchScalar()
	var out fp12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.expWindowed(x, k)
	}
}

func BenchmarkFp12ExpBinary(b *testing.B) {
	r := rand.New(rand.NewSource(8))
	x := randFp12(r)
	k := benchScalar()
	var out fp12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.expBinary(x, k)
	}
}

func BenchmarkMillerLoop(b *testing.B) {
	p := G1Generator()
	q := G2Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		millerLoop(p, q)
	}
}

func BenchmarkFinalExponentiation(b *testing.B) {
	f := millerLoop(G1Generator(), G2Generator())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		finalExponentiation(f)
	}
}

func BenchmarkG1Compress(b *testing.B) {
	var p G1
	p.ScalarBaseMult(benchScalar())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MarshalCompressed()
	}
}

func BenchmarkG1Decompress(b *testing.B) {
	var p G1
	p.ScalarBaseMult(benchScalar())
	data := p.MarshalCompressed()
	var out G1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := out.UnmarshalCompressed(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkG2Decompress(b *testing.B) {
	var p G2
	p.ScalarBaseMult(benchScalar())
	data := p.MarshalCompressed()
	var out G2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := out.UnmarshalCompressed(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrepareG2(b *testing.B) {
	q := G2Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PrepareG2(q)
	}
}

func BenchmarkPairPrepared(b *testing.B) {
	p := G1Generator()
	prep := G2GeneratorPrepared()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PairPrepared(p, prep)
	}
}

// BenchmarkPair measures the full optimal-ate pairing with no
// precomputation: Miller loop plus final exponentiation. This is the
// headline number tracked in BENCH_bn254.json.
func BenchmarkPair(b *testing.B) {
	p := G1Generator()
	q := G2Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pair(p, q)
	}
}

// BenchmarkPairNaive is a legacy alias for BenchmarkPair, kept so recorded
// benchmark histories remain comparable across runs.
func BenchmarkPairNaive(b *testing.B) { BenchmarkPair(b) }

func BenchmarkG1ScalarBaseMultFixed(b *testing.B) {
	k := benchScalar()
	var out G1
	out.ScalarBaseMult(k) // force the table build out of the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.ScalarBaseMult(k)
	}
}

func BenchmarkG1ScalarBaseMultGeneric(b *testing.B) {
	k := benchScalar()
	var out G1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.scalarBaseMultGeneric(k)
	}
}

func BenchmarkG2ScalarBaseMultFixed(b *testing.B) {
	k := benchScalar()
	var out G2
	out.ScalarBaseMult(k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.ScalarBaseMult(k)
	}
}

func BenchmarkG2ScalarBaseMultGeneric(b *testing.B) {
	k := benchScalar()
	var out G2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.scalarBaseMultGeneric(k)
	}
}

func BenchmarkGTExpBaseFixed(b *testing.B) {
	k := benchScalar()
	GTExpBase(k) // force the table build out of the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GTExpBase(k)
	}
}

func BenchmarkGTExpBaseGeneric(b *testing.B) {
	k := benchScalar()
	base := GTBase()
	var out GT
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Exp(base, k)
	}
}
