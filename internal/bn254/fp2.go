package bn254

import (
	"fmt"
	"math/big"
)

// fp2 is an element of Fp2 = Fp[i]/(i²+1), stored as c0 + c1·i.
// The zero value is the field's zero element.
type fp2 struct {
	c0, c1 big.Int
}

func (e *fp2) String() string {
	return fmt.Sprintf("(%s + %s·i)", fpString(&e.c0), fpString(&e.c1))
}

// Set assigns a to e and returns e.
func (e *fp2) Set(a *fp2) *fp2 {
	e.c0.Set(&a.c0)
	e.c1.Set(&a.c1)
	return e
}

// SetZero assigns 0 to e and returns e.
func (e *fp2) SetZero() *fp2 {
	e.c0.SetInt64(0)
	e.c1.SetInt64(0)
	return e
}

// SetOne assigns 1 to e and returns e.
func (e *fp2) SetOne() *fp2 {
	e.c0.SetInt64(1)
	e.c1.SetInt64(0)
	return e
}

// SetInts assigns c0 + c1·i (reduced mod p) to e and returns e.
func (e *fp2) SetInts(c0, c1 *big.Int) *fp2 {
	e.c0.Set(c0)
	e.c1.Set(c1)
	modP(&e.c0)
	modP(&e.c1)
	return e
}

// IsZero reports whether e == 0.
func (e *fp2) IsZero() bool {
	return e.c0.Sign() == 0 && e.c1.Sign() == 0
}

// IsOne reports whether e == 1.
func (e *fp2) IsOne() bool {
	return e.c0.Cmp(bigOne) == 0 && e.c1.Sign() == 0
}

// Equal reports whether e == a.
func (e *fp2) Equal(a *fp2) bool {
	return e.c0.Cmp(&a.c0) == 0 && e.c1.Cmp(&a.c1) == 0
}

// Add sets e = a + b and returns e.
func (e *fp2) Add(a, b *fp2) *fp2 {
	e.c0.Add(&a.c0, &b.c0)
	e.c1.Add(&a.c1, &b.c1)
	modP(&e.c0)
	modP(&e.c1)
	return e
}

// Sub sets e = a - b and returns e.
func (e *fp2) Sub(a, b *fp2) *fp2 {
	e.c0.Sub(&a.c0, &b.c0)
	e.c1.Sub(&a.c1, &b.c1)
	modP(&e.c0)
	modP(&e.c1)
	return e
}

// Neg sets e = -a and returns e.
func (e *fp2) Neg(a *fp2) *fp2 {
	e.c0.Neg(&a.c0)
	e.c1.Neg(&a.c1)
	modP(&e.c0)
	modP(&e.c1)
	return e
}

// Double sets e = 2a and returns e.
func (e *fp2) Double(a *fp2) *fp2 {
	e.c0.Lsh(&a.c0, 1)
	e.c1.Lsh(&a.c1, 1)
	modP(&e.c0)
	modP(&e.c1)
	return e
}

// Mul sets e = a·b and returns e. Aliasing of e with a or b is allowed.
func (e *fp2) Mul(a, b *fp2) *fp2 {
	// (a0 + a1·i)(b0 + b1·i) = (a0b0 - a1b1) + (a0b1 + a1b0)·i
	var t0, t1, t2, t3 big.Int
	t0.Mul(&a.c0, &b.c0)
	t1.Mul(&a.c1, &b.c1)
	t2.Mul(&a.c0, &b.c1)
	t3.Mul(&a.c1, &b.c0)
	e.c0.Sub(&t0, &t1)
	e.c1.Add(&t2, &t3)
	modP(&e.c0)
	modP(&e.c1)
	return e
}

// MulScalar sets e = a·s where s is a base-field scalar, and returns e.
func (e *fp2) MulScalar(a *fp2, s *big.Int) *fp2 {
	e.c0.Mul(&a.c0, s)
	e.c1.Mul(&a.c1, s)
	modP(&e.c0)
	modP(&e.c1)
	return e
}

// Square sets e = a² and returns e.
func (e *fp2) Square(a *fp2) *fp2 {
	// (a0 + a1·i)² = (a0-a1)(a0+a1) + 2a0a1·i
	var t0, t1, t2 big.Int
	t0.Sub(&a.c0, &a.c1)
	t1.Add(&a.c0, &a.c1)
	t2.Mul(&t0, &t1)
	t0.Mul(&a.c0, &a.c1)
	t0.Lsh(&t0, 1)
	e.c0.Set(&t2)
	e.c1.Set(&t0)
	modP(&e.c0)
	modP(&e.c1)
	return e
}

// Conjugate sets e = conj(a) = a0 - a1·i (the p-power Frobenius on Fp2)
// and returns e.
func (e *fp2) Conjugate(a *fp2) *fp2 {
	e.c0.Set(&a.c0)
	e.c1.Neg(&a.c1)
	modP(&e.c1)
	return e
}

// Inverse sets e = a⁻¹ and returns e. It panics on zero input, which in this
// code base is always a programmer error (line functions and field formulas
// never invert zero for valid group inputs).
func (e *fp2) Inverse(a *fp2) *fp2 {
	// (a0 + a1·i)⁻¹ = (a0 - a1·i) / (a0² + a1²)
	var t0, t1 big.Int
	t0.Mul(&a.c0, &a.c0)
	t1.Mul(&a.c1, &a.c1)
	t0.Add(&t0, &t1)
	modP(&t0)
	if t0.Sign() == 0 {
		panic("bn254: inversion of zero fp2 element")
	}
	t0.ModInverse(&t0, P)
	e.c0.Mul(&a.c0, &t0)
	t1.Neg(&a.c1)
	e.c1.Mul(&t1, &t0)
	modP(&e.c0)
	modP(&e.c1)
	return e
}

// Exp sets e = a^k for a non-negative exponent k and returns e.
func (e *fp2) Exp(a *fp2, k *big.Int) *fp2 {
	var res, base fp2
	res.SetOne()
	base.Set(a)
	for i := k.BitLen() - 1; i >= 0; i-- {
		res.Square(&res)
		if k.Bit(i) == 1 {
			res.Mul(&res, &base)
		}
	}
	return e.Set(&res)
}

var bigOne = big.NewInt(1)
