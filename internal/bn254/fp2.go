package bn254

import (
	"fmt"
	"math/big"

	"typepre/internal/bn254/fp"
)

// fp2 is an element of Fp2 = Fp[i]/(i²+1), stored as c0 + c1·i on limb-based
// base-field elements. The zero value is the field's zero element.
type fp2 struct {
	c0, c1 fp.Element
}

func (e *fp2) String() string {
	return fmt.Sprintf("(%s + %s·i)", e.c0.String(), e.c1.String())
}

// Set assigns a to e and returns e.
func (e *fp2) Set(a *fp2) *fp2 {
	*e = *a
	return e
}

// SetZero assigns 0 to e and returns e.
func (e *fp2) SetZero() *fp2 {
	*e = fp2{}
	return e
}

// SetOne assigns 1 to e and returns e.
func (e *fp2) SetOne() *fp2 {
	e.c0.SetOne()
	e.c1.SetZero()
	return e
}

// SetInts assigns c0 + c1·i (reduced mod p) to e and returns e.
func (e *fp2) SetInts(c0, c1 *big.Int) *fp2 {
	e.c0.SetBigInt(c0)
	e.c1.SetBigInt(c1)
	return e
}

// IsZero reports whether e == 0.
func (e *fp2) IsZero() bool {
	return e.c0.IsZero() && e.c1.IsZero()
}

// IsOne reports whether e == 1.
func (e *fp2) IsOne() bool {
	return e.c0.IsOne() && e.c1.IsZero()
}

// Equal reports whether e == a.
func (e *fp2) Equal(a *fp2) bool {
	return e.c0.Equal(&a.c0) && e.c1.Equal(&a.c1)
}

// Add sets e = a + b and returns e.
func (e *fp2) Add(a, b *fp2) *fp2 {
	e.c0.Add(&a.c0, &b.c0)
	e.c1.Add(&a.c1, &b.c1)
	return e
}

// Sub sets e = a - b and returns e.
func (e *fp2) Sub(a, b *fp2) *fp2 {
	e.c0.Sub(&a.c0, &b.c0)
	e.c1.Sub(&a.c1, &b.c1)
	return e
}

// Neg sets e = -a and returns e.
func (e *fp2) Neg(a *fp2) *fp2 {
	e.c0.Neg(&a.c0)
	e.c1.Neg(&a.c1)
	return e
}

// Double sets e = 2a and returns e.
func (e *fp2) Double(a *fp2) *fp2 {
	e.c0.Double(&a.c0)
	e.c1.Double(&a.c1)
	return e
}

// Mul sets e = a·b and returns e. Aliasing of e with a or b is allowed.
func (e *fp2) Mul(a, b *fp2) *fp2 {
	// Karatsuba over i² = −1: with v0 = a0b0 and v1 = a1b1,
	//   c0 = v0 − v1
	//   c1 = (a0+a1)(b0+b1) − v0 − v1
	// Three base-field multiplications instead of four.
	var v0, v1, s, t fp.Element
	v0.Mul(&a.c0, &b.c0)
	v1.Mul(&a.c1, &b.c1)
	s.Add(&a.c0, &a.c1)
	t.Add(&b.c0, &b.c1)
	s.Mul(&s, &t)
	e.c0.Sub(&v0, &v1)
	s.Sub(&s, &v0)
	e.c1.Sub(&s, &v1)
	return e
}

// MulScalar sets e = a·s where s is a base-field scalar, and returns e.
func (e *fp2) MulScalar(a *fp2, s *fp.Element) *fp2 {
	e.c0.Mul(&a.c0, s)
	e.c1.Mul(&a.c1, s)
	return e
}

// Square sets e = a² and returns e.
func (e *fp2) Square(a *fp2) *fp2 {
	// (a0 + a1·i)² = (a0−a1)(a0+a1) + 2a0a1·i — two multiplications.
	var t0, t1, m fp.Element
	t0.Sub(&a.c0, &a.c1)
	t1.Add(&a.c0, &a.c1)
	m.Mul(&a.c0, &a.c1)
	e.c0.Mul(&t0, &t1)
	e.c1.Double(&m)
	return e
}

// Conjugate sets e = conj(a) = a0 - a1·i (the p-power Frobenius on Fp2)
// and returns e.
func (e *fp2) Conjugate(a *fp2) *fp2 {
	e.c0.Set(&a.c0)
	e.c1.Neg(&a.c1)
	return e
}

// Inverse sets e = a⁻¹ and returns e. It panics on zero input, which in this
// code base is always a programmer error (line functions and field formulas
// never invert zero for valid group inputs).
func (e *fp2) Inverse(a *fp2) *fp2 {
	// (a0 + a1·i)⁻¹ = (a0 - a1·i) / (a0² + a1²)
	var t0, t1 fp.Element
	t0.Square(&a.c0)
	t1.Square(&a.c1)
	t0.Add(&t0, &t1)
	if t0.IsZero() {
		panic("bn254: inversion of zero fp2 element")
	}
	t0.Inverse(&t0)
	e.c0.Mul(&a.c0, &t0)
	t1.Neg(&a.c1)
	e.c1.Mul(&t1, &t0)
	return e
}

// Exp sets e = a^k for a non-negative exponent k and returns e. Variable
// time; used only with public exponents (Frobenius constant derivation, the
// Fp2 square-root chain).
func (e *fp2) Exp(a *fp2, k *big.Int) *fp2 {
	var res, base fp2
	res.SetOne()
	base.Set(a)
	for i := k.BitLen() - 1; i >= 0; i-- {
		res.Square(&res)
		if k.Bit(i) == 1 {
			res.Mul(&res, &base)
		}
	}
	return e.Set(&res)
}
