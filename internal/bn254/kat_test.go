package bn254

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"math/big"
	"os"
	"path/filepath"
	"testing"
)

// Known-answer tests: deterministic inputs with golden outputs committed in
// testdata/kat.json. They pin the exact arithmetic (curve constants, hash
// domains, pairing, encodings) across refactors — any change to a formula
// that property tests might miss (e.g. swapping the two square roots, or a
// different but still bilinear pairing) breaks these.
//
// Regenerate after an INTENTIONAL format change with:
//
//	go test ./internal/bn254 -run TestKnownAnswers -update-kat

var updateKAT = flag.Bool("update-kat", false, "rewrite testdata/kat.json")

type katVectors struct {
	AScalar      string `json:"a_scalar"`
	BScalar      string `json:"b_scalar"`
	AG1          string `json:"a_g1"`
	BG2          string `json:"b_g2"`
	PairingABHex string `json:"pairing_ab"`
	HashG1       string `json:"hash_g1_kat_identity"`
	HashZr       string `json:"hash_zr_kat_type"`
	AG1Comp      string `json:"a_g1_compressed"`
	BG2Comp      string `json:"b_g2_compressed"`
}

func computeKAT() katVectors {
	a := new(big.Int).SetInt64(0x0102030405060708)
	b := new(big.Int).SetInt64(0x1112131415161718)

	var ag1 G1
	ag1.ScalarBaseMult(a)
	var bg2 G2
	bg2.ScalarBaseMult(b)
	gt := Pair(&ag1, &bg2)
	h1 := HashToG1(DomainG1, []byte("kat-identity"))
	hz := HashToZr(DomainZr, []byte("kat-type"))

	return katVectors{
		AScalar:      a.String(),
		BScalar:      b.String(),
		AG1:          hex.EncodeToString(ag1.Marshal()),
		BG2:          hex.EncodeToString(bg2.Marshal()),
		PairingABHex: hex.EncodeToString(gt.Marshal()),
		HashG1:       hex.EncodeToString(h1.Marshal()),
		HashZr:       hz.String(),
		AG1Comp:      hex.EncodeToString(ag1.MarshalCompressed()),
		BG2Comp:      hex.EncodeToString(bg2.MarshalCompressed()),
	}
}

func TestKnownAnswers(t *testing.T) {
	path := filepath.Join("testdata", "kat.json")
	got := computeKAT()

	if *updateKAT {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-kat to create): %v", err)
	}
	var want katVectors
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("known-answer mismatch:\n got %+v\nwant %+v", got, want)
	}

	// Cross-consistency inside the vector set: the pairing must equal
	// ê(G1,G2)^(ab) and the compressed encodings must decompress to the
	// uncompressed points.
	a, _ := new(big.Int).SetString(want.AScalar, 10)
	b, _ := new(big.Int).SetString(want.BScalar, 10)
	ab := new(big.Int).Mul(a, b)
	var expGT GT
	expGT.Exp(GTBase(), ab)
	if hex.EncodeToString(expGT.Marshal()) != want.PairingABHex {
		t.Fatal("pairing KAT inconsistent with ê(G1,G2)^(ab)")
	}
	comp, _ := hex.DecodeString(want.AG1Comp)
	var p G1
	if err := p.UnmarshalCompressed(comp); err != nil {
		t.Fatal(err)
	}
	if hex.EncodeToString(p.Marshal()) != want.AG1 {
		t.Fatal("compressed/uncompressed G1 KAT mismatch")
	}
}
