package bn254

import (
	"math/big"
	"sync"
)

// Precomputation for the hot fixed-argument paths.
//
// Two facts make precomputation pay off throughout the scheme built on this
// package:
//
//  1. The G2 argument of almost every pairing is a long-lived public value
//     (a KGC public key, or the group generator). The Miller loop's line
//     coefficients depend only on that argument, so they can be computed
//     once (PreparedG2) and replayed against many G1 points, skipping one
//     Fp2 inversion plus the slope arithmetic per loop iteration.
//
//  2. Scalar multiplications overwhelmingly use the fixed generators of G1
//     and G2, and GT exponentiations overwhelmingly use ê(G1gen, G2gen).
//     Windowed fixed-base tables trade a one-time table build for dropping
//     every doubling (respectively squaring) from those operations.
//
// All tables are built lazily behind sync.Once guards and shared by every
// goroutine; nothing here mutates after construction.

// millerOp is one replayable step of a Miller loop: either a squaring of
// the accumulator or the multiplication by one precomputed line.
type millerOp struct {
	square bool
	line   lineCoeff
}

// PreparedG2 caches the Miller-loop line coefficients of a fixed G2 point.
// It is immutable after PrepareG2 and safe for concurrent use.
type PreparedG2 struct {
	inf bool
	ops []millerOp
}

// appendLine copies lc into a new op. Field elements are plain limb arrays,
// so a struct copy fully detaches the recorded line from the caller's
// scratch, which the next doubleCoeff/addCoeff invocation overwrites.
func (prep *PreparedG2) appendLine(lc *lineCoeff) {
	prep.ops = append(prep.ops, millerOp{line: *lc})
}

// PrepareG2 walks the optimal ate Miller loop for Q once, recording every
// squaring and line coefficient, so PairPrepared can replay the loop
// against any G1 point without redoing the Q-side arithmetic.
func PrepareG2(Q *G2) *PreparedG2 {
	prep := &PreparedG2{}
	if Q.inf {
		prep.inf = true
		return prep
	}
	// Capacity: one square per loop bit plus at most two lines per bit and
	// the two Frobenius lines.
	n := ateLoopCount.BitLen() - 1
	prep.ops = make([]millerOp, 0, 3*n+2)

	ateLoop(Q, func(square bool, lc *lineCoeff) {
		if square {
			prep.ops = append(prep.ops, millerOp{square: true})
		} else {
			prep.appendLine(lc)
		}
	})
	return prep
}

// IsInfinity reports whether the prepared point is the identity.
func (prep *PreparedG2) IsInfinity() bool { return prep.inf }

// millerLoopPrepared replays a recorded Miller loop against P. It performs
// exactly the same field operations as millerLoop(P, Q), so the results are
// bit-identical.
func millerLoopPrepared(P *G1, prep *PreparedG2) *fp12 {
	var f fp12
	f.SetOne()
	if P.inf || prep.inf {
		return &f
	}
	for i := range prep.ops {
		op := &prep.ops[i]
		if op.square {
			f.Square(&f)
		} else {
			evalLine(&f, &op.line, P)
		}
	}
	return &f
}

// PairPrepared computes ê(P, Q) for a prepared Q. The output is identical
// to Pair(P, Q); only the Q-side Miller-loop work is skipped.
func PairPrepared(P *G1, prep *PreparedG2) *GT {
	f := millerLoopPrepared(P, prep)
	var g GT
	g.v.Set(finalExponentiation(f))
	return &g
}

// PairProductPrepared computes ∏ ê(Pᵢ, Qᵢ) for prepared Qᵢ, sharing a
// single final exponentiation like PairProduct.
func PairProductPrepared(ps []*G1, preps []*PreparedG2) *GT {
	if len(ps) != len(preps) {
		panic("bn254: mismatched PairProductPrepared inputs")
	}
	var acc fp12
	acc.SetOne()
	for i := range ps {
		f := millerLoopPrepared(ps[i], preps[i])
		acc.Mul(&acc, f)
	}
	var g GT
	g.v.Set(finalExponentiation(&acc))
	return &g
}

var (
	g2GenPrepOnce sync.Once
	g2GenPrep     *PreparedG2
)

// G2GeneratorPrepared returns the prepared form of the fixed G2 generator,
// computed once and cached. The returned value is shared; do not modify.
func G2GeneratorPrepared() *PreparedG2 {
	g2GenPrepOnce.Do(func() {
		g2GenPrep = PrepareG2(&g2Gen)
	})
	return g2GenPrep
}

// ---------------------------------------------------------------------------
// Fixed-base windowed scalar multiplication
// ---------------------------------------------------------------------------

const (
	// fixedBaseWindow is the window width in bits.
	fixedBaseWindow = 4
	// fixedBaseWindows covers a full 256-bit reduced scalar.
	fixedBaseWindows = 256 / fixedBaseWindow
	// fixedBaseEntries is the number of nonzero window values (1..15).
	fixedBaseEntries = 1<<fixedBaseWindow - 1
)

// windowValue extracts window w (fixedBaseWindow bits) of the reduced
// scalar k.
func windowValue(k *big.Int, w int) uint {
	base := w * fixedBaseWindow
	v := uint(0)
	for b := 0; b < fixedBaseWindow; b++ {
		v |= k.Bit(base+b) << b
	}
	return v
}

// g1FixedTable holds tab[w][v-1] = v·2^(4w)·B for a fixed base B.
type g1FixedTable struct {
	tab [fixedBaseWindows][fixedBaseEntries]G1
}

func buildG1FixedTable(base *G1) *g1FixedTable {
	t := new(g1FixedTable)
	var cur G1
	cur.Set(base)
	for w := 0; w < fixedBaseWindows; w++ {
		t.tab[w][0].Set(&cur)
		for v := 1; v < fixedBaseEntries; v++ {
			t.tab[w][v].Add(&t.tab[w][v-1], &cur)
		}
		var next G1
		next.Add(&t.tab[w][fixedBaseEntries-1], &cur) // 16·cur
		cur.Set(&next)
	}
	return t
}

// mul computes p = k·B by summing one table entry per nonzero window: at
// most 64 mixed Jacobian additions and one final inversion, against the
// ~254 doublings plus ~127 additions of the generic ladder.
func (t *g1FixedTable) mul(p *G1, k *big.Int) *G1 {
	kk := new(big.Int).Mod(k, Order)
	var acc g1Jac
	acc.setInfinity()
	for w := 0; w < fixedBaseWindows; w++ {
		if v := windowValue(kk, w); v != 0 {
			acc.addMixed(&t.tab[w][v-1])
		}
	}
	acc.toAffine(p)
	return p
}

// g2FixedTable is the G2 analogue of g1FixedTable. Accumulation is mixed
// Jacobian like G1: with limb-based field arithmetic an Fp2 inversion costs
// hundreds of multiplications, so one inversion at the end beats one per
// window (the reverse of the old math/big trade-off; see G2.ScalarMult).
type g2FixedTable struct {
	tab [fixedBaseWindows][fixedBaseEntries]G2
}

func buildG2FixedTable(base *G2) *g2FixedTable {
	t := new(g2FixedTable)
	var cur G2
	cur.Set(base)
	for w := 0; w < fixedBaseWindows; w++ {
		t.tab[w][0].Set(&cur)
		for v := 1; v < fixedBaseEntries; v++ {
			t.tab[w][v].Add(&t.tab[w][v-1], &cur)
		}
		var next G2
		next.Add(&t.tab[w][fixedBaseEntries-1], &cur)
		cur.Set(&next)
	}
	return t
}

func (t *g2FixedTable) mul(p *G2, k *big.Int) *G2 {
	kk := new(big.Int).Mod(k, Order)
	var acc g2Jac
	acc.setInfinity()
	for w := 0; w < fixedBaseWindows; w++ {
		if v := windowValue(kk, w); v != 0 {
			acc.addMixed(&t.tab[w][v-1])
		}
	}
	acc.toAffine(p)
	return p
}

// gtFixedTable holds tab[w][v-1] = B^(v·2^(4w)) for the fixed GT base.
type gtFixedTable struct {
	tab [fixedBaseWindows][fixedBaseEntries]fp12
}

func buildGTFixedTable(base *fp12) *gtFixedTable {
	t := new(gtFixedTable)
	var cur fp12
	cur.Set(base)
	for w := 0; w < fixedBaseWindows; w++ {
		t.tab[w][0].Set(&cur)
		for v := 1; v < fixedBaseEntries; v++ {
			t.tab[w][v].Mul(&t.tab[w][v-1], &cur)
		}
		var next fp12
		next.Mul(&t.tab[w][fixedBaseEntries-1], &cur)
		cur.Set(&next)
	}
	return t
}

// exp computes out = B^k with one multiplication per nonzero window and no
// squarings at all.
func (t *gtFixedTable) exp(out *fp12, k *big.Int) *fp12 {
	kk := new(big.Int).Mod(k, Order)
	out.SetOne()
	for w := 0; w < fixedBaseWindows; w++ {
		if v := windowValue(kk, w); v != 0 {
			out.Mul(out, &t.tab[w][v-1])
		}
	}
	return out
}

var (
	g1GenTableOnce sync.Once
	g1GenTable     *g1FixedTable

	g2GenTableOnce sync.Once
	g2GenTable     *g2FixedTable

	gtBaseTableOnce sync.Once
	gtBaseTable     *gtFixedTable
)

func g1GeneratorTable() *g1FixedTable {
	g1GenTableOnce.Do(func() {
		g1GenTable = buildG1FixedTable(&g1Gen)
	})
	return g1GenTable
}

func g2GeneratorTable() *g2FixedTable {
	g2GenTableOnce.Do(func() {
		g2GenTable = buildG2FixedTable(&g2Gen)
	})
	return g2GenTable
}

func gtBaseFixedTable() *gtFixedTable {
	gtBaseTableOnce.Do(func() {
		gtBaseTable = buildGTFixedTable(&GTBase().v)
	})
	return gtBaseTable
}
