package bn254

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// randFp returns a random base-field element.
func randFp(r *rand.Rand) *big.Int {
	return new(big.Int).Rand(r, P)
}

func randFp2(r *rand.Rand) *fp2 {
	var e fp2
	e.c0.SetBigInt(randFp(r))
	e.c1.SetBigInt(randFp(r))
	return &e
}

func randFp6(r *rand.Rand) *fp6 {
	var e fp6
	e.c0.Set(randFp2(r))
	e.c1.Set(randFp2(r))
	e.c2.Set(randFp2(r))
	return &e
}

func randFp12(r *rand.Rand) *fp12 {
	var e fp12
	e.c0.Set(randFp6(r))
	e.c1.Set(randFp6(r))
	return &e
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(42))}
}

func TestFp2MulCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randFp2(r), randFp2(r)
		var ab, ba fp2
		ab.Mul(a, b)
		ba.Mul(b, a)
		return ab.Equal(&ba)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestFp2MulAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randFp2(r), randFp2(r), randFp2(r)
		var l, rr fp2
		l.Mul(a, b)
		l.Mul(&l, c)
		rr.Mul(b, c)
		rr.Mul(a, &rr)
		return l.Equal(&rr)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestFp2Distributive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randFp2(r), randFp2(r), randFp2(r)
		var l, r1, r2 fp2
		l.Add(b, c)
		l.Mul(a, &l)
		r1.Mul(a, b)
		r2.Mul(a, c)
		r1.Add(&r1, &r2)
		return l.Equal(&r1)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestFp2SquareMatchesMul(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randFp2(r)
		var sq, mul fp2
		sq.Square(a)
		mul.Mul(a, a)
		return sq.Equal(&mul)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestFp2Inverse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randFp2(r)
		if a.IsZero() {
			return true
		}
		var inv, prod fp2
		inv.Inverse(a)
		prod.Mul(a, &inv)
		return prod.IsOne()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestFp2InverseZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero inversion")
		}
	}()
	var z, zero fp2
	z.Inverse(&zero)
}

func TestFp2Conjugate(t *testing.T) {
	// conj(a) must equal a^p (the Frobenius).
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5; i++ {
		a := randFp2(r)
		var conj, pow fp2
		conj.Conjugate(a)
		pow.Exp(a, P)
		if !conj.Equal(&pow) {
			t.Fatalf("conjugate != a^p for %v", a)
		}
	}
}

func TestMulByXi(t *testing.T) {
	var xi fp2
	xi.c0.SetUint64(9)
	xi.c1.SetUint64(1)
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 10; i++ {
		a := randFp2(r)
		var viaHelper, viaMul fp2
		mulByXi(&viaHelper, a)
		viaMul.Mul(a, &xi)
		if !viaHelper.Equal(&viaMul) {
			t.Fatalf("mulByXi mismatch for %v", a)
		}
	}
}

func TestFp6Inverse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randFp6(r)
		if a.IsZero() {
			return true
		}
		var inv, prod fp6
		inv.Inverse(a)
		prod.Mul(a, &inv)
		return prod.IsOne()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestFp6MulAssociativeAndCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randFp6(r), randFp6(r), randFp6(r)
		var l, rr, ab, ba fp6
		l.Mul(a, b)
		l.Mul(&l, c)
		rr.Mul(b, c)
		rr.Mul(a, &rr)
		ab.Mul(a, b)
		ba.Mul(b, a)
		return l.Equal(&rr) && ab.Equal(&ba)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestFp6MulByTau(t *testing.T) {
	// Multiplying by τ must match multiplication by the element (0,1,0).
	var tau fp6
	tau.c1.SetOne()
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 10; i++ {
		a := randFp6(r)
		var viaHelper, viaMul fp6
		viaHelper.MulByTau(a)
		viaMul.Mul(a, &tau)
		if !viaHelper.Equal(&viaMul) {
			t.Fatalf("MulByTau mismatch")
		}
	}
}

func TestFp6Frobenius(t *testing.T) {
	// Frobenius(a) must equal a^p computed generically in Fp12 (embed).
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 3; i++ {
		a := randFp6(r)
		var emb, frob fp12
		emb.c0.Set(a)
		frob.Frobenius(&emb)
		var pow fp12
		pow.Exp(&emb, P)
		if !frob.Equal(&pow) {
			t.Fatalf("fp6-embedded Frobenius != a^p")
		}
	}
}

func TestFp12Inverse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randFp12(r)
		if a.IsZero() {
			return true
		}
		var inv, prod fp12
		inv.Inverse(a)
		prod.Mul(a, &inv)
		return prod.IsOne()
	}
	cfg := quickCfg()
	cfg.MaxCount = 10
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFp12SquareMatchesMul(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 10; i++ {
		a := randFp12(r)
		var sq, mul fp12
		sq.Square(a)
		mul.Mul(a, a)
		if !sq.Equal(&mul) {
			t.Fatal("fp12 square != mul")
		}
	}
}

func TestFp12Frobenius(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 3; i++ {
		a := randFp12(r)
		var frob, pow fp12
		frob.Frobenius(a)
		pow.Exp(a, P)
		if !frob.Equal(&pow) {
			t.Fatal("fp12 Frobenius != a^p")
		}
	}
}

func TestFp12FrobeniusP2(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	a := randFp12(r)
	var frob, pow fp12
	frob.FrobeniusP2(a)
	pow.Exp(a, pSquared)
	if !frob.Equal(&pow) {
		t.Fatal("fp12 FrobeniusP2 != a^(p²)")
	}
}

func TestFp12Conjugate(t *testing.T) {
	// For unit-norm elements (the cyclotomic subgroup after the easy part),
	// conjugate equals inverse; in general conjugate equals a^(p⁶).
	r := rand.New(rand.NewSource(14))
	a := randFp12(r)
	var conj, pow fp12
	conj.Conjugate(a)
	p6 := new(big.Int).Exp(P, big.NewInt(6), nil)
	pow.Exp(a, p6)
	if !conj.Equal(&pow) {
		t.Fatal("fp12 conjugate != a^(p⁶)")
	}
}

func TestFp12ExpHomomorphic(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	a := randFp12(r)
	x := new(big.Int).Rand(r, Order)
	y := new(big.Int).Rand(r, Order)
	var ax, ay, prod, sum fp12
	ax.Exp(a, x)
	ay.Exp(a, y)
	prod.Mul(&ax, &ay)
	sum.Exp(a, new(big.Int).Add(x, y))
	if !prod.Equal(&sum) {
		t.Fatal("a^x·a^y != a^(x+y)")
	}
}
