package bn254

import (
	"errors"
	"fmt"
	"math/big"
)

// G2 is a point on the sextic twist E': y² = x³ + 3/ξ over Fp2, in affine
// coordinates, or the point at infinity when inf is set. Points produced by
// this package lie in the order-r subgroup. The zero value is the point at
// infinity.
type G2 struct {
	x, y fp2
	inf  bool
}

// g2Gen is the conventional alt_bn128 G2 subgroup generator.
var g2Gen G2

func initGenerators() {
	g1Gen.x.SetInt64(1)
	g1Gen.y.SetInt64(2)
	g1Gen.inf = false
	if !g1Gen.IsOnCurve() {
		panic("bn254: G1 generator not on curve")
	}

	set := func(dst *big.Int, s string) {
		if _, ok := dst.SetString(s, 10); !ok {
			panic("bn254: bad generator constant")
		}
	}
	set(&g2Gen.x.c0, "10857046999023057135944570762232829481370756359578518086990519993285655852781")
	set(&g2Gen.x.c1, "11559732032986387107991004021392285783925812861821192530917403151452391805634")
	set(&g2Gen.y.c0, "8495653923123431417604973247489272438418190587263600148770280649306958101930")
	set(&g2Gen.y.c1, "4082367875863433681332203403145435568316851327593401208105741076214120093531")
	g2Gen.inf = false
	if !g2Gen.IsOnCurve() {
		panic("bn254: G2 generator not on twist curve")
	}
	var t G2
	t.ScalarMult(&g2Gen, Order)
	if !t.inf {
		panic("bn254: G2 generator does not have order r")
	}
}

// G2Generator returns a copy of the fixed generator of G2.
func G2Generator() *G2 {
	var g G2
	g.Set(&g2Gen)
	return &g
}

// G2Infinity returns the identity element of G2.
func G2Infinity() *G2 { return &G2{inf: true} }

// Set assigns a to p and returns p.
func (p *G2) Set(a *G2) *G2 {
	p.x.Set(&a.x)
	p.y.Set(&a.y)
	p.inf = a.inf
	return p
}

// IsInfinity reports whether p is the identity.
func (p *G2) IsInfinity() bool { return p.inf }

// Equal reports whether p == q.
func (p *G2) Equal(q *G2) bool {
	if p.inf || q.inf {
		return p.inf == q.inf
	}
	return p.x.Equal(&q.x) && p.y.Equal(&q.y)
}

// IsOnCurve reports whether p satisfies the twist equation (infinity counts
// as on-curve). It does not check subgroup membership; see IsInSubgroup.
func (p *G2) IsOnCurve() bool {
	if p.inf {
		return true
	}
	var lhs, rhs fp2
	lhs.Square(&p.y)
	rhs.Square(&p.x)
	rhs.Mul(&rhs, &p.x)
	rhs.Add(&rhs, &twistB)
	return lhs.Equal(&rhs)
}

// IsInSubgroup reports whether p lies in the order-r subgroup of the twist.
func (p *G2) IsInSubgroup() bool {
	if !p.IsOnCurve() {
		return false
	}
	var t G2
	t.ScalarMult(p, Order)
	return t.inf
}

// Neg sets p = -a and returns p.
func (p *G2) Neg(a *G2) *G2 {
	if a.inf {
		p.inf = true
		return p
	}
	p.x.Set(&a.x)
	p.y.Neg(&a.y)
	p.inf = false
	return p
}

// Double sets p = 2a and returns p.
func (p *G2) Double(a *G2) *G2 {
	if a.inf || a.y.IsZero() {
		p.inf = true
		return p
	}
	var lam, t, x3, y3 fp2
	// λ = 3x²/(2y)
	lam.Square(&a.x)
	var three fp2
	three.c0.SetInt64(3)
	lam.Mul(&lam, &three)
	t.Double(&a.y)
	t.Inverse(&t)
	lam.Mul(&lam, &t)

	x3.Square(&lam)
	t.Double(&a.x)
	x3.Sub(&x3, &t)

	y3.Sub(&a.x, &x3)
	y3.Mul(&y3, &lam)
	y3.Sub(&y3, &a.y)

	p.x.Set(&x3)
	p.y.Set(&y3)
	p.inf = false
	return p
}

// Add sets p = a + b and returns p. Aliasing is allowed.
func (p *G2) Add(a, b *G2) *G2 {
	if a.inf {
		return p.Set(b)
	}
	if b.inf {
		return p.Set(a)
	}
	if a.x.Equal(&b.x) {
		if a.y.Equal(&b.y) {
			return p.Double(a)
		}
		p.inf = true
		return p
	}
	var lam, t, x3, y3 fp2
	lam.Sub(&b.y, &a.y)
	t.Sub(&b.x, &a.x)
	t.Inverse(&t)
	lam.Mul(&lam, &t)

	x3.Square(&lam)
	x3.Sub(&x3, &a.x)
	x3.Sub(&x3, &b.x)

	y3.Sub(&a.x, &x3)
	y3.Mul(&y3, &lam)
	y3.Sub(&y3, &a.y)

	p.x.Set(&x3)
	p.y.Set(&y3)
	p.inf = false
	return p
}

// ScalarMult sets p = k·a (k taken mod r) and returns p. Unlike G1, the
// affine ladder measures slightly FASTER than the Jacobian one here: an
// Fp2 inversion costs one base-field inversion plus a few multiplications,
// which under math/big is cheaper than the ~12 extra Fp2 multiplications
// Jacobian doubling/addition trades it for (see BenchmarkG2ScalarMult*).
// scalarMultJacobianG2 is kept as the property-tested ablation.
func (p *G2) ScalarMult(a *G2, k *big.Int) *G2 {
	return p.scalarMultAffine(a, k)
}

// scalarMultAffine is the double-and-add ladder in affine coordinates.
func (p *G2) scalarMultAffine(a *G2, k *big.Int) *G2 {
	kk := new(big.Int).Mod(k, Order)
	var acc G2
	acc.inf = true
	var base G2
	base.Set(a)
	for i := kk.BitLen() - 1; i >= 0; i-- {
		acc.Double(&acc)
		if kk.Bit(i) == 1 {
			acc.Add(&acc, &base)
		}
	}
	return p.Set(&acc)
}

// ScalarBaseMult sets p = k·G where G is the fixed generator, and returns p.
// It runs on the lazily built fixed-base window table (see precompute.go);
// scalarBaseMultGeneric is the property-tested reference path.
func (p *G2) ScalarBaseMult(k *big.Int) *G2 {
	return g2GeneratorTable().mul(p, k)
}

// scalarBaseMultGeneric computes k·G through the generic ladder, without
// the fixed-base table. Reference implementation for tests and benchmarks.
func (p *G2) scalarBaseMultGeneric(k *big.Int) *G2 {
	return p.ScalarMult(&g2Gen, k)
}

// frobeniusTwist sets p = π(a), the p-power Frobenius endomorphism carried
// to the twist: π(x, y) = (conj(x)·ξ^((p-1)/3), conj(y)·ξ^((p-1)/2)).
func (p *G2) frobeniusTwist(a *G2) *G2 {
	if a.inf {
		p.inf = true
		return p
	}
	p.x.Conjugate(&a.x)
	p.x.Mul(&p.x, &xiToPMinus1Over3)
	p.y.Conjugate(&a.y)
	p.y.Mul(&p.y, &xiToPMinus1Over2)
	p.inf = false
	return p
}

// G2Size is the marshaled size of a G2 point in bytes.
const G2Size = 4 * g1ElementSize

// Marshal encodes p as 128 bytes (x.c0‖x.c1‖y.c0‖y.c1, big-endian). The
// point at infinity encodes as all zeros.
func (p *G2) Marshal() []byte {
	out := make([]byte, G2Size)
	if p.inf {
		return out
	}
	p.x.c0.FillBytes(out[0:32])
	p.x.c1.FillBytes(out[32:64])
	p.y.c0.FillBytes(out[64:96])
	p.y.c1.FillBytes(out[96:128])
	return out
}

// Unmarshal decodes a point previously produced by Marshal, verifying the
// twist equation and order-r subgroup membership.
func (p *G2) Unmarshal(data []byte) error {
	if len(data) != G2Size {
		return fmt.Errorf("bn254: invalid G2 encoding length %d", len(data))
	}
	allZero := true
	for _, b := range data {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		p.inf = true
		p.x.SetZero()
		p.y.SetZero()
		return nil
	}
	p.x.c0.SetBytes(data[0:32])
	p.x.c1.SetBytes(data[32:64])
	p.y.c0.SetBytes(data[64:96])
	p.y.c1.SetBytes(data[96:128])
	p.inf = false
	for _, c := range []*big.Int{&p.x.c0, &p.x.c1, &p.y.c0, &p.y.c1} {
		if c.Cmp(P) >= 0 {
			return errors.New("bn254: G2 coordinate out of range")
		}
	}
	if !p.IsOnCurve() {
		return errors.New("bn254: G2 point not on twist curve")
	}
	if !p.IsInSubgroup() {
		return errors.New("bn254: G2 point not in order-r subgroup")
	}
	return nil
}

func (p *G2) String() string {
	if p.inf {
		return "G2(∞)"
	}
	return fmt.Sprintf("G2(%s, %s)", p.x.String(), p.y.String())
}
