package bn254

import (
	"errors"
	"fmt"
	"math/big"

	"typepre/internal/bn254/fp"
)

// G2 is a point on the sextic twist E': y² = x³ + 3/ξ over Fp2, in affine
// coordinates, or the point at infinity when inf is set. Points produced by
// this package lie in the order-r subgroup. The zero value is the point at
// infinity.
type G2 struct {
	x, y fp2
	inf  bool
}

// g2Gen is the conventional alt_bn128 G2 subgroup generator.
var g2Gen G2

func initGenerators() {
	g1Gen.x.SetUint64(1)
	g1Gen.y.SetUint64(2)
	g1Gen.inf = false
	if !g1Gen.IsOnCurve() {
		panic("bn254: G1 generator not on curve")
	}

	parse := func(s string) *big.Int {
		v, ok := new(big.Int).SetString(s, 10)
		if !ok {
			panic("bn254: bad generator constant")
		}
		return v
	}
	g2Gen.x.SetInts(
		parse("10857046999023057135944570762232829481370756359578518086990519993285655852781"),
		parse("11559732032986387107991004021392285783925812861821192530917403151452391805634"))
	g2Gen.y.SetInts(
		parse("8495653923123431417604973247489272438418190587263600148770280649306958101930"),
		parse("4082367875863433681332203403145435568316851327593401208105741076214120093531"))
	g2Gen.inf = false
	if !g2Gen.IsOnCurve() {
		panic("bn254: G2 generator not on twist curve")
	}
	var t G2
	t.ScalarMult(&g2Gen, Order)
	if !t.inf {
		panic("bn254: G2 generator does not have order r")
	}
}

// G2Generator returns a copy of the fixed generator of G2.
func G2Generator() *G2 {
	var g G2
	g.Set(&g2Gen)
	return &g
}

// G2Infinity returns the identity element of G2.
func G2Infinity() *G2 { return &G2{inf: true} }

// Set assigns a to p and returns p.
func (p *G2) Set(a *G2) *G2 {
	*p = *a
	return p
}

// IsInfinity reports whether p is the identity.
func (p *G2) IsInfinity() bool { return p.inf }

// Equal reports whether p == q.
func (p *G2) Equal(q *G2) bool {
	if p.inf || q.inf {
		return p.inf == q.inf
	}
	return p.x.Equal(&q.x) && p.y.Equal(&q.y)
}

// IsOnCurve reports whether p satisfies the twist equation (infinity counts
// as on-curve). It does not check subgroup membership; see IsInSubgroup.
func (p *G2) IsOnCurve() bool {
	if p.inf {
		return true
	}
	var lhs, rhs fp2
	lhs.Square(&p.y)
	rhs.Square(&p.x)
	rhs.Mul(&rhs, &p.x)
	rhs.Add(&rhs, &twistB)
	return lhs.Equal(&rhs)
}

// IsInSubgroup reports whether p lies in the order-r subgroup of the twist.
func (p *G2) IsInSubgroup() bool {
	if !p.IsOnCurve() {
		return false
	}
	var t G2
	t.ScalarMult(p, Order)
	return t.inf
}

// Neg sets p = -a and returns p.
func (p *G2) Neg(a *G2) *G2 {
	if a.inf {
		p.inf = true
		return p
	}
	p.x.Set(&a.x)
	p.y.Neg(&a.y)
	p.inf = false
	return p
}

// Double sets p = 2a and returns p.
func (p *G2) Double(a *G2) *G2 {
	if a.inf || a.y.IsZero() {
		p.inf = true
		return p
	}
	var lam, t, x3, y3 fp2
	// λ = 3x²/(2y)
	lam.Square(&a.x)
	t.Double(&lam)
	lam.Add(&lam, &t)
	t.Double(&a.y)
	t.Inverse(&t)
	lam.Mul(&lam, &t)

	x3.Square(&lam)
	t.Double(&a.x)
	x3.Sub(&x3, &t)

	y3.Sub(&a.x, &x3)
	y3.Mul(&y3, &lam)
	y3.Sub(&y3, &a.y)

	p.x.Set(&x3)
	p.y.Set(&y3)
	p.inf = false
	return p
}

// Add sets p = a + b and returns p. Aliasing is allowed.
func (p *G2) Add(a, b *G2) *G2 {
	if a.inf {
		return p.Set(b)
	}
	if b.inf {
		return p.Set(a)
	}
	if a.x.Equal(&b.x) {
		if a.y.Equal(&b.y) {
			return p.Double(a)
		}
		p.inf = true
		return p
	}
	var lam, t, x3, y3 fp2
	lam.Sub(&b.y, &a.y)
	t.Sub(&b.x, &a.x)
	t.Inverse(&t)
	lam.Mul(&lam, &t)

	x3.Square(&lam)
	x3.Sub(&x3, &a.x)
	x3.Sub(&x3, &b.x)

	y3.Sub(&a.x, &x3)
	y3.Mul(&y3, &lam)
	y3.Sub(&y3, &a.y)

	p.x.Set(&x3)
	p.y.Set(&y3)
	p.inf = false
	return p
}

// ScalarMult sets p = k·a (k taken mod r) and returns p. On limb-based
// field arithmetic a constant-time-ish Fp2 inversion costs hundreds of
// base-field multiplications, so the Jacobian ladder (which trades the
// per-step inversion for ~12 extra Fp2 multiplications) wins decisively —
// the reverse of the old math/big trade-off. scalarMultAffine is kept as
// the property-tested reference.
func (p *G2) ScalarMult(a *G2, k *big.Int) *G2 {
	return scalarMultJacobianG2(p, a, k)
}

// scalarMultAffine is the double-and-add ladder in affine coordinates.
func (p *G2) scalarMultAffine(a *G2, k *big.Int) *G2 {
	kk := new(big.Int).Mod(k, Order)
	var acc G2
	acc.inf = true
	var base G2
	base.Set(a)
	for i := kk.BitLen() - 1; i >= 0; i-- {
		acc.Double(&acc)
		if kk.Bit(i) == 1 {
			acc.Add(&acc, &base)
		}
	}
	return p.Set(&acc)
}

// ScalarBaseMult sets p = k·G where G is the fixed generator, and returns p.
// It runs on the lazily built fixed-base window table (see precompute.go);
// scalarBaseMultGeneric is the property-tested reference path.
func (p *G2) ScalarBaseMult(k *big.Int) *G2 {
	return g2GeneratorTable().mul(p, k)
}

// scalarBaseMultGeneric computes k·G through the generic ladder, without
// the fixed-base table. Reference implementation for tests and benchmarks.
func (p *G2) scalarBaseMultGeneric(k *big.Int) *G2 {
	return p.ScalarMult(&g2Gen, k)
}

// frobeniusTwist sets p = π(a), the p-power Frobenius endomorphism carried
// to the twist: π(x, y) = (conj(x)·ξ^((p-1)/3), conj(y)·ξ^((p-1)/2)).
func (p *G2) frobeniusTwist(a *G2) *G2 {
	if a.inf {
		p.inf = true
		return p
	}
	p.x.Conjugate(&a.x)
	p.x.Mul(&p.x, &xiToPMinus1Over3)
	p.y.Conjugate(&a.y)
	p.y.Mul(&p.y, &xiToPMinus1Over2)
	p.inf = false
	return p
}

// G2Size is the marshaled size of a G2 point in bytes.
const G2Size = 4 * g1ElementSize

// Marshal encodes p as 128 bytes (x.c0‖x.c1‖y.c0‖y.c1, big-endian). The
// point at infinity encodes as all zeros.
func (p *G2) Marshal() []byte {
	out := make([]byte, G2Size)
	if p.inf {
		return out
	}
	for i, c := range []*fp.Element{&p.x.c0, &p.x.c1, &p.y.c0, &p.y.c1} {
		b := c.Bytes()
		copy(out[i*32:(i+1)*32], b[:])
	}
	return out
}

// Unmarshal decodes a point previously produced by Marshal, verifying the
// twist equation and order-r subgroup membership.
func (p *G2) Unmarshal(data []byte) error {
	if len(data) != G2Size {
		return fmt.Errorf("bn254: invalid G2 encoding length %d", len(data))
	}
	allZero := true
	for _, b := range data {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		p.inf = true
		p.x.SetZero()
		p.y.SetZero()
		return nil
	}
	for i, c := range []*fp.Element{&p.x.c0, &p.x.c1, &p.y.c0, &p.y.c1} {
		if !c.SetBytes(data[i*32 : (i+1)*32]) {
			return errors.New("bn254: G2 coordinate out of range")
		}
	}
	p.inf = false
	if !p.IsOnCurve() {
		return errors.New("bn254: G2 point not on twist curve")
	}
	if !p.IsInSubgroup() {
		return errors.New("bn254: G2 point not in order-r subgroup")
	}
	return nil
}

func (p *G2) String() string {
	if p.inf {
		return "G2(∞)"
	}
	return fmt.Sprintf("G2(%s, %s)", p.x.String(), p.y.String())
}
