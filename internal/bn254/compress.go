package bn254

import (
	"errors"
	"fmt"

	"typepre/internal/bn254/fp"
)

// Compressed point encodings: x-coordinate plus a one-byte header carrying
// the point-at-infinity flag and the sign of y. They cut G1 points from 64
// to 33 bytes and G2 points from 128 to 65 — the wire-format trade-off the
// E3 size table quantifies (decompression costs one field square root).

// Header byte values.
const (
	compressedEven     = 0x02 // y is not lexicographically larger than −y
	compressedOdd      = 0x03 // y is lexicographically larger than −y
	compressedInfinity = 0x00
)

// G1CompressedSize is the compressed G1 encoding length in bytes.
const G1CompressedSize = 1 + g1ElementSize

// MarshalCompressed encodes p as a 33-byte compressed point.
func (p *G1) MarshalCompressed() []byte {
	out := make([]byte, G1CompressedSize)
	if p.inf {
		out[0] = compressedInfinity
		return out
	}
	if p.y.LexLarger() {
		out[0] = compressedOdd
	} else {
		out[0] = compressedEven
	}
	xb := p.x.Bytes()
	copy(out[1:], xb[:])
	return out
}

// UnmarshalCompressed decodes a compressed G1 point, recomputing y by a
// square root and validating the curve equation.
func (p *G1) UnmarshalCompressed(data []byte) error {
	if len(data) != G1CompressedSize {
		return fmt.Errorf("bn254: invalid compressed G1 length %d", len(data))
	}
	switch data[0] {
	case compressedInfinity:
		for _, b := range data[1:] {
			if b != 0 {
				return errors.New("bn254: non-zero x with infinity flag")
			}
		}
		p.inf = true
		p.x.SetZero()
		p.y.SetZero()
		return nil
	case compressedEven, compressedOdd:
	default:
		return fmt.Errorf("bn254: invalid compression header 0x%02x", data[0])
	}
	var x fp.Element
	if !x.SetBytes(data[1:]) {
		return errors.New("bn254: compressed G1 x out of range")
	}
	// y² = x³ + 3
	var y2 fp.Element
	y2.Square(&x)
	y2.Mul(&y2, &x)
	y2.Add(&y2, &curveB)
	var y fp.Element
	if !y.Sqrt(&y2) {
		return errors.New("bn254: compressed G1 x not on curve")
	}
	if y.LexLarger() != (data[0] == compressedOdd) {
		y.Neg(&y)
	}
	p.x.Set(&x)
	p.y.Set(&y)
	p.inf = false
	return nil
}

// G2CompressedSize is the compressed G2 encoding length in bytes.
const G2CompressedSize = 1 + 2*g1ElementSize

// MarshalCompressed encodes p as a 65-byte compressed point
// (header ‖ x.c0 ‖ x.c1).
func (p *G2) MarshalCompressed() []byte {
	out := make([]byte, G2CompressedSize)
	if p.inf {
		out[0] = compressedInfinity
		return out
	}
	if p.y.lexLarger() {
		out[0] = compressedOdd
	} else {
		out[0] = compressedEven
	}
	c0 := p.x.c0.Bytes()
	c1 := p.x.c1.Bytes()
	copy(out[1:1+32], c0[:])
	copy(out[1+32:], c1[:])
	return out
}

// UnmarshalCompressed decodes a compressed G2 point, recomputing y via an
// Fp2 square root and validating both the twist equation and order-r
// subgroup membership.
func (p *G2) UnmarshalCompressed(data []byte) error {
	if len(data) != G2CompressedSize {
		return fmt.Errorf("bn254: invalid compressed G2 length %d", len(data))
	}
	switch data[0] {
	case compressedInfinity:
		for _, b := range data[1:] {
			if b != 0 {
				return errors.New("bn254: non-zero x with infinity flag")
			}
		}
		p.inf = true
		p.x.SetZero()
		p.y.SetZero()
		return nil
	case compressedEven, compressedOdd:
	default:
		return fmt.Errorf("bn254: invalid compression header 0x%02x", data[0])
	}
	var x fp2
	if !x.c0.SetBytes(data[1:1+32]) || !x.c1.SetBytes(data[1+32:]) {
		return errors.New("bn254: compressed G2 x out of range")
	}
	// y² = x³ + b'
	var y2 fp2
	y2.Square(&x)
	y2.Mul(&y2, &x)
	y2.Add(&y2, &twistB)
	var y fp2
	if !y.Sqrt(&y2) {
		return errors.New("bn254: compressed G2 x not on twist")
	}
	if y.lexLarger() != (data[0] == compressedOdd) {
		y.Neg(&y)
	}
	p.x.Set(&x)
	p.y.Set(&y)
	p.inf = false
	if !p.IsInSubgroup() {
		return errors.New("bn254: compressed G2 point not in order-r subgroup")
	}
	return nil
}
