package bn254

import (
	"errors"
	"fmt"
	"math/big"

	"typepre/internal/bn254/fp"
)

// GT is an element of the order-r multiplicative subgroup of Fp12*, the
// target group of the pairing. Elements returned by Pair, GT.Mul, GT.Exp
// etc. are always in the subgroup; Unmarshal verifies field membership only
// (use IsInSubgroup for the full, more expensive check).
type GT struct {
	v fp12
}

// GTOne returns the identity element of GT.
func GTOne() *GT {
	var g GT
	g.v.SetOne()
	return &g
}

// Set assigns a to g and returns g.
func (g *GT) Set(a *GT) *GT {
	g.v.Set(&a.v)
	return g
}

// IsOne reports whether g is the identity.
func (g *GT) IsOne() bool { return g.v.IsOne() }

// Equal reports whether g == a.
func (g *GT) Equal(a *GT) bool { return g.v.Equal(&a.v) }

// Mul sets g = a·b and returns g.
func (g *GT) Mul(a, b *GT) *GT {
	g.v.Mul(&a.v, &b.v)
	return g
}

// Inverse sets g = a⁻¹ and returns g. For subgroup elements the inverse is
// the cheap conjugate a^(p⁶); we use the generic field inverse so that the
// operation is correct for any nonzero input.
func (g *GT) Inverse(a *GT) *GT {
	g.v.Inverse(&a.v)
	return g
}

// Div sets g = a/b and returns g.
func (g *GT) Div(a, b *GT) *GT {
	var inv fp12
	inv.Inverse(&b.v)
	g.v.Mul(&a.v, &inv)
	return g
}

// Exp sets g = a^k (k taken mod r; negative k uses the inverse) and
// returns g.
func (g *GT) Exp(a *GT, k *big.Int) *GT {
	kk := new(big.Int).Mod(k, Order)
	g.v.Exp(&a.v, kk)
	return g
}

// IsInSubgroup reports whether g^r == 1.
func (g *GT) IsInSubgroup() bool {
	var t fp12
	t.Exp(&g.v, Order)
	return t.IsOne()
}

// GTSize is the marshaled size of a GT element in bytes.
const GTSize = 12 * 32

// Marshal encodes g as 384 bytes: the twelve Fp coefficients in tower order
// (c0.c0.c0, c0.c0.c1, c0.c1.c0, ..., c1.c2.c1), each 32 bytes big-endian.
func (g *GT) Marshal() []byte {
	out := make([]byte, 0, GTSize)
	for _, c := range g.coeffs() {
		buf := c.Bytes()
		out = append(out, buf[:]...)
	}
	return out
}

func (g *GT) coeffs() []*fp.Element {
	return []*fp.Element{
		&g.v.c0.c0.c0, &g.v.c0.c0.c1,
		&g.v.c0.c1.c0, &g.v.c0.c1.c1,
		&g.v.c0.c2.c0, &g.v.c0.c2.c1,
		&g.v.c1.c0.c0, &g.v.c1.c0.c1,
		&g.v.c1.c1.c0, &g.v.c1.c1.c1,
		&g.v.c1.c2.c0, &g.v.c1.c2.c1,
	}
}

// Unmarshal decodes an element previously produced by Marshal, verifying
// that every coefficient is a canonical field element.
func (g *GT) Unmarshal(data []byte) error {
	if len(data) != GTSize {
		return fmt.Errorf("bn254: invalid GT encoding length %d", len(data))
	}
	for i, c := range g.coeffs() {
		if !c.SetBytes(data[i*32 : (i+1)*32]) {
			return errors.New("bn254: GT coefficient out of range")
		}
	}
	return nil
}

func (g *GT) String() string { return "GT" + g.v.String() }
