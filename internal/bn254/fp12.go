package bn254

import (
	"fmt"
	"math/big"
)

// fp12 is an element of Fp12 = Fp6[ω]/(ω²−τ), stored as c0 + c1·ω.
// The zero value is the field's zero element.
type fp12 struct {
	c0, c1 fp6
}

func (e *fp12) String() string {
	return fmt.Sprintf("{%s; %s}", e.c0.String(), e.c1.String())
}

// Set assigns a to e and returns e.
func (e *fp12) Set(a *fp12) *fp12 {
	e.c0.Set(&a.c0)
	e.c1.Set(&a.c1)
	return e
}

// SetOne assigns 1 to e and returns e.
func (e *fp12) SetOne() *fp12 {
	e.c0.SetOne()
	e.c1.SetZero()
	return e
}

// SetZero assigns 0 to e and returns e.
func (e *fp12) SetZero() *fp12 {
	e.c0.SetZero()
	e.c1.SetZero()
	return e
}

// IsZero reports whether e == 0.
func (e *fp12) IsZero() bool { return e.c0.IsZero() && e.c1.IsZero() }

// IsOne reports whether e == 1.
func (e *fp12) IsOne() bool { return e.c0.IsOne() && e.c1.IsZero() }

// Equal reports whether e == a.
func (e *fp12) Equal(a *fp12) bool {
	return e.c0.Equal(&a.c0) && e.c1.Equal(&a.c1)
}

// Mul sets e = a·b and returns e. Aliasing is allowed.
func (e *fp12) Mul(a, b *fp12) *fp12 {
	// Karatsuba over ω² = τ: with v0 = a0b0 and v1 = a1b1,
	//   z0 = v0 + τ v1
	//   z1 = (a0+a1)(b0+b1) − v0 − v1
	// Three fp6 multiplications instead of four.
	var v0, v1, s, t fp6
	v0.Mul(&a.c0, &b.c0)
	v1.Mul(&a.c1, &b.c1)
	s.Add(&a.c0, &a.c1)
	t.Add(&b.c0, &b.c1)
	s.Mul(&s, &t)
	s.Sub(&s, &v0)
	s.Sub(&s, &v1)

	var z0 fp6
	z0.MulByTau(&v1)
	z0.Add(&z0, &v0)

	e.c0.Set(&z0)
	e.c1.Set(&s)
	return e
}

// Square sets e = a² and returns e.
func (e *fp12) Square(a *fp12) *fp12 {
	// Complex squaring: with v = a0a1,
	//   z0 = (a0 + a1)(a0 + τ a1) − v − τ v  (= a0² + τ a1²)
	//   z1 = 2v
	// Two fp6 multiplications instead of three.
	var v, s, t fp6
	v.Mul(&a.c0, &a.c1)
	s.Add(&a.c0, &a.c1)
	t.MulByTau(&a.c1)
	t.Add(&t, &a.c0)
	s.Mul(&s, &t)
	s.Sub(&s, &v)
	t.MulByTau(&v)
	s.Sub(&s, &t)

	e.c0.Set(&s)
	e.c1.Double(&v)
	return e
}

// Conjugate sets e = a0 - a1·ω, which equals a^(p⁶), and returns e.
func (e *fp12) Conjugate(a *fp12) *fp12 {
	e.c0.Set(&a.c0)
	e.c1.Neg(&a.c1)
	return e
}

// Inverse sets e = a⁻¹ and returns e. Panics on zero input.
func (e *fp12) Inverse(a *fp12) *fp12 {
	// (a0 + a1ω)⁻¹ = (a0 - a1ω)/(a0² - τ a1²)
	var d, t fp6
	d.Square(&a.c0)
	t.Square(&a.c1)
	t.MulByTau(&t)
	d.Sub(&d, &t)
	d.Inverse(&d)

	e.c0.Mul(&a.c0, &d)
	t.Neg(&a.c1)
	e.c1.Mul(&t, &d)
	return e
}

// Frobenius sets e = a^p and returns e.
func (e *fp12) Frobenius(a *fp12) *fp12 {
	// (c0 + c1ω)^p = Frob6(c0) + ξ^((p-1)/6)·Frob6(c1)·ω
	e.c0.Frobenius(&a.c0)
	var t fp6
	t.Frobenius(&a.c1)
	e.c1.MulByFp2(&t, &xiToPMinus1Over6)
	return e
}

// FrobeniusP2 sets e = a^(p²) and returns e.
func (e *fp12) FrobeniusP2(a *fp12) *fp12 {
	e.Frobenius(a)
	return e.Frobenius(e)
}

// Exp sets e = a^k for non-negative k and returns e. Aliasing is allowed.
// Exponents longer than one word use a 4-bit fixed window (≈25% fewer
// multiplications than binary for 256-bit exponents); expBinary is the
// property-tested reference.
func (e *fp12) Exp(a *fp12, k *big.Int) *fp12 {
	if k.BitLen() <= 64 {
		return e.expBinary(a, k)
	}
	return e.expWindowed(a, k)
}

// expBinary is plain square-and-multiply.
func (e *fp12) expBinary(a *fp12, k *big.Int) *fp12 {
	var res, base fp12
	res.SetOne()
	base.Set(a)
	for i := k.BitLen() - 1; i >= 0; i-- {
		res.Square(&res)
		if k.Bit(i) == 1 {
			res.Mul(&res, &base)
		}
	}
	return e.Set(&res)
}

// expWindowed is 4-bit fixed-window exponentiation.
func (e *fp12) expWindowed(a *fp12, k *big.Int) *fp12 {
	// Precompute a^0 .. a^15.
	var table [16]fp12
	table[0].SetOne()
	table[1].Set(a)
	for i := 2; i < 16; i++ {
		table[i].Mul(&table[i-1], a)
	}
	var res fp12
	res.SetOne()
	bits := k.BitLen()
	// Round up to a multiple of 4 and scan nibbles MSB→LSB.
	top := (bits + 3) / 4 * 4
	for i := top - 4; i >= 0; i -= 4 {
		res.Square(&res)
		res.Square(&res)
		res.Square(&res)
		res.Square(&res)
		nib := k.Bit(i) | k.Bit(i+1)<<1 | k.Bit(i+2)<<2 | k.Bit(i+3)<<3
		if nib != 0 {
			res.Mul(&res, &table[nib])
		}
	}
	return e.Set(&res)
}
