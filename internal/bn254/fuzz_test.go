package bn254

import (
	"bytes"
	"math/big"
	"testing"

	"typepre/internal/bn254/fp"
)

// Fuzz targets for the group decode surfaces. Invariants: no panics, and
// accepted inputs are canonical (re-marshal to themselves) and satisfy the
// relevant group membership.

func FuzzG1Unmarshal(f *testing.F) {
	var p G1
	p.ScalarBaseMult(big.NewInt(123456789))
	f.Add(p.Marshal())
	f.Add(make([]byte, G1Size))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		var q G1
		if err := q.Unmarshal(data); err != nil {
			return
		}
		if !q.IsOnCurve() {
			t.Fatal("accepted off-curve G1 point")
		}
		if !bytes.Equal(q.Marshal(), data) {
			t.Fatal("accepted non-canonical G1 encoding")
		}
	})
}

func FuzzG1UnmarshalCompressed(f *testing.F) {
	var p G1
	p.ScalarBaseMult(big.NewInt(987654321))
	f.Add(p.MarshalCompressed())
	f.Add(make([]byte, G1CompressedSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		var q G1
		if err := q.UnmarshalCompressed(data); err != nil {
			return
		}
		if !q.IsOnCurve() {
			t.Fatal("accepted off-curve compressed G1 point")
		}
		if !bytes.Equal(q.MarshalCompressed(), data) {
			t.Fatal("accepted non-canonical compressed G1 encoding")
		}
	})
}

func FuzzG2Unmarshal(f *testing.F) {
	var p G2
	p.ScalarBaseMult(big.NewInt(42))
	f.Add(p.Marshal())
	f.Add(make([]byte, G2Size))
	f.Fuzz(func(t *testing.T, data []byte) {
		var q G2
		if err := q.Unmarshal(data); err != nil {
			return
		}
		if !q.IsOnCurve() || !q.IsInSubgroup() {
			t.Fatal("accepted invalid G2 point")
		}
		if !bytes.Equal(q.Marshal(), data) {
			t.Fatal("accepted non-canonical G2 encoding")
		}
	})
}

func FuzzGTUnmarshal(f *testing.F) {
	f.Add(GTBase().Marshal())
	f.Add(make([]byte, GTSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		var g GT
		if err := g.Unmarshal(data); err != nil {
			return
		}
		if !bytes.Equal(g.Marshal(), data) {
			t.Fatal("accepted non-canonical GT encoding")
		}
	})
}

func FuzzHashToG1(f *testing.F) {
	f.Add([]byte("alice@example.com"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x80}, 300))
	f.Fuzz(func(t *testing.T, msg []byte) {
		p := HashToG1(DomainG1, msg)
		if !p.IsOnCurve() || p.IsInfinity() {
			t.Fatal("hash produced invalid point")
		}
	})
}

// fpFromFuzz reduces an arbitrary 32-byte chunk into an Fp element and the
// matching big.Int, so differential targets exercise the full input space
// rather than only canonical encodings.
func fpFromFuzz(chunk []byte) (fp.Element, *big.Int) {
	v := new(big.Int).SetBytes(chunk)
	v.Mod(v, P)
	var e fp.Element
	e.SetBigInt(v)
	return e, v
}

// FuzzFpVsBig differentially checks the Montgomery-limb Fp core against
// math/big on the same inputs: add, sub, neg, mul, square, and inverse must
// agree, and the byte encoding must round-trip through big.Int.
func FuzzFpVsBig(f *testing.F) {
	f.Add(make([]byte, 64))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add(append(P.Bytes(), P.Bytes()...))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 64 {
			return
		}
		a, abig := fpFromFuzz(data[:32])
		b, bbig := fpFromFuzz(data[32:64])

		check := func(op string, got *fp.Element, want *big.Int) {
			if got.BigInt().Cmp(want) != 0 {
				t.Fatalf("%s mismatch: limbs %v, big %v", op, got, want)
			}
		}
		var out fp.Element
		out.Add(&a, &b)
		check("add", &out, new(big.Int).Mod(new(big.Int).Add(abig, bbig), P))
		out.Sub(&a, &b)
		check("sub", &out, new(big.Int).Mod(new(big.Int).Sub(abig, bbig), P))
		out.Neg(&a)
		check("neg", &out, new(big.Int).Mod(new(big.Int).Neg(abig), P))
		out.Mul(&a, &b)
		check("mul", &out, new(big.Int).Mod(new(big.Int).Mul(abig, bbig), P))
		out.Square(&a)
		check("square", &out, new(big.Int).Mod(new(big.Int).Mul(abig, abig), P))
		out.Inverse(&a)
		if abig.Sign() == 0 {
			check("inverse(0)", &out, new(big.Int))
		} else {
			check("inverse", &out, new(big.Int).ModInverse(abig, P))
		}

		enc := a.Bytes()
		if new(big.Int).SetBytes(enc[:]).Cmp(abig) != 0 {
			t.Fatalf("Bytes() != big-endian value: % x vs %v", enc, abig)
		}
	})
}

// FuzzFp2VsBig differentially checks the Fp2 tower layer (Karatsuba mul,
// square, inverse) against schoolbook formulas evaluated with math/big over
// Fp[i]/(i²+1).
func FuzzFp2VsBig(f *testing.F) {
	f.Add(make([]byte, 128))
	f.Add(bytes.Repeat([]byte{0xa5}, 128))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 128 {
			return
		}
		var a, b fp2
		var a0, a1, b0, b1 *big.Int
		a.c0, a0 = fpFromFuzz(data[:32])
		a.c1, a1 = fpFromFuzz(data[32:64])
		b.c0, b0 = fpFromFuzz(data[64:96])
		b.c1, b1 = fpFromFuzz(data[96:128])

		check := func(op string, got *fp2, want0, want1 *big.Int) {
			g0 := got.c0.BigInt()
			g1 := got.c1.BigInt()
			if g0.Cmp(want0) != 0 || g1.Cmp(want1) != 0 {
				t.Fatalf("%s mismatch: limbs (%v, %v), big (%v, %v)", op, g0, g1, want0, want1)
			}
		}
		// (a0 + a1·i)(b0 + b1·i) = (a0b0 − a1b1) + (a0b1 + a1b0)·i
		mul0 := new(big.Int).Sub(new(big.Int).Mul(a0, b0), new(big.Int).Mul(a1, b1))
		mul1 := new(big.Int).Add(new(big.Int).Mul(a0, b1), new(big.Int).Mul(a1, b0))
		var out fp2
		out.Mul(&a, &b)
		check("mul", &out, mul0.Mod(mul0, P), mul1.Mod(mul1, P))

		sq0 := new(big.Int).Sub(new(big.Int).Mul(a0, a0), new(big.Int).Mul(a1, a1))
		sq1 := new(big.Int).Lsh(new(big.Int).Mul(a0, a1), 1)
		out.Square(&a)
		check("square", &out, sq0.Mod(sq0, P), sq1.Mod(sq1, P))

		// 1/(a0 + a1·i) = (a0 − a1·i)/(a0² + a1²)
		norm := new(big.Int).Add(new(big.Int).Mul(a0, a0), new(big.Int).Mul(a1, a1))
		norm.Mod(norm, P)
		if norm.Sign() != 0 {
			normInv := new(big.Int).ModInverse(norm, P)
			inv0 := new(big.Int).Mul(a0, normInv)
			inv1 := new(big.Int).Mul(new(big.Int).Neg(a1), normInv)
			out.Inverse(&a)
			check("inverse", &out, inv0.Mod(inv0, P), inv1.Mod(inv1, P))
		}
	})
}

func FuzzHashToZr(f *testing.F) {
	f.Add([]byte("type"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, msg []byte) {
		k := HashToZr(DomainZr, msg)
		if k.Sign() <= 0 || k.Cmp(Order) >= 0 {
			t.Fatal("hash out of Z*_r range")
		}
	})
}
