package bn254

import (
	"bytes"
	"math/big"
	"testing"
)

// Fuzz targets for the group decode surfaces. Invariants: no panics, and
// accepted inputs are canonical (re-marshal to themselves) and satisfy the
// relevant group membership.

func FuzzG1Unmarshal(f *testing.F) {
	var p G1
	p.ScalarBaseMult(big.NewInt(123456789))
	f.Add(p.Marshal())
	f.Add(make([]byte, G1Size))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		var q G1
		if err := q.Unmarshal(data); err != nil {
			return
		}
		if !q.IsOnCurve() {
			t.Fatal("accepted off-curve G1 point")
		}
		if !bytes.Equal(q.Marshal(), data) {
			t.Fatal("accepted non-canonical G1 encoding")
		}
	})
}

func FuzzG1UnmarshalCompressed(f *testing.F) {
	var p G1
	p.ScalarBaseMult(big.NewInt(987654321))
	f.Add(p.MarshalCompressed())
	f.Add(make([]byte, G1CompressedSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		var q G1
		if err := q.UnmarshalCompressed(data); err != nil {
			return
		}
		if !q.IsOnCurve() {
			t.Fatal("accepted off-curve compressed G1 point")
		}
		if !bytes.Equal(q.MarshalCompressed(), data) {
			t.Fatal("accepted non-canonical compressed G1 encoding")
		}
	})
}

func FuzzG2Unmarshal(f *testing.F) {
	var p G2
	p.ScalarBaseMult(big.NewInt(42))
	f.Add(p.Marshal())
	f.Add(make([]byte, G2Size))
	f.Fuzz(func(t *testing.T, data []byte) {
		var q G2
		if err := q.Unmarshal(data); err != nil {
			return
		}
		if !q.IsOnCurve() || !q.IsInSubgroup() {
			t.Fatal("accepted invalid G2 point")
		}
		if !bytes.Equal(q.Marshal(), data) {
			t.Fatal("accepted non-canonical G2 encoding")
		}
	})
}

func FuzzGTUnmarshal(f *testing.F) {
	f.Add(GTBase().Marshal())
	f.Add(make([]byte, GTSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		var g GT
		if err := g.Unmarshal(data); err != nil {
			return
		}
		if !bytes.Equal(g.Marshal(), data) {
			t.Fatal("accepted non-canonical GT encoding")
		}
	})
}

func FuzzHashToG1(f *testing.F) {
	f.Add([]byte("alice@example.com"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x80}, 300))
	f.Fuzz(func(t *testing.T, msg []byte) {
		p := HashToG1(DomainG1, msg)
		if !p.IsOnCurve() || p.IsInfinity() {
			t.Fatal("hash produced invalid point")
		}
	})
}

func FuzzHashToZr(f *testing.F) {
	f.Add([]byte("type"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, msg []byte) {
		k := HashToZr(DomainZr, msg)
		if k.Sign() <= 0 || k.Cmp(Order) >= 0 {
			t.Fatal("hash out of Z*_r range")
		}
	})
}
