package bn254

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"io"
	"math/big"

	"typepre/internal/bn254/fp"
)

// Domain-separation tags for the random oracles used by the schemes built
// on this package. Keeping them here guarantees that the oracles of
// different protocol roles never collide.
const (
	DomainG1     = "typepre/bn254/hash-to-g1/v1"
	DomainZr     = "typepre/bn254/hash-to-zr/v1"
	DomainKDF    = "typepre/bn254/gt-kdf/v1"
	DomainGTMask = "typepre/bn254/gt-mask/v1"
)

// HashToG1 hashes an arbitrary message into G1 under the given domain tag
// using deterministic try-and-increment: candidate x-coordinates are derived
// from SHA-256(domain ‖ counter ‖ msg) until x³+3 is a quadratic residue.
// Because E has cofactor 1, the resulting point is already in the order-r
// group. The map is deterministic in (domain, msg) and modeled as a random
// oracle (the paper's H1).
func HashToG1(domain string, msg []byte) *G1 {
	var ctrBuf [4]byte
	for ctr := uint32(0); ; ctr++ {
		binary.BigEndian.PutUint32(ctrBuf[:], ctr)
		h := sha256.New()
		h.Write([]byte(domain))
		h.Write(ctrBuf[:])
		h.Write(msg)
		digest := h.Sum(nil)

		var x fp.Element
		x.SetBigInt(new(big.Int).SetBytes(digest))

		// y² = x³ + 3
		var y2 fp.Element
		y2.Square(&x)
		y2.Mul(&y2, &x)
		y2.Add(&y2, &curveB)

		var y fp.Element
		if !y.Sqrt(&y2) {
			continue // not a quadratic residue; try next counter
		}
		// Deterministic sign choice from the digest so the map does not
		// favor one square root.
		if digest[0]&1 == 1 {
			y.Neg(&y)
		}
		var p G1
		p.x.Set(&x)
		p.y.Set(&y)
		p.inf = false
		return &p
	}
}

// HashToZr hashes an arbitrary message into Z*_r (never zero) under the
// given domain tag — the paper's H2: {0,1}* → Z*_p.
func HashToZr(domain string, msg []byte) *big.Int {
	var ctrBuf [4]byte
	for ctr := uint32(0); ; ctr++ {
		binary.BigEndian.PutUint32(ctrBuf[:], ctr)
		h := sha256.New()
		h.Write([]byte(domain))
		h.Write(ctrBuf[:])
		h.Write(msg)
		// Two blocks to make the bias after reduction negligible.
		block1 := h.Sum(nil)
		h.Write([]byte{0xff})
		block2 := h.Sum(nil)
		wide := new(big.Int).SetBytes(append(block1, block2...))
		wide.Mod(wide, Order)
		if wide.Sign() != 0 {
			return wide
		}
	}
}

// RandomScalar returns a uniformly random element of Z*_r read from rng
// (crypto/rand.Reader when rng is nil).
func RandomScalar(rng io.Reader) (*big.Int, error) {
	if rng == nil {
		rng = rand.Reader
	}
	max := new(big.Int).Sub(Order, big.NewInt(1))
	k, err := rand.Int(rng, max)
	if err != nil {
		return nil, err
	}
	return k.Add(k, big.NewInt(1)), nil // uniform in [1, r-1]
}

// RandomGT returns a uniformly random element of GT together with the
// exponent k such that the element equals ê(g1, g2)^k.
func RandomGT(rng io.Reader) (*GT, *big.Int, error) {
	k, err := RandomScalar(rng)
	if err != nil {
		return nil, nil, err
	}
	return GTExpBase(k), k, nil
}

// KDF derives size bytes of key material from a GT element via SHA-256 in
// counter mode. It instantiates the H2: G1 → {0,1}^n oracle of the original
// Boneh–Franklin scheme and the KEM key derivation of the hybrid mode.
func KDF(domain string, g *GT, size int) []byte {
	material := g.Marshal()
	out := make([]byte, 0, size)
	var ctrBuf [4]byte
	for ctr := uint32(0); len(out) < size; ctr++ {
		binary.BigEndian.PutUint32(ctrBuf[:], ctr)
		h := sha256.New()
		h.Write([]byte(domain))
		h.Write(ctrBuf[:])
		h.Write(material)
		out = append(out, h.Sum(nil)...)
	}
	return out[:size]
}
