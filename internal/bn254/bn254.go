// Package bn254 implements the alt_bn128 (BN254) pairing-friendly elliptic
// curve entirely on top of the Go standard library.
//
// It provides the bilinear-group substrate the paper assumes in Section 3.1:
// groups G1, G2 and GT of prime order r, and an efficiently computable
// non-degenerate bilinear map ê: G1 × G2 → GT (the optimal ate pairing).
//
// The curve is the Barreto–Naehrig curve with parameter u = 4965661367192848881:
//
//	E  : y² = x³ + 3        over Fp        (G1)
//	E' : y² = x³ + 3/ξ      over Fp2       (G2, sextic D-twist, ξ = 9+i)
//	GT : order-r subgroup of Fp12*
//
// where p = 36u⁴+36u³+24u²+6u+1 and r = 36u⁴+36u³+18u²+6u+1. The extension
// tower is Fp2 = Fp[i]/(i²+1), Fp6 = Fp2[τ]/(τ³−ξ), Fp12 = Fp6[ω]/(ω²−τ).
//
// Base-field arithmetic runs on the 4×64-bit Montgomery-limb elements of
// internal/bn254/fp; see docs/bn254.md for the representation. Side-channel
// posture, precisely: all Fp and Fp2 field arithmetic (add, sub, neg, mul,
// square, inversion, square root) is constant time — an input-independent
// sequence of word operations with no secret-dependent branches or table
// indices. What is NOT constant time, and is documented as such: scalar
// recoding (the double-and-add ladders and fixed-base window tables branch
// on scalar bits), hash-to-curve (try-and-increment by construction), the
// point-at-infinity flags, and the big.Int conversion shims. Scalars and
// hashing inputs therefore leak timing; protecting real long-term secrets
// against a local side-channel adversary additionally requires a
// constant-time ladder, which this reproduction does not claim — see
// DESIGN.md for the substitution argument against the era's PBC/MIRACL
// libraries.
package bn254

import (
	"math/big"

	"typepre/internal/bn254/fp"
)

// u is the BN parameter. All curve constants derive from it.
const uParam = 4965661367192848881

var (
	// u is the BN parameter as a big integer.
	u = new(big.Int).SetInt64(uParam)

	// P is the prime modulus of the base field Fp.
	P, _ = new(big.Int).SetString("21888242871839275222246405745257275088696311157297823662689037894645226208583", 10)

	// Order (r) is the prime order of G1, G2 and GT.
	Order, _ = new(big.Int).SetString("21888242871839275222246405745257275088548364400416034343698204186575808495617", 10)

	// curveB is the constant of E: y² = x³ + curveB over Fp.
	curveB fp.Element

	// ateLoopCount is 6u+2, the Miller loop length of the optimal ate pairing.
	ateLoopCount = new(big.Int)

	// twistB is 3/ξ, the constant of the twist E'.
	twistB fp2

	// Frobenius constants on the twist and the tower, all derived from
	// ξ = 9+i at package init (nothing beyond p, r and the generators is
	// hard-coded, which guards against transcription errors).
	xiToPMinus1Over6  fp2 // ξ^((p-1)/6)
	xiToPMinus1Over3  fp2 // ξ^((p-1)/3)
	xiToPMinus1Over2  fp2 // ξ^((p-1)/2)
	xiTo2PMinus2Over3 fp2 // ξ^(2(p-1)/3)

	// finalExpHard is (p⁴ - p² + 1)/r, the hard part of the final
	// exponentiation, computed from p and r.
	finalExpHard = new(big.Int)

	// pSquared is p², used by the f^(p²+1) step of the easy part.
	pSquared = new(big.Int)
)

func init() {
	// Re-derive p and r from u and cross-check the hard-coded decimal
	// strings; a mismatch means a corrupted constant, so refuse to run.
	u2 := new(big.Int).Mul(u, u)
	u3 := new(big.Int).Mul(u2, u)
	u4 := new(big.Int).Mul(u3, u)

	pCheck := new(big.Int).Mul(u4, big.NewInt(36))
	pCheck.Add(pCheck, new(big.Int).Mul(u3, big.NewInt(36)))
	pCheck.Add(pCheck, new(big.Int).Mul(u2, big.NewInt(24)))
	pCheck.Add(pCheck, new(big.Int).Mul(u, big.NewInt(6)))
	pCheck.Add(pCheck, big.NewInt(1))
	if pCheck.Cmp(P) != 0 {
		panic("bn254: field modulus does not match BN(u) derivation")
	}
	if fp.Modulus().Cmp(P) != 0 {
		panic("bn254: fp package modulus does not match P")
	}

	rCheck := new(big.Int).Mul(u4, big.NewInt(36))
	rCheck.Add(rCheck, new(big.Int).Mul(u3, big.NewInt(36)))
	rCheck.Add(rCheck, new(big.Int).Mul(u2, big.NewInt(18)))
	rCheck.Add(rCheck, new(big.Int).Mul(u, big.NewInt(6)))
	rCheck.Add(rCheck, big.NewInt(1))
	if rCheck.Cmp(Order) != 0 {
		panic("bn254: group order does not match BN(u) derivation")
	}

	ateLoopCount.Mul(u, big.NewInt(6))
	ateLoopCount.Add(ateLoopCount, big.NewInt(2))

	curveB.SetUint64(3)

	// ξ = 9 + i.
	var xi fp2
	xi.c0.SetUint64(9)
	xi.c1.SetUint64(1)

	// twistB = 3 · ξ⁻¹.
	var xiInv fp2
	xiInv.Inverse(&xi)
	twistB.MulScalar(&xiInv, &curveB)

	pm1 := new(big.Int).Sub(P, big.NewInt(1))
	e6 := new(big.Int).Div(pm1, big.NewInt(6))
	e3 := new(big.Int).Div(pm1, big.NewInt(3))
	e2 := new(big.Int).Div(pm1, big.NewInt(2))
	xiToPMinus1Over6.Exp(&xi, e6)
	xiToPMinus1Over3.Exp(&xi, e3)
	xiToPMinus1Over2.Exp(&xi, e2)
	xiTo2PMinus2Over3.Square(&xiToPMinus1Over3)

	pSquared.Mul(P, P)
	p4 := new(big.Int).Mul(pSquared, pSquared)
	finalExpHard.Sub(p4, pSquared)
	finalExpHard.Add(finalExpHard, big.NewInt(1))
	if new(big.Int).Mod(finalExpHard, Order).Sign() != 0 {
		panic("bn254: (p⁴-p²+1) not divisible by r")
	}
	finalExpHard.Div(finalExpHard, Order)

	initGenerators()
}
