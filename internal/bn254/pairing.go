package bn254

import (
	"math/big"
	"sync"
)

// lineCoeff holds the P-independent coefficients of one Miller-loop line.
// The line through ψ(T) and ψ(S) (or the tangent at ψ(T) when doubling),
// where ψ is the untwisting isomorphism ψ(x', y') = (x'·ω², y'·ω³), is
//
//	l(P) = y_P − λ'·x_P·ω + (λ'·x_T − y_T)·ω³
//
// with slope λ' ∈ Fp2 on the twist. To avoid the Fp2 inversion that the
// affine slope would cost per step, T is tracked in Jacobian coordinates
// (X, Y, Z) and the line is stored scaled by its denominator d ∈ Fp2*
// (d = 2YZ³ for tangents, δZ for chords):
//
//	d·l(P) = a·y_P + b·x_P·ω + c·ω³
//
// In the Fp12 = Fp6[ω], Fp6 = Fp2[τ] tower (ω³ = τ·ω) this is the sparse
// element with c0 = (a·y_P, 0, 0) and c1 = (b·x_P, c, 0). The scalar d lies
// in Fp2, where the easy part of the final exponentiation kills it
// (d^(p⁶−1) = 1 since d^(p²) = d), so Pair's output is unchanged by the
// scaling. Everything except the two P-coordinate multiplications depends
// only on T and S, so a fixed Q's whole line sequence can be computed once
// (see PreparedG2) and replayed against many P's.
//
// A vertical line X = x_T·ω² evaluates to l(P) = x_P − x_T·τ, i.e.
// c0 = (x_P, −x_T, 0), c1 = 0; it stores −x_T in c and leaves a, b unused.
type lineCoeff struct {
	vertical bool
	a        fp2 // coefficient of y_P (non-vertical lines only)
	b        fp2 // coefficient of x_P·ω (non-vertical lines only)
	c        fp2 // ω³ coefficient, or −x_T for verticals
}

// setVertical fills lc with the coefficients of the vertical line X = x_T·ω².
func (lc *lineCoeff) setVertical(xT *fp2) {
	lc.vertical = true
	lc.c.Neg(xT)
}

// evalLine multiplies f by the line described by lc evaluated at P.
func evalLine(f *fp12, lc *lineCoeff, P *G1) {
	var l fp12
	if lc.vertical {
		l.c0.c0.c0.Set(&P.x)
		l.c0.c0.c1.SetZero()
		l.c0.c1.Set(&lc.c)
		l.c0.c2.SetZero()
		l.c1.SetZero()
	} else {
		l.c0.c0.MulScalar(&lc.a, &P.y)
		l.c0.c1.SetZero()
		l.c0.c2.SetZero()
		l.c1.c0.MulScalar(&lc.b, &P.x)
		l.c1.c1.Set(&lc.c)
		l.c1.c2.SetZero()
	}
	f.Mul(f, &l)
}

// doubleStep computes the scaled tangent-line coefficients at the Jacobian
// point T and doubles T in place (dbl-2009-l formulas, a = 0). It reports
// false when no line is contributed (T at infinity). With T = (X, Y, Z) and
// M = 3X², the tangent scaled by 2YZ³ is
//
//	a = Z₃·Z²  (Z₃ = 2YZ), b = −M·Z², c = M·X − 2Y²
func doubleStep(lc *lineCoeff, T *g2Jac) bool {
	if T.z.IsZero() {
		return false
	}
	if T.y.IsZero() {
		// Tangent at a 2-torsion point is vertical; cannot happen for
		// points in the order-r subgroup but handled for robustness.
		// One inversion on this cold path to recover the affine x.
		var zz, xAff fp2
		zz.Square(&T.z)
		zz.Inverse(&zz)
		xAff.Mul(&T.x, &zz)
		lc.setVertical(&xAff)
		T.setInfinity()
		return true
	}
	var xx, yy, yyyy, zz, s, m, t fp2
	xx.Square(&T.x)
	yy.Square(&T.y)
	yyyy.Square(&yy)
	zz.Square(&T.z)
	// S = 2((X+YY)² − XX − YYYY)
	s.Add(&T.x, &yy)
	s.Square(&s)
	s.Sub(&s, &xx)
	s.Sub(&s, &yyyy)
	s.Double(&s)
	// M = 3XX
	m.Double(&xx)
	m.Add(&m, &xx)
	// Z3 = (Y+Z)² − YY − ZZ  (= 2YZ)
	var z3 fp2
	z3.Add(&T.y, &T.z)
	z3.Square(&z3)
	z3.Sub(&z3, &yy)
	z3.Sub(&z3, &zz)

	lc.vertical = false
	lc.a.Mul(&z3, &zz)
	lc.b.Mul(&m, &zz)
	lc.b.Neg(&lc.b)
	lc.c.Mul(&m, &T.x)
	t.Double(&yy)
	lc.c.Sub(&lc.c, &t)

	// X3 = M² − 2S; Y3 = M(S − X3) − 8YYYY
	var x3, y3 fp2
	x3.Square(&m)
	t.Double(&s)
	x3.Sub(&x3, &t)
	y3.Sub(&s, &x3)
	y3.Mul(&y3, &m)
	t.Double(&yyyy)
	t.Double(&t)
	t.Double(&t)
	y3.Sub(&y3, &t)
	T.x.Set(&x3)
	T.y.Set(&y3)
	T.z.Set(&z3)
	return true
}

// addStep computes the scaled coefficients of the line through T and the
// affine point Q, and sets T = T + Q in place (madd-2007-bl formulas). It
// reports false when no line is contributed (Q at infinity, or T at
// infinity so that the step is a plain assignment). With θ = y_Q·Z³ − Y and
// δ = x_Q·Z² − X, the chord scaled by δZ is
//
//	a = δ·Z, b = −θ, c = θ·x_Q − y_Q·a
func addStep(lc *lineCoeff, T *g2Jac, Q *G2) bool {
	if Q.inf {
		return false
	}
	if T.z.IsZero() {
		T.fromAffine(Q)
		return false
	}
	var zz, z3q, theta, delta fp2
	zz.Square(&T.z)
	z3q.Mul(&T.z, &zz)
	theta.Mul(&Q.y, &z3q)
	theta.Sub(&theta, &T.y)
	delta.Mul(&Q.x, &zz)
	delta.Sub(&delta, &T.x)
	if delta.IsZero() {
		if theta.IsZero() {
			return doubleStep(lc, T)
		}
		// T + (−T): vertical line X = x_Q.
		lc.setVertical(&Q.x)
		T.setInfinity()
		return true
	}

	lc.vertical = false
	lc.a.Mul(&delta, &T.z)
	lc.b.Neg(&theta)
	var t fp2
	lc.c.Mul(&theta, &Q.x)
	t.Mul(&Q.y, &lc.a)
	lc.c.Sub(&lc.c, &t)

	// Point update with H = δ and r = 2θ.
	var hh, i, jj, v, rr fp2
	rr.Double(&theta)
	hh.Square(&delta)
	i.Double(&hh)
	i.Double(&i)
	jj.Mul(&delta, &i)
	v.Mul(&T.x, &i)
	var x3, y3, z3 fp2
	x3.Square(&rr)
	x3.Sub(&x3, &jj)
	t.Double(&v)
	x3.Sub(&x3, &t)
	y3.Sub(&v, &x3)
	y3.Mul(&y3, &rr)
	t.Mul(&T.y, &jj)
	t.Double(&t)
	y3.Sub(&y3, &t)
	z3.Add(&T.z, &delta)
	z3.Square(&z3)
	z3.Sub(&z3, &zz)
	z3.Sub(&z3, &hh)
	T.x.Set(&x3)
	T.y.Set(&y3)
	T.z.Set(&z3)
	return true
}

// ateLoop walks the optimal ate Miller-loop skeleton for Q — the 6u+2
// double-and-add ladder followed by the two Frobenius line steps — and
// reports each step to emit: squarings as (true, nil) and lines as
// (false, lc). The lc pointer refers to scratch that is overwritten by the
// next step; consumers that retain it must copy. This single driver is
// shared by the direct evaluation (millerLoop) and the coefficient
// recording (PrepareG2), so the skeleton cannot diverge between them.
func ateLoop(Q *G2, emit func(square bool, lc *lineCoeff)) {
	var T g2Jac
	T.fromAffine(Q)
	var lc lineCoeff
	for i := ateLoopCount.BitLen() - 2; i >= 0; i-- {
		emit(true, nil)
		if doubleStep(&lc, &T) {
			emit(false, &lc)
		}
		if ateLoopCount.Bit(i) == 1 {
			if addStep(&lc, &T, Q) {
				emit(false, &lc)
			}
		}
	}

	// The two extra lines of the optimal ate pairing: Q1 = π(Q) and
	// Q2 = π²(Q); add Q1, then subtract Q2.
	var Q1, Q2, minusQ2 G2
	Q1.frobeniusTwist(Q)
	Q2.frobeniusTwist(&Q1)
	minusQ2.Neg(&Q2)

	if addStep(&lc, &T, &Q1) {
		emit(false, &lc)
	}
	if addStep(&lc, &T, &minusQ2) {
		emit(false, &lc)
	}
}

// millerLoop computes the optimal ate Miller function f_{6u+2,Q}(P) extended
// with the two Frobenius line steps.
func millerLoop(P *G1, Q *G2) *fp12 {
	var f fp12
	f.SetOne()
	if P.inf || Q.inf {
		return &f
	}
	ateLoop(Q, func(square bool, lc *lineCoeff) {
		if square {
			f.Square(&f)
		} else {
			evalLine(&f, lc, P)
		}
	})
	return &f
}

// finalExponentiation raises the Miller-loop output to (p¹²−1)/r, mapping it
// into the order-r subgroup GT.
func finalExponentiation(f *fp12) *fp12 {
	var r fp12
	// Easy part: f^((p⁶−1)(p²+1)).
	var inv fp12
	inv.Inverse(f)
	r.Conjugate(f)
	r.Mul(&r, &inv) // f^(p⁶−1)
	var t fp12
	t.FrobeniusP2(&r)
	r.Mul(&r, &t) // f^((p⁶−1)(p²+1))

	// Hard part: exponent (p⁴−p²+1)/r via the Devegili et al. addition
	// chain; hardPartDirect computes the same value by plain square-and-
	// multiply and is pinned equal in tests.
	out := hardPartChain(&r)
	return out
}

// hardPartDirect computes m^((p⁴−p²+1)/r) by generic exponentiation.
// It is the reference implementation used by tests and the E1 ablation.
func hardPartDirect(m *fp12) *fp12 {
	var out fp12
	out.Exp(m, finalExpHard)
	return &out
}

// hardPartChain computes m^((p⁴−p²+1)/r) with the addition chain of
// Devegili, Scott and Dahab ("Implementing cryptographic pairings over
// Barreto–Naehrig curves"), which replaces a ~1016-bit exponentiation by
// three u-power exponentiations plus a handful of multiplications and
// Frobenius maps.
func hardPartChain(m *fp12) *fp12 {
	expByU := func(dst, a *fp12) *fp12 {
		return dst.Exp(a, u)
	}

	var fp1, fp2v, fp3 fp12
	fp1.Frobenius(m)
	fp2v.FrobeniusP2(m)
	fp3.Frobenius(&fp2v)

	var fu, fu2, fu3 fp12
	expByU(&fu, m)
	expByU(&fu2, &fu)
	expByU(&fu3, &fu2)

	var y3 fp12
	y3.Frobenius(&fu) // fu^p
	var fu2p, fu3p fp12
	fu2p.Frobenius(&fu2)
	fu3p.Frobenius(&fu3)
	var y2 fp12
	y2.FrobeniusP2(&fu2)

	var y0 fp12
	y0.Mul(&fp1, &fp2v)
	y0.Mul(&y0, &fp3)

	var y1 fp12
	y1.Conjugate(m)

	var y5 fp12
	y5.Conjugate(&fu2)

	y3.Conjugate(&y3)

	var y4 fp12
	y4.Mul(&fu, &fu2p)
	y4.Conjugate(&y4)

	var y6 fp12
	y6.Mul(&fu3, &fu3p)
	y6.Conjugate(&y6)

	var t0, t1 fp12
	t0.Square(&y6)
	t0.Mul(&t0, &y4)
	t0.Mul(&t0, &y5)
	t1.Mul(&y3, &y5)
	t1.Mul(&t1, &t0)
	t0.Mul(&t0, &y2)
	t1.Square(&t1)
	t1.Mul(&t1, &t0)
	t1.Square(&t1)
	t0.Mul(&t1, &y1)
	t1.Mul(&t1, &y0)
	t0.Square(&t0)
	var out fp12
	out.Mul(&t0, &t1)
	return &out
}

// Pair computes the optimal ate pairing ê(P, Q). It is bilinear and
// non-degenerate on G1 × G2; ê(P, Q) = 1 if either input is the identity.
func Pair(P *G1, Q *G2) *GT {
	f := millerLoop(P, Q)
	var g GT
	g.v.Set(finalExponentiation(f))
	return &g
}

// PairDirectHardPart computes the same pairing as Pair but performs the
// final-exponentiation hard part by direct square-and-multiply instead of
// the Devegili addition chain. Exposed as the E1 ablation reference; tests
// pin its output equal to Pair's.
func PairDirectHardPart(P *G1, Q *G2) *GT {
	f := millerLoop(P, Q)
	var inv, easy, t fp12
	inv.Inverse(f)
	easy.Conjugate(f)
	easy.Mul(&easy, &inv)
	t.FrobeniusP2(&easy)
	easy.Mul(&easy, &t)
	var g GT
	g.v.Set(hardPartDirect(&easy))
	return &g
}

// PairProduct computes ∏ ê(Pᵢ, Qᵢ) sharing a single final exponentiation —
// the standard multi-pairing optimization used when verifying products of
// pairings.
func PairProduct(ps []*G1, qs []*G2) *GT {
	if len(ps) != len(qs) {
		panic("bn254: mismatched PairProduct inputs")
	}
	var acc fp12
	acc.SetOne()
	for i := range ps {
		f := millerLoop(ps[i], qs[i])
		acc.Mul(&acc, f)
	}
	var g GT
	g.v.Set(finalExponentiation(&acc))
	return &g
}

var (
	gtBaseOnce sync.Once
	gtBase     GT
)

// GTBase returns ê(G1gen, G2gen), the canonical generator of GT, computed
// once and cached.
func GTBase() *GT {
	gtBaseOnce.Do(func() {
		gtBase.Set(Pair(G1Generator(), G2Generator()))
	})
	var g GT
	g.Set(&gtBase)
	return &g
}

// GTExpBase returns ê(G1gen, G2gen)^k. It runs on the lazily built
// fixed-base window table (see precompute.go), which replaces the generic
// square-and-multiply with at most 64 multiplications.
func GTExpBase(k *big.Int) *GT {
	var g GT
	gtBaseFixedTable().exp(&g.v, k)
	return &g
}
