package bn254

import (
	"math/big"
	"sync"
)

// lineEval evaluates the line through ψ(T) and ψ(S) (or the tangent at ψ(T)
// when doubling) at the G1 point P, where ψ is the untwisting isomorphism
// ψ(x', y') = (x'·ω², y'·ω³). With slope λ' ∈ Fp2 on the twist, the line is
//
//	l(P) = y_P − λ'·x_P·ω + (λ'·x_T − y_T)·ω³
//
// which in the Fp12 = Fp6[ω], Fp6 = Fp2[τ] tower (ω³ = τ·ω) is the sparse
// element with c0 = (y_P, 0, 0) and c1 = (−λ'x_P, λ'x_T − y_T, 0).
func lineEval(out *fp12, lambda *fp2, xT, yT *fp2, P *G1) {
	var b, c fp2
	b.MulScalar(lambda, &P.x)
	b.Neg(&b)
	c.Mul(lambda, xT)
	c.Sub(&c, yT)

	out.c0.c0.c0.Set(&P.y)
	out.c0.c0.c1.SetInt64(0)
	out.c0.c1.SetZero()
	out.c0.c2.SetZero()
	out.c1.c0.Set(&b)
	out.c1.c1.Set(&c)
	out.c1.c2.SetZero()
}

// verticalEval evaluates the vertical line X = x_T·ω² at P:
// l(P) = x_P − x_T·τ, i.e. c0 = (x_P, −x_T, 0), c1 = 0.
func verticalEval(out *fp12, xT *fp2, P *G1) {
	out.c0.c0.c0.Set(&P.x)
	out.c0.c0.c1.SetInt64(0)
	out.c0.c1.Neg(xT)
	out.c0.c2.SetZero()
	out.c1.SetZero()
}

// doubleStep computes the tangent line at T evaluated at P and doubles T in
// place.
func doubleStep(f *fp12, T *G2, P *G1) {
	if T.y.IsZero() {
		// Tangent at a 2-torsion point is vertical; cannot happen for
		// points in the order-r subgroup but handled for robustness.
		var l fp12
		verticalEval(&l, &T.x, P)
		f.Mul(f, &l)
		T.inf = true
		return
	}
	var lambda, t fp2
	lambda.Square(&T.x)
	var three fp2
	three.c0.SetInt64(3)
	lambda.Mul(&lambda, &three)
	t.Double(&T.y)
	t.Inverse(&t)
	lambda.Mul(&lambda, &t)

	var l fp12
	lineEval(&l, &lambda, &T.x, &T.y, P)
	f.Mul(f, &l)

	// T = 2T using the already computed slope.
	var x3, y3 fp2
	x3.Square(&lambda)
	t.Double(&T.x)
	x3.Sub(&x3, &t)
	y3.Sub(&T.x, &x3)
	y3.Mul(&y3, &lambda)
	y3.Sub(&y3, &T.y)
	T.x.Set(&x3)
	T.y.Set(&y3)
}

// addStep computes the line through T and Q evaluated at P and sets
// T = T + Q in place.
func addStep(f *fp12, T *G2, Q *G2, P *G1) {
	if Q.inf {
		return
	}
	if T.inf {
		T.Set(Q)
		return
	}
	if T.x.Equal(&Q.x) {
		if T.y.Equal(&Q.y) {
			doubleStep(f, T, P)
			return
		}
		// T + (−T): vertical line.
		var l fp12
		verticalEval(&l, &T.x, P)
		f.Mul(f, &l)
		T.inf = true
		return
	}
	var lambda, t fp2
	lambda.Sub(&Q.y, &T.y)
	t.Sub(&Q.x, &T.x)
	t.Inverse(&t)
	lambda.Mul(&lambda, &t)

	var l fp12
	lineEval(&l, &lambda, &T.x, &T.y, P)
	f.Mul(f, &l)

	var x3, y3 fp2
	x3.Square(&lambda)
	x3.Sub(&x3, &T.x)
	x3.Sub(&x3, &Q.x)
	y3.Sub(&T.x, &x3)
	y3.Mul(&y3, &lambda)
	y3.Sub(&y3, &T.y)
	T.x.Set(&x3)
	T.y.Set(&y3)
}

// millerLoop computes the optimal ate Miller function f_{6u+2,Q}(P) extended
// with the two Frobenius line steps.
func millerLoop(P *G1, Q *G2) *fp12 {
	var f fp12
	f.SetOne()
	if P.inf || Q.inf {
		return &f
	}

	var T G2
	T.Set(Q)
	for i := ateLoopCount.BitLen() - 2; i >= 0; i-- {
		f.Square(&f)
		doubleStep(&f, &T, P)
		if ateLoopCount.Bit(i) == 1 {
			addStep(&f, &T, Q, P)
		}
	}

	// The two extra lines of the optimal ate pairing: Q1 = π(Q) and
	// Q2 = π²(Q); add Q1, then subtract Q2.
	var Q1, Q2, minusQ2 G2
	Q1.frobeniusTwist(Q)
	Q2.frobeniusTwist(&Q1)
	minusQ2.Neg(&Q2)

	addStep(&f, &T, &Q1, P)
	addStep(&f, &T, &minusQ2, P)
	return &f
}

// finalExponentiation raises the Miller-loop output to (p¹²−1)/r, mapping it
// into the order-r subgroup GT.
func finalExponentiation(f *fp12) *fp12 {
	var r fp12
	// Easy part: f^((p⁶−1)(p²+1)).
	var inv fp12
	inv.Inverse(f)
	r.Conjugate(f)
	r.Mul(&r, &inv) // f^(p⁶−1)
	var t fp12
	t.FrobeniusP2(&r)
	r.Mul(&r, &t) // f^((p⁶−1)(p²+1))

	// Hard part: exponent (p⁴−p²+1)/r via the Devegili et al. addition
	// chain; hardPartDirect computes the same value by plain square-and-
	// multiply and is pinned equal in tests.
	out := hardPartChain(&r)
	return out
}

// hardPartDirect computes m^((p⁴−p²+1)/r) by generic exponentiation.
// It is the reference implementation used by tests and the E1 ablation.
func hardPartDirect(m *fp12) *fp12 {
	var out fp12
	out.Exp(m, finalExpHard)
	return &out
}

// hardPartChain computes m^((p⁴−p²+1)/r) with the addition chain of
// Devegili, Scott and Dahab ("Implementing cryptographic pairings over
// Barreto–Naehrig curves"), which replaces a ~1016-bit exponentiation by
// three u-power exponentiations plus a handful of multiplications and
// Frobenius maps.
func hardPartChain(m *fp12) *fp12 {
	expByU := func(dst, a *fp12) *fp12 {
		return dst.Exp(a, u)
	}

	var fp1, fp2v, fp3 fp12
	fp1.Frobenius(m)
	fp2v.FrobeniusP2(m)
	fp3.Frobenius(&fp2v)

	var fu, fu2, fu3 fp12
	expByU(&fu, m)
	expByU(&fu2, &fu)
	expByU(&fu3, &fu2)

	var y3 fp12
	y3.Frobenius(&fu) // fu^p
	var fu2p, fu3p fp12
	fu2p.Frobenius(&fu2)
	fu3p.Frobenius(&fu3)
	var y2 fp12
	y2.FrobeniusP2(&fu2)

	var y0 fp12
	y0.Mul(&fp1, &fp2v)
	y0.Mul(&y0, &fp3)

	var y1 fp12
	y1.Conjugate(m)

	var y5 fp12
	y5.Conjugate(&fu2)

	y3.Conjugate(&y3)

	var y4 fp12
	y4.Mul(&fu, &fu2p)
	y4.Conjugate(&y4)

	var y6 fp12
	y6.Mul(&fu3, &fu3p)
	y6.Conjugate(&y6)

	var t0, t1 fp12
	t0.Square(&y6)
	t0.Mul(&t0, &y4)
	t0.Mul(&t0, &y5)
	t1.Mul(&y3, &y5)
	t1.Mul(&t1, &t0)
	t0.Mul(&t0, &y2)
	t1.Square(&t1)
	t1.Mul(&t1, &t0)
	t1.Square(&t1)
	t0.Mul(&t1, &y1)
	t1.Mul(&t1, &y0)
	t0.Square(&t0)
	var out fp12
	out.Mul(&t0, &t1)
	return &out
}

// Pair computes the optimal ate pairing ê(P, Q). It is bilinear and
// non-degenerate on G1 × G2; ê(P, Q) = 1 if either input is the identity.
func Pair(P *G1, Q *G2) *GT {
	f := millerLoop(P, Q)
	var g GT
	g.v.Set(finalExponentiation(f))
	return &g
}

// PairDirectHardPart computes the same pairing as Pair but performs the
// final-exponentiation hard part by direct square-and-multiply instead of
// the Devegili addition chain. Exposed as the E1 ablation reference; tests
// pin its output equal to Pair's.
func PairDirectHardPart(P *G1, Q *G2) *GT {
	f := millerLoop(P, Q)
	var inv, easy, t fp12
	inv.Inverse(f)
	easy.Conjugate(f)
	easy.Mul(&easy, &inv)
	t.FrobeniusP2(&easy)
	easy.Mul(&easy, &t)
	var g GT
	g.v.Set(hardPartDirect(&easy))
	return &g
}

// PairProduct computes ∏ ê(Pᵢ, Qᵢ) sharing a single final exponentiation —
// the standard multi-pairing optimization used when verifying products of
// pairings.
func PairProduct(ps []*G1, qs []*G2) *GT {
	if len(ps) != len(qs) {
		panic("bn254: mismatched PairProduct inputs")
	}
	var acc fp12
	acc.SetOne()
	for i := range ps {
		f := millerLoop(ps[i], qs[i])
		acc.Mul(&acc, f)
	}
	var g GT
	g.v.Set(finalExponentiation(&acc))
	return &g
}

var (
	gtBaseOnce sync.Once
	gtBase     GT
)

// GTBase returns ê(G1gen, G2gen), the canonical generator of GT, computed
// once and cached.
func GTBase() *GT {
	gtBaseOnce.Do(func() {
		gtBase.Set(Pair(G1Generator(), G2Generator()))
	})
	var g GT
	g.Set(&gtBase)
	return &g
}

// GTExpBase returns ê(G1gen, G2gen)^k.
func GTExpBase(k *big.Int) *GT {
	var g GT
	g.Exp(GTBase(), k)
	return &g
}
