package bn254

import (
	"errors"
	"fmt"
	"math/big"

	"typepre/internal/bn254/fp"
)

// G1 is a point on E: y² = x³ + 3 over Fp, in affine coordinates, or the
// point at infinity when inf is set. The group has prime order r and
// cofactor 1. The zero value is the point at infinity.
type G1 struct {
	x, y fp.Element
	inf  bool
}

// g1Gen is the conventional generator (1, 2).
var g1Gen G1

// G1Generator returns a copy of the fixed generator of G1.
func G1Generator() *G1 {
	var g G1
	g.Set(&g1Gen)
	return &g
}

// G1Infinity returns the identity element of G1.
func G1Infinity() *G1 { return &G1{inf: true} }

// Set assigns a to p and returns p.
func (p *G1) Set(a *G1) *G1 {
	*p = *a
	return p
}

// IsInfinity reports whether p is the identity.
func (p *G1) IsInfinity() bool { return p.inf }

// Equal reports whether p == q.
func (p *G1) Equal(q *G1) bool {
	if p.inf || q.inf {
		return p.inf == q.inf
	}
	return p.x.Equal(&q.x) && p.y.Equal(&q.y)
}

// IsOnCurve reports whether p satisfies the curve equation (infinity counts
// as on-curve).
func (p *G1) IsOnCurve() bool {
	if p.inf {
		return true
	}
	var lhs, rhs fp.Element
	lhs.Square(&p.y)
	rhs.Square(&p.x)
	rhs.Mul(&rhs, &p.x)
	rhs.Add(&rhs, &curveB)
	return lhs.Equal(&rhs)
}

// Neg sets p = -a and returns p.
func (p *G1) Neg(a *G1) *G1 {
	if a.inf {
		p.inf = true
		return p
	}
	p.x.Set(&a.x)
	p.y.Neg(&a.y)
	p.inf = false
	return p
}

// Double sets p = 2a and returns p.
func (p *G1) Double(a *G1) *G1 {
	if a.inf || a.y.IsZero() {
		p.inf = true
		return p
	}
	// λ = 3x²/(2y); x' = λ² - 2x; y' = λ(x - x') - y
	var lam, t, x3, y3 fp.Element
	lam.Square(&a.x)
	t.Double(&lam)
	lam.Add(&lam, &t)
	t.Double(&a.y)
	t.Inverse(&t)
	lam.Mul(&lam, &t)

	x3.Square(&lam)
	t.Double(&a.x)
	x3.Sub(&x3, &t)

	y3.Sub(&a.x, &x3)
	y3.Mul(&y3, &lam)
	y3.Sub(&y3, &a.y)

	p.x.Set(&x3)
	p.y.Set(&y3)
	p.inf = false
	return p
}

// Add sets p = a + b and returns p. Aliasing is allowed.
func (p *G1) Add(a, b *G1) *G1 {
	if a.inf {
		return p.Set(b)
	}
	if b.inf {
		return p.Set(a)
	}
	if a.x.Equal(&b.x) {
		if a.y.Equal(&b.y) {
			return p.Double(a)
		}
		p.inf = true
		return p
	}
	// λ = (y2-y1)/(x2-x1); x' = λ² - x1 - x2; y' = λ(x1 - x') - y1
	var lam, t, x3, y3 fp.Element
	lam.Sub(&b.y, &a.y)
	t.Sub(&b.x, &a.x)
	t.Inverse(&t)
	lam.Mul(&lam, &t)

	x3.Square(&lam)
	x3.Sub(&x3, &a.x)
	x3.Sub(&x3, &b.x)

	y3.Sub(&a.x, &x3)
	y3.Mul(&y3, &lam)
	y3.Sub(&y3, &a.y)

	p.x.Set(&x3)
	p.y.Set(&y3)
	p.inf = false
	return p
}

// ScalarMult sets p = k·a (k taken mod r) and returns p. It runs on the
// Jacobian-coordinate ladder; scalarMultAffine is the property-tested
// reference implementation and E1 ablation.
func (p *G1) ScalarMult(a *G1, k *big.Int) *G1 {
	return scalarMultJacobianG1(p, a, k)
}

// scalarMultAffine is the double-and-add ladder in affine coordinates
// (one modular inversion per step). Kept as the reference implementation.
func (p *G1) scalarMultAffine(a *G1, k *big.Int) *G1 {
	kk := new(big.Int).Mod(k, Order)
	var acc G1
	acc.inf = true
	var base G1
	base.Set(a)
	for i := kk.BitLen() - 1; i >= 0; i-- {
		acc.Double(&acc)
		if kk.Bit(i) == 1 {
			acc.Add(&acc, &base)
		}
	}
	return p.Set(&acc)
}

// ScalarBaseMult sets p = k·G where G is the fixed generator, and returns p.
// It runs on the lazily built fixed-base window table (see precompute.go);
// scalarBaseMultGeneric is the property-tested reference path.
func (p *G1) ScalarBaseMult(k *big.Int) *G1 {
	return g1GeneratorTable().mul(p, k)
}

// scalarBaseMultGeneric computes k·G through the generic ladder, without
// the fixed-base table. Reference implementation for tests and benchmarks.
func (p *G1) scalarBaseMultGeneric(k *big.Int) *G1 {
	return p.ScalarMult(&g1Gen, k)
}

// g1ElementSize is the marshaled size of one coordinate in bytes.
const g1ElementSize = 32

// G1Size is the marshaled size of a G1 point in bytes.
const G1Size = 2 * g1ElementSize

// Marshal encodes p as 64 bytes (x‖y, big-endian, 32 bytes each). The point
// at infinity encodes as all zeros.
func (p *G1) Marshal() []byte {
	out := make([]byte, G1Size)
	if p.inf {
		return out
	}
	xb := p.x.Bytes()
	yb := p.y.Bytes()
	copy(out[:g1ElementSize], xb[:])
	copy(out[g1ElementSize:], yb[:])
	return out
}

// Unmarshal decodes a point previously produced by Marshal, verifying that
// it lies on the curve.
func (p *G1) Unmarshal(data []byte) error {
	if len(data) != G1Size {
		return fmt.Errorf("bn254: invalid G1 encoding length %d", len(data))
	}
	allZero := true
	for _, b := range data {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		p.inf = true
		p.x.SetZero()
		p.y.SetZero()
		return nil
	}
	if !p.x.SetBytes(data[:g1ElementSize]) || !p.y.SetBytes(data[g1ElementSize:]) {
		return errors.New("bn254: G1 coordinate out of range")
	}
	p.inf = false
	if !p.IsOnCurve() {
		return errors.New("bn254: G1 point not on curve")
	}
	return nil
}

func (p *G1) String() string {
	if p.inf {
		return "G1(∞)"
	}
	return fmt.Sprintf("G1(%s, %s)", p.x.String(), p.y.String())
}
