package bn254

import (
	"math/big"

	"typepre/internal/bn254/fp"
)

// Square roots in Fp2, used by the compressed point encodings. The base
// field's square root (p ≡ 3 mod 4) lives on fp.Element.Sqrt.

// pMinus3Over4 and pMinus1Over2 are the exponents of the complex-method
// Fp2 square root.
var (
	pMinus3Over4 = new(big.Int).Div(new(big.Int).Sub(P, big.NewInt(3)), big.NewInt(4))
	pMinus1Over2 = new(big.Int).Div(new(big.Int).Sub(P, big.NewInt(1)), big.NewInt(2))
)

// Sqrt sets e to a square root of a and reports whether a is a quadratic
// residue in Fp2. Uses the complex method for p ≡ 3 (mod 4)
// (Adj–Rodríguez-Henríquez): with a1 = a^((p−3)/4), x0 = a1·a and
// α = a1·x0 = a^((p−1)/2); if α = −1 the root is i·x0, otherwise
// (1+α)^((p−1)/2)·x0. The final verification makes the routine total.
func (e *fp2) Sqrt(a *fp2) bool {
	if a.IsZero() {
		e.SetZero()
		return true
	}
	var a1, x0, alpha fp2
	a1.Exp(a, pMinus3Over4)
	x0.Mul(&a1, a)
	alpha.Mul(&a1, &x0)

	var minusOne fp2
	minusOne.c0.SetOne()
	minusOne.c0.Neg(&minusOne.c0)

	var oneEl fp.Element
	oneEl.SetOne()

	var x fp2
	if alpha.Equal(&minusOne) {
		// x = i · x0
		x.c0.Neg(&x0.c1)
		x.c1.Set(&x0.c0)
	} else {
		var b fp2
		b.c0.Add(&alpha.c0, &oneEl)
		b.c1.Set(&alpha.c1)
		b.Exp(&b, pMinus1Over2)
		x.Mul(&b, &x0)
	}
	var check fp2
	check.Square(&x)
	if !check.Equal(a) {
		return false
	}
	e.Set(&x)
	return true
}

// lexLarger reports whether a is "lexicographically larger" than its
// negation, comparing (c1, c0) numerically. Used to disambiguate the two
// square roots in compressed encodings.
func (a *fp2) lexLarger() bool {
	var neg fp2
	neg.Neg(a)
	if c := a.c1.Cmp(&neg.c1); c != 0 {
		return c > 0
	}
	return a.c0.Cmp(&neg.c0) > 0
}
