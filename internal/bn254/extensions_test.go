package bn254

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"typepre/internal/bn254/fp"
)

// ---------------------------------------------------------------------------
// Square roots
// ---------------------------------------------------------------------------

func TestFpSqrt(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	for i := 0; i < 20; i++ {
		var x, sq, y, y2 fp.Element
		x.SetBigInt(randFp(r))
		sq.Square(&x)
		if !y.Sqrt(&sq) {
			t.Fatal("square rejected by Sqrt")
		}
		y2.Square(&y)
		if !y2.Equal(&sq) {
			t.Fatal("Sqrt returned a non-root")
		}
	}
}

func TestFp2Sqrt(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randFp2(r)
		var sq fp2
		sq.Square(a)
		var root fp2
		if !root.Sqrt(&sq) {
			return false
		}
		var check fp2
		check.Square(&root)
		return check.Equal(&sq)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestFp2SqrtZero(t *testing.T) {
	var z, zero fp2
	if !z.Sqrt(&zero) || !z.IsZero() {
		t.Fatal("sqrt(0) != 0")
	}
}

func TestFp2SqrtNonResidueRejected(t *testing.T) {
	// A quadratic non-residue must be reported as such. Find one by trying
	// small elements: exactly half the nonzero elements are non-residues.
	r := rand.New(rand.NewSource(21))
	found := false
	for i := 0; i < 64 && !found; i++ {
		a := randFp2(r)
		if a.IsZero() {
			continue
		}
		var root fp2
		if !root.Sqrt(a) {
			found = true
		}
	}
	if !found {
		t.Fatal("no non-residue found in 64 samples (p≈1/2^64 if correct)")
	}
}

// ---------------------------------------------------------------------------
// Compressed encodings
// ---------------------------------------------------------------------------

func TestG1CompressedRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for i := 0; i < 10; i++ {
		var p, q G1
		p.ScalarBaseMult(new(big.Int).Rand(r, Order))
		data := p.MarshalCompressed()
		if len(data) != G1CompressedSize {
			t.Fatalf("compressed size %d", len(data))
		}
		if err := q.Unmarshal(p.Marshal()); err != nil {
			t.Fatal(err)
		}
		var got G1
		if err := got.UnmarshalCompressed(data); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(&p) {
			t.Fatal("G1 compressed round trip mismatch")
		}
	}
	// Infinity.
	var inf, got G1
	inf.inf = true
	if err := got.UnmarshalCompressed(inf.MarshalCompressed()); err != nil || !got.IsInfinity() {
		t.Fatal("G1 compressed infinity round trip failed")
	}
}

func TestG1CompressedRejectsInvalid(t *testing.T) {
	var p G1
	if err := p.UnmarshalCompressed([]byte{1, 2}); err == nil {
		t.Fatal("accepted bad length")
	}
	bad := make([]byte, G1CompressedSize)
	bad[0] = 0x07
	if err := p.UnmarshalCompressed(bad); err == nil {
		t.Fatal("accepted bad header")
	}
	// x with no curve point: x=5 → 125+3=128; quadratic residue? Search for
	// a rejected x deterministically.
	found := false
	for x := int64(1); x < 64 && !found; x++ {
		enc := make([]byte, G1CompressedSize)
		enc[0] = compressedEven
		big.NewInt(x).FillBytes(enc[1:])
		if err := p.UnmarshalCompressed(enc); err != nil {
			found = true
		}
	}
	if !found {
		t.Fatal("every small x decompressed — expected some off-curve rejections")
	}
	// Infinity flag with non-zero x.
	badInf := make([]byte, G1CompressedSize)
	badInf[33-1] = 1
	if err := p.UnmarshalCompressed(badInf); err == nil {
		t.Fatal("accepted non-canonical infinity")
	}
}

func TestG2CompressedRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 5; i++ {
		var p G2
		p.ScalarBaseMult(new(big.Int).Rand(r, Order))
		data := p.MarshalCompressed()
		if len(data) != G2CompressedSize {
			t.Fatalf("compressed size %d", len(data))
		}
		var got G2
		if err := got.UnmarshalCompressed(data); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(&p) {
			t.Fatal("G2 compressed round trip mismatch")
		}
	}
	var inf, got G2
	inf.inf = true
	if err := got.UnmarshalCompressed(inf.MarshalCompressed()); err != nil || !got.IsInfinity() {
		t.Fatal("G2 compressed infinity round trip failed")
	}
}

func TestG2CompressedRejectsInvalid(t *testing.T) {
	var p G2
	if err := p.UnmarshalCompressed([]byte{9}); err == nil {
		t.Fatal("accepted bad length")
	}
	bad := make([]byte, G2CompressedSize)
	bad[0] = 0xff
	if err := p.UnmarshalCompressed(bad); err == nil {
		t.Fatal("accepted bad header")
	}
}

// ---------------------------------------------------------------------------
// Jacobian vs affine scalar multiplication
// ---------------------------------------------------------------------------

func TestG1JacobianMatchesAffine(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := new(big.Int).Rand(r, Order)
		base := new(big.Int).Rand(r, Order)
		var a G1
		a.scalarMultAffine(&g1Gen, base)
		var viaJac, viaAff G1
		viaJac.ScalarMult(&a, k)
		viaAff.scalarMultAffine(&a, k)
		return viaJac.Equal(&viaAff) && viaJac.IsOnCurve()
	}
	cfg := quickCfg()
	cfg.MaxCount = 10
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestG2JacobianMatchesAffine(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := new(big.Int).Rand(r, Order)
		var viaJac, viaAff G2
		viaJac.ScalarMult(&g2Gen, k)
		viaAff.scalarMultAffine(&g2Gen, k)
		return viaJac.Equal(&viaAff) && viaJac.IsOnCurve()
	}
	cfg := quickCfg()
	cfg.MaxCount = 6
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestJacobianEdgeCases(t *testing.T) {
	// k = 0, k = r, k = 1, infinity input.
	var z G1
	z.ScalarMult(&g1Gen, big.NewInt(0))
	if !z.IsInfinity() {
		t.Fatal("0·G != ∞")
	}
	z.ScalarMult(&g1Gen, Order)
	if !z.IsInfinity() {
		t.Fatal("r·G != ∞")
	}
	z.ScalarMult(&g1Gen, big.NewInt(1))
	if !z.Equal(&g1Gen) {
		t.Fatal("1·G != G")
	}
	var inf G1
	inf.inf = true
	z.ScalarMult(&inf, big.NewInt(7))
	if !z.IsInfinity() {
		t.Fatal("k·∞ != ∞")
	}

	var z2 G2
	z2.ScalarMult(&g2Gen, Order)
	if !z2.IsInfinity() {
		t.Fatal("r·G2 != ∞")
	}
	z2.ScalarMult(&g2Gen, big.NewInt(1))
	if !z2.Equal(&g2Gen) {
		t.Fatal("1·G2 != G2")
	}
}

func TestJacobianSmallScalars(t *testing.T) {
	// Cross-check the first few multiples against repeated affine addition.
	var acc G1
	acc.inf = true
	for k := int64(0); k <= 16; k++ {
		var got G1
		got.ScalarMult(&g1Gen, big.NewInt(k))
		if !got.Equal(&acc) {
			t.Fatalf("%d·G mismatch", k)
		}
		acc.Add(&acc, &g1Gen)
	}
}

// ---------------------------------------------------------------------------
// Windowed exponentiation
// ---------------------------------------------------------------------------

func TestExpWindowedMatchesBinary(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randFp12(r)
		k := new(big.Int).Rand(r, Order)
		var w, b fp12
		w.expWindowed(a, k)
		b.expBinary(a, k)
		return w.Equal(&b)
	}
	cfg := quickCfg()
	cfg.MaxCount = 8
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestExpEdgeExponents(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	a := randFp12(r)
	var out fp12
	out.Exp(a, big.NewInt(0))
	if !out.IsOne() {
		t.Fatal("a^0 != 1")
	}
	out.Exp(a, big.NewInt(1))
	if !out.Equal(a) {
		t.Fatal("a^1 != a")
	}
	// A 65-bit exponent exercises the windowed path boundary.
	k := new(big.Int).Lsh(big.NewInt(1), 64)
	k.Add(k, big.NewInt(3))
	var w, b fp12
	w.Exp(a, k)
	b.expBinary(a, k)
	if !w.Equal(&b) {
		t.Fatal("boundary exponent mismatch")
	}
}
