package fp

import (
	"math/big"
	"math/rand"
	"testing"
)

// ref reduces a big.Int into [0, p) — the reference arithmetic every limb
// operation is checked against.
func ref(x *big.Int) *big.Int { return new(big.Int).Mod(x, modulus) }

func randBig(r *rand.Rand) *big.Int {
	return new(big.Int).Rand(r, modulus)
}

func fromBig(t *testing.T, v *big.Int) *Element {
	t.Helper()
	var e Element
	e.SetBigInt(v)
	return &e
}

// edgeCases are the values most likely to trip carry/borrow handling.
func edgeCases() []*big.Int {
	pm1 := new(big.Int).Sub(modulus, big.NewInt(1))
	pm2 := new(big.Int).Sub(modulus, big.NewInt(2))
	half := new(big.Int).Rsh(modulus, 1)
	return []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(2),
		new(big.Int).SetUint64(^uint64(0)),
		new(big.Int).Lsh(big.NewInt(1), 64),
		new(big.Int).Lsh(big.NewInt(1), 128),
		new(big.Int).Lsh(big.NewInt(1), 192),
		half, pm2, pm1,
	}
}

func testPairs(r *rand.Rand) [][2]*big.Int {
	var out [][2]*big.Int
	edges := edgeCases()
	for _, a := range edges {
		for _, b := range edges {
			out = append(out, [2]*big.Int{a, b})
		}
	}
	for i := 0; i < 200; i++ {
		out = append(out, [2]*big.Int{randBig(r), randBig(r)})
	}
	return out
}

func TestRoundTripBigInt(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, v := range append(edgeCases(), randBig(r), randBig(r)) {
		e := fromBig(t, v)
		if got := e.BigInt(); got.Cmp(ref(v)) != 0 {
			t.Fatalf("round trip %v: got %v", v, got)
		}
	}
}

func TestBinaryOpsVsBig(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, pair := range testPairs(r) {
		a, b := pair[0], pair[1]
		ea, eb := fromBig(t, a), fromBig(t, b)

		var sum, diff, prod Element
		sum.Add(ea, eb)
		diff.Sub(ea, eb)
		prod.Mul(ea, eb)

		if got, want := sum.BigInt(), ref(new(big.Int).Add(a, b)); got.Cmp(want) != 0 {
			t.Fatalf("add(%v,%v) = %v, want %v", a, b, got, want)
		}
		if got, want := diff.BigInt(), ref(new(big.Int).Sub(a, b)); got.Cmp(want) != 0 {
			t.Fatalf("sub(%v,%v) = %v, want %v", a, b, got, want)
		}
		if got, want := prod.BigInt(), ref(new(big.Int).Mul(a, b)); got.Cmp(want) != 0 {
			t.Fatalf("mul(%v,%v) = %v, want %v", a, b, got, want)
		}
	}
}

func TestUnaryOpsVsBig(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	vals := edgeCases()
	for i := 0; i < 100; i++ {
		vals = append(vals, randBig(r))
	}
	for _, v := range vals {
		e := fromBig(t, v)
		var neg, dbl, sq Element
		neg.Neg(e)
		dbl.Double(e)
		sq.Square(e)
		if got, want := neg.BigInt(), ref(new(big.Int).Neg(v)); got.Cmp(want) != 0 {
			t.Fatalf("neg(%v) = %v, want %v", v, got, want)
		}
		if got, want := dbl.BigInt(), ref(new(big.Int).Lsh(ref(v), 1)); got.Cmp(want) != 0 {
			t.Fatalf("double(%v) = %v, want %v", v, got, want)
		}
		if got, want := sq.BigInt(), ref(new(big.Int).Mul(v, v)); got.Cmp(want) != 0 {
			t.Fatalf("square(%v) = %v, want %v", v, got, want)
		}
	}
}

func TestInverseVsBig(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	vals := []*big.Int{big.NewInt(1), big.NewInt(2), new(big.Int).Sub(modulus, big.NewInt(1))}
	for i := 0; i < 50; i++ {
		vals = append(vals, randBig(r))
	}
	for _, v := range vals {
		if v.Sign() == 0 {
			continue
		}
		e := fromBig(t, v)
		var inv Element
		inv.Inverse(e)
		want := new(big.Int).ModInverse(ref(v), modulus)
		if got := inv.BigInt(); got.Cmp(want) != 0 {
			t.Fatalf("inv(%v) = %v, want %v", v, got, want)
		}
		var prod Element
		prod.Mul(e, &inv)
		if !prod.IsOne() {
			t.Fatalf("a·a⁻¹ != 1 for %v", v)
		}
	}
}

func TestInverseZeroIsZero(t *testing.T) {
	var z, zero Element
	z.SetOne()
	z.Inverse(&zero)
	if !z.IsZero() {
		t.Fatal("Inverse(0) != 0")
	}
}

func TestSqrt(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		v := randBig(r)
		e := fromBig(t, v)
		var sq, root, check Element
		sq.Square(e)
		if !root.Sqrt(&sq) {
			t.Fatalf("square of %v rejected by Sqrt", v)
		}
		check.Square(&root)
		if !check.Equal(&sq) {
			t.Fatalf("Sqrt returned non-root for %v", v)
		}
	}
	// Half the nonzero elements are non-residues; find one.
	found := false
	for i := 0; i < 64 && !found; i++ {
		e := fromBig(t, randBig(r))
		if e.IsZero() {
			continue
		}
		var root Element
		if !root.Sqrt(e) {
			found = true
		}
	}
	if !found {
		t.Fatal("no quadratic non-residue found in 64 samples")
	}
	var zero, z Element
	if !z.Sqrt(&zero) || !z.IsZero() {
		t.Fatal("Sqrt(0) != 0")
	}
}

func TestExpBigMatchesBig(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 20; i++ {
		v := randBig(r)
		k := randBig(r)
		e := fromBig(t, v)
		var out Element
		out.ExpBig(e, k)
		want := new(big.Int).Exp(ref(v), k, modulus)
		if got := out.BigInt(); got.Cmp(want) != 0 {
			t.Fatalf("exp mismatch for %v^%v", v, k)
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	vals := edgeCases()
	for i := 0; i < 50; i++ {
		vals = append(vals, randBig(r))
	}
	for _, v := range vals {
		e := fromBig(t, v)
		buf := e.Bytes()
		var back Element
		if !back.SetBytes(buf[:]) {
			t.Fatalf("canonical bytes rejected for %v", v)
		}
		if !back.Equal(e) {
			t.Fatalf("bytes round trip mismatch for %v", v)
		}
	}
	// Non-canonical encodings must be rejected.
	var bad Element
	pBytes := make([]byte, 32)
	modulus.FillBytes(pBytes)
	if bad.SetBytes(pBytes) {
		t.Fatal("accepted p as an encoding")
	}
	allFF := make([]byte, 32)
	for i := range allFF {
		allFF[i] = 0xff
	}
	if bad.SetBytes(allFF) {
		t.Fatal("accepted 2^256-1 as an encoding")
	}
	if bad.SetBytes([]byte{1, 2, 3}) {
		t.Fatal("accepted short encoding")
	}
}

func TestSelect(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	a := fromBig(t, randBig(r))
	b := fromBig(t, randBig(r))
	var z Element
	z.Select(1, a, b)
	if !z.Equal(a) {
		t.Fatal("Select(1) != a")
	}
	z.Select(0, a, b)
	if !z.Equal(b) {
		t.Fatal("Select(0) != b")
	}
}

func TestCmpAndLexLarger(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		a, b := randBig(r), randBig(r)
		ea, eb := fromBig(t, a), fromBig(t, b)
		if got, want := ea.Cmp(eb), a.Cmp(b); got != want {
			t.Fatalf("Cmp(%v,%v) = %d, want %d", a, b, got, want)
		}
		neg := new(big.Int).Sub(modulus, a)
		neg.Mod(neg, modulus)
		if got, want := ea.LexLarger(), a.Cmp(neg) > 0; got != want {
			t.Fatalf("LexLarger(%v) = %v, want %v", a, got, want)
		}
	}
}

func TestSetUint64(t *testing.T) {
	for _, v := range []uint64{0, 1, 3, 9, ^uint64(0)} {
		var e Element
		e.SetUint64(v)
		if e.BigInt().Cmp(ref(new(big.Int).SetUint64(v))) != 0 {
			t.Fatalf("SetUint64(%d) mismatch", v)
		}
	}
}

func TestAliasing(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	a, b := randBig(r), randBig(r)
	// z aliased with both operands.
	e := fromBig(t, a)
	f := fromBig(t, b)
	e.Mul(e, f)
	if e.BigInt().Cmp(ref(new(big.Int).Mul(a, b))) != 0 {
		t.Fatal("aliased Mul mismatch")
	}
	g := fromBig(t, a)
	g.Mul(g, g)
	if g.BigInt().Cmp(ref(new(big.Int).Mul(a, a))) != 0 {
		t.Fatal("self-aliased Mul mismatch")
	}
	h := fromBig(t, a)
	h.Add(h, h)
	if h.BigInt().Cmp(ref(new(big.Int).Lsh(a, 1))) != 0 {
		t.Fatal("self-aliased Add mismatch")
	}
}

func BenchmarkMul(b *testing.B) {
	r := rand.New(rand.NewSource(20))
	var x, y, z Element
	x.SetBigInt(randBig(r))
	y.SetBigInt(randBig(r))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Mul(&x, &y)
	}
}

func BenchmarkSquare(b *testing.B) {
	r := rand.New(rand.NewSource(21))
	var x, z Element
	x.SetBigInt(randBig(r))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Square(&x)
	}
}

func BenchmarkAdd(b *testing.B) {
	r := rand.New(rand.NewSource(22))
	var x, y, z Element
	x.SetBigInt(randBig(r))
	y.SetBigInt(randBig(r))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Add(&x, &y)
	}
}

func BenchmarkInverse(b *testing.B) {
	r := rand.New(rand.NewSource(23))
	var x, z Element
	x.SetBigInt(randBig(r))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Inverse(&x)
	}
}

func BenchmarkSqrt(b *testing.B) {
	r := rand.New(rand.NewSource(24))
	var x, sq, z Element
	x.SetBigInt(randBig(r))
	sq.Square(&x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Sqrt(&sq)
	}
}
