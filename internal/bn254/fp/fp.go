// Package fp implements the BN254 base field Fp on fixed-width 4×64-bit
// limbs with Montgomery multiplication, replacing the math/big arithmetic
// the pairing stack was originally written against.
//
// The modulus is
//
//	p = 21888242871839275222246405745257275088696311157297823662689037894645226208583
//
// (254 bits). An Element stores the residue x as x·R mod p with R = 2^256,
// little-endian limbs ("Montgomery form"). Products are reduced with the
// CIOS (coarsely integrated operand scanning) interleaving of schoolbook
// multiplication and Montgomery reduction, built entirely from
// math/bits.Mul64/Add64/Sub64 — no assembly, no heap allocation.
//
// Constant-time contract: Add, Sub, Neg, Double, Mul, Square, Inverse,
// Sqrt, Select, IsZero, Equal and the Montgomery conversions perform an
// input-independent sequence of word operations (Inverse and Sqrt are
// fixed-window exponentiations by the public constant exponents p−2 and
// (p+1)/4). Conversion to/from big.Int, String and ExpBig are NOT constant
// time and must only see public values.
//
// All hard-coded constants are re-derived from the decimal modulus at
// package init and cross-checked; a mismatch panics, so a transcribed
// constant cannot silently corrupt the arithmetic (the same guard idiom the
// parent package uses for its curve constants).
package fp

import (
	"fmt"
	"math/big"
	"math/bits"
)

// Element is an Fp element in Montgomery form. The zero value is the field
// zero. Elements are always kept reduced (< p), so representations are
// canonical and Equal is limb equality.
type Element [4]uint64

// Limbs of the modulus p.
const (
	q0 uint64 = 0x3c208c16d87cfd47
	q1 uint64 = 0x97816a916871ca8d
	q2 uint64 = 0xb85045b68181585d
	q3 uint64 = 0x30644e72e131a029
)

// qInvNeg = -p⁻¹ mod 2^64, the Montgomery reduction constant.
const qInvNeg uint64 = 0x87d20782e4866389

var (
	// rSquare = R² mod p, in raw limbs; multiplying by it converts a raw
	// residue into Montgomery form.
	rSquare = Element{0xf32cfc5b538afa89, 0xb5e71911d44501fb, 0x47ab1eff0a417ff6, 0x06d89f71cab8351f}

	// one is 1 in Montgomery form (R mod p).
	one = Element{0xd35d438dc58f0d9d, 0x0a78eb28f5c70b3d, 0x666ea36f7879462c, 0x0e0a77c19a07df2f}

	// pMinus2 is the Inverse exponent p−2 (Fermat), raw limbs.
	pMinus2 = [4]uint64{0x3c208c16d87cfd45, 0x97816a916871ca8d, 0xb85045b68181585d, 0x30644e72e131a029}

	// pPlus1Over4 is the Sqrt exponent (p+1)/4 (p ≡ 3 mod 4), raw limbs.
	pPlus1Over4 = [4]uint64{0x4f082305b61f3f52, 0x65e05aa45a1c72a3, 0x6e14116da0605617, 0x0c19139cb84c680a}

	// modulus is p as a big.Int, for the conversion shims.
	modulus *big.Int
)

func init() {
	p, ok := new(big.Int).SetString("21888242871839275222246405745257275088696311157297823662689037894645226208583", 10)
	if !ok {
		panic("fp: bad modulus literal")
	}
	modulus = p

	toLimbs := func(x *big.Int) (out [4]uint64) {
		for i, w := range x.Bits() {
			out[i] = uint64(w)
		}
		return
	}
	if toLimbs(p) != [4]uint64{q0, q1, q2, q3} {
		panic("fp: modulus limbs do not match decimal modulus")
	}

	two64 := new(big.Int).Lsh(big.NewInt(1), 64)
	pInv := new(big.Int).ModInverse(p, two64)
	if new(big.Int).Mod(new(big.Int).Neg(pInv), two64).Uint64() != qInvNeg {
		panic("fp: qInvNeg does not match -p⁻¹ mod 2^64")
	}

	r := new(big.Int).Lsh(big.NewInt(1), 256)
	rMod := new(big.Int).Mod(r, p)
	if Element(toLimbs(rMod)) != one {
		panic("fp: Montgomery one does not match R mod p")
	}
	r2 := new(big.Int).Mul(rMod, rMod)
	r2.Mod(r2, p)
	if Element(toLimbs(r2)) != rSquare {
		panic("fp: rSquare does not match R² mod p")
	}

	if toLimbs(new(big.Int).Sub(p, big.NewInt(2))) != pMinus2 {
		panic("fp: pMinus2 does not match p−2")
	}
	pp14 := new(big.Int).Add(p, big.NewInt(1))
	pp14.Rsh(pp14, 2)
	if toLimbs(pp14) != pPlus1Over4 {
		panic("fp: pPlus1Over4 does not match (p+1)/4")
	}
}

// Modulus returns a copy of p.
func Modulus() *big.Int { return new(big.Int).Set(modulus) }

// ---------------------------------------------------------------------------
// Assignment and predicates
// ---------------------------------------------------------------------------

// Set assigns a to z and returns z.
func (z *Element) Set(a *Element) *Element {
	*z = *a
	return z
}

// SetZero assigns 0 to z and returns z.
func (z *Element) SetZero() *Element {
	*z = Element{}
	return z
}

// SetOne assigns 1 to z and returns z.
func (z *Element) SetOne() *Element {
	*z = one
	return z
}

// SetUint64 assigns the small integer v (taken mod p) to z and returns z.
func (z *Element) SetUint64(v uint64) *Element {
	*z = Element{v}
	return z.toMont()
}

// IsZero reports whether z == 0. Constant time.
func (z *Element) IsZero() bool {
	return z[0]|z[1]|z[2]|z[3] == 0
}

// IsOne reports whether z == 1. Constant time.
func (z *Element) IsOne() bool {
	return z.Equal(&one)
}

// Equal reports whether z == a. Constant time: representations are
// canonical, so limb equality is field equality.
func (z *Element) Equal(a *Element) bool {
	return (z[0]^a[0])|(z[1]^a[1])|(z[2]^a[2])|(z[3]^a[3]) == 0
}

// Select sets z = a if cond == 1 and z = b if cond == 0, in constant time.
// cond must be 0 or 1.
func (z *Element) Select(cond uint64, a, b *Element) *Element {
	mask := -cond
	z[0] = b[0] ^ (mask & (a[0] ^ b[0]))
	z[1] = b[1] ^ (mask & (a[1] ^ b[1]))
	z[2] = b[2] ^ (mask & (a[2] ^ b[2]))
	z[3] = b[3] ^ (mask & (a[3] ^ b[3]))
	return z
}

// ---------------------------------------------------------------------------
// Additive arithmetic (constant time)
// ---------------------------------------------------------------------------

// reduce conditionally subtracts p so that the limbs (with the incoming
// carry bit) land in [0, p). Constant time.
func (z *Element) reduce(carry uint64) *Element {
	var t Element
	var b uint64
	t[0], b = bits.Sub64(z[0], q0, 0)
	t[1], b = bits.Sub64(z[1], q1, b)
	t[2], b = bits.Sub64(z[2], q2, b)
	t[3], b = bits.Sub64(z[3], q3, b)
	// Keep the subtracted value when the subtraction did not borrow, or
	// when a carry limb means the true value overflowed 2^256.
	return z.Select(carry|(b^1), &t, z)
}

// Add sets z = a + b and returns z.
func (z *Element) Add(a, b *Element) *Element {
	var c uint64
	z[0], c = bits.Add64(a[0], b[0], 0)
	z[1], c = bits.Add64(a[1], b[1], c)
	z[2], c = bits.Add64(a[2], b[2], c)
	z[3], c = bits.Add64(a[3], b[3], c)
	return z.reduce(c)
}

// Double sets z = 2a and returns z.
func (z *Element) Double(a *Element) *Element {
	return z.Add(a, a)
}

// Sub sets z = a − b and returns z.
func (z *Element) Sub(a, b *Element) *Element {
	var bo uint64
	z[0], bo = bits.Sub64(a[0], b[0], 0)
	z[1], bo = bits.Sub64(a[1], b[1], bo)
	z[2], bo = bits.Sub64(a[2], b[2], bo)
	z[3], bo = bits.Sub64(a[3], b[3], bo)
	// If the subtraction borrowed, add p back; mask keeps it branch-free.
	mask := -bo
	var c uint64
	z[0], c = bits.Add64(z[0], mask&q0, 0)
	z[1], c = bits.Add64(z[1], mask&q1, c)
	z[2], c = bits.Add64(z[2], mask&q2, c)
	z[3], _ = bits.Add64(z[3], mask&q3, c)
	return z
}

// Neg sets z = −a and returns z.
func (z *Element) Neg(a *Element) *Element {
	// p − a, masked to zero when a == 0 so the result stays canonical.
	v := a[0] | a[1] | a[2] | a[3]
	mask := -((v | -v) >> 63) // all-ones iff a != 0
	var b uint64
	z[0], b = bits.Sub64(q0, a[0], 0)
	z[1], b = bits.Sub64(q1, a[1], b)
	z[2], b = bits.Sub64(q2, a[2], b)
	z[3], _ = bits.Sub64(q3, a[3], b)
	z[0] &= mask
	z[1] &= mask
	z[2] &= mask
	z[3] &= mask
	return z
}

// ---------------------------------------------------------------------------
// Montgomery multiplication (constant time)
// ---------------------------------------------------------------------------

// Mul sets z = a·b (Montgomery product a·b·R⁻¹ mod p) and returns z.
// Aliasing of z with a or b is allowed.
//
// This is Acar's CIOS algorithm: each of the four outer rounds accumulates
// one partial product row and immediately cancels the low limb with a
// multiple of p, keeping the working value in five limbs. Because
// p < 2^255, the result before the final reduction is < 2p, so a single
// conditional subtraction canonicalizes it.
func (z *Element) Mul(a, b *Element) *Element {
	var t [5]uint64 // t[4] is the overflow limb; never exceeds one bit + carries

	for i := 0; i < 4; i++ {
		// t += a * b[i]
		bi := b[i]
		var c uint64
		for j := 0; j < 4; j++ {
			hi, lo := bits.Mul64(a[j], bi)
			var c1, c2 uint64
			lo, c1 = bits.Add64(lo, t[j], 0)
			lo, c2 = bits.Add64(lo, c, 0)
			t[j] = lo
			// t[j] + a[j]·b[i] + c < 2^128, so hi+c1+c2 cannot wrap.
			c = hi + c1 + c2
		}
		t4, carry := bits.Add64(t[4], c, 0)

		// t = (t + m·p) / 2^64 with m chosen to zero the low limb.
		m := t[0] * qInvNeg
		hi, lo := bits.Mul64(m, q0)
		_, c1 := bits.Add64(lo, t[0], 0)
		c = hi + c1 // lo + t[0] == 0 mod 2^64 by choice of m
		for j := 1; j < 4; j++ {
			hi, lo := bits.Mul64(m, qLimbs[j])
			var c2, c3 uint64
			lo, c2 = bits.Add64(lo, t[j], 0)
			lo, c3 = bits.Add64(lo, c, 0)
			t[j-1] = lo
			c = hi + c2 + c3
		}
		var c4 uint64
		t[3], c4 = bits.Add64(t4, c, 0)
		t[4] = carry + c4
	}

	z[0], z[1], z[2], z[3] = t[0], t[1], t[2], t[3]
	return z.reduce(t[4])
}

// qLimbs exposes the modulus limbs to the reduction loop by index.
var qLimbs = [4]uint64{q0, q1, q2, q3}

// Square sets z = a² and returns z. A dedicated squaring saves under ~15%
// for 4 limbs; this implementation keeps one multiplication path so the
// differential fuzz surface stays small.
func (z *Element) Square(a *Element) *Element {
	return z.Mul(a, a)
}

// toMont converts raw residue limbs into Montgomery form in place.
func (z *Element) toMont() *Element {
	return z.Mul(z, &rSquare)
}

// fromMont converts z out of Montgomery form: a Montgomery product with the
// raw integer 1 divides by R.
func (z *Element) fromMont() *Element {
	return z.Mul(z, &Element{1})
}

// ---------------------------------------------------------------------------
// Exponentiation-based operations (constant time, public fixed exponents)
// ---------------------------------------------------------------------------

// expFixed sets z = a^e for the public exponent e (raw limbs), scanning all
// 64 nibbles with a 16-entry table. The operation sequence depends only on
// the exponent, which is a compile-time constant for every caller, so the
// routine is constant time in a.
func (z *Element) expFixed(a *Element, e *[4]uint64) *Element {
	var tbl [16]Element
	tbl[0] = one
	tbl[1] = *a
	for i := 2; i < 16; i++ {
		tbl[i].Mul(&tbl[i-1], a)
	}
	var res Element
	res = one
	for n := 63; n >= 0; n-- {
		if n != 63 {
			res.Square(&res)
			res.Square(&res)
			res.Square(&res)
			res.Square(&res)
		}
		nib := (e[n/16] >> ((n % 16) * 4)) & 0xf
		// Multiply unconditionally (table[0] is 1) to keep the sequence
		// independent of the exponent bits — immaterial for our public
		// exponents, free to keep.
		res.Mul(&res, &tbl[nib])
	}
	return z.Set(&res)
}

// Inverse sets z = a⁻¹ (Fermat: a^(p−2)) and returns z. Inverse of zero is
// zero, matching the convention the callers check explicitly. Constant time.
func (z *Element) Inverse(a *Element) *Element {
	return z.expFixed(a, &pMinus2)
}

// Sqrt sets z to a square root of a and reports whether a is a quadratic
// residue. Since p ≡ 3 (mod 4) the candidate root is a^((p+1)/4); the final
// verification squaring makes the routine total. z is untouched when a is a
// non-residue.
func (z *Element) Sqrt(a *Element) bool {
	var cand, check Element
	cand.expFixed(a, &pPlus1Over4)
	check.Square(&cand)
	if !check.Equal(a) {
		return false
	}
	z.Set(&cand)
	return true
}

// ExpBig sets z = a^k for a non-negative big.Int exponent. NOT constant
// time; for public exponents only.
func (z *Element) ExpBig(a *Element, k *big.Int) *Element {
	var res, base Element
	res = one
	base = *a
	for i := k.BitLen() - 1; i >= 0; i-- {
		res.Square(&res)
		if k.Bit(i) == 1 {
			res.Mul(&res, &base)
		}
	}
	return z.Set(&res)
}

// ---------------------------------------------------------------------------
// Conversion shims (NOT constant time)
// ---------------------------------------------------------------------------

// SetBigInt assigns v mod p to z and returns z.
func (z *Element) SetBigInt(v *big.Int) *Element {
	vv := new(big.Int).Mod(v, modulus)
	*z = Element{}
	for i, w := range vv.Bits() {
		z[i] = uint64(w)
	}
	return z.toMont()
}

// BigInt returns the canonical value of z as a fresh big.Int.
func (z *Element) BigInt() *big.Int {
	t := *z
	t.fromMont()
	var buf [32]byte
	putBE(&buf, &t)
	return new(big.Int).SetBytes(buf[:])
}

// Bytes returns the canonical 32-byte big-endian encoding of z.
func (z *Element) Bytes() [32]byte {
	t := *z
	t.fromMont()
	var buf [32]byte
	putBE(&buf, &t)
	return buf
}

// SetBytes decodes a canonical 32-byte big-endian encoding, reporting
// whether the value was in range [0, p). z is zeroed on failure.
func (z *Element) SetBytes(data []byte) bool {
	if len(data) != 32 {
		z.SetZero()
		return false
	}
	var raw Element
	for i := 0; i < 4; i++ {
		off := 32 - 8*(i+1)
		raw[i] = uint64(data[off])<<56 | uint64(data[off+1])<<48 |
			uint64(data[off+2])<<40 | uint64(data[off+3])<<32 |
			uint64(data[off+4])<<24 | uint64(data[off+5])<<16 |
			uint64(data[off+6])<<8 | uint64(data[off+7])
	}
	if !smallerThanModulus(&raw) {
		z.SetZero()
		return false
	}
	*z = raw
	z.toMont()
	return true
}

// smallerThanModulus reports whether the raw limbs encode a value < p.
func smallerThanModulus(a *Element) bool {
	var b uint64
	_, b = bits.Sub64(a[0], q0, 0)
	_, b = bits.Sub64(a[1], q1, b)
	_, b = bits.Sub64(a[2], q2, b)
	_, b = bits.Sub64(a[3], q3, b)
	return b == 1
}

// Cmp compares the canonical values of z and a, returning -1, 0 or 1. Used
// by the lexicographic sign convention of the compressed encodings; not
// constant time.
func (z *Element) Cmp(a *Element) int {
	zt, at := *z, *a
	zt.fromMont()
	at.fromMont()
	for i := 3; i >= 0; i-- {
		if zt[i] != at[i] {
			if zt[i] > at[i] {
				return 1
			}
			return -1
		}
	}
	return 0
}

// LexLarger reports whether z > p − z, the "lexicographically larger" root
// convention of the compressed point encodings.
func (z *Element) LexLarger() bool {
	var neg Element
	neg.Neg(z)
	return z.Cmp(&neg) > 0
}

func putBE(buf *[32]byte, t *Element) {
	for i := 0; i < 4; i++ {
		off := 32 - 8*(i+1)
		v := t[i]
		buf[off] = byte(v >> 56)
		buf[off+1] = byte(v >> 48)
		buf[off+2] = byte(v >> 40)
		buf[off+3] = byte(v >> 32)
		buf[off+4] = byte(v >> 24)
		buf[off+5] = byte(v >> 16)
		buf[off+6] = byte(v >> 8)
		buf[off+7] = byte(v)
	}
}

// String formats the canonical value in decimal, for debugging.
func (z *Element) String() string {
	return fmt.Sprintf("%d", z.BigInt())
}
