// Package analysistest drives phrlint analyzers over testdata packages
// with inline `// want "regexp"` expectations, mirroring the x/tools
// package of the same name on the standard library alone.
//
// Layout: testdata/src/<importpath>/*.go forms one package per directory.
// Testdata packages may import each other by those paths (the loader
// resolves them GOPATH-style under testdata/src) and anything from the
// standard library. Every loaded package — including dependencies — feeds
// directive harvesting, so a testdata package can annotate types and
// fields exactly like production code.
//
// Expectations: a comment `// want "re1" "re2"` on a line asserts that
// each regexp matches the message of a distinct diagnostic reported on
// that line; any diagnostic not matched by an expectation, and any
// expectation not matched by a diagnostic, fails the test.
package analysistest

import (
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"typepre/internal/analysis"
)

// Run loads each named testdata package, applies the analyzer (with
// ignore-directive filtering, so directive behavior is testable), and
// checks diagnostics against // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{
		root: filepath.Join(testdata, "src"),
		fset: fset,
		std:  importer.ForCompiler(fset, "gc", nil),
		pkgs: map[string]*analysis.Package{},
	}
	var targets []*analysis.Package
	for _, path := range pkgPaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading testdata package %s: %v", path, err)
		}
		targets = append(targets, pkg)
	}

	var all []*analysis.Package
	for _, p := range ld.pkgs {
		all = append(all, p)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].PkgPath < all[j].PkgPath })
	ann, malformed := analysis.HarvestAnnotations(all)

	for _, pkg := range targets {
		diags, err := analysis.RunPackage(pkg, ann, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg.PkgPath, err)
		}
		for _, d := range malformed {
			if pkgOwnsFile(pkg, d.Pos.Filename) {
				diags = append(diags, d)
			}
		}
		check(t, pkg, diags)
	}
}

func pkgOwnsFile(pkg *analysis.Package, filename string) bool {
	return filepath.Dir(filename) == pkg.Dir
}

// loader resolves testdata import paths GOPATH-style with memoization,
// falling back to the toolchain's export data for the standard library.
type loader struct {
	root    string
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*analysis.Package
	loading map[string]bool
}

func (l *loader) load(path string) (*analysis.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	if l.loading == nil {
		l.loading = map[string]bool{}
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	pkg, err := analysis.TypeCheck(l.fset, path, dir, files, importerFunc(func(imp string) (*types.Package, error) {
		if _, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(imp))); err == nil {
			p, err := l.load(imp)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
		return l.std.Import(imp)
	}))
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// expectation is one parsed want clause.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// want clauses take Go string syntax, double- or back-quoted; each quoted
// string is a regexp matched against one diagnostic message.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func parseWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Syntax {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					raw, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: raw,
					})
				}
			}
		}
	}
	return wants
}

func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, pkg)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}
