package analysis

import "go/ast"

// Parents builds a child→parent map for a file's syntax tree. Passes use
// it to answer "what encloses this node" questions — the framework has no
// x/tools astutil, so the map is built once per file and walked upward.
func Parents(file *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// EnclosingFunc walks the parent map upward from n to the function
// declaration or literal containing it, or nil at package level.
func EnclosingFunc(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	for cur := parents[n]; cur != nil; cur = parents[cur] {
		switch cur.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return cur
		}
	}
	return nil
}

// EnclosingFuncDecl walks upward to the top-level function declaration
// containing n, skipping over function literals, or nil at package level.
func EnclosingFuncDecl(parents map[ast.Node]ast.Node, n ast.Node) *ast.FuncDecl {
	for cur := parents[n]; cur != nil; cur = parents[cur] {
		if fd, ok := cur.(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}
