// Package analysis is a small, dependency-free static-analysis framework
// in the spirit of golang.org/x/tools/go/analysis, built on the standard
// library's go/ast and go/types. It exists because the repo's correctness
// rests on invariants the compiler cannot see — secret scalars must come
// from crypto/rand, sentinel errors must survive wrapping, guarded state
// must only be touched under its mutex, key material must never be
// printed — and those invariants deserve a machine check on every push,
// not a reviewer's memory.
//
// The framework loads and type-checks packages (load.go), harvests the
// repo's annotation directives (annotations.go), runs a set of Analyzers
// over each package, and filters the resulting diagnostics through the
// ignore directives parsed in this file. cmd/phrlint is the multichecker
// CLI; internal/analysis/analysistest drives the same machinery over
// testdata packages with // want expectations.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one named analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and in phrlint:ignore
	// directives. It must be a single lower-case word.
	Name string
	// Doc is a one-paragraph description of the invariant the pass
	// enforces.
	Doc string
	// Run applies the pass to one package, reporting findings through
	// pass.Reportf.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a type-checked package plus the
// framework-wide annotation index.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Annotations indexes every phrlint directive harvested from all
	// packages loaded in this run (not just the one under analysis), so
	// passes can honor annotations on types and fields defined in
	// dependency packages.
	Annotations *Annotations

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned for editors (file:line:col).
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// ignoreDirective is one parsed "phrlint:ignore pass[,pass]: reason"
// comment. A directive suppresses matching diagnostics reported on its own
// line or on the line directly below it (so it can ride at the end of the
// offending line or on the line above).
type ignoreDirective struct {
	pos    token.Position
	passes []string
	reason string
	used   bool
}

var ignoreRe = regexp.MustCompile(`^\s*phrlint:ignore\b(.*)$`)

// commentText strips the comment markers: both the line form
// `//phrlint:ignore ...` and the inline block form `/*phrlint:ignore ...*/`
// are accepted.
func commentText(c *ast.Comment) string {
	if strings.HasPrefix(c.Text, "//") {
		return c.Text[2:]
	}
	return strings.TrimSuffix(strings.TrimPrefix(c.Text, "/*"), "*/")
}

// parseIgnoreDirectives scans a file's comments for phrlint:ignore
// directives. Malformed directives — a missing pass list, a missing
// reason, or an unknown pass name — are themselves diagnostics: an ignore
// that does not say what it ignores and why is indistinguishable from a
// stale suppression.
func parseIgnoreDirectives(fset *token.FileSet, file *ast.File, known map[string]bool) (dirs []*ignoreDirective, malformed []Diagnostic) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			m := ignoreRe.FindStringSubmatch(commentText(c))
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(m[1])
			passList, reason, ok := strings.Cut(rest, ":")
			if !ok || strings.TrimSpace(passList) == "" {
				malformed = append(malformed, Diagnostic{
					Analyzer: "phrlint",
					Pos:      pos,
					Message:  `malformed phrlint:ignore directive: want "phrlint:ignore pass[,pass]: reason"`,
				})
				continue
			}
			reason = strings.TrimSpace(reason)
			if reason == "" {
				malformed = append(malformed, Diagnostic{
					Analyzer: "phrlint",
					Pos:      pos,
					Message:  "phrlint:ignore directive must carry a reason after the colon",
				})
				continue
			}
			var passes []string
			bad := false
			for _, p := range strings.Split(passList, ",") {
				p = strings.TrimSpace(p)
				if !known[p] {
					malformed = append(malformed, Diagnostic{
						Analyzer: "phrlint",
						Pos:      pos,
						Message:  fmt.Sprintf("phrlint:ignore names unknown pass %q", p),
					})
					bad = true
					break
				}
				passes = append(passes, p)
			}
			if bad {
				continue
			}
			dirs = append(dirs, &ignoreDirective{pos: pos, passes: passes, reason: reason})
		}
	}
	return dirs, malformed
}

func (d *ignoreDirective) matches(diag Diagnostic) bool {
	if diag.Pos.Filename != d.pos.Filename {
		return false
	}
	if diag.Pos.Line != d.pos.Line && diag.Pos.Line != d.pos.Line+1 {
		return false
	}
	for _, p := range d.passes {
		if p == diag.Analyzer {
			return true
		}
	}
	return false
}

// RunPackage applies every analyzer to pkg and returns the surviving
// diagnostics: findings suppressed by a well-formed phrlint:ignore
// directive are dropped, malformed directives and directives that suppress
// nothing are reported, and the result is sorted by position.
func RunPackage(pkg *Package, ann *Annotations, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var dirs []*ignoreDirective
	var diags []Diagnostic
	for _, f := range pkg.Syntax {
		d, malformed := parseIgnoreDirectives(pkg.Fset, f, known)
		dirs = append(dirs, d...)
		diags = append(diags, malformed...)
	}

	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:    a,
			Fset:        pkg.Fset,
			Files:       pkg.Syntax,
			Pkg:         pkg.Types,
			TypesInfo:   pkg.TypesInfo,
			Annotations: ann,
			report: func(d Diagnostic) {
				for _, dir := range dirs {
					if dir.matches(d) {
						dir.used = true
						return
					}
				}
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}

	// An ignore that suppresses nothing is stale: either the finding was
	// fixed (delete the directive) or the directive drifted off its line.
	for _, dir := range dirs {
		if !dir.used {
			diags = append(diags, Diagnostic{
				Analyzer: "phrlint",
				Pos:      dir.pos,
				Message:  fmt.Sprintf("phrlint:ignore suppresses no %s diagnostic; delete the stale directive", strings.Join(dir.passes, ",")),
			})
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
