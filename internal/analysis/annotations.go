package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
)

// Annotations is the framework-wide index of phrlint source directives,
// harvested from every package loaded in a run so that passes can honor
// annotations on objects defined in dependency packages:
//
//	// phrlint:secret
//	type KGC struct { ... }          // secretprint: never format/log this
//
//	type memBackend struct {
//	    mu   sync.RWMutex
//	    byID map[string]*Record // phrlint:guardedby mu
//	}
//
//	// phrlint:locked mu — caller must hold mu.
//	func (s *memBackend) collect(ids []string) []*Record { ... }
type Annotations struct {
	// Secret marks type names whose values are key material: formatting or
	// logging them (directly or embedded in a struct) is a secretprint
	// diagnostic.
	Secret map[*types.TypeName]bool
	// GuardedBy maps a struct field to the name of the sibling mutex field
	// that must be held to touch it.
	GuardedBy map[*types.Var]string
	// Locked maps a function to the mutex name its callers must hold;
	// accesses to fields guarded by that mutex are sanctioned inside it.
	Locked map[*types.Func]string
}

var directiveRe = regexp.MustCompile(`^//\s*phrlint:(secret|guardedby|locked)\b[ \t]*([A-Za-z0-9_]*)`)

// directiveIn scans the comment groups for a phrlint:secret/guardedby/
// locked directive and returns its kind and argument.
func directiveIn(groups ...*ast.CommentGroup) (kind, arg string, ok bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if m := directiveRe.FindStringSubmatch(c.Text); m != nil {
				return m[1], m[2], true
			}
		}
	}
	return "", "", false
}

// HarvestAnnotations builds the directive index over every loaded package.
// Malformed directives (guardedby/locked without a mutex name, guardedby
// naming a mutex the struct does not have) are returned as diagnostics —
// an annotation that silently binds to nothing would un-enforce the very
// invariant it documents.
func HarvestAnnotations(pkgs []*Package) (*Annotations, []Diagnostic) {
	ann := &Annotations{
		Secret:    map[*types.TypeName]bool{},
		GuardedBy: map[*types.Var]string{},
		Locked:    map[*types.Func]string{},
	}
	var bad []Diagnostic
	report := func(pkg *Package, node ast.Node, format string, args ...any) {
		bad = append(bad, Diagnostic{
			Analyzer: "phrlint",
			Pos:      pkg.Fset.Position(node.Pos()),
			Message:  fmt.Sprintf(format, args...),
		})
	}

	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					kind, arg, ok := directiveIn(d.Doc)
					if !ok {
						continue
					}
					if kind != "locked" {
						report(pkg, d, "phrlint:%s directive is not valid on a function; want phrlint:locked", kind)
						continue
					}
					if arg == "" {
						report(pkg, d, "phrlint:locked directive must name the mutex the caller holds")
						continue
					}
					if fn, ok := pkg.TypesInfo.Defs[d.Name].(*types.Func); ok {
						ann.Locked[fn] = arg
					}
				case *ast.GenDecl:
					harvestGenDecl(pkg, d, ann, report)
				}
			}
		}
	}
	return ann, bad
}

func harvestGenDecl(pkg *Package, d *ast.GenDecl, ann *Annotations, report func(*Package, ast.Node, string, ...any)) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		// A secret directive may sit on the type's doc comment — which is
		// the GenDecl doc for the common single-spec form.
		if kind, _, ok := directiveIn(ts.Doc, ts.Comment, d.Doc); ok {
			if kind != "secret" {
				report(pkg, ts, "phrlint:%s directive is not valid on a type declaration; want phrlint:secret", kind)
			} else if tn, ok := pkg.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
				ann.Secret[tn] = true
			}
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			kind, arg, ok := directiveIn(field.Doc, field.Comment)
			if !ok {
				continue
			}
			if kind != "guardedby" {
				report(pkg, field, "phrlint:%s directive is not valid on a struct field; want phrlint:guardedby", kind)
				continue
			}
			if arg == "" {
				report(pkg, field, "phrlint:guardedby directive must name the guarding mutex field")
				continue
			}
			if !structHasMutexField(st, arg) {
				report(pkg, field, "phrlint:guardedby names %q, which is not a sibling field of the struct", arg)
				continue
			}
			for _, name := range field.Names {
				if v, ok := pkg.TypesInfo.Defs[name].(*types.Var); ok {
					ann.GuardedBy[v] = arg
				}
			}
		}
	}
}

// structHasMutexField reports whether the struct declares a field with the
// given name (the mutex the guardedby directive points at).
func structHasMutexField(st *ast.StructType, name string) bool {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				return true
			}
		}
	}
	return false
}
