// Package lockdiscipline checks phrlint:guardedby annotations: a struct
// field annotated `// phrlint:guardedby mu` may only be read while some
// acquisition of that mutex (Lock or RLock on the same receiver) appears
// earlier in the enclosing function, and only written after a full Lock.
// Functions annotated `// phrlint:locked mu` declare that their caller
// holds the mutex and are exempt for fields it guards.
//
// The check is lexical, not path-sensitive: it asks "did this function
// acquire the right lock before this access", not "is the lock still held
// on every path reaching it". That catches the real bug class — a new
// method or helper touching guarded maps with no locking at all, the kind
// of miss -race only finds when a test happens to interleave — without
// needing a full may-hold analysis. It can be fooled by access-after-
// Unlock in the same function; the race detector remains the backstop for
// that shape.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"typepre/internal/analysis"
)

// Analyzer enforces phrlint:guardedby field annotations.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "flag reads/writes of phrlint:guardedby fields from functions that do not acquire the named mutex (writes require Lock, not RLock)",
	Run:  run,
}

// lockKind distinguishes exclusive from shared acquisition.
type lockKind int

const (
	lockExclusive lockKind = iota // Lock()
	lockShared                    // RLock()
)

// lockEvent is one mutex acquisition found in a function body.
type lockEvent struct {
	base  types.Object // the receiver/variable whose mutex field is locked
	mutex string       // the mutex field name
	kind  lockKind
	pos   token.Pos
}

func run(pass *analysis.Pass) error {
	if len(pass.Annotations.GuardedBy) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		parents := analysis.Parents(file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, parents, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, parents map[ast.Node]ast.Node, fd *ast.FuncDecl) {
	locks := collectLocks(pass, fd.Body)
	var heldByCaller string
	if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		heldByCaller = pass.Annotations.Locked[fn]
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		mutex, guarded := pass.Annotations.GuardedBy[field]
		if !guarded {
			return true
		}
		base := baseObject(pass, sel.X)
		if base == nil {
			// Not a simple variable access (chained call results etc.);
			// out of scope for the lexical check.
			return true
		}
		if heldByCaller == mutex {
			return true
		}
		write := isWrite(parents, sel)
		if satisfied(locks, base, mutex, write, sel.Pos()) {
			return true
		}
		kind := "read of"
		if write {
			kind = "write to"
		}
		if !write || !satisfied(locks, base, mutex, false, sel.Pos()) {
			pass.Reportf(sel.Sel.Pos(),
				"%s %s.%s (phrlint:guardedby %s) without %s.%s held; acquire the lock or mark the enclosing function phrlint:locked %s",
				kind, base.Name(), field.Name(), mutex, base.Name(), mutex, mutex)
		} else {
			pass.Reportf(sel.Sel.Pos(),
				"write to %s.%s (phrlint:guardedby %s) under RLock; writes require %s.%s.Lock()",
				base.Name(), field.Name(), mutex, base.Name(), mutex)
		}
		return true
	})
}

// collectLocks finds every `x.mu.Lock()` / `x.mu.RLock()` call (including
// deferred ones) in the body, keyed by the variable x and mutex field
// name.
func collectLocks(pass *analysis.Pass, body *ast.BlockStmt) []lockEvent {
	var events []lockEvent
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var kind lockKind
		switch method.Sel.Name {
		case "Lock":
			kind = lockExclusive
		case "RLock":
			kind = lockShared
		default:
			return true
		}
		mutexSel, ok := ast.Unparen(method.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base := baseObject(pass, mutexSel.X)
		if base == nil {
			return true
		}
		events = append(events, lockEvent{
			base:  base,
			mutex: mutexSel.Sel.Name,
			kind:  kind,
			pos:   call.Pos(),
		})
		return true
	})
	return events
}

// satisfied reports whether some acquisition of base.mutex strong enough
// for the access (writes need Lock) appears before pos.
func satisfied(locks []lockEvent, base types.Object, mutex string, write bool, pos token.Pos) bool {
	for _, ev := range locks {
		if ev.base != base || ev.mutex != mutex || ev.pos >= pos {
			continue
		}
		if write && ev.kind != lockExclusive {
			continue
		}
		return true
	}
	return false
}

// baseObject resolves the variable at the root of a selector chain
// (s in s.byID, s.inner.byID); nil when the base is not a plain variable.
func baseObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if v, ok := pass.TypesInfo.Uses[x].(*types.Var); ok {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isWrite classifies a guarded-field access by climbing to the statement
// that uses it: assignment targets, IncDec, address-taking, and delete()
// on the field are writes; everything else is a read.
func isWrite(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	child := ast.Node(sel)
	for p := parents[child]; p != nil; child, p = p, parents[p] {
		switch pp := p.(type) {
		case *ast.AssignStmt:
			for _, lhs := range pp.Lhs {
				if lhs == child {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return true
		case *ast.UnaryExpr:
			if pp.Op == token.AND && pp.X == child {
				return true
			}
			return false
		case *ast.CallExpr:
			if id, ok := ast.Unparen(pp.Fun).(*ast.Ident); ok && id.Name == "delete" &&
				len(pp.Args) > 0 && pp.Args[0] == child {
				return true
			}
			return false
		case *ast.IndexExpr:
			if pp.X != child {
				return false // the access is the index key, a read
			}
		case *ast.SelectorExpr:
			if pp.X != child {
				return false
			}
		case *ast.SliceExpr:
			if pp.Low == child || pp.High == child || pp.Max == child {
				return false
			}
		case *ast.ParenExpr, *ast.StarExpr:
			// keep climbing
		default:
			return false
		}
	}
	return false
}
