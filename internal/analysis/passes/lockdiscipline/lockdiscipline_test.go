package lockdiscipline_test

import (
	"testing"

	"typepre/internal/analysis/analysistest"
	"typepre/internal/analysis/passes/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", lockdiscipline.Analyzer, "a")
}

func TestMalformedGuardedBy(t *testing.T) {
	analysistest.Run(t, "testdata", lockdiscipline.Analyzer, "badann")
}
