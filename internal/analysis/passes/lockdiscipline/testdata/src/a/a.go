// Package a (testdata) exercises phrlint:guardedby enforcement: reads need
// some acquisition of the named mutex earlier in the function, writes need
// Lock (not RLock), and phrlint:locked functions are exempt.
package a

import "sync"

type store struct {
	mu    sync.RWMutex
	items map[string]int // phrlint:guardedby mu
	n     int            // phrlint:guardedby mu
}

// lockedWrite is the canonical shape: Lock before the write.
func (s *store) lockedWrite(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[k] = v
	s.n++
}

// sharedRead is the canonical read shape: RLock suffices.
func (s *store) sharedRead(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.items[k]
}

// bareRead touches a guarded field with no lock at all.
func (s *store) bareRead(k string) int {
	return s.items[k] // want `read of s\.items \(phrlint:guardedby mu\) without s\.mu held`
}

// bareWrite writes with no lock at all.
func (s *store) bareWrite(k string) {
	delete(s.items, k) // want `write to s\.items \(phrlint:guardedby mu\) without s\.mu held`
}

// writeUnderRLock holds only the shared lock across a mutation.
func (s *store) writeUnderRLock() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.n++ // want `write to s\.n \(phrlint:guardedby mu\) under RLock; writes require s\.mu\.Lock\(\)`
}

// phrlint:locked mu — callers hold the write lock.
func (s *store) countLocked() int {
	return s.n + len(s.items)
}

// viaLockedHelper acquires the lock and delegates to the annotated helper.
func (s *store) viaLockedHelper() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.countLocked()
}

// ignoredRead demonstrates the escape hatch.
func (s *store) ignoredRead() int {
	//phrlint:ignore lockdiscipline: snapshot read during single-threaded startup
	return s.n
}
