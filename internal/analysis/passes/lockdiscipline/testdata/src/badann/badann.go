// Package badann (testdata) holds malformed annotations: the harvester
// itself must reject a guardedby that binds to nothing.
package badann

import "sync"

type broken struct {
	mu sync.Mutex
	// phrlint:guardedby lock
	data map[string]int // want `phrlint:guardedby names "lock", which is not a sibling field of the struct`
	// phrlint:guardedby
	n int // want `phrlint:guardedby directive must name the guarding mutex field`
}

// phrlint:locked
func (b *broken) helper() int { // want `phrlint:locked directive must name the mutex the caller holds`
	return b.n
}
