// Package sentinelcmp flags direct ==/!= comparisons of errors against
// sentinel values. The repo's revocation and crash-recovery semantics ride
// on sentinel errors (phr.ErrStaleGrant, phr.ErrStorage, diskstore's
// ErrCorrupt, io.EOF at stream boundaries) that are routinely wrapped with
// %w as they cross layers; a direct comparison silently stops matching the
// moment anyone adds context, so the only future-proof test is errors.Is.
package sentinelcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"typepre/internal/analysis"
)

// Analyzer flags err == Sentinel / err != Sentinel comparisons.
var Analyzer = &analysis.Analyzer{
	Name: "sentinelcmp",
	Doc:  "flag ==/!= comparisons against sentinel errors; wrapped errors make them silently false — use errors.Is",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkCmp(pass, n)
				}
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCmp(pass *analysis.Pass, cmp *ast.BinaryExpr) {
	if !isErrorExpr(pass, cmp.X) || !isErrorExpr(pass, cmp.Y) {
		return
	}
	// err == nil / err != nil is the idiomatic success check, not a
	// sentinel comparison.
	if isNil(pass, cmp.X) || isNil(pass, cmp.Y) {
		return
	}
	name, ok := sentinelName(pass, cmp.X)
	if !ok {
		name, ok = sentinelName(pass, cmp.Y)
	}
	if !ok {
		return
	}
	op := "=="
	if cmp.Op == token.NEQ {
		op = "!="
	}
	pass.Reportf(cmp.OpPos,
		"comparing error with %s %s: a wrapped %s never matches; use errors.Is", op, name, name)
}

// checkSwitch treats `switch err { case io.EOF: }` as the comparison it
// desugars to.
func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !isErrorExpr(pass, sw.Tag) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			if isNil(pass, expr) {
				continue
			}
			if name, ok := sentinelName(pass, expr); ok {
				pass.Reportf(expr.Pos(),
					"switching on error against %s: a wrapped %s never matches; use errors.Is", name, name)
			}
		}
	}
}

// isErrorExpr reports whether the expression's static type is assignable
// to error (the interface itself, or any concrete type implementing it),
// or is the untyped nil being compared against one.
func isErrorExpr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return true
	}
	return types.AssignableTo(t, types.Universe.Lookup("error").Type())
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// sentinelName identifies a package-level error variable (io.EOF,
// phr.ErrStaleGrant, a local package's ErrFoo) and returns its display
// name.
func sentinelName(pass *analysis.Pass, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	var id *ast.Ident
	display := ""
	switch x := e.(type) {
	case *ast.Ident:
		id = x
		display = x.Name
	case *ast.SelectorExpr:
		id = x.Sel
		if pkg, ok := x.X.(*ast.Ident); ok {
			display = pkg.Name + "." + x.Sel.Name
		} else {
			display = x.Sel.Name
		}
	default:
		return "", false
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	return display, true
}
