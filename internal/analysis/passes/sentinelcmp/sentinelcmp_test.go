package sentinelcmp_test

import (
	"testing"

	"typepre/internal/analysis/analysistest"
	"typepre/internal/analysis/passes/sentinelcmp"
)

func TestSentinelCmp(t *testing.T) {
	analysistest.Run(t, "testdata", sentinelcmp.Analyzer, "a")
}
