// Package a exercises sentinelcmp: direct comparisons against sentinel
// errors are flagged; nil checks, errors.Is and local-to-local comparisons
// are not.
package a

import (
	"errors"
	"fmt"
	"io"
)

var ErrStale = errors.New("a: stale grant")

func flagged(err error) {
	if err == io.EOF { // want `comparing error with == io.EOF: a wrapped io.EOF never matches; use errors.Is`
		return
	}
	if err != ErrStale { // want `comparing error with != ErrStale`
		return
	}
	if ErrStale == err { // want `comparing error with == ErrStale`
		return
	}
	switch err {
	case io.ErrUnexpectedEOF: // want `switching on error against io.ErrUnexpectedEOF`
		return
	case nil:
		return
	}
}

func clean(err error) error {
	if err == nil {
		return nil
	}
	if err != nil {
		_ = err
	}
	if errors.Is(err, io.EOF) {
		return nil
	}
	other := fmt.Errorf("wrap: %w", err)
	// Comparing two non-sentinel locals is identity comparison between
	// dynamic values, not a sentinel test; out of scope.
	if err == other {
		return other
	}
	// Non-error comparisons never trigger.
	if len(other.Error()) == 3 {
		return nil
	}
	return err
}

func ignored(err error) {
	//phrlint:ignore sentinelcmp: exercising the suppression path in tests
	if err == io.EOF {
		return
	}
}
