package secretrand_test

import (
	"testing"

	"typepre/internal/analysis/analysistest"
	"typepre/internal/analysis/passes/secretrand"
)

func TestCryptoPackagesBanMathRand(t *testing.T) {
	analysistest.Run(t, "testdata", secretrand.Analyzer, "typepre/internal/bn254")
}

func TestCryptoSubpackagesBanMathRand(t *testing.T) {
	// The ban covers subpackages of the crypto roots too: the
	// Montgomery-limb field core internal/bn254/fp must classify as
	// cryptographic without its own cryptoPkgs entry.
	analysistest.Run(t, "testdata", secretrand.Analyzer, "typepre/internal/bn254/fp")
}

func TestPhrPlumbingException(t *testing.T) {
	analysistest.Run(t, "testdata", secretrand.Analyzer,
		"typepre/internal/phr", "typepre/internal/phr/scenario")
}

func TestOutOfScopePackagesAreClean(t *testing.T) {
	analysistest.Run(t, "testdata", secretrand.Analyzer, "typepre/cmd/tool")
}
