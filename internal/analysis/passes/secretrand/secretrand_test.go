package secretrand_test

import (
	"testing"

	"typepre/internal/analysis/analysistest"
	"typepre/internal/analysis/passes/secretrand"
)

func TestCryptoPackagesBanMathRand(t *testing.T) {
	analysistest.Run(t, "testdata", secretrand.Analyzer, "typepre/internal/bn254")
}

func TestPhrPlumbingException(t *testing.T) {
	analysistest.Run(t, "testdata", secretrand.Analyzer,
		"typepre/internal/phr", "typepre/internal/phr/scenario")
}

func TestOutOfScopePackagesAreClean(t *testing.T) {
	analysistest.Run(t, "testdata", secretrand.Analyzer, "typepre/cmd/tool")
}
