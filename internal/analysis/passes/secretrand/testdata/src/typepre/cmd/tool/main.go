// Package main (testdata) sits outside the policed trees: load generators
// may use math/rand for operation mixes.
package main

import "math/rand"

func main() {
	_ = rand.Intn(3)
}
