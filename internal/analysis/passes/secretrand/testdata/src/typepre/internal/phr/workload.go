// Package phr (testdata) models the workload plumbing: math/rand is legal
// only inside GenerateWorkload/GenerateWorkloadFrom — the
// InsecureDeterministic corpus generator — and in arguments handed to
// GenerateWorkloadFrom calls.
package phr

import (
	"math/rand"
)

// WorkloadConfig mirrors the production InsecureDeterministic switch.
type WorkloadConfig struct {
	Seed                  int64
	InsecureDeterministic bool
}

// Workload is a generated corpus.
type Workload struct {
	IDs []int
}

// GenerateWorkload seeds the deterministic generator; the plumbing
// entry point is sanctioned wholesale.
func GenerateWorkload(cfg WorkloadConfig) (*Workload, error) {
	return GenerateWorkloadFrom(cfg, rand.NewSource(cfg.Seed))
}

// GenerateWorkloadFrom is the plumbing itself.
func GenerateWorkloadFrom(cfg WorkloadConfig, src rand.Source) (*Workload, error) {
	rng := rand.New(src)
	return &Workload{IDs: []int{rng.Intn(100)}}, nil
}

// Shuffle is NOT plumbing: a direct use of math/rand outside the
// sanctioned functions.
func Shuffle(w *Workload) {
	rand.Shuffle(len(w.IDs), func(i, j int) { // want `math/rand use outside the InsecureDeterministic workload plumbing`
		w.IDs[i], w.IDs[j] = w.IDs[j], w.IDs[i]
	})
}
