// Package bn254 (testdata) models a cryptographic package: math/rand is
// banned outright, whatever it is used for.
package bn254

import (
	crand "crypto/rand"
	"math/bits"
	"math/rand" // want `math/rand imported in cryptographic package typepre/internal/bn254: secret scalars must come from crypto/rand`
)

func Scalar() int64 {
	return rand.Int63()
}

func Clean() (byte, error) {
	var b [1]byte
	if _, err := crand.Read(b[:]); err != nil {
		return 0, err
	}
	return byte(bits.Reverse8(b[0])), nil
}
