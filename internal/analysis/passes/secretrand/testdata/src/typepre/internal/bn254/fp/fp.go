// Package fp (testdata) models a subpackage of a cryptographic package:
// the math/rand ban applies to the whole internal/bn254 subtree, so the
// Montgomery-limb field core is covered without its own entry in
// cryptoPkgs.
package fp

import (
	"math/rand" // want `math/rand imported in cryptographic package typepre/internal/bn254/fp: secret scalars must come from crypto/rand`
)

func Limb() uint64 {
	return rand.Uint64()
}
