// Package scenario (testdata) models a phr subpackage: constructing a
// seeded source as an argument to GenerateWorkloadFrom is sanctioned; any
// other math/rand use is not.
package scenario

import (
	"math/rand"

	"typepre/internal/phr"
)

func deterministicCorpus(seed int64) (*phr.Workload, error) {
	cfg := phr.WorkloadConfig{Seed: seed, InsecureDeterministic: true}
	return phr.GenerateWorkloadFrom(cfg, rand.NewSource(seed))
}

func jitter() int {
	return rand.Intn(10) // want `math/rand use outside the InsecureDeterministic workload plumbing`
}

func ignoredJitter() int {
	//phrlint:ignore secretrand: drill-order jitter only; no key material involved
	return rand.Intn(10)
}
