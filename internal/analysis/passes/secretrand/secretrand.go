// Package secretrand enforces the repo's randomness policy: secret
// scalars, KEM randomizers and GCM nonces must come from crypto/rand.
// math/rand (and math/rand/v2) is banned outright in the cryptographic
// packages (internal/bn254, internal/ibe, internal/core, internal/hybrid)
// and allowed in the internal/phr tree only as the sanctioned
// InsecureDeterministic workload plumbing: the deterministic rand.Source
// that phr.GenerateWorkloadFrom threads through corpus generation so load
// tests and crash-recovery spot-checks can regenerate byte-identical
// corpora. Everything else is a diagnostic — a math/rand value that leaks
// into key generation is the paper's security reduction voided in one
// line.
package secretrand

import (
	"go/ast"
	"go/types"
	"strings"

	"typepre/internal/analysis"
)

// Analyzer flags math/rand in crypto packages and unsanctioned math/rand
// in the internal/phr tree.
var Analyzer = &analysis.Analyzer{
	Name: "secretrand",
	Doc:  "flag math/rand in crypto packages and outside the InsecureDeterministic workload plumbing; secret randomness must come from crypto/rand",
	Run:  run,
}

// cryptoPkgs are the packages where no use of math/rand is ever
// legitimate: every random value they draw is (or directly masks) key
// material. Matching is on the path segment directly under internal/, so
// each entry covers its whole subtree — internal/bn254/fp (the
// Montgomery-limb field core) is covered by the bn254 entry.
var cryptoPkgs = []string{"bn254", "ibe", "core", "hybrid"}

// plumbingFuncs are the functions, in the phr package itself, that *are*
// the InsecureDeterministic plumbing — the only place the phr tree may
// manipulate a math/rand generator rather than merely construct a seeded
// Source for it.
var plumbingFuncs = map[string]bool{
	"GenerateWorkload":     true,
	"GenerateWorkloadFrom": true,
}

func run(pass *analysis.Pass) error {
	crypto, phrTree := classify(pass.Pkg.Path())
	if !crypto && !phrTree {
		return nil
	}
	for _, file := range pass.Files {
		checkFile(pass, file, crypto)
	}
	return nil
}

// classify buckets a package path by its position under internal/: the
// crypto packages (and their subpackages) ban math/rand outright; the
// internal/phr tree gets the plumbing exception.
func classify(path string) (crypto, phrTree bool) {
	segs := strings.Split(path, "/")
	for i := 0; i+1 < len(segs); i++ {
		if segs[i] != "internal" {
			continue
		}
		next := segs[i+1]
		if next == "phr" {
			return false, true
		}
		for _, c := range cryptoPkgs {
			if next == c {
				return true, false
			}
		}
	}
	return false, false
}

func checkFile(pass *analysis.Pass, file *ast.File, crypto bool) {
	randNames := map[*types.PkgName]bool{}
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path != "math/rand" && path != "math/rand/v2" {
			continue
		}
		if crypto {
			pass.Reportf(imp.Pos(), "%s imported in cryptographic package %s: secret scalars must come from crypto/rand", path, pass.Pkg.Path())
			continue
		}
		if imp.Name != nil && (imp.Name.Name == "_" || imp.Name.Name == ".") {
			pass.Reportf(imp.Pos(), "%s %s-imported in the internal/phr tree; import it normally so uses are auditable", path, imp.Name.Name)
			continue
		}
		if obj, ok := pass.TypesInfo.Implicits[imp].(*types.PkgName); ok {
			randNames[obj] = true
		} else if imp.Name != nil {
			if obj, ok := pass.TypesInfo.Defs[imp.Name].(*types.PkgName); ok {
				randNames[obj] = true
			}
		}
	}
	if crypto || len(randNames) == 0 {
		return
	}

	parents := analysis.Parents(file)
	ast.Inspect(file, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok || !randNames[pn] {
			return true
		}
		if sanctioned(pass, parents, id) {
			return true
		}
		pass.Reportf(id.Pos(),
			"math/rand use outside the InsecureDeterministic workload plumbing; secret randomness must come from crypto/rand")
		return true
	})
}

// sanctioned reports whether a math/rand reference is part of the
// InsecureDeterministic plumbing: either lexically inside the plumbing
// functions themselves (phr.GenerateWorkload/GenerateWorkloadFrom, whose
// whole job is threading a deterministic source), or inside an argument
// handed to a GenerateWorkloadFrom call (the one-line `rand.NewSource(seed)`
// construction every deterministic caller performs).
func sanctioned(pass *analysis.Pass, parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	if fd := analysis.EnclosingFuncDecl(parents, id); fd != nil &&
		plumbingFuncs[fd.Name.Name] && fd.Recv == nil && isPhrPkg(pass.Pkg.Path()) {
		return true
	}
	for child, p := ast.Node(id), parents[id]; p != nil; child, p = p, parents[p] {
		call, ok := p.(*ast.CallExpr)
		if !ok {
			continue
		}
		for _, arg := range call.Args {
			if arg == child {
				if name := calleeName(call); plumbingFuncs[name] {
					return true
				}
				break
			}
		}
	}
	return false
}

func isPhrPkg(path string) bool {
	return path == "internal/phr" || strings.HasSuffix(path, "/internal/phr")
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
