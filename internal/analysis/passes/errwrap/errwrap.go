// Package errwrap flags fmt.Errorf calls that format an error value with
// a verb other than %w. The service's HTTP status mapping (ErrStorage →
// 500, ErrStaleGrant → 403, ErrNoGrant → 403, ErrNotFound → 404) and the
// disk backend's recovery logic all dispatch on errors.Is; an error
// stringified into the message with %v or %s drops out of the Unwrap
// chain and silently breaks that dispatch for every caller downstream.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"
	"strings"

	"typepre/internal/analysis"
)

// Analyzer flags fmt.Errorf verbs that stringify an error instead of
// wrapping it.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc:  "flag fmt.Errorf calls embedding an error with %v/%s instead of %w; stringified errors drop out of the errors.Is chain",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	errType := types.Universe.Lookup("error").Type()
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || call.Ellipsis.IsValid() || len(call.Args) < 2 {
				return true
			}
			if !isErrorf(pass, call.Fun) {
				return true
			}
			format, ok := stringConstant(pass, call.Args[0])
			if !ok {
				return true
			}
			for _, v := range parseVerbs(format) {
				if v.verb == 'w' || v.verb == 'T' {
					continue
				}
				argIdx := v.arg + 1 // args[0] is the format string
				if argIdx >= len(call.Args) {
					continue // malformed call; vet's printf check owns that
				}
				arg := call.Args[argIdx]
				t := pass.TypesInfo.TypeOf(arg)
				if t == nil || !types.AssignableTo(t, errType) {
					continue
				}
				pass.Reportf(arg.Pos(),
					"error value formatted with %%%s in fmt.Errorf; use %%w so errors.Is/errors.As still see it", string(v.verb))
			}
			return true
		})
	}
	return nil
}

func isErrorf(pass *analysis.Pass, fun ast.Expr) bool {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.FullName() == "fmt.Errorf"
}

// stringConstant extracts a constant string value (a literal or a
// reference to a string constant).
func stringConstant(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// verbUse maps one format verb to the zero-based index of the operand it
// consumes.
type verbUse struct {
	verb rune
	arg  int
}

// parseVerbs walks a Printf-style format string and pairs each verb with
// its operand index, handling flags, *-widths/precisions (which consume an
// operand), and explicit [n] argument indexes.
func parseVerbs(format string) []verbUse {
	var out []verbUse
	arg := 0
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i >= len(runes) {
			break
		}
		if runes[i] == '%' {
			continue
		}
		// Flags.
		for i < len(runes) && strings.ContainsRune("+-# 0", runes[i]) {
			i++
		}
		// Explicit argument index: %[n]v.
		if i < len(runes) && runes[i] == '[' {
			j := i + 1
			for j < len(runes) && runes[j] != ']' {
				j++
			}
			if j >= len(runes) {
				break
			}
			if n, err := strconv.Atoi(string(runes[i+1 : j])); err == nil && n >= 1 {
				arg = n - 1
			}
			i = j + 1
		}
		// Width.
		if i < len(runes) && runes[i] == '*' {
			arg++
			i++
		} else {
			for i < len(runes) && runes[i] >= '0' && runes[i] <= '9' {
				i++
			}
		}
		// Precision.
		if i+1 < len(runes) && runes[i] == '.' {
			i++
			if runes[i] == '*' {
				arg++
				i++
			} else {
				for i < len(runes) && runes[i] >= '0' && runes[i] <= '9' {
					i++
				}
			}
		}
		if i >= len(runes) {
			break
		}
		out = append(out, verbUse{verb: runes[i], arg: arg})
		arg++
	}
	return out
}
