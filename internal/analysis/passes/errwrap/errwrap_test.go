package errwrap_test

import (
	"testing"

	"typepre/internal/analysis/analysistest"
	"typepre/internal/analysis/passes/errwrap"
)

func TestErrWrap(t *testing.T) {
	analysistest.Run(t, "testdata", errwrap.Analyzer, "a")
}

func TestIgnoreDirectives(t *testing.T) {
	analysistest.Run(t, "testdata", errwrap.Analyzer, "directives")
}
