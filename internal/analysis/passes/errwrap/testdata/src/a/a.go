// Package a exercises errwrap: an error operand of fmt.Errorf must be
// matched by %w, not stringified by %v/%s.
package a

import (
	"errors"
	"fmt"
)

var ErrStorage = errors.New("a: storage failure")

type myErr struct{}

func (*myErr) Error() string { return "my" }

func flagged(err error) {
	_ = fmt.Errorf("failed: %v", err)                   // want `error value formatted with %v in fmt.Errorf; use %w`
	_ = fmt.Errorf("failed: %s", err)                   // want `error value formatted with %s in fmt.Errorf; use %w`
	_ = fmt.Errorf("%w: %v", ErrStorage, err)           // want `error value formatted with %v`
	_ = fmt.Errorf("%[2]v %[1]d", 1, err)               // want `error value formatted with %v`
	_ = fmt.Errorf("%*d then %v", 8, 42, err)           // want `error value formatted with %v`
	_ = fmt.Errorf("%+v", err)                          // want `error value formatted with %v`
	_ = fmt.Errorf("concrete: %v", &myErr{})            // want `error value formatted with %v`
	_ = fmt.Errorf("%.3s and 100%% done: %v", "x", err) // want `error value formatted with %v`
}

func clean(err error) {
	_ = fmt.Errorf("failed: %w", err)
	_ = fmt.Errorf("%w: %w", ErrStorage, err)
	_ = fmt.Errorf("type only: %T", err)
	_ = fmt.Errorf("text: %s, number: %d", "x", 42)
	// Pre-stringified errors are the caller's explicit choice; errwrap
	// only judges the verb/operand pairing.
	_ = fmt.Errorf("stringified: %s", err.Error())
	// Non-constant format strings cannot be mapped to operands.
	f := "runtime: %v"
	_ = fmt.Errorf(f, err)
	// Spreads cannot be mapped either.
	args := []any{err}
	_ = fmt.Errorf("spread: %v", args...)
	// fmt.Sprintf is not Errorf; secretprint and callers own other sinks.
	_ = fmt.Sprintf("sprint: %v", err)
}
