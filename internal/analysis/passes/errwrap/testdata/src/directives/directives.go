// Package directives exercises the phrlint:ignore machinery: a
// well-formed directive (pass list + reason) suppresses its finding from
// the same line or the line below; a directive without a reason, naming an
// unknown pass, or suppressing nothing is itself a diagnostic.
package directives

import (
	"errors"
	"fmt"
)

var errBase = errors.New("directives: base")

func suppressed(err error) {
	//phrlint:ignore errwrap: err is nil on this path and quoted as text only
	_ = fmt.Errorf("report: %v", err)

	_ = fmt.Errorf("inline: %v", err) //phrlint:ignore errwrap: same-line suppression form
}

func stillFlagged(err error) {
	/*phrlint:ignore errwrap*/           // want `malformed phrlint:ignore directive`
	_ = fmt.Errorf("no reason: %v", err) // want `error value formatted with %v`

	/*phrlint:ignore errwrap:*/             // want `phrlint:ignore directive must carry a reason after the colon`
	_ = fmt.Errorf("empty reason: %v", err) // want `error value formatted with %v`

	/*phrlint:ignore nosuchpass: reason text*/ // want `phrlint:ignore names unknown pass "nosuchpass"`
	_ = fmt.Errorf("unknown pass: %v", err)    // want `error value formatted with %v`
}

//phrlint:ignore errwrap: nothing on this or the next line triggers errwrap // want `phrlint:ignore suppresses no errwrap diagnostic; delete the stale directive`
func stale(err error) error {
	return fmt.Errorf("wrapped properly: %w", err)
}
