// Package secretprint flags key material flowing into formatting and
// logging. Types annotated `// phrlint:secret` (the KGC master scalar,
// extracted IBE private keys, the delegator wrapper, recovered type keys,
// derived GCM keys) must never reach fmt/log output — a %v of a secret-key
// struct prints its *big.Int scalars in full, and an error string built
// from one ships the scalar to whatever logs the error. The check is
// structural: a struct containing a secret field (at any nesting depth,
// through pointers, slices, arrays and maps) is itself secret.
package secretprint

import (
	"go/ast"
	"go/types"

	"typepre/internal/analysis"
)

// Analyzer flags phrlint:secret values passed to print-like functions.
var Analyzer = &analysis.Analyzer{
	Name: "secretprint",
	Doc:  "flag formatting/logging of phrlint:secret key-material types; key scalars must never reach fmt/log output or error strings",
	Run:  run,
}

// printFuncs are the formatting sinks. Matching is by types.Func.FullName,
// so both package functions ("fmt.Printf") and methods
// ("(*log.Logger).Printf") are covered.
var printFuncs = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
	"fmt.Sprint": true, "fmt.Sprintf": true, "fmt.Sprintln": true,
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
	"fmt.Errorf": true, "fmt.Appendf": true, "fmt.Append": true, "fmt.Appendln": true,
	"log.Print": true, "log.Printf": true, "log.Println": true,
	"log.Fatal": true, "log.Fatalf": true, "log.Fatalln": true,
	"log.Panic": true, "log.Panicf": true, "log.Panicln": true, "log.Output": true,
	"(*log.Logger).Print": true, "(*log.Logger).Printf": true, "(*log.Logger).Println": true,
	"(*log.Logger).Fatal": true, "(*log.Logger).Fatalf": true, "(*log.Logger).Fatalln": true,
	"(*log.Logger).Panic": true, "(*log.Logger).Panicf": true, "(*log.Logger).Panicln": true,
	"(*log.Logger).Output": true,
	"log/slog.Debug": true, "log/slog.Info": true, "log/slog.Warn": true, "log/slog.Error": true,
	"(*log/slog.Logger).Debug": true, "(*log/slog.Logger).Info": true,
	"(*log/slog.Logger).Warn": true, "(*log/slog.Logger).Error": true,
}

func run(pass *analysis.Pass) error {
	if len(pass.Annotations.Secret) == 0 {
		return nil
	}
	memo := map[types.Type]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || !printFuncs[fn.FullName()] {
				return true
			}
			for _, arg := range call.Args {
				t := pass.TypesInfo.TypeOf(arg)
				if t == nil || !isSecret(pass, memo, t, nil) {
					continue
				}
				pass.Reportf(arg.Pos(),
					"key material of type %s passed to %s; secrets must never be formatted or logged", t, fn.FullName())
			}
			return true
		})
	}
	return nil
}

// isSecret reports whether a value of type t contains phrlint:secret key
// material, walking through pointers, containers and struct fields.
// `seen` breaks recursive-type cycles (a revisited in-progress type is
// conservatively non-secret; the annotation on the cycle head still
// triggers).
func isSecret(pass *analysis.Pass, memo map[types.Type]bool, t types.Type, seen map[types.Type]bool) bool {
	if v, ok := memo[t]; ok {
		return v
	}
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true

	secret := false
	switch tt := t.(type) {
	case *types.Named:
		if pass.Annotations.Secret[tt.Obj()] {
			secret = true
		} else {
			secret = isSecret(pass, memo, tt.Underlying(), seen)
		}
	case *types.Alias:
		secret = isSecret(pass, memo, types.Unalias(tt), seen)
	case *types.Pointer:
		secret = isSecret(pass, memo, tt.Elem(), seen)
	case *types.Slice:
		secret = isSecret(pass, memo, tt.Elem(), seen)
	case *types.Array:
		secret = isSecret(pass, memo, tt.Elem(), seen)
	case *types.Map:
		secret = isSecret(pass, memo, tt.Key(), seen) || isSecret(pass, memo, tt.Elem(), seen)
	case *types.Chan:
		secret = isSecret(pass, memo, tt.Elem(), seen)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if isSecret(pass, memo, tt.Field(i).Type(), seen) {
				secret = true
				break
			}
		}
	}
	memo[t] = secret
	return secret
}
