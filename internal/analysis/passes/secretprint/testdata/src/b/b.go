// Package b (testdata) imports a and must see its phrlint:secret
// annotations: containment through structs, slices and maps makes the
// wrapper secret too.
package b

import (
	"fmt"
	"log"

	"a"
)

func leakRing(kr a.Keyring) {
	log.Printf("ring: %+v", kr) // want `key material of type a\.Keyring passed to log\.Printf; secrets must never be formatted or logged`
}

func leakSlice(ks []*a.PrivateKey) error {
	return fmt.Errorf("bad keys: %v", ks) // want `key material of type \[\]\*a\.PrivateKey passed to fmt\.Errorf`
}

func clean(kr a.Keyring) {
	log.Printf("ring %q holds %d keys", kr.Label, len(kr.Keys))
}
