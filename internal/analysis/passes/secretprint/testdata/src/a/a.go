// Package a (testdata) defines annotated key-material types and exercises
// the in-package sinks.
package a

import "fmt"

// PrivateKey is extracted key material.
// phrlint:secret
type PrivateKey struct {
	D []byte
}

// Keyring contains secrets only transitively, through a map of pointers.
type Keyring struct {
	Label string
	Keys  map[string]*PrivateKey
}

// demKey mirrors the derived-GCM-key shape: a secret named byte slice.
// phrlint:secret
type demKey []byte

func describe(k *PrivateKey) string {
	return fmt.Sprintf("key %v", k) // want `key material of type \*a\.PrivateKey passed to fmt\.Sprintf; secrets must never be formatted or logged`
}

func hexDump(d demKey) string {
	return fmt.Sprintf("%x", d) // want `key material of type a\.demKey passed to fmt\.Sprintf`
}

// size formats only non-secret projections of the key: clean.
func size(k *PrivateKey) string {
	return fmt.Sprintf("key of %d bytes", len(k.D))
}

// debugDump shows the escape hatch: the print is real, the ignore
// suppresses it with a reason.
func debugDump(k *PrivateKey) string {
	//phrlint:ignore secretprint: operator-invoked debug dump, never reached in production paths
	return fmt.Sprintf("%v", k)
}
