package secretprint_test

import (
	"testing"

	"typepre/internal/analysis/analysistest"
	"typepre/internal/analysis/passes/secretprint"
)

func TestSecretPrint(t *testing.T) {
	analysistest.Run(t, "testdata", secretprint.Analyzer, "a")
}

// TestCrossPackage checks that phrlint:secret annotations harvested from a
// dependency package are honored in its importers.
func TestCrossPackage(t *testing.T) {
	analysistest.Run(t, "testdata", secretprint.Analyzer, "b")
}
