// Package passes registers the phrlint analyzer suite: the five
// repo-specific checks that machine-enforce the crypto and service
// invariants documented in docs/lint.md.
package passes

import (
	"typepre/internal/analysis"
	"typepre/internal/analysis/passes/errwrap"
	"typepre/internal/analysis/passes/lockdiscipline"
	"typepre/internal/analysis/passes/secretprint"
	"typepre/internal/analysis/passes/secretrand"
	"typepre/internal/analysis/passes/sentinelcmp"
)

// All returns the full phrlint suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		secretrand.Analyzer,
		sentinelcmp.Analyzer,
		errwrap.Analyzer,
		lockdiscipline.Analyzer,
		secretprint.Analyzer,
	}
}
