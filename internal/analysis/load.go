package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
)

// A Package is one loaded, type-checked package: the unit a Pass runs
// over.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs the go command and decodes its JSON package stream.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json=ImportPath,Dir,GoFiles,Standard,Error"}, args...)...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", args, err, errBuf.Bytes())
	}
	dec := json.NewDecoder(&out)
	var pkgs []*listedPackage
	for dec.More() {
		p := new(listedPackage)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %w", args, err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// moduleImporter resolves imports while type-checking module packages from
// source: standard-library packages come from the toolchain's export data
// (offline — the gc importer asks the go command for the build cache
// location), and intra-module packages come from the already-type-checked
// map, which dependency-order loading guarantees is populated.
type moduleImporter struct {
	std    types.Importer
	byPath map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.byPath[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

// LoadPackages loads, parses and type-checks the packages matching
// patterns (plus, internally, their intra-module dependencies) rooted at
// dir. Only non-test Go files are loaded: the invariants phrlint checks
// are production invariants, and tests legitimately do things like seed
// deterministic randomness. The returned slice contains only the packages
// matching patterns, in dependency order; every loaded package (including
// dependencies) is visible to directive harvesting via HarvestAnnotations.
func LoadPackages(dir string, patterns []string) (targets []*Package, all []*Package, err error) {
	targetList, err := goList(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	isTarget := map[string]bool{}
	for _, p := range targetList {
		isTarget[p.ImportPath] = true
	}

	// -deps lists dependencies before dependents, so a single forward
	// sweep type-checks every import before its importer needs it.
	graph, err := goList(dir, append([]string{"-deps"}, patterns...)...)
	if err != nil {
		return nil, nil, err
	}

	fset := token.NewFileSet()
	imp := &moduleImporter{
		std:    importer.ForCompiler(fset, "gc", nil),
		byPath: map[string]*types.Package{},
	}
	for _, lp := range graph {
		if lp.Standard {
			continue
		}
		pkg, err := TypeCheck(fset, lp.ImportPath, lp.Dir, lp.GoFiles, imp)
		if err != nil {
			return nil, nil, err
		}
		imp.byPath[lp.ImportPath] = pkg.Types
		all = append(all, pkg)
		if isTarget[lp.ImportPath] {
			targets = append(targets, pkg)
		}
	}
	return targets, all, nil
}

// TypeCheck parses the named files in dir and type-checks them as one
// package, resolving imports through imp. It is the shared core of the
// go-list loader above and the analysistest testdata loader.
func TypeCheck(fset *token.FileSet, pkgPath, dir string, files []string, imp types.Importer) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
