// Package ibe implements the Boneh–Franklin identity-based encryption
// scheme over the bn254 bilinear group, in the "modified" form the paper
// relies on (Section 3.2): plaintexts are elements of GT and
//
//	Setup:    master key α ∈ Z*_r, public key pk = g₂^α
//	Extract:  sk_id = H1(id)^α ∈ G1
//	Encrypt:  c = (g₂^r, m · ê(H1(id), pk)^r)
//	Decrypt:  m = c2 / ê(sk_id, c1)
//
// The original Boneh–Franklin variant with bit-string messages
// (c2 = m ⊕ H2(ê(H1(id), pk)^r)) is provided as EncryptBytes/DecryptBytes.
//
// The paper's symmetric pairing ê: G×G → G1 is instantiated with the
// asymmetric ê: G1×G2 → GT; identities hash into G1 and the encryption
// randomizer g^r lives in G2. Every algebraic identity of the scheme is
// preserved (see DESIGN.md).
package ibe

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"typepre/internal/bn254"
)

// Errors returned by this package.
var (
	ErrDecrypt        = errors.New("ibe: decryption failed")
	ErrWrongRecipient = errors.New("ibe: private key does not match ciphertext recipient domain")
)

// Params holds the public parameters of one Key Generation Center: the
// shared group description (implicit: the bn254 package) plus the KGC's
// public key pk = g₂^α and a human-readable name used only for diagnostics.
type Params struct {
	Name string
	PK   *bn254.G2

	// pre holds lazily built precomputation shared by every copy of these
	// parameters (Params is copied by value in Params()/Extract, so the
	// pointer — not the state — is duplicated). A nil pre (zero value or a
	// caller-built literal) degrades gracefully to the uncached paths.
	pre *paramsPre
}

// maskCacheLimit bounds the per-identity mask cache. When the limit is hit
// the whole cache is dropped and rebuilt on demand, which keeps the steady
// state simple and the memory bounded under identity churn.
const maskCacheLimit = 4096

// paramsPre is the precomputation state attached to a set of parameters:
// the prepared form of pk for the pairing, and the per-identity encryption
// masks ê(H1(id), pk) — constant per identity, one pairing each, and by far
// the hottest value in encrypt-heavy workloads.
type paramsPre struct {
	pkOnce sync.Once
	pk     *bn254.PreparedG2

	mu    sync.Mutex
	masks map[string]*bn254.GT // phrlint:guardedby mu
}

// newParamsPre attaches fresh (empty) precomputation state.
func newParamsPre() *paramsPre {
	return &paramsPre{masks: make(map[string]*bn254.GT)}
}

// PreparedPK returns the prepared form of PK for use with
// bn254.PairPrepared, building and caching it on first use. Without
// attached precomputation state it prepares on the fly.
func (p *Params) PreparedPK() *bn254.PreparedG2 {
	if p.pre == nil {
		return bn254.PrepareG2(p.PK)
	}
	p.pre.pkOnce.Do(func() {
		p.pre.pk = bn254.PrepareG2(p.PK)
	})
	return p.pre.pk
}

// EncryptionMask returns ê(H1(id), pk), the Boneh–Franklin encryption mask
// for an identity, cached per identity on parameters that carry
// precomputation state. The returned value is shared and must not be
// modified. Without attached state it computes a fresh (uncached) pairing.
func (p *Params) EncryptionMask(id string) *bn254.GT {
	if p.pre == nil {
		return bn254.Pair(PublicKeyOf(id), p.PK)
	}
	p.pre.mu.Lock()
	if m, ok := p.pre.masks[id]; ok {
		p.pre.mu.Unlock()
		return m
	}
	p.pre.mu.Unlock()

	// Pair outside the lock: concurrent first requests for one identity
	// may compute the mask twice, but the results are identical and
	// encrypts for other identities are not stalled behind a ~ms pairing.
	m := bn254.PairPrepared(PublicKeyOf(id), p.PreparedPK())

	p.pre.mu.Lock()
	if len(p.pre.masks) >= maskCacheLimit {
		p.pre.masks = make(map[string]*bn254.GT)
	}
	p.pre.masks[id] = m
	p.pre.mu.Unlock()
	return m
}

// KGC is a Key Generation Center: the holder of a master secret α who can
// extract identity private keys. The paper's trust model (§4.2) treats KGCs
// as semi-trusted: honest but curious.
//
// phrlint:secret — the master scalar must never reach fmt/log output.
type KGC struct {
	params Params
	master *big.Int
}

// Setup generates a new KGC with a fresh master key. rng may be nil to use
// crypto/rand.
func Setup(name string, rng io.Reader) (*KGC, error) {
	alpha, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("ibe: setup: %w", err)
	}
	var pk bn254.G2
	pk.ScalarBaseMult(alpha)
	return &KGC{
		params: Params{Name: name, PK: &pk, pre: newParamsPre()},
		master: alpha,
	}, nil
}

// Params returns the KGC's public parameters. The returned value aliases
// the KGC's public key, which is immutable after Setup.
func (k *KGC) Params() *Params {
	p := k.params
	return &p
}

// PublicKeyOf returns pk_id = H1(id), the identity public key. It depends
// only on the shared group parameters, not on any particular KGC.
func PublicKeyOf(id string) *bn254.G1 {
	return bn254.HashToG1(bn254.DomainG1, []byte(id))
}

// PrivateKey is an extracted identity key sk_id = H1(id)^α together with
// the parameters of the KGC that issued it.
//
// phrlint:secret — sk_id opens every ciphertext of the identity.
type PrivateKey struct {
	ID     string
	SK     *bn254.G1
	Params *Params
}

// Extract derives the private key for an identity (the paper's Extract).
func (k *KGC) Extract(id string) *PrivateKey {
	var sk bn254.G1
	sk.ScalarMult(PublicKeyOf(id), k.master)
	p := k.params
	return &PrivateKey{ID: id, SK: &sk, Params: &p}
}

// Ciphertext is a GT-message Boneh–Franklin ciphertext (c1, c2).
type Ciphertext struct {
	C1 *bn254.G2
	C2 *bn254.GT
}

// Encrypt encrypts a GT element to an identity under the given KGC
// parameters. rng may be nil to use crypto/rand.
func Encrypt(params *Params, id string, m *bn254.GT, rng io.Reader) (*Ciphertext, error) {
	r, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("ibe: encrypt: %w", err)
	}
	return encryptWithR(params, id, m, r), nil
}

// encryptWithR is the deterministic core of Encrypt, shared with the
// security-game challengers that need to control the randomness.
func encryptWithR(params *Params, id string, m *bn254.GT, r *big.Int) *Ciphertext {
	var c1 bn254.G2
	c1.ScalarBaseMult(r)

	mask := params.EncryptionMask(id) // ê(H1(id), pk)
	var c2 bn254.GT
	c2.Exp(mask, r)
	c2.Mul(m, &c2)
	return &Ciphertext{C1: &c1, C2: &c2}
}

// Decrypt recovers the GT plaintext with the recipient's private key.
func Decrypt(sk *PrivateKey, ct *Ciphertext) (*bn254.GT, error) {
	if sk == nil || sk.SK == nil || ct == nil || ct.C1 == nil || ct.C2 == nil {
		return nil, ErrDecrypt
	}
	den := bn254.Pair(sk.SK, ct.C1)
	var m bn254.GT
	m.Div(ct.C2, den)
	return &m, nil
}

// ByteCiphertext is an original-variant Boneh–Franklin ciphertext where the
// plaintext is a bit string masked by a hash of the pairing value.
type ByteCiphertext struct {
	C1 *bn254.G2
	C2 []byte
}

// EncryptBytes encrypts an arbitrary byte message to an identity using the
// original Boneh–Franklin masking c2 = m ⊕ H2(ê(H1(id), pk)^r).
func EncryptBytes(params *Params, id string, msg []byte, rng io.Reader) (*ByteCiphertext, error) {
	r, err := bn254.RandomScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("ibe: encrypt bytes: %w", err)
	}
	var c1 bn254.G2
	c1.ScalarBaseMult(r)

	mask := params.EncryptionMask(id)
	var sharedGT bn254.GT
	sharedGT.Exp(mask, r)
	pad := bn254.KDF(bn254.DomainGTMask, &sharedGT, len(msg))
	c2 := make([]byte, len(msg))
	for i := range msg {
		c2[i] = msg[i] ^ pad[i]
	}
	return &ByteCiphertext{C1: &c1, C2: c2}, nil
}

// DecryptBytes recovers a byte message encrypted with EncryptBytes.
func DecryptBytes(sk *PrivateKey, ct *ByteCiphertext) ([]byte, error) {
	if sk == nil || sk.SK == nil || ct == nil || ct.C1 == nil {
		return nil, ErrDecrypt
	}
	sharedGT := bn254.Pair(sk.SK, ct.C1)
	pad := bn254.KDF(bn254.DomainGTMask, sharedGT, len(ct.C2))
	msg := make([]byte, len(ct.C2))
	for i := range ct.C2 {
		msg[i] = ct.C2[i] ^ pad[i]
	}
	return msg, nil
}
