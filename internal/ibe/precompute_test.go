package ibe

import (
	"fmt"
	"math/big"
	"testing"

	"typepre/internal/bn254"
)

// TestEncryptionMaskMatchesNaive pins the cached per-identity mask (and the
// prepared-PK pairing beneath it) to the naive bn254.Pair computation.
func TestEncryptionMaskMatchesNaive(t *testing.T) {
	kgc, err := Setup("mask-kgc", nil)
	if err != nil {
		t.Fatal(err)
	}
	params := kgc.Params()
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("user-%d@example", i)
		want := bn254.Pair(PublicKeyOf(id), params.PK)
		got := params.EncryptionMask(id)
		if !got.Equal(want) {
			t.Fatalf("id %q: cached mask != naive pairing", id)
		}
		if params.EncryptionMask(id) != got {
			t.Fatalf("id %q: second lookup did not hit the cache", id)
		}
	}
}

// TestEncryptCachedMatchesBareParams pins ciphertexts produced through
// parameters with precomputation state to ciphertexts produced through a
// caller-built bare Params literal (no cache), using identical randomness.
func TestEncryptCachedMatchesBareParams(t *testing.T) {
	kgc, err := Setup("bare-kgc", nil)
	if err != nil {
		t.Fatal(err)
	}
	cached := kgc.Params()
	bare := &Params{Name: cached.Name, PK: cached.PK}

	m, _, err := bn254.RandomGT(nil)
	if err != nil {
		t.Fatal(err)
	}
	r := big.NewInt(0x1357)
	const id = "bare@example"
	ctCached := encryptWithR(cached, id, m, r)
	ctBare := encryptWithR(bare, id, m, r)
	if !ctCached.C1.Equal(ctBare.C1) || !ctCached.C2.Equal(ctBare.C2) {
		t.Fatal("cached-params ciphertext differs from bare-params ciphertext")
	}

	sk := kgc.Extract(id)
	got, err := Decrypt(sk, ctCached)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("decryption of cached-params ciphertext failed")
	}
}

// TestEncryptionMaskEviction drives the cache past its limit and checks the
// masks stay correct through the wholesale eviction.
func TestEncryptionMaskEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("eviction sweep is slow")
	}
	kgc, err := Setup("evict-kgc", nil)
	if err != nil {
		t.Fatal(err)
	}
	params := kgc.Params()
	// Shrink the effective limit by pre-filling the real map directly.
	params.pre.mu.Lock()
	for i := 0; i < maskCacheLimit; i++ {
		params.pre.masks[fmt.Sprintf("filler-%d", i)] = bn254.GTOne()
	}
	params.pre.mu.Unlock()

	const id = "post-eviction@example"
	want := bn254.Pair(PublicKeyOf(id), params.PK)
	if !params.EncryptionMask(id).Equal(want) {
		t.Fatal("mask wrong after eviction")
	}
	params.pre.mu.Lock()
	n := len(params.pre.masks)
	params.pre.mu.Unlock()
	if n > 1 {
		t.Fatalf("cache not evicted: %d entries", n)
	}
}
