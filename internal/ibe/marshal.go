package ibe

import (
	"math/big"

	"encoding/binary"
	"errors"
	"fmt"

	"typepre/internal/bn254"
)

// ErrEncoding is returned when a serialized value cannot be decoded.
var ErrEncoding = errors.New("ibe: invalid encoding")

// CiphertextSize is the marshaled size of a GT-message ciphertext in bytes.
const CiphertextSize = bn254.G2Size + bn254.GTSize

// Marshal encodes the ciphertext as C1‖C2.
func (c *Ciphertext) Marshal() []byte {
	out := make([]byte, 0, CiphertextSize)
	out = append(out, c.C1.Marshal()...)
	out = append(out, c.C2.Marshal()...)
	return out
}

// UnmarshalCiphertext decodes a ciphertext produced by Marshal, validating
// both group encodings.
func UnmarshalCiphertext(data []byte) (*Ciphertext, error) {
	if len(data) != CiphertextSize {
		return nil, fmt.Errorf("%w: ciphertext length %d", ErrEncoding, len(data))
	}
	var c1 bn254.G2
	if err := c1.Unmarshal(data[:bn254.G2Size]); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEncoding, err)
	}
	var c2 bn254.GT
	if err := c2.Unmarshal(data[bn254.G2Size:]); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEncoding, err)
	}
	return &Ciphertext{C1: &c1, C2: &c2}, nil
}

// Marshal encodes the byte-message ciphertext as C1‖len(C2)‖C2.
func (c *ByteCiphertext) Marshal() []byte {
	out := make([]byte, 0, bn254.G2Size+4+len(c.C2))
	out = append(out, c.C1.Marshal()...)
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(c.C2)))
	out = append(out, lenBuf[:]...)
	out = append(out, c.C2...)
	return out
}

// UnmarshalByteCiphertext decodes a ByteCiphertext produced by Marshal.
func UnmarshalByteCiphertext(data []byte) (*ByteCiphertext, error) {
	if len(data) < bn254.G2Size+4 {
		return nil, fmt.Errorf("%w: byte ciphertext too short", ErrEncoding)
	}
	var c1 bn254.G2
	if err := c1.Unmarshal(data[:bn254.G2Size]); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEncoding, err)
	}
	n := binary.BigEndian.Uint32(data[bn254.G2Size : bn254.G2Size+4])
	body := data[bn254.G2Size+4:]
	if uint32(len(body)) != n {
		return nil, fmt.Errorf("%w: byte ciphertext body length mismatch", ErrEncoding)
	}
	c2 := make([]byte, n)
	copy(c2, body)
	return &ByteCiphertext{C1: &c1, C2: c2}, nil
}

// Marshal encodes the private key as len(ID)‖ID‖SK. KGC parameters are not
// serialized with the key; callers reattach them on load.
func (k *PrivateKey) Marshal() []byte {
	idBytes := []byte(k.ID)
	out := make([]byte, 0, 4+len(idBytes)+bn254.G1Size)
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(idBytes)))
	out = append(out, lenBuf[:]...)
	out = append(out, idBytes...)
	out = append(out, k.SK.Marshal()...)
	return out
}

// UnmarshalPrivateKey decodes a private key produced by Marshal and binds
// it to the given KGC parameters.
func UnmarshalPrivateKey(data []byte, params *Params) (*PrivateKey, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: private key too short", ErrEncoding)
	}
	n := binary.BigEndian.Uint32(data[:4])
	if uint32(len(data)) != 4+n+bn254.G1Size {
		return nil, fmt.Errorf("%w: private key length mismatch", ErrEncoding)
	}
	id := string(data[4 : 4+n])
	var sk bn254.G1
	if err := sk.Unmarshal(data[4+n:]); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEncoding, err)
	}
	return &PrivateKey{ID: id, SK: &sk, Params: params}, nil
}

// MarshalMaster serializes the KGC's full state (name + master exponent)
// for offline storage. The output is secret key material.
func (k *KGC) MarshalMaster() []byte {
	nameBytes := []byte(k.params.Name)
	out := make([]byte, 0, 4+len(nameBytes)+32)
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(nameBytes)))
	out = append(out, lenBuf[:]...)
	out = append(out, nameBytes...)
	var alphaBuf [32]byte
	k.master.FillBytes(alphaBuf[:])
	return append(out, alphaBuf[:]...)
}

// RestoreKGC rebuilds a KGC from MarshalMaster output.
func RestoreKGC(data []byte) (*KGC, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: master too short", ErrEncoding)
	}
	n := binary.BigEndian.Uint32(data[:4])
	if uint32(len(data)) != 4+n+32 {
		return nil, fmt.Errorf("%w: master length mismatch", ErrEncoding)
	}
	name := string(data[4 : 4+n])
	alpha := new(big.Int).SetBytes(data[4+n:])
	if alpha.Sign() == 0 || alpha.Cmp(bn254.Order) >= 0 {
		return nil, fmt.Errorf("%w: master exponent out of range", ErrEncoding)
	}
	var pk bn254.G2
	pk.ScalarBaseMult(alpha)
	return &KGC{params: Params{Name: name, PK: &pk, pre: newParamsPre()}, master: alpha}, nil
}

// Marshal encodes the public parameters as len(Name)‖Name‖PK.
func (p *Params) Marshal() []byte {
	nameBytes := []byte(p.Name)
	out := make([]byte, 0, 4+len(nameBytes)+bn254.G2Size)
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(nameBytes)))
	out = append(out, lenBuf[:]...)
	out = append(out, nameBytes...)
	out = append(out, p.PK.Marshal()...)
	return out
}

// UnmarshalParams decodes parameters produced by Params.Marshal.
func UnmarshalParams(data []byte) (*Params, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: params too short", ErrEncoding)
	}
	n := binary.BigEndian.Uint32(data[:4])
	if uint32(len(data)) != 4+n+bn254.G2Size {
		return nil, fmt.Errorf("%w: params length mismatch", ErrEncoding)
	}
	name := string(data[4 : 4+n])
	var pk bn254.G2
	if err := pk.Unmarshal(data[4+n:]); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEncoding, err)
	}
	return &Params{Name: name, PK: &pk, pre: newParamsPre()}, nil
}
