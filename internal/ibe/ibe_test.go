package ibe

import (
	"bytes"
	"testing"

	"typepre/internal/bn254"
)

func setupKGC(t *testing.T) *KGC {
	t.Helper()
	kgc, err := Setup("test-kgc", nil)
	if err != nil {
		t.Fatal(err)
	}
	return kgc
}

func randomGT(t *testing.T) *bn254.GT {
	t.Helper()
	m, _, err := bn254.RandomGT(nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEncryptDecrypt(t *testing.T) {
	kgc := setupKGC(t)
	sk := kgc.Extract("alice@example.com")
	m := randomGT(t)

	ct, err := Encrypt(kgc.Params(), "alice@example.com", m, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(sk, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("Decrypt(Encrypt(m)) != m")
	}
}

func TestWrongIdentityCannotDecrypt(t *testing.T) {
	kgc := setupKGC(t)
	skBob := kgc.Extract("bob@example.com")
	m := randomGT(t)

	ct, err := Encrypt(kgc.Params(), "alice@example.com", m, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(skBob, ct)
	if err != nil {
		t.Fatal(err)
	}
	if got.Equal(m) {
		t.Fatal("wrong identity decrypted the message")
	}
}

func TestWrongKGCCannotDecrypt(t *testing.T) {
	kgc1 := setupKGC(t)
	kgc2, err := Setup("other-kgc", nil)
	if err != nil {
		t.Fatal(err)
	}
	skOther := kgc2.Extract("alice@example.com") // same id, other master key
	m := randomGT(t)

	ct, err := Encrypt(kgc1.Params(), "alice@example.com", m, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(skOther, ct)
	if err != nil {
		t.Fatal(err)
	}
	if got.Equal(m) {
		t.Fatal("key from a different KGC decrypted the message")
	}
}

func TestCiphertextsRandomized(t *testing.T) {
	kgc := setupKGC(t)
	m := randomGT(t)
	ct1, err := Encrypt(kgc.Params(), "alice@example.com", m, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := Encrypt(kgc.Params(), "alice@example.com", m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct1.Marshal(), ct2.Marshal()) {
		t.Fatal("two encryptions of the same message are identical")
	}
}

func TestExtractDeterministic(t *testing.T) {
	kgc := setupKGC(t)
	sk1 := kgc.Extract("alice@example.com")
	sk2 := kgc.Extract("alice@example.com")
	if !sk1.SK.Equal(sk2.SK) {
		t.Fatal("Extract not deterministic")
	}
	sk3 := kgc.Extract("bob@example.com")
	if sk1.SK.Equal(sk3.SK) {
		t.Fatal("distinct identities share a private key")
	}
}

func TestPrivateKeyConsistency(t *testing.T) {
	// ê(sk_id, g₂) == ê(H1(id), pk): the key really is H1(id)^α.
	kgc := setupKGC(t)
	sk := kgc.Extract("alice@example.com")
	lhs := bn254.Pair(sk.SK, bn254.G2Generator())
	rhs := bn254.Pair(PublicKeyOf("alice@example.com"), kgc.Params().PK)
	if !lhs.Equal(rhs) {
		t.Fatal("extracted key inconsistent with public parameters")
	}
}

func TestEncryptDecryptBytes(t *testing.T) {
	kgc := setupKGC(t)
	sk := kgc.Extract("alice@example.com")
	msg := []byte("patient record: blood pressure 120/80, pulse 67")

	ct, err := EncryptBytes(kgc.Params(), "alice@example.com", msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecryptBytes(sk, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("byte round trip failed")
	}
	// Wrong identity sees noise.
	skBob := kgc.Extract("bob@example.com")
	wrong, err := DecryptBytes(skBob, ct)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(wrong, msg) {
		t.Fatal("wrong identity recovered the bytes")
	}
}

func TestEncryptBytesEmptyMessage(t *testing.T) {
	kgc := setupKGC(t)
	sk := kgc.Extract("alice@example.com")
	ct, err := EncryptBytes(kgc.Params(), "alice@example.com", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecryptBytes(sk, ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("empty message round trip failed")
	}
}

func TestCiphertextMarshalRoundTrip(t *testing.T) {
	kgc := setupKGC(t)
	m := randomGT(t)
	ct, err := Encrypt(kgc.Params(), "alice@example.com", m, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCiphertext(ct.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Marshal(), ct.Marshal()) {
		t.Fatal("ciphertext round trip mismatch")
	}
	if _, err := UnmarshalCiphertext(ct.Marshal()[:40]); err == nil {
		t.Fatal("accepted truncated ciphertext")
	}
}

func TestByteCiphertextMarshalRoundTrip(t *testing.T) {
	kgc := setupKGC(t)
	sk := kgc.Extract("alice@example.com")
	msg := []byte("hello world")
	ct, err := EncryptBytes(kgc.Params(), "alice@example.com", msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalByteCiphertext(ct.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecryptBytes(sk, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, msg) {
		t.Fatal("byte ciphertext round trip failed")
	}
	if _, err := UnmarshalByteCiphertext([]byte{1, 2, 3}); err == nil {
		t.Fatal("accepted truncated byte ciphertext")
	}
	bad := ct.Marshal()
	bad = bad[:len(bad)-1] // body shorter than the declared length
	if _, err := UnmarshalByteCiphertext(bad); err == nil {
		t.Fatal("accepted length mismatch")
	}
}

func TestPrivateKeyMarshalRoundTrip(t *testing.T) {
	kgc := setupKGC(t)
	sk := kgc.Extract("alice@example.com")
	got, err := UnmarshalPrivateKey(sk.Marshal(), kgc.Params())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != sk.ID || !got.SK.Equal(sk.SK) {
		t.Fatal("private key round trip mismatch")
	}
	if _, err := UnmarshalPrivateKey([]byte{0, 0}, kgc.Params()); err == nil {
		t.Fatal("accepted truncated key")
	}
}

func TestParamsMarshalRoundTrip(t *testing.T) {
	kgc := setupKGC(t)
	p := kgc.Params()
	got, err := UnmarshalParams(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || !got.PK.Equal(p.PK) {
		t.Fatal("params round trip mismatch")
	}
	if _, err := UnmarshalParams([]byte{9}); err == nil {
		t.Fatal("accepted truncated params")
	}
}

func TestDecryptNilInputs(t *testing.T) {
	kgc := setupKGC(t)
	sk := kgc.Extract("alice@example.com")
	if _, err := Decrypt(nil, &Ciphertext{}); err == nil {
		t.Fatal("nil key accepted")
	}
	if _, err := Decrypt(sk, nil); err == nil {
		t.Fatal("nil ciphertext accepted")
	}
	if _, err := DecryptBytes(sk, nil); err == nil {
		t.Fatal("nil byte ciphertext accepted")
	}
}

func TestRestoreKGCReproducesKeys(t *testing.T) {
	kgc := setupKGC(t)
	restored, err := RestoreKGC(kgc.MarshalMaster())
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Params().PK.Equal(kgc.Params().PK) {
		t.Fatal("restored KGC has a different public key")
	}
	if restored.Params().Name != kgc.Params().Name {
		t.Fatal("restored KGC lost its name")
	}
	a := kgc.Extract("alice@example.com")
	b := restored.Extract("alice@example.com")
	if !a.SK.Equal(b.SK) {
		t.Fatal("restored KGC extracts different keys")
	}
	// A key from the original decrypts a ciphertext made with restored
	// params and vice versa.
	m := randomGT(t)
	ct, err := Encrypt(restored.Params(), "alice@example.com", m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := Decrypt(a, ct); !got.Equal(m) {
		t.Fatal("cross-restore decryption failed")
	}
}

func TestRestoreKGCRejectsInvalid(t *testing.T) {
	if _, err := RestoreKGC([]byte{1, 2}); err == nil {
		t.Fatal("accepted truncated master")
	}
	kgc := setupKGC(t)
	data := kgc.MarshalMaster()
	// Zero exponent.
	zeroed := append([]byte{}, data...)
	for i := len(zeroed) - 32; i < len(zeroed); i++ {
		zeroed[i] = 0
	}
	if _, err := RestoreKGC(zeroed); err == nil {
		t.Fatal("accepted zero master exponent")
	}
	// Length mismatch.
	if _, err := RestoreKGC(append(data, 0x00)); err == nil {
		t.Fatal("accepted oversized master blob")
	}
}

func TestParamsIsolationBetweenKGCs(t *testing.T) {
	// Two KGCs with the same name are still cryptographically unrelated.
	kgc1 := setupKGC(t)
	kgc2, err := Setup("test-kgc", nil)
	if err != nil {
		t.Fatal(err)
	}
	if kgc1.Params().PK.Equal(kgc2.Params().PK) {
		t.Fatal("two Setups produced the same master key")
	}
}
