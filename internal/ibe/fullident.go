package ibe

import (
	"crypto/rand"
	"fmt"
	"io"

	"typepre/internal/bn254"
)

// FullIdent: the chosen-ciphertext-secure variant of Boneh–Franklin via
// the Fujisaki–Okamoto transform, exactly as in the original paper
// (§4.2 there). The paper reproduced here uses only the CPA "BasicIdent"
// form and names CCA security as future work (§6); this file provides the
// CCA-secure base layer that future-work construction would start from.
//
//	Encrypt:  σ ←R {0,1}^256, r = H3(σ‖m)
//	          c = (g₂^r, σ ⊕ H2(ê(H1(id), pk)^r), m ⊕ H4(σ))
//	Decrypt:  σ = c2 ⊕ H2(ê(sk, c1)), m = c3 ⊕ H4(σ), r = H3(σ‖m);
//	          reject unless c1 == g₂^r
//
// The re-encryption check (recomputing c1 from the recovered randomness)
// is what defeats chosen-ciphertext mauling.

const sigmaSize = 32

// Hash domains of the FO transform.
const (
	domainFOSigma = "typepre/ibe/fo/sigma-mask/v1" // H2 role
	domainFOR     = "typepre/ibe/fo/r/v1"          // H3 role
	domainFOMsg   = "typepre/ibe/fo/msg-mask/v1"   // H4 role
)

// CCACiphertext is a FullIdent ciphertext.
type CCACiphertext struct {
	C1 *bn254.G2
	C2 []byte // σ ⊕ H2(pairing value), 32 bytes
	C3 []byte // m ⊕ H4(σ)
}

// h4Mask expands σ into a len-byte mask.
func h4Mask(sigma []byte, n int) []byte {
	out := make([]byte, 0, n)
	ctr := uint32(0)
	for len(out) < n {
		h := bn254.HashToZr(fmt.Sprintf("%s/%d", domainFOMsg, ctr), sigma)
		out = append(out, h.Bytes()...)
		ctr++
	}
	return out[:n]
}

// EncryptCCA encrypts m to id with chosen-ciphertext security.
func EncryptCCA(params *Params, id string, m []byte, rng io.Reader) (*CCACiphertext, error) {
	if rng == nil {
		rng = rand.Reader
	}
	sigma := make([]byte, sigmaSize)
	if _, err := io.ReadFull(rng, sigma); err != nil {
		return nil, fmt.Errorf("ibe: encrypt cca: %w", err)
	}
	r := bn254.HashToZr(domainFOR, append(append([]byte{}, sigma...), m...))

	var c1 bn254.G2
	c1.ScalarBaseMult(r)

	shared := params.EncryptionMask(id)
	var sharedR bn254.GT
	sharedR.Exp(shared, r)
	pad := bn254.KDF(domainFOSigma, &sharedR, sigmaSize)
	c2 := make([]byte, sigmaSize)
	for i := range sigma {
		c2[i] = sigma[i] ^ pad[i]
	}

	mask := h4Mask(sigma, len(m))
	c3 := make([]byte, len(m))
	for i := range m {
		c3[i] = m[i] ^ mask[i]
	}
	return &CCACiphertext{C1: &c1, C2: c2, C3: c3}, nil
}

// DecryptCCA decrypts and VERIFIES a FullIdent ciphertext. Any mauling of
// any component yields ErrDecrypt.
func DecryptCCA(sk *PrivateKey, ct *CCACiphertext) ([]byte, error) {
	if sk == nil || sk.SK == nil || ct == nil || ct.C1 == nil || len(ct.C2) != sigmaSize {
		return nil, ErrDecrypt
	}
	sharedR := bn254.Pair(sk.SK, ct.C1)
	pad := bn254.KDF(domainFOSigma, sharedR, sigmaSize)
	sigma := make([]byte, sigmaSize)
	for i := range sigma {
		sigma[i] = ct.C2[i] ^ pad[i]
	}
	mask := h4Mask(sigma, len(ct.C3))
	m := make([]byte, len(ct.C3))
	for i := range m {
		m[i] = ct.C3[i] ^ mask[i]
	}
	// FO check: re-derive r and re-compute c1.
	r := bn254.HashToZr(domainFOR, append(append([]byte{}, sigma...), m...))
	var c1Check bn254.G2
	c1Check.ScalarBaseMult(r)
	if !c1Check.Equal(ct.C1) {
		return nil, ErrDecrypt
	}
	return m, nil
}

// Marshal encodes the CCA ciphertext as C1‖C2‖len(C3)‖C3.
func (c *CCACiphertext) Marshal() []byte {
	out := make([]byte, 0, bn254.G2Size+sigmaSize+4+len(c.C3))
	out = append(out, c.C1.Marshal()...)
	out = append(out, c.C2...)
	out = append(out, byte(len(c.C3)>>24), byte(len(c.C3)>>16), byte(len(c.C3)>>8), byte(len(c.C3)))
	return append(out, c.C3...)
}

// UnmarshalCCACiphertext decodes a CCA ciphertext.
func UnmarshalCCACiphertext(data []byte) (*CCACiphertext, error) {
	if len(data) < bn254.G2Size+sigmaSize+4 {
		return nil, fmt.Errorf("%w: cca ciphertext too short", ErrEncoding)
	}
	var c1 bn254.G2
	if err := c1.Unmarshal(data[:bn254.G2Size]); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEncoding, err)
	}
	data = data[bn254.G2Size:]
	c2 := make([]byte, sigmaSize)
	copy(c2, data[:sigmaSize])
	data = data[sigmaSize:]
	n := int(data[0])<<24 | int(data[1])<<16 | int(data[2])<<8 | int(data[3])
	body := data[4:]
	if len(body) != n {
		return nil, fmt.Errorf("%w: cca body length mismatch", ErrEncoding)
	}
	c3 := make([]byte, n)
	copy(c3, body)
	return &CCACiphertext{C1: &c1, C2: c2, C3: c3}, nil
}
