package ibe

import (
	"bytes"
	"math/big"
	"testing"

	"typepre/internal/bn254"
)

func TestCCAEncryptDecrypt(t *testing.T) {
	kgc := setupKGC(t)
	sk := kgc.Extract("alice@example.com")
	msg := []byte("chosen-ciphertext-secure message")

	ct, err := EncryptCCA(kgc.Params(), "alice@example.com", msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecryptCCA(sk, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("CCA round trip failed")
	}
}

func TestCCAWrongIdentityRejected(t *testing.T) {
	kgc := setupKGC(t)
	skBob := kgc.Extract("bob@example.com")
	ct, err := EncryptCCA(kgc.Params(), "alice@example.com", []byte("secret"), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Unlike the CPA variant (which returns garbage), FullIdent REJECTS:
	// the FO check fails because σ decrypts wrong.
	if _, err := DecryptCCA(skBob, ct); err == nil {
		t.Fatal("wrong identity passed the FO check")
	}
}

func TestCCAMaulingRejected(t *testing.T) {
	kgc := setupKGC(t)
	sk := kgc.Extract("alice@example.com")
	msg := []byte("integrity matters")
	ct, err := EncryptCCA(kgc.Params(), "alice@example.com", msg, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Maul C3 (the message mask) — the classic CPA-scheme attack that
	// flips plaintext bits. FullIdent must reject.
	mauled := &CCACiphertext{C1: ct.C1, C2: ct.C2, C3: append([]byte{}, ct.C3...)}
	mauled.C3[0] ^= 0x01
	if _, err := DecryptCCA(sk, mauled); err == nil {
		t.Fatal("mauled C3 accepted")
	}
	// Maul C2 (the σ mask).
	mauled2 := &CCACiphertext{C1: ct.C1, C2: append([]byte{}, ct.C2...), C3: ct.C3}
	mauled2.C2[0] ^= 0x01
	if _, err := DecryptCCA(sk, mauled2); err == nil {
		t.Fatal("mauled C2 accepted")
	}
	// Replace C1 with a random group element.
	k, _ := bn254RandomScalarForTest(t)
	mauled3 := &CCACiphertext{C1: ct.C1, C2: ct.C2, C3: ct.C3}
	var c1 bn254G2
	c1.ScalarBaseMult(k)
	mauled3.C1 = &c1
	if _, err := DecryptCCA(sk, mauled3); err == nil {
		t.Fatal("replaced C1 accepted")
	}
}

func TestCCAContrastWithCPA(t *testing.T) {
	// The same mauling against the CPA variant flips plaintext bits
	// silently — demonstrating exactly what the FO transform buys.
	kgc := setupKGC(t)
	sk := kgc.Extract("alice@example.com")
	msg := []byte("bit-flippable")
	ct, err := EncryptBytes(kgc.Params(), "alice@example.com", msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct.C2[0] ^= 0x01
	got, err := DecryptBytes(sk, ct)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte{}, msg...)
	want[0] ^= 0x01
	if !bytes.Equal(got, want) {
		t.Fatal("CPA variant did not exhibit malleability (unexpected)")
	}
}

func TestCCAEmptyMessage(t *testing.T) {
	kgc := setupKGC(t)
	sk := kgc.Extract("alice@example.com")
	ct, err := EncryptCCA(kgc.Params(), "alice@example.com", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecryptCCA(sk, ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("empty message round trip failed")
	}
}

func TestCCAMarshalRoundTrip(t *testing.T) {
	kgc := setupKGC(t)
	sk := kgc.Extract("alice@example.com")
	msg := []byte("serialize me")
	ct, err := EncryptCCA(kgc.Params(), "alice@example.com", msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCCACiphertext(ct.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecryptCCA(sk, got)
	if err != nil || !bytes.Equal(dec, msg) {
		t.Fatalf("round-tripped CCA ciphertext broken: %v", err)
	}
	if _, err := UnmarshalCCACiphertext(ct.Marshal()[:50]); err == nil {
		t.Fatal("accepted truncated CCA ciphertext")
	}
	bad := ct.Marshal()
	bad = bad[:len(bad)-1]
	if _, err := UnmarshalCCACiphertext(bad); err == nil {
		t.Fatal("accepted length mismatch")
	}
}

func TestCCANilInputs(t *testing.T) {
	kgc := setupKGC(t)
	sk := kgc.Extract("alice@example.com")
	if _, err := DecryptCCA(nil, &CCACiphertext{}); err == nil {
		t.Fatal("nil key accepted")
	}
	if _, err := DecryptCCA(sk, nil); err == nil {
		t.Fatal("nil ciphertext accepted")
	}
}

// Test helpers bridging to the bn254 package without extra imports above.

func bn254RandomScalarForTest(t *testing.T) (*big.Int, error) {
	t.Helper()
	return bn254.RandomScalar(nil)
}

type bn254G2 = bn254.G2
