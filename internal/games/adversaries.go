package games

import (
	"errors"
	"io"

	"typepre/internal/bn254"
	"typepre/internal/core"
	"typepre/internal/ibe"
)

// This file contains reference adversaries used by the test suite to
// validate the challengers. They are calibration instruments, not attacks:
// a sound game must (1) give a guessing adversary no advantage, (2) give an
// adversary with illegitimately obtained key material full advantage, and
// (3) reject adversaries that violate the admissibility constraints.

// GuessingAdversary plays honestly and guesses at random: expected
// advantage 0.
type GuessingAdversary struct {
	rng io.Reader
}

// NewGuessingAdversary returns a fresh guessing adversary.
func NewGuessingAdversary(rng io.Reader) *GuessingAdversary {
	return &GuessingAdversary{rng: rng}
}

// Phase1 picks two random messages and a fresh identity.
func (a *GuessingAdversary) Phase1(c *DRChallenger) (*bn254.GT, *bn254.GT, core.Type, string, error) {
	m0, _, err := bn254.RandomGT(a.rng)
	if err != nil {
		return nil, nil, "", "", err
	}
	m1, _, err := bn254.RandomGT(a.rng)
	if err != nil {
		return nil, nil, "", "", err
	}
	return m0, m1, "challenge-type", "target@example.com", nil
}

// Phase2 flips a coin.
func (a *GuessingAdversary) Phase2(c *DRChallenger, ct *core.Ciphertext) (int, error) {
	return RandomBit(a.rng)
}

// SideQueryAdversary exercises every oracle on NON-challenge identities
// and types before guessing randomly. Legitimate queries must not trip the
// constraints, and must not help: expected advantage 0.
type SideQueryAdversary struct {
	rng io.Reader
	m0  *bn254.GT
	m1  *bn254.GT
}

// NewSideQueryAdversary returns a fresh side-query adversary.
func NewSideQueryAdversary(rng io.Reader) *SideQueryAdversary {
	return &SideQueryAdversary{rng: rng}
}

// Phase1 runs one of each oracle query on unrelated principals.
func (a *SideQueryAdversary) Phase1(c *DRChallenger) (*bn254.GT, *bn254.GT, core.Type, string, error) {
	if _, err := c.Extract1("bystander1@example.com"); err != nil {
		return nil, nil, "", "", err
	}
	if _, err := c.Extract2("bystander2@example.com"); err != nil {
		return nil, nil, "", "", err
	}
	// Proxy key from the future challenge identity for a DIFFERENT type:
	// explicitly allowed and must not help.
	if _, err := c.Pextract("target@example.com", "bystander2@example.com", "other-type"); err != nil {
		return nil, nil, "", "", err
	}
	m, _, err := bn254.RandomGT(a.rng)
	if err != nil {
		return nil, nil, "", "", err
	}
	if _, err := c.Preenc(m, "third-type", "target@example.com", "bystander3@example.com"); err != nil {
		return nil, nil, "", "", err
	}

	a.m0, _, err = bn254.RandomGT(a.rng)
	if err != nil {
		return nil, nil, "", "", err
	}
	a.m1, _, err = bn254.RandomGT(a.rng)
	if err != nil {
		return nil, nil, "", "", err
	}
	return a.m0, a.m1, "challenge-type", "target@example.com", nil
}

// Phase2 keeps querying on unrelated principals, then guesses randomly.
func (a *SideQueryAdversary) Phase2(c *DRChallenger, ct *core.Ciphertext) (int, error) {
	if _, err := c.Extract1("bystander4@example.com"); err != nil {
		return 0, err
	}
	return RandomBit(a.rng)
}

// KeyThiefAdversary receives the challenge identity's private key out of
// band (modeling a fully broken scheme or a stolen key) and therefore wins
// every game. It validates that the challenger's win accounting works.
type KeyThiefAdversary struct {
	rng    io.Reader
	stolen *ibe.PrivateKey
	m0, m1 *bn254.GT
}

// NewKeyThiefAdversary returns an adversary that will be handed the target
// key by the test harness via StealKey.
func NewKeyThiefAdversary(rng io.Reader) *KeyThiefAdversary {
	return &KeyThiefAdversary{rng: rng}
}

// StealKey hands the adversary the challenge identity's private key.
func (a *KeyThiefAdversary) StealKey(k *ibe.PrivateKey) { a.stolen = k }

// Phase1 picks the challenge tuple.
func (a *KeyThiefAdversary) Phase1(c *DRChallenger) (*bn254.GT, *bn254.GT, core.Type, string, error) {
	var err error
	a.m0, _, err = bn254.RandomGT(a.rng)
	if err != nil {
		return nil, nil, "", "", err
	}
	a.m1, _, err = bn254.RandomGT(a.rng)
	if err != nil {
		return nil, nil, "", "", err
	}
	return a.m0, a.m1, "challenge-type", "target@example.com", nil
}

// Phase2 decrypts the challenge with the stolen key and answers exactly.
func (a *KeyThiefAdversary) Phase2(c *DRChallenger, ct *core.Ciphertext) (int, error) {
	if a.stolen == nil {
		return 0, errors.New("games: key thief has no key")
	}
	d := core.NewDelegator(a.stolen)
	m, err := d.Decrypt(ct)
	if err != nil {
		return 0, err
	}
	if m.Equal(a.m0) {
		return 0, nil
	}
	return 1, nil
}

// CheatingExtractAdversary extracts the challenge identity in Phase 1 —
// the challenger must reject the challenge (constraint (a)).
type CheatingExtractAdversary struct {
	rng io.Reader
}

// NewCheatingExtractAdversary returns the constraint-(a) violator.
func NewCheatingExtractAdversary(rng io.Reader) *CheatingExtractAdversary {
	return &CheatingExtractAdversary{rng: rng}
}

// Phase1 extracts the identity it will then name as the challenge.
func (a *CheatingExtractAdversary) Phase1(c *DRChallenger) (*bn254.GT, *bn254.GT, core.Type, string, error) {
	if _, err := c.Extract1("target@example.com"); err != nil {
		return nil, nil, "", "", err
	}
	m0, _, err := bn254.RandomGT(a.rng)
	if err != nil {
		return nil, nil, "", "", err
	}
	m1, _, err := bn254.RandomGT(a.rng)
	if err != nil {
		return nil, nil, "", "", err
	}
	return m0, m1, "t", "target@example.com", nil
}

// Phase2 is unreachable when the challenger enforces constraint (a).
func (a *CheatingExtractAdversary) Phase2(c *DRChallenger, ct *core.Ciphertext) (int, error) {
	return 0, nil
}

// CollusionPairAdversary extracts the delegatee key AND requests the proxy
// key for the challenge pair (constraint (b) violation): the challenger
// must refuse one of the two queries or the challenge.
type CollusionPairAdversary struct {
	rng io.Reader
}

// NewCollusionPairAdversary returns the constraint-(b) violator.
func NewCollusionPairAdversary(rng io.Reader) *CollusionPairAdversary {
	return &CollusionPairAdversary{rng: rng}
}

// Phase1 sets up the forbidden combination.
func (a *CollusionPairAdversary) Phase1(c *DRChallenger) (*bn254.GT, *bn254.GT, core.Type, string, error) {
	if _, err := c.Extract2("accomplice@example.com"); err != nil {
		return nil, nil, "", "", err
	}
	if _, err := c.Pextract("target@example.com", "accomplice@example.com", "t"); err != nil {
		return nil, nil, "", "", err
	}
	m0, _, err := bn254.RandomGT(a.rng)
	if err != nil {
		return nil, nil, "", "", err
	}
	m1, _, err := bn254.RandomGT(a.rng)
	if err != nil {
		return nil, nil, "", "", err
	}
	return m0, m1, "t", "target@example.com", nil
}

// Phase2 would decrypt via the collusion, but the challenge is refused.
func (a *CollusionPairAdversary) Phase2(c *DRChallenger, ct *core.Ciphertext) (int, error) {
	return 0, nil
}

// OtherTypeColluderAdversary holds a full collusion (delegatee key + proxy
// key) for a DIFFERENT type than the challenge. This is admissible — and
// by Theorem 1 it must not help: expected advantage 0. This adversary is
// the empirical content of the paper's fine-grainedness claim.
type OtherTypeColluderAdversary struct {
	rng      io.Reader
	m0, m1   *bn254.GT
	typeKey  *core.TypeKey
	otherKey *core.TypeKey
}

// NewOtherTypeColluderAdversary returns the admissible colluder.
func NewOtherTypeColluderAdversary(rng io.Reader) *OtherTypeColluderAdversary {
	return &OtherTypeColluderAdversary{rng: rng}
}

// Phase1 assembles the other-type collusion.
func (a *OtherTypeColluderAdversary) Phase1(c *DRChallenger) (*bn254.GT, *bn254.GT, core.Type, string, error) {
	delegateeKey, err := c.Extract2("accomplice@example.com")
	if err != nil {
		return nil, nil, "", "", err
	}
	rk, err := c.Pextract("target@example.com", "accomplice@example.com", "other-type")
	if err != nil {
		return nil, nil, "", "", err
	}
	a.typeKey, err = core.RecoverTypeKey(rk, delegateeKey)
	if err != nil {
		return nil, nil, "", "", err
	}
	a.m0, _, err = bn254.RandomGT(a.rng)
	if err != nil {
		return nil, nil, "", "", err
	}
	a.m1, _, err = bn254.RandomGT(a.rng)
	if err != nil {
		return nil, nil, "", "", err
	}
	return a.m0, a.m1, "challenge-type", "target@example.com", nil
}

// Phase2 tries the other-type key on the challenge; because the type
// exponents differ, the "decryption" is noise and carries no information
// about b. The adversary still plays the best strategy available to it:
// if the noise happens to equal m0 or m1 it answers accordingly, else
// it guesses.
func (a *OtherTypeColluderAdversary) Phase2(c *DRChallenger, ct *core.Ciphertext) (int, error) {
	forged := *ct
	forged.Type = "other-type" // try to make the key "fit"
	m, err := core.DecryptWithTypeKey(a.typeKey, &forged)
	if err == nil {
		if m.Equal(a.m0) {
			return 0, nil
		}
		if m.Equal(a.m1) {
			return 1, nil
		}
	}
	m2, err := core.DecryptWithTypeKey(a.typeKey, ct)
	if err == nil {
		if m2.Equal(a.m0) {
			return 0, nil
		}
		if m2.Equal(a.m1) {
			return 1, nil
		}
	}
	return RandomBit(a.rng)
}

// Compile-time interface checks.
var (
	_ DRCPAAdversary = (*GuessingAdversary)(nil)
	_ DRCPAAdversary = (*SideQueryAdversary)(nil)
	_ DRCPAAdversary = (*KeyThiefAdversary)(nil)
	_ DRCPAAdversary = (*CheatingExtractAdversary)(nil)
	_ DRCPAAdversary = (*CollusionPairAdversary)(nil)
	_ DRCPAAdversary = (*OtherTypeColluderAdversary)(nil)
)
