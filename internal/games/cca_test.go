package games

import (
	"bytes"
	"errors"
	"testing"

	"typepre/internal/ibe"
)

func TestCCAGameDecryptOracleWorks(t *testing.T) {
	c, err := NewCCAChallenger(nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("oracle me")
	ct, err := ibe.EncryptCCA(c.Params(), "someone@x", msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decrypt(ct, "someone@x")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("oracle returned wrong plaintext")
	}
	if c.DecryptCalls() != 1 {
		t.Fatal("oracle accounting wrong")
	}
}

func TestCCAGameChallengeDecryptExcluded(t *testing.T) {
	c, err := NewCCAChallenger(nil)
	if err != nil {
		t.Fatal(err)
	}
	m0 := []byte("message zero")
	m1 := []byte("message one!")
	ct, err := c.Challenge(m0, m1, "victim@x")
	if err != nil {
		t.Fatal(err)
	}
	// The trivial attack — ask the oracle for the challenge — must trip.
	if _, err := c.Decrypt(ct, "victim@x"); !errors.Is(err, ErrConstraintViolated) {
		t.Fatalf("want ErrConstraintViolated, got %v", err)
	}
	// But decrypting OTHER ciphertexts for the challenge identity is
	// explicitly allowed in CCA2 — and FullIdent's FO check makes mauled
	// variants of the challenge useless (they just fail).
	mauled := &ibe.CCACiphertext{C1: ct.C1, C2: append([]byte{}, ct.C2...), C3: ct.C3}
	mauled.C2[0] ^= 1
	if _, err := c.Decrypt(mauled, "victim@x"); err == nil {
		t.Fatal("mauled challenge decrypted — FO transform broken")
	} else if errors.Is(err, ErrConstraintViolated) {
		t.Fatal("mauled (≠ challenge) ciphertext wrongly excluded")
	}
	// Fresh legitimate ciphertexts for the challenge identity still work.
	other, _ := ibe.EncryptCCA(c.Params(), "victim@x", []byte("fresh"), nil)
	if got, err := c.Decrypt(other, "victim@x"); err != nil || !bytes.Equal(got, []byte("fresh")) {
		t.Fatalf("legitimate post-challenge oracle query failed: %v", err)
	}
}

func TestCCAGameUnequalLengthsRejected(t *testing.T) {
	c, _ := NewCCAChallenger(nil)
	if _, err := c.Challenge([]byte("short"), []byte("longer message"), "v@x"); !errors.Is(err, ErrProtocol) {
		t.Fatalf("want ErrProtocol, got %v", err)
	}
}

func TestCCAGameGuessingNoAdvantage(t *testing.T) {
	wins := 0
	for i := 0; i < gameRuns; i++ {
		c, err := NewCCAChallenger(nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Challenge([]byte("aaaa"), []byte("bbbb"), "victim@x"); err != nil {
			t.Fatal(err)
		}
		g, _ := RandomBit(nil)
		won, err := c.Finish(g)
		if err != nil {
			t.Fatal(err)
		}
		if won {
			wins++
		}
	}
	if adv := abs(float64(wins)/float64(gameRuns) - 0.5); adv > advantageBound {
		t.Fatalf("CCA guessing advantage %.3f", adv)
	}
}

func TestCCAGameExtractConstraints(t *testing.T) {
	c, _ := NewCCAChallenger(nil)
	if _, err := c.Extract("victim@x"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Challenge([]byte("a"), []byte("b"), "victim@x"); !errors.Is(err, ErrConstraintViolated) {
		t.Fatalf("want ErrConstraintViolated, got %v", err)
	}
	c2, _ := NewCCAChallenger(nil)
	if _, err := c2.Challenge([]byte("a"), []byte("b"), "victim@x"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Extract("victim@x"); !errors.Is(err, ErrConstraintViolated) {
		t.Fatalf("want ErrConstraintViolated, got %v", err)
	}
	if _, err := c2.Finish(0); err != nil {
		t.Fatal(err)
	}
}

func TestCCAGameBackdoorKeyWins(t *testing.T) {
	c, err := NewCCAChallenger(nil)
	if err != nil {
		t.Fatal(err)
	}
	sk := c.kgc.Extract("victim@x") // back door
	m0 := []byte("zero")
	m1 := []byte("one!")
	ct, err := c.Challenge(m0, m1, "victim@x")
	if err != nil {
		t.Fatal(err)
	}
	m, err := ibe.DecryptCCA(sk, ct)
	if err != nil {
		t.Fatal(err)
	}
	guess := 1
	if bytes.Equal(m, m0) {
		guess = 0
	}
	won, err := c.Finish(guess)
	if err != nil {
		t.Fatal(err)
	}
	if !won {
		t.Fatal("omniscient adversary lost the CCA game")
	}
}
