// Package games implements the security experiments the paper defines:
//
//   - the IND-ID-CPA game for the underlying Boneh–Franklin IBE (§3.2),
//   - the one-wayness game for IBE (§3.2, Definition 6),
//   - the IND-ID-DR-CPA game for the type-and-identity PRE scheme (§4.2)
//     with its Extract1/Extract2/Pextract/Preenc† oracles and the three
//     Phase-1/Phase-2 constraints.
//
// The challengers simulate the protocol honestly and enforce the games'
// admissibility constraints, rejecting adversaries that violate them. They
// are executable security *definitions*: tests use them to check that (a)
// trivial adversaries have no advantage, (b) the constraints actually trip,
// and (c) an adversary given illegitimate key material wins — i.e. the game
// plumbing distinguishes broken schemes from intact ones.
package games

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"typepre/internal/bn254"
	"typepre/internal/core"
	"typepre/internal/ibe"
)

// Errors reported by the challengers.
var (
	// ErrConstraintViolated is returned when the adversary issues a query
	// forbidden by the game definition.
	ErrConstraintViolated = errors.New("games: admissibility constraint violated")
	// ErrProtocol is returned when the adversary misuses the API (e.g.
	// requests a challenge twice).
	ErrProtocol = errors.New("games: protocol misuse")
)

// coin flips one unbiased bit.
func coin(rng io.Reader) (int, error) {
	k, err := bn254.RandomScalar(rng)
	if err != nil {
		return 0, err
	}
	return int(k.Bit(0)), nil
}

// ---------------------------------------------------------------------------
// IND-ID-DR-CPA (§4.2)
// ---------------------------------------------------------------------------

// pextractKey identifies a Pextract query (id, id', t).
type pextractKey struct {
	delegator string
	delegatee string
	typ       core.Type
}

// DRChallenger runs the IND-ID-DR-CPA game. It owns both KGCs and answers
// the adversary's oracle queries, recording them for constraint checks.
type DRChallenger struct {
	kgc1, kgc2 *ibe.KGC
	rng        io.Reader

	extracted1 map[string]bool
	extracted2 map[string]bool
	pextracts  map[pextractKey]bool
	preencs    map[pextractKey]bool

	challenged  bool
	challengeID string
	challengeT  core.Type
	b           int
}

// NewDRChallenger sets up the game (both KGCs). rng may be nil.
func NewDRChallenger(rng io.Reader) (*DRChallenger, error) {
	kgc1, err := ibe.Setup("game-kgc1", rng)
	if err != nil {
		return nil, err
	}
	kgc2, err := ibe.Setup("game-kgc2", rng)
	if err != nil {
		return nil, err
	}
	return &DRChallenger{
		kgc1:       kgc1,
		kgc2:       kgc2,
		rng:        rng,
		extracted1: map[string]bool{},
		extracted2: map[string]bool{},
		pextracts:  map[pextractKey]bool{},
		preencs:    map[pextractKey]bool{},
	}, nil
}

// Params1 returns the public parameters of KGC1 (the delegator domain).
func (c *DRChallenger) Params1() *ibe.Params { return c.kgc1.Params() }

// Params2 returns the public parameters of KGC2 (the delegatee domain).
func (c *DRChallenger) Params2() *ibe.Params { return c.kgc2.Params() }

// Extract1 answers an Extract query against KGC1.
func (c *DRChallenger) Extract1(id string) (*ibe.PrivateKey, error) {
	if c.challenged && id == c.challengeID {
		return nil, fmt.Errorf("%w: Extract1 on the challenge identity", ErrConstraintViolated)
	}
	c.extracted1[id] = true
	return c.kgc1.Extract(id), nil
}

// Extract2 answers an Extract query against KGC2. Constraint (b): if a
// proxy key from the challenge identity and type toward id was issued, the
// key of id must stay hidden.
func (c *DRChallenger) Extract2(id string) (*ibe.PrivateKey, error) {
	if c.challenged {
		k := pextractKey{c.challengeID, id, c.challengeT}
		if c.pextracts[k] {
			return nil, fmt.Errorf("%w: Extract2 on a delegatee of the challenge (id,type)", ErrConstraintViolated)
		}
	}
	c.extracted2[id] = true
	return c.kgc2.Extract(id), nil
}

// Pextract answers a proxy-key query (id → id', t). Constraint (c) forbids
// it when the pair was already used in a Preenc† query; constraint (b)
// forbids, after the challenge, combining it with Extract2(id').
func (c *DRChallenger) Pextract(delegatorID, delegateeID string, t core.Type) (*core.ReKey, error) {
	k := pextractKey{delegatorID, delegateeID, t}
	if c.preencs[k] {
		return nil, fmt.Errorf("%w: Pextract after Preenc† on the same (id,id',t)", ErrConstraintViolated)
	}
	if c.challenged && delegatorID == c.challengeID && t == c.challengeT && c.extracted2[delegateeID] {
		return nil, fmt.Errorf("%w: Pextract toward an extracted delegatee for the challenge (id,type)", ErrConstraintViolated)
	}
	c.pextracts[k] = true
	d := core.NewDelegator(c.kgc1.Extract(delegatorID))
	return d.Delegate(c.kgc2.Params(), delegateeID, t, c.rng)
}

// Preenc answers a Preenc† query: encrypt m under (t, id) and re-encrypt it
// toward id' with a freshly issued (never revealed) proxy key. It reflects
// a curious delegatee's access to re-encryptions of known plaintexts.
func (c *DRChallenger) Preenc(m *bn254.GT, t core.Type, delegatorID, delegateeID string) (*core.ReCiphertext, error) {
	k := pextractKey{delegatorID, delegateeID, t}
	if c.pextracts[k] {
		return nil, fmt.Errorf("%w: Preenc† after Pextract on the same (id,id',t)", ErrConstraintViolated)
	}
	c.preencs[k] = true
	d := core.NewDelegator(c.kgc1.Extract(delegatorID))
	ct, err := d.Encrypt(m, t, c.rng)
	if err != nil {
		return nil, err
	}
	rk, err := d.Delegate(c.kgc2.Params(), delegateeID, t, c.rng)
	if err != nil {
		return nil, err
	}
	return core.ReEncrypt(ct, rk)
}

// Challenge validates the admissibility of (id*, t*) against the recorded
// Phase-1 queries, flips the bit b and returns Encrypt1(m_b, t*, id*).
func (c *DRChallenger) Challenge(m0, m1 *bn254.GT, t core.Type, id string) (*core.Ciphertext, error) {
	if c.challenged {
		return nil, fmt.Errorf("%w: second challenge", ErrProtocol)
	}
	if c.extracted1[id] {
		return nil, fmt.Errorf("%w: challenge identity was extracted", ErrConstraintViolated)
	}
	for k := range c.pextracts {
		if k.delegator == id && k.typ == t && c.extracted2[k.delegatee] {
			return nil, fmt.Errorf("%w: challenge (id,type) delegated to an extracted delegatee", ErrConstraintViolated)
		}
	}
	b, err := coin(c.rng)
	if err != nil {
		return nil, err
	}
	c.b = b
	c.challenged = true
	c.challengeID = id
	c.challengeT = t

	d := core.NewDelegator(c.kgc1.Extract(id))
	m := m0
	if b == 1 {
		m = m1
	}
	return d.Encrypt(m, t, c.rng)
}

// Finish accepts the adversary's guess and reports whether it won.
func (c *DRChallenger) Finish(guess int) (bool, error) {
	if !c.challenged {
		return false, fmt.Errorf("%w: guess before challenge", ErrProtocol)
	}
	return guess == c.b, nil
}

// DRCPAAdversary is the interface adversaries implement for the
// IND-ID-DR-CPA game.
type DRCPAAdversary interface {
	// Phase1 may query the challenger's oracles and must return the
	// challenge tuple (m0, m1, t*, id*).
	Phase1(c *DRChallenger) (m0, m1 *bn254.GT, t core.Type, id string, err error)
	// Phase2 receives the challenge, may query more oracles, and returns
	// the guess bit.
	Phase2(c *DRChallenger, challenge *core.Ciphertext) (int, error)
}

// RunDRCPA executes one IND-ID-DR-CPA game and reports whether the
// adversary won. Constraint violations surface as errors.
func RunDRCPA(adv DRCPAAdversary, rng io.Reader) (bool, error) {
	c, err := NewDRChallenger(rng)
	if err != nil {
		return false, err
	}
	m0, m1, t, id, err := adv.Phase1(c)
	if err != nil {
		return false, err
	}
	ct, err := c.Challenge(m0, m1, t, id)
	if err != nil {
		return false, err
	}
	guess, err := adv.Phase2(c, ct)
	if err != nil {
		return false, err
	}
	return c.Finish(guess)
}

// EstimateAdvantage runs the game n times and returns |wins/n − 1/2|, the
// empirical advantage of the adversary.
func EstimateAdvantage(adv func() DRCPAAdversary, n int, rng io.Reader) (float64, error) {
	wins := 0
	for i := 0; i < n; i++ {
		won, err := RunDRCPA(adv(), rng)
		if err != nil {
			return 0, err
		}
		if won {
			wins++
		}
	}
	return abs(float64(wins)/float64(n) - 0.5), nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ---------------------------------------------------------------------------
// IND-ID-CPA for the underlying IBE (§3.2)
// ---------------------------------------------------------------------------

// CPAChallenger runs the IND-ID-CPA game against the modified
// Boneh–Franklin scheme.
type CPAChallenger struct {
	kgc *ibe.KGC
	rng io.Reader

	extracted   map[string]bool
	challenged  bool
	challengeID string
	b           int
}

// NewCPAChallenger sets up the IBE game.
func NewCPAChallenger(rng io.Reader) (*CPAChallenger, error) {
	kgc, err := ibe.Setup("cpa-kgc", rng)
	if err != nil {
		return nil, err
	}
	return &CPAChallenger{kgc: kgc, rng: rng, extracted: map[string]bool{}}, nil
}

// Params returns the game's public parameters.
func (c *CPAChallenger) Params() *ibe.Params { return c.kgc.Params() }

// Extract answers an Extract query.
func (c *CPAChallenger) Extract(id string) (*ibe.PrivateKey, error) {
	if c.challenged && id == c.challengeID {
		return nil, fmt.Errorf("%w: Extract on the challenge identity", ErrConstraintViolated)
	}
	c.extracted[id] = true
	return c.kgc.Extract(id), nil
}

// Challenge flips b and encrypts m_b to id.
func (c *CPAChallenger) Challenge(m0, m1 *bn254.GT, id string) (*ibe.Ciphertext, error) {
	if c.challenged {
		return nil, fmt.Errorf("%w: second challenge", ErrProtocol)
	}
	if c.extracted[id] {
		return nil, fmt.Errorf("%w: challenge identity was extracted", ErrConstraintViolated)
	}
	b, err := coin(c.rng)
	if err != nil {
		return nil, err
	}
	c.b = b
	c.challenged = true
	c.challengeID = id
	m := m0
	if b == 1 {
		m = m1
	}
	return ibe.Encrypt(c.kgc.Params(), id, m, c.rng)
}

// Finish reports whether the guess was right.
func (c *CPAChallenger) Finish(guess int) (bool, error) {
	if !c.challenged {
		return false, fmt.Errorf("%w: guess before challenge", ErrProtocol)
	}
	return guess == c.b, nil
}

// ---------------------------------------------------------------------------
// One-wayness for the underlying IBE (§3.2, Definition 6)
// ---------------------------------------------------------------------------

// OWChallenger runs the one-wayness game: the adversary names an identity
// it has not extracted and must recover a random GT plaintext.
type OWChallenger struct {
	kgc *ibe.KGC
	rng io.Reader

	extracted   map[string]bool
	challenged  bool
	challengeID string
	m           *bn254.GT
}

// NewOWChallenger sets up the one-wayness game.
func NewOWChallenger(rng io.Reader) (*OWChallenger, error) {
	kgc, err := ibe.Setup("ow-kgc", rng)
	if err != nil {
		return nil, err
	}
	return &OWChallenger{kgc: kgc, rng: rng, extracted: map[string]bool{}}, nil
}

// Params returns the game's public parameters.
func (c *OWChallenger) Params() *ibe.Params { return c.kgc.Params() }

// Extract answers an Extract query.
func (c *OWChallenger) Extract(id string) (*ibe.PrivateKey, error) {
	if c.challenged && id == c.challengeID {
		return nil, fmt.Errorf("%w: Extract on the challenge identity", ErrConstraintViolated)
	}
	c.extracted[id] = true
	return c.kgc.Extract(id), nil
}

// Challenge encrypts a fresh random message to id.
func (c *OWChallenger) Challenge(id string) (*ibe.Ciphertext, error) {
	if c.challenged {
		return nil, fmt.Errorf("%w: second challenge", ErrProtocol)
	}
	if c.extracted[id] {
		return nil, fmt.Errorf("%w: challenge identity was extracted", ErrConstraintViolated)
	}
	m, _, err := bn254.RandomGT(c.rng)
	if err != nil {
		return nil, err
	}
	c.m = m
	c.challenged = true
	c.challengeID = id
	return ibe.Encrypt(c.kgc.Params(), id, m, c.rng)
}

// Finish reports whether the adversary recovered the exact plaintext.
func (c *OWChallenger) Finish(guess *bn254.GT) (bool, error) {
	if !c.challenged {
		return false, fmt.Errorf("%w: guess before challenge", ErrProtocol)
	}
	return guess != nil && guess.Equal(c.m), nil
}

// RandomBit returns an unbiased bit for adversaries that guess randomly.
func RandomBit(rng io.Reader) (int, error) { return coin(rng) }

// RandomExponent returns a random Z*_r exponent (helper for adversaries).
func RandomExponent(rng io.Reader) (*big.Int, error) { return bn254.RandomScalar(rng) }
