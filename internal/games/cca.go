package games

import (
	"bytes"
	"fmt"
	"io"

	"typepre/internal/ibe"
)

// CCAChallenger runs the IND-ID-CCA game of §3.2 (Definition 4) against
// the FullIdent variant of the base IBE: the adversary additionally gets a
// Decrypt oracle, restricted after the challenge by the standard
// (c*, id*) exclusion.
type CCAChallenger struct {
	kgc *ibe.KGC
	rng io.Reader

	extracted    map[string]bool
	challenged   bool
	challengeID  string
	challengeCT  []byte // marshaled challenge, for the exclusion check
	b            int
	decryptCalls int
}

// NewCCAChallenger sets up the game.
func NewCCAChallenger(rng io.Reader) (*CCAChallenger, error) {
	kgc, err := ibe.Setup("cca-kgc", rng)
	if err != nil {
		return nil, err
	}
	return &CCAChallenger{kgc: kgc, rng: rng, extracted: map[string]bool{}}, nil
}

// Params returns the game's public parameters.
func (c *CCAChallenger) Params() *ibe.Params { return c.kgc.Params() }

// Extract answers an Extract query under the usual constraint.
func (c *CCAChallenger) Extract(id string) (*ibe.PrivateKey, error) {
	if c.challenged && id == c.challengeID {
		return nil, fmt.Errorf("%w: Extract on the challenge identity", ErrConstraintViolated)
	}
	c.extracted[id] = true
	return c.kgc.Extract(id), nil
}

// Decrypt answers a decryption-oracle query for (ct, id). After the
// challenge, the pair (c*, id*) is excluded.
func (c *CCAChallenger) Decrypt(ct *ibe.CCACiphertext, id string) ([]byte, error) {
	if ct == nil {
		return nil, fmt.Errorf("%w: nil ciphertext", ErrProtocol)
	}
	if c.challenged && id == c.challengeID && bytes.Equal(ct.Marshal(), c.challengeCT) {
		return nil, fmt.Errorf("%w: Decrypt on the challenge ciphertext", ErrConstraintViolated)
	}
	c.decryptCalls++
	sk := c.kgc.Extract(id)
	return ibe.DecryptCCA(sk, ct)
}

// DecryptCalls reports how many oracle decryptions were served.
func (c *CCAChallenger) DecryptCalls() int { return c.decryptCalls }

// Challenge flips b and encrypts m_b to id with FullIdent.
func (c *CCAChallenger) Challenge(m0, m1 []byte, id string) (*ibe.CCACiphertext, error) {
	if c.challenged {
		return nil, fmt.Errorf("%w: second challenge", ErrProtocol)
	}
	if c.extracted[id] {
		return nil, fmt.Errorf("%w: challenge identity was extracted", ErrConstraintViolated)
	}
	if len(m0) != len(m1) {
		return nil, fmt.Errorf("%w: challenge messages must have equal length", ErrProtocol)
	}
	b, err := coin(c.rng)
	if err != nil {
		return nil, err
	}
	m := m0
	if b == 1 {
		m = m1
	}
	ct, err := ibe.EncryptCCA(c.kgc.Params(), id, m, c.rng)
	if err != nil {
		return nil, err
	}
	c.b = b
	c.challenged = true
	c.challengeID = id
	c.challengeCT = ct.Marshal()
	return ct, nil
}

// Finish reports whether the guess was right.
func (c *CCAChallenger) Finish(guess int) (bool, error) {
	if !c.challenged {
		return false, fmt.Errorf("%w: guess before challenge", ErrProtocol)
	}
	return guess == c.b, nil
}
