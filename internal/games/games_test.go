package games

import (
	"errors"
	"testing"

	"typepre/internal/bn254"
	"typepre/internal/core"
	"typepre/internal/ibe"
)

// decryptRe opens a re-encrypted ciphertext with the delegatee key.
func decryptRe(sk *ibe.PrivateKey, rct *core.ReCiphertext) (*bn254.GT, error) {
	return core.DecryptReEncrypted(sk, rct)
}

// advantageBound is a loose statistical bound for n=24 Bernoulli(1/2)
// trials: P(|wins/n − 1/2| ≥ 0.45) is astronomically small, so the tests
// only catch gross breakage (an adversary that wins or loses almost always)
// without being flaky.
const (
	gameRuns       = 24
	advantageBound = 0.45
)

func TestGuessingAdversaryHasNoAdvantage(t *testing.T) {
	adv, err := EstimateAdvantage(func() DRCPAAdversary {
		return NewGuessingAdversary(nil)
	}, gameRuns, nil)
	if err != nil {
		t.Fatal(err)
	}
	if adv > advantageBound {
		t.Fatalf("guessing adversary advantage %.3f exceeds bound", adv)
	}
}

func TestSideQueriesAreAdmissibleAndUseless(t *testing.T) {
	adv, err := EstimateAdvantage(func() DRCPAAdversary {
		return NewSideQueryAdversary(nil)
	}, gameRuns, nil)
	if err != nil {
		t.Fatal(err)
	}
	if adv > advantageBound {
		t.Fatalf("side-query adversary advantage %.3f exceeds bound", adv)
	}
}

func TestOtherTypeCollusionIsUseless(t *testing.T) {
	// The empirical core of Theorem 1: a full collusion on a different
	// type gives no advantage on the challenge type.
	adv, err := EstimateAdvantage(func() DRCPAAdversary {
		return NewOtherTypeColluderAdversary(nil)
	}, gameRuns, nil)
	if err != nil {
		t.Fatal(err)
	}
	if adv > advantageBound {
		t.Fatalf("other-type colluder advantage %.3f exceeds bound", adv)
	}
}

func TestKeyThiefAlwaysWins(t *testing.T) {
	// Sanity of the game plumbing: an adversary holding the target key
	// must win every run.
	for i := 0; i < 6; i++ {
		c, err := NewDRChallenger(nil)
		if err != nil {
			t.Fatal(err)
		}
		thief := NewKeyThiefAdversary(nil)
		// Steal the key through the back door (direct KGC access).
		thief.StealKey(c.kgc1.Extract("target@example.com"))

		m0, m1, typ, id, err := thief.Phase1(c)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := c.Challenge(m0, m1, typ, id)
		if err != nil {
			t.Fatal(err)
		}
		guess, err := thief.Phase2(c, ct)
		if err != nil {
			t.Fatal(err)
		}
		won, err := c.Finish(guess)
		if err != nil {
			t.Fatal(err)
		}
		if !won {
			t.Fatalf("run %d: key thief lost — game accounting broken", i)
		}
	}
}

func TestConstraintAExtractChallengeIdentityRejected(t *testing.T) {
	_, err := RunDRCPA(NewCheatingExtractAdversary(nil), nil)
	if !errors.Is(err, ErrConstraintViolated) {
		t.Fatalf("want ErrConstraintViolated, got %v", err)
	}
}

func TestConstraintBCollusionPairRejected(t *testing.T) {
	_, err := RunDRCPA(NewCollusionPairAdversary(nil), nil)
	if !errors.Is(err, ErrConstraintViolated) {
		t.Fatalf("want ErrConstraintViolated, got %v", err)
	}
}

func TestConstraintBPostChallengeExtract2Rejected(t *testing.T) {
	// Phase-2 variant: Pextract in Phase 1, challenge, then Extract2 of
	// the delegatee must fail.
	c, err := NewDRChallenger(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Pextract("target@x", "friend@y", "t"); err != nil {
		t.Fatal(err)
	}
	m0, _, _ := bn254.RandomGT(nil)
	m1, _, _ := bn254.RandomGT(nil)
	if _, err := c.Challenge(m0, m1, "t", "target@x"); err == nil {
		// Challenge is actually inadmissible here only if friend@y was
		// extracted; it was not, so the challenge must succeed...
	} else {
		t.Fatalf("challenge unexpectedly rejected: %v", err)
	}
	if _, err := c.Extract2("friend@y"); !errors.Is(err, ErrConstraintViolated) {
		t.Fatalf("post-challenge Extract2 of delegatee: want ErrConstraintViolated, got %v", err)
	}
	// Extracting an unrelated KGC2 identity is still fine.
	if _, err := c.Extract2("stranger@z"); err != nil {
		t.Fatalf("unrelated Extract2 rejected: %v", err)
	}
}

func TestConstraintBPostChallengePextractRejected(t *testing.T) {
	c, err := NewDRChallenger(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Extract2("friend@y"); err != nil {
		t.Fatal(err)
	}
	m0, _, _ := bn254.RandomGT(nil)
	m1, _, _ := bn254.RandomGT(nil)
	if _, err := c.Challenge(m0, m1, "t", "target@x"); err != nil {
		t.Fatal(err)
	}
	// Now a Pextract(challenge id, extracted delegatee, challenge type)
	// would complete the collusion: must be rejected.
	if _, err := c.Pextract("target@x", "friend@y", "t"); !errors.Is(err, ErrConstraintViolated) {
		t.Fatalf("want ErrConstraintViolated, got %v", err)
	}
	// A different type is fine.
	if _, err := c.Pextract("target@x", "friend@y", "t2"); err != nil {
		t.Fatalf("other-type Pextract rejected: %v", err)
	}
}

func TestConstraintCPreencPextractExclusion(t *testing.T) {
	c, err := NewDRChallenger(nil)
	if err != nil {
		t.Fatal(err)
	}
	m, _, _ := bn254.RandomGT(nil)
	if _, err := c.Preenc(m, "t", "a@x", "b@y"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Pextract("a@x", "b@y", "t"); !errors.Is(err, ErrConstraintViolated) {
		t.Fatalf("Pextract after Preenc†: want ErrConstraintViolated, got %v", err)
	}
	// And the reverse order.
	c2, _ := NewDRChallenger(nil)
	if _, err := c2.Pextract("a@x", "b@y", "t"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Preenc(m, "t", "a@x", "b@y"); !errors.Is(err, ErrConstraintViolated) {
		t.Fatalf("Preenc† after Pextract: want ErrConstraintViolated, got %v", err)
	}
}

func TestDoubleChallengeRejected(t *testing.T) {
	c, _ := NewDRChallenger(nil)
	m0, _, _ := bn254.RandomGT(nil)
	m1, _, _ := bn254.RandomGT(nil)
	if _, err := c.Challenge(m0, m1, "t", "id"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Challenge(m0, m1, "t", "id"); !errors.Is(err, ErrProtocol) {
		t.Fatalf("want ErrProtocol, got %v", err)
	}
}

func TestGuessBeforeChallengeRejected(t *testing.T) {
	c, _ := NewDRChallenger(nil)
	if _, err := c.Finish(0); !errors.Is(err, ErrProtocol) {
		t.Fatalf("want ErrProtocol, got %v", err)
	}
}

func TestPreencOutputDecryptsForDelegatee(t *testing.T) {
	// The Preenc† oracle must produce real re-encryptions: the named
	// delegatee can open them.
	c, err := NewDRChallenger(nil)
	if err != nil {
		t.Fatal(err)
	}
	delegateeKey, err := c.Extract2("reader@y")
	if err != nil {
		t.Fatal(err)
	}
	m, _, _ := bn254.RandomGT(nil)
	rct, err := c.Preenc(m, "t", "writer@x", "reader@y")
	if err != nil {
		t.Fatal(err)
	}
	got, err := decryptRe(delegateeKey, rct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("Preenc† output does not decrypt to the queried plaintext")
	}
}

// ---------------------------------------------------------------------------
// IND-ID-CPA and one-wayness games for the base IBE
// ---------------------------------------------------------------------------

func TestCPAGameGuessing(t *testing.T) {
	wins := 0
	for i := 0; i < gameRuns; i++ {
		c, err := NewCPAChallenger(nil)
		if err != nil {
			t.Fatal(err)
		}
		m0, _, _ := bn254.RandomGT(nil)
		m1, _, _ := bn254.RandomGT(nil)
		if _, err := c.Challenge(m0, m1, "victim@x"); err != nil {
			t.Fatal(err)
		}
		g, err := RandomBit(nil)
		if err != nil {
			t.Fatal(err)
		}
		won, err := c.Finish(g)
		if err != nil {
			t.Fatal(err)
		}
		if won {
			wins++
		}
	}
	if adv := abs(float64(wins)/float64(gameRuns) - 0.5); adv > advantageBound {
		t.Fatalf("CPA guessing advantage %.3f exceeds bound", adv)
	}
}

func TestCPAGameExtractTargetRejected(t *testing.T) {
	c, err := NewCPAChallenger(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Extract("victim@x"); err != nil {
		t.Fatal(err)
	}
	m0, _, _ := bn254.RandomGT(nil)
	m1, _, _ := bn254.RandomGT(nil)
	if _, err := c.Challenge(m0, m1, "victim@x"); !errors.Is(err, ErrConstraintViolated) {
		t.Fatalf("want ErrConstraintViolated, got %v", err)
	}
	// Post-challenge extraction of the target must fail too.
	c2, _ := NewCPAChallenger(nil)
	if _, err := c2.Challenge(m0, m1, "victim@x"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Extract("victim@x"); !errors.Is(err, ErrConstraintViolated) {
		t.Fatalf("want ErrConstraintViolated, got %v", err)
	}
}

func TestCPAGameExtractedKeyWins(t *testing.T) {
	// An adversary that extracts a DIFFERENT identity and gets the target
	// key via the back door must win: game accounting sanity.
	c, err := NewCPAChallenger(nil)
	if err != nil {
		t.Fatal(err)
	}
	sk := c.kgc.Extract("victim@x") // back door
	m0, _, _ := bn254.RandomGT(nil)
	m1, _, _ := bn254.RandomGT(nil)
	ct, err := c.Challenge(m0, m1, "victim@x")
	if err != nil {
		t.Fatal(err)
	}
	m, err := ibe.Decrypt(sk, ct)
	if err != nil {
		t.Fatal(err)
	}
	guess := 1
	if m.Equal(m0) {
		guess = 0
	}
	won, err := c.Finish(guess)
	if err != nil {
		t.Fatal(err)
	}
	if !won {
		t.Fatal("omniscient adversary lost the CPA game")
	}
}

func TestOWGame(t *testing.T) {
	c, err := NewOWChallenger(nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := c.Challenge("victim@x")
	if err != nil {
		t.Fatal(err)
	}
	// A random guess never recovers the exact GT element.
	g, _, _ := bn254.RandomGT(nil)
	won, err := c.Finish(g)
	if err != nil {
		t.Fatal(err)
	}
	if won {
		t.Fatal("random GT guess won the one-wayness game")
	}
	// The extracted key (back door) recovers it exactly.
	sk := c.kgc.Extract("victim@x")
	m, err := ibe.Decrypt(sk, ct)
	if err != nil {
		t.Fatal(err)
	}
	won, err = c.Finish(m)
	if err != nil {
		t.Fatal(err)
	}
	if !won {
		t.Fatal("correct decryption did not win the one-wayness game")
	}
}

func TestOWGameConstraints(t *testing.T) {
	c, _ := NewOWChallenger(nil)
	if _, err := c.Extract("victim@x"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Challenge("victim@x"); !errors.Is(err, ErrConstraintViolated) {
		t.Fatalf("want ErrConstraintViolated, got %v", err)
	}
	if _, err := c.Finish(nil); !errors.Is(err, ErrProtocol) {
		t.Fatalf("want ErrProtocol, got %v", err)
	}
}
