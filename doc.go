// Package typepre is a from-scratch, stdlib-only Go implementation of the
// type-and-identity-based proxy re-encryption scheme of Ibraimi, Tang,
// Hartel and Jonker ("A Type-and-Identity-based Proxy Re-Encryption Scheme
// and its Application in Healthcare", 2008), together with every substrate
// the construction depends on and the Personal Health Record application
// the paper builds on top of it.
//
// # What the scheme does
//
// A delegator (say, the patient Alice) holds ONE identity-based key pair.
// She categorizes her messages into types — "illness-history",
// "food-statistics", "emergency" — and can hand a proxy a re-encryption key
// that converts exactly the ciphertexts of one type toward one delegatee.
// The proxy learns nothing; a corrupted proxy colluding with the delegatee
// recovers at most the "type key" for the delegated type, never Alice's
// private key and never other types (the paper's Theorem 1).
//
// # Layout
//
//   - package typepre (this package): public facade
//   - internal/bn254: the BN254 bilinear group (fields, curves, optimal ate
//     pairing) implemented on math/big
//   - internal/ibe: the Boneh–Franklin IBE the scheme modifies
//   - internal/core: the paper's scheme (Encrypt1/Decrypt1/Pextract/Preenc)
//   - internal/hybrid: KEM/DEM byte-payload encryption (AES-256-GCM)
//   - internal/baselines/...: the related-work schemes (BBS, Dodis–Ivan,
//     AFGH, Green–Ateniese) used by the comparison experiments
//   - internal/games: executable security games (IND-ID-CPA, one-wayness,
//     IND-ID-DR-CPA of §4.2)
//   - internal/phr: the §5 PHR disclosure service
//
// # Quick start
//
//	kgc1, _ := typepre.Setup("hospital-kgc", nil)
//	kgc2, _ := typepre.Setup("clinic-kgc", nil)
//
//	alice := typepre.NewDelegator(kgc1.Extract("alice@hospital.example"))
//	bobKey := kgc2.Extract("bob@clinic.example")
//
//	ct, _ := typepre.EncryptBytes(alice, []byte("blood type O−"), "emergency", nil)
//	rk, _ := alice.Delegate(kgc2.Params(), "bob@clinic.example", "emergency", nil)
//
//	rct, _ := typepre.ReEncryptBytes(ct, rk)          // at the proxy
//	msg, _ := typepre.DecryptBytesReEncrypted(bobKey, rct) // at Bob
//
// SECURITY NOTE: the pairing arithmetic is not constant time (math/big).
// The repository reproduces the paper's construction and its systems
// behavior; it is not a hardened production cryptography library.
package typepre
